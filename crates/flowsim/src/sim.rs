//! The discrete-event simulation loop.
//!
//! The engine works on interned paths ([`netgraph::PathArena`]): active
//! connections hold `PathId`s, rate allocation runs incrementally
//! through persistent `Bindings` (`crate::alloc`) over an
//! [`mcf::IncrementalAllocator`], failures live in a dense
//! [`FailedLinks`] set, and routing goes
//! through a [`PathProvider`] whose cache is invalidated by failure
//! epoch. The produced [`SimResult`] is bit-identical to the
//! pre-refactor engine (kept as
//! [`reference::simulate_reference`](crate::reference::simulate_reference)).
//!
//! # Event batching
//!
//! All events that land within `1e-15` s of the epoch time — arrivals,
//! completions, legacy failures, and fault-plan edges — are drained in
//! one pass before the next allocation runs, so simultaneous events
//! form a single allocation epoch rather than one epoch each. The
//! incremental allocator then reconciles exactly the entities that
//! batch touched.

use crate::alloc::{AllocTelemetry, Bindings};
use crate::error::SimError;
use crate::failures::FailedLinks;
use crate::faults::{AuditReport, FaultSchedule, LinkEvent};
use crate::provider::{EcmpProvider, MptcpProvider, PathProvider};
use netgraph::{Graph, LinkId, NodeId, PathArena, PathId};
use obs::{NoopSink, ParkCause, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};

/// Bytes below which a flow counts as finished (flows are KB-scale+).
pub(crate) const DONE_BYTES: f64 = 1e-3;
/// Gbps below which a flow is considered stalled.
pub(crate) const STALL_RATE: f64 = 1e-12;
/// Gbps → bytes/second.
pub(crate) const GBPS_TO_BPS: f64 = 1e9 / 8.0;

/// A flow to simulate, endpoints already bound to graph nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Caller-chosen id, reported back in [`FlowRecord`].
    pub id: u64,
    /// Source server node.
    pub src: NodeId,
    /// Destination server node.
    pub dst: NodeId,
    /// Size in bytes.
    pub bytes: f64,
    /// Arrival time in seconds.
    pub start: f64,
}

/// Transport / routing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Transport {
    /// Single-path TCP; the path is hashed among equal-cost shortest
    /// paths (the Clos ECMP baseline).
    TcpEcmp,
    /// MPTCP over the k-shortest paths.
    Mptcp {
        /// Number of concurrent paths.
        k: usize,
        /// `true` models LIA-style coupling (subflow weight 1/k).
        coupled: bool,
    },
}

impl Transport {
    /// The paper's main configuration: 8-path coupled MPTCP.
    pub fn mptcp8() -> Self {
        Transport::Mptcp {
            k: 8,
            coupled: true,
        }
    }
}

/// A timed link failure (the cable is cut: both directions die).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFailure {
    /// Failure time in seconds.
    pub time: f64,
    /// Either direction of the failed cable.
    pub link: LinkId,
}

/// Simulation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Transport model.
    pub transport: Transport,
    /// Timed link failures.
    pub link_failures: Vec<LinkFailure>,
    /// Record the total-goodput time series (one point per event).
    pub record_series: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            transport: Transport::mptcp8(),
            link_failures: Vec::new(),
            record_series: false,
        }
    }
}

/// Per-flow outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The spec's id.
    pub id: u64,
    /// Arrival time.
    pub start: f64,
    /// Completion time; `None` if the flow never finished (stall after an
    /// unrecoverable failure).
    pub finish: Option<f64>,
    /// Flow size in bytes.
    pub bytes: f64,
}

impl FlowRecord {
    /// Flow completion time in seconds, if completed.
    pub fn fct(&self) -> Option<f64> {
        self.finish.map(|f| f - self.start)
    }

    /// Average goodput in Gbps over the flow's lifetime, if completed.
    pub fn avg_rate_gbps(&self) -> Option<f64> {
        self.fct()
            .filter(|&d| d > 0.0)
            .map(|d| self.bytes / d / GBPS_TO_BPS)
    }
}

/// Simulation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// One record per input flow, in input order.
    pub records: Vec<FlowRecord>,
    /// `(time, total goodput in Gbps)` after each event, when enabled.
    pub series: Vec<(f64, f64)>,
    /// Time of the last processed event.
    pub end_time: f64,
}

impl SimResult {
    /// Completed FCTs in seconds, sorted ascending (CDF material).
    ///
    /// Total order via [`f64::total_cmp`]: a degenerate (NaN) FCT in a
    /// hand-built record sorts last instead of panicking the sort.
    pub fn sorted_fcts(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.records.iter().filter_map(|r| r.fct()).collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Mean FCT over completed flows. Incomplete flows — including
    /// connections parked by a fault schedule and never revived — carry
    /// no FCT and are excluded here; they still count against
    /// [`completed_fraction`](Self::completed_fraction).
    pub fn mean_fct(&self) -> Option<f64> {
        let v = self.sorted_fcts();
        (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64)
    }

    /// Fraction of input flows that completed. The denominator is
    /// **every** input flow: unroutable, stalled, and
    /// parked-never-revived (degraded) flows all count as incomplete —
    /// they never vanish from [`records`](Self::records).
    pub fn completed_fraction(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.completed_count() as f64 / self.records.len() as f64
    }

    /// Number of flows that completed.
    pub fn completed_count(&self) -> usize {
        self.records.iter().filter(|r| r.finish.is_some()).count()
    }

    /// Number of flows that never finished (unroutable, stalled, or
    /// parked by a fault schedule without a later recovery).
    pub fn unfinished_count(&self) -> usize {
        self.records.len() - self.completed_count()
    }

    /// Mean per-flow average goodput (Gbps) over completed flows (the
    /// paper's per-flow throughput metric; incomplete flows have no
    /// defined average rate).
    pub fn mean_rate_gbps(&self) -> Option<f64> {
        let v: Vec<f64> = self
            .records
            .iter()
            .filter_map(|r| r.avg_rate_gbps())
            .collect();
        (!v.is_empty()).then(|| v.iter().sum::<f64>() / v.len() as f64)
    }

    /// Mean goodput (Gbps) over **all** input flows, counting every
    /// incomplete flow as zero. Unlike
    /// [`mean_rate_gbps`](Self::mean_rate_gbps), degraded flows do not
    /// vanish from the denominator — this is the honest workload-level
    /// number for runs under faults.
    pub fn workload_mean_rate_gbps(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.records.iter().filter_map(|r| r.avg_rate_gbps()).sum();
        sum / self.records.len() as f64
    }
}

struct Active {
    rec_idx: usize,
    spec: FlowSpec,
    remaining: f64,
    path_ids: Vec<PathId>,
    subflow_weight: f64,
}

/// A faulted simulation's output: the ordinary [`SimResult`] plus the
/// invariant auditor's tallies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSimOutcome {
    /// The simulation result.
    pub result: SimResult,
    /// Invariant-auditor tallies ([`AuditReport::violations`] is zero on
    /// a correct engine).
    pub audit: AuditReport,
}

/// Validates a workload against the graph and configuration.
fn validate_inputs(g: &Graph, flows: &[FlowSpec], cfg: &SimConfig) -> Result<(), SimError> {
    for f in flows {
        if !f.start.is_finite() {
            return Err(SimError::NonFiniteStart { flow: f.id });
        }
        if !(f.bytes.is_finite() && f.bytes > 0.0) {
            return Err(SimError::InvalidBytes {
                flow: f.id,
                bytes: f.bytes,
            });
        }
        if f.src == f.dst {
            return Err(SimError::SelfFlow {
                flow: f.id,
                node: f.src,
            });
        }
    }
    for lf in &cfg.link_failures {
        if !lf.time.is_finite() {
            return Err(SimError::NonFiniteFailureTime);
        }
        if lf.link.idx() >= g.link_count() {
            return Err(SimError::UnknownFailedLink {
                link: lf.link.idx(),
            });
        }
    }
    Ok(())
}

/// Runs the fluid simulation.
///
/// Flows may arrive in any order (sorted internally). Unroutable flows
/// (disconnected endpoints) are recorded as never finishing.
///
/// Panics on invalid input; use [`try_simulate`] for a typed error.
pub fn simulate(g: &Graph, flows: &[FlowSpec], cfg: &SimConfig) -> SimResult {
    try_simulate(g, flows, cfg).unwrap_or_else(|e| panic!("invalid simulation input: {e}"))
}

/// [`simulate`] with typed input validation instead of panics.
pub fn try_simulate(g: &Graph, flows: &[FlowSpec], cfg: &SimConfig) -> Result<SimResult, SimError> {
    try_simulate_traced(g, flows, cfg, &mut NoopSink)
}

/// [`try_simulate`] with a caller-supplied [`TraceSink`] receiving the
/// flow-lifecycle and per-epoch events. With [`NoopSink`] this **is**
/// [`try_simulate`]: the guard blocks compile away and the result is
/// bit-identical.
pub fn try_simulate_traced<S: TraceSink>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    match cfg.transport {
        Transport::TcpEcmp => {
            try_simulate_with_provider_traced(g, flows, cfg, &mut EcmpProvider::new(), sink)
        }
        Transport::Mptcp { k, coupled } => try_simulate_with_provider_traced(
            g,
            flows,
            cfg,
            &mut MptcpProvider::new(k, coupled),
            sink,
        ),
    }
}

/// Runs the fluid simulation with a caller-supplied routing provider.
///
/// [`simulate`] wires the standard providers for [`Transport`]; this
/// entry point lets experiments substitute custom routing (the provider
/// must be deterministic — see [`PathProvider`]). Note `cfg.transport`
/// still selects the fairness weights reported by the provider itself;
/// the engine uses whatever the provider returns.
///
/// Panics on invalid input; use [`try_simulate_with_provider`] for a
/// typed error.
pub fn simulate_with_provider<P: PathProvider + ?Sized>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    provider: &mut P,
) -> SimResult {
    try_simulate_with_provider(g, flows, cfg, provider)
        .unwrap_or_else(|e| panic!("invalid simulation input: {e}"))
}

/// [`simulate_with_provider`] with typed input validation.
pub fn try_simulate_with_provider<P: PathProvider + ?Sized>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    provider: &mut P,
) -> Result<SimResult, SimError> {
    try_simulate_with_provider_traced(g, flows, cfg, provider, &mut NoopSink)
}

/// [`try_simulate_with_provider`] with a caller-supplied [`TraceSink`].
pub fn try_simulate_with_provider_traced<P: PathProvider + ?Sized, S: TraceSink>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    provider: &mut P,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    validate_inputs(g, flows, cfg)?;
    Ok(run_engine(g, flows, cfg, provider, &[], None, None, sink))
}

/// [`simulate_under_faults_with_provider`] that additionally sums the
/// incremental allocator's per-epoch effort counters into `telemetry`.
///
/// An empty `schedule` takes exactly the fault-free code path (modulo
/// the auditor, which never perturbs the result), so this one entry
/// point serves both the steady-state and failure benchmarks. The
/// counters are plain integer adds on the epoch boundary; they do not
/// change the simulation.
pub fn simulate_with_telemetry<P: PathProvider + ?Sized>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    schedule: &FaultSchedule,
    provider: &mut P,
    telemetry: &mut AllocTelemetry,
) -> Result<FaultSimOutcome, SimError> {
    validate_inputs(g, flows, cfg)?;
    for ev in &schedule.events {
        if !ev.time.is_finite() {
            return Err(SimError::NonFiniteFailureTime);
        }
        if ev.link.idx() >= g.link_count() {
            return Err(SimError::UnknownFailedLink {
                link: ev.link.idx(),
            });
        }
    }
    let mut audit = AuditReport::default();
    let result = run_engine(
        g,
        flows,
        cfg,
        provider,
        &schedule.events,
        Some(&mut audit),
        Some(telemetry),
        &mut NoopSink,
    );
    Ok(FaultSimOutcome { result, audit })
}

/// Runs the fluid simulation under a compiled fault schedule, with the
/// invariant auditor enabled.
///
/// The schedule's recovery events exercise graceful-degradation routing:
/// connections that lose every path are *parked* (not dropped) and
/// re-routed when a recovery event restores connectivity, and arrivals
/// during a partition wait parked for the network to heal. With an
/// empty schedule the engine takes exactly the fault-free code path and
/// the result is bit-identical to [`simulate`].
pub fn simulate_under_faults(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    schedule: &FaultSchedule,
) -> Result<FaultSimOutcome, SimError> {
    simulate_under_faults_traced(g, flows, cfg, schedule, &mut NoopSink)
}

/// [`simulate_under_faults`] with a caller-supplied [`TraceSink`]: the
/// sink additionally sees every applied fault event (`LinkDown` /
/// `LinkUp`) and the park/revive lifecycle.
pub fn simulate_under_faults_traced<S: TraceSink>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    schedule: &FaultSchedule,
    sink: &mut S,
) -> Result<FaultSimOutcome, SimError> {
    match cfg.transport {
        Transport::TcpEcmp => simulate_under_faults_with_provider_traced(
            g,
            flows,
            cfg,
            schedule,
            &mut EcmpProvider::new(),
            sink,
        ),
        Transport::Mptcp { k, coupled } => simulate_under_faults_with_provider_traced(
            g,
            flows,
            cfg,
            schedule,
            &mut MptcpProvider::new(k, coupled),
            sink,
        ),
    }
}

/// [`simulate_under_faults`] with a caller-supplied routing provider.
pub fn simulate_under_faults_with_provider<P: PathProvider + ?Sized>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    schedule: &FaultSchedule,
    provider: &mut P,
) -> Result<FaultSimOutcome, SimError> {
    simulate_under_faults_with_provider_traced(g, flows, cfg, schedule, provider, &mut NoopSink)
}

/// [`simulate_under_faults_with_provider`] with a caller-supplied
/// [`TraceSink`].
pub fn simulate_under_faults_with_provider_traced<P: PathProvider + ?Sized, S: TraceSink>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    schedule: &FaultSchedule,
    provider: &mut P,
    sink: &mut S,
) -> Result<FaultSimOutcome, SimError> {
    validate_inputs(g, flows, cfg)?;
    for ev in &schedule.events {
        if !ev.time.is_finite() {
            return Err(SimError::NonFiniteFailureTime);
        }
        if ev.link.idx() >= g.link_count() {
            return Err(SimError::UnknownFailedLink {
                link: ev.link.idx(),
            });
        }
    }
    let mut audit = AuditReport::default();
    let result = run_engine(
        g,
        flows,
        cfg,
        provider,
        &schedule.events,
        Some(&mut audit),
        None,
        sink,
    );
    Ok(FaultSimOutcome { result, audit })
}

/// The event loop. `schedule` must be sorted by time; an empty schedule
/// with no auditor reproduces the pre-fault-plane engine bit for bit.
///
/// Every `sink` emission site is guarded by
/// [`TraceSink::enabled`]; with [`NoopSink`] the guards (and event
/// construction) compile away, so tracing never perturbs the
/// simulation.
#[allow(clippy::too_many_arguments)]
fn run_engine<P: PathProvider + ?Sized, S: TraceSink>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &SimConfig,
    provider: &mut P,
    schedule: &[LinkEvent],
    mut audit: Option<&mut AuditReport>,
    mut telemetry: Option<&mut AllocTelemetry>,
    sink: &mut S,
) -> SimResult {
    let mut caps = g.capacities();
    // Pristine capacities, for restoring a link on a recovery event.
    let base_caps = caps.clone();
    // Parked connections: lost every path (or arrived unroutable) while
    // a fault schedule with possible recoveries is active. Revived on
    // recovery events; only ever populated when `schedule` is non-empty.
    let has_faults = !schedule.is_empty();
    let mut parked: Vec<Active> = Vec::new();
    let mut next_event = 0usize;
    let mut arena = PathArena::new();
    // Persistent subflow→entity bindings: mirrors `active` inside the
    // incremental allocator so each epoch re-solves only what the event
    // batch dirtied. `needs_resync` is set by fault edges that reshuffle
    // positions wholesale (park / revive / stall-drop).
    let mut bind = Bindings::new();
    let mut needs_resync = false;

    // Records in input order; simulation works on a start-sorted index.
    let mut records: Vec<FlowRecord> = flows
        .iter()
        .map(|f| FlowRecord {
            id: f.id,
            start: f.start,
            finish: None,
            bytes: f.bytes,
        })
        .collect();
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| flows[a].start.total_cmp(&flows[b].start).then(a.cmp(&b)));
    let mut failures = cfg.link_failures.clone();
    failures.sort_by(|a, b| a.time.total_cmp(&b.time));
    let mut failed = FailedLinks::new(g.link_count());

    let mut next_arrival = 0usize;
    let mut next_failure = 0usize;
    let mut active: Vec<Active> = Vec::new();
    let mut series = Vec::new();
    let mut t = 0.0f64;

    // Folded per-connection rates, reused across events.
    let mut rates: Vec<f64> = Vec::new();
    // Per-link carried rate, only touched when the sink is live.
    let mut util_used: Vec<f64> = Vec::new();

    loop {
        // Allocate under the current active set. The bindings hold
        // entities in (connection, subflow) order — exactly the entity
        // list the old engine rebuilt per event — and the incremental
        // allocator reconciles only the links the last event batch
        // dirtied, so the rates are bit-identical at a fraction of the
        // cost.
        bind.allocate(&caps);
        if let Some(tel) = telemetry.as_deref_mut() {
            tel.absorb(bind.stats());
        }
        if let Some(rep) = audit.as_deref_mut() {
            // Invariant 1: no subflow carries rate over a down link.
            for (ci, a) in active.iter().enumerate() {
                let sub = bind.subflow_rates(ci);
                for (&pid, &r) in a.path_ids.iter().zip(sub) {
                    rep.checks += 1;
                    if r > STALL_RATE && !failed.path_alive(arena.links(pid)) {
                        rep.rate_on_down_link += 1;
                    }
                }
            }
        }
        if sink.enabled() {
            sink.emit(TraceEvent::Alloc {
                t,
                conns: active.len(),
                subflows: bind.num_subflows(),
                rounds: bind.rounds(),
            });
            // Per-epoch link-utilization histogram over links that
            // currently carry capacity.
            util_used.clear();
            util_used.resize(caps.len(), 0.0);
            for (ci, a) in active.iter().enumerate() {
                let sub = bind.subflow_rates(ci);
                for (&pid, &r) in a.path_ids.iter().zip(sub) {
                    if r > 0.0 {
                        for l in arena.links(pid) {
                            util_used[l.idx()] += r;
                        }
                    }
                }
            }
            let mut deciles = [0u32; 10];
            let mut saturated = 0u32;
            let mut busiest = 0.0f64;
            for (l, &cap) in caps.iter().enumerate() {
                if cap > 0.0 {
                    let u = util_used[l] / cap;
                    deciles[((u * 10.0) as usize).min(9)] += 1;
                    if u >= 0.999 {
                        saturated += 1;
                    }
                    if u > busiest {
                        busiest = u;
                    }
                }
            }
            sink.emit(TraceEvent::LinkUtil {
                t,
                deciles,
                saturated,
                busiest,
            });
        }
        rates.clear();
        rates.extend((0..active.len()).map(|ci| bind.conn_rate(ci)));
        if cfg.record_series {
            series.push((t, rates.iter().sum()));
        }

        // Next event time.
        let t_arr = (next_arrival < order.len()).then(|| flows[order[next_arrival]].start);
        let t_fail = (next_failure < failures.len()).then(|| failures[next_failure].time);
        let t_ev = (next_event < schedule.len()).then(|| schedule[next_event].time);
        let t_fin = active
            .iter()
            .zip(&rates)
            .filter(|(_, &r)| r > STALL_RATE)
            .map(|(a, &r)| t + a.remaining / (r * GBPS_TO_BPS))
            .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))));
        let candidates = [t_arr, t_fail, t_fin, t_ev];
        let Some(t_next) = candidates
            .iter()
            .flatten()
            .fold(None::<f64>, |acc, &x| Some(acc.map_or(x, |a| a.min(x))))
        else {
            // No events left; anything still active is stalled forever.
            break;
        };
        let t_next = t_next.max(t);

        // Drain bytes until t_next.
        let dt = t_next - t;
        for (a, &r) in active.iter_mut().zip(&rates) {
            a.remaining -= r * GBPS_TO_BPS * dt;
        }
        t = t_next;

        // Completions.
        let mut i = 0;
        while i < active.len() {
            if active[i].remaining <= DONE_BYTES {
                records[active[i].rec_idx].finish = Some(t);
                if sink.enabled() {
                    sink.emit(TraceEvent::FlowFinish {
                        t,
                        flow: active[i].spec.id,
                        fct: t - active[i].spec.start,
                    });
                }
                active.swap_remove(i);
                bind.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Arrivals.
        while next_arrival < order.len() && flows[order[next_arrival]].start <= t + 1e-15 {
            let idx = order[next_arrival];
            next_arrival += 1;
            let spec = flows[idx];
            match provider.route(g, &mut arena, &failed, &spec) {
                Some(conn) => {
                    if sink.enabled() {
                        sink.emit(TraceEvent::FlowStart {
                            t,
                            flow: spec.id,
                            paths: conn.path_ids.len(),
                        });
                    }
                    bind.push(&arena, &conn.path_ids, conn.subflow_weight);
                    active.push(Active {
                        rec_idx: idx,
                        spec,
                        remaining: spec.bytes,
                        path_ids: conn.path_ids,
                        subflow_weight: conn.subflow_weight,
                    });
                }
                None if has_faults => {
                    // Unroutable during a partition: wait parked for a
                    // recovery event instead of never finishing.
                    if sink.enabled() {
                        sink.emit(TraceEvent::FlowPark {
                            t,
                            flow: spec.id,
                            cause: ParkCause::Arrival,
                        });
                    }
                    parked.push(Active {
                        rec_idx: idx,
                        spec,
                        remaining: spec.bytes,
                        path_ids: Vec::new(),
                        subflow_weight: 1.0,
                    });
                    if let Some(rep) = audit.as_deref_mut() {
                        rep.parked += 1;
                    }
                }
                None => {
                    // Unroutable: record stays unfinished.
                    if sink.enabled() {
                        sink.emit(TraceEvent::FlowUnroutable { t, flow: spec.id });
                    }
                }
            }
        }
        // Failures (legacy down-only list).
        let mut failed_now = false;
        let mut recovered_now = false;
        while next_failure < failures.len() && failures[next_failure].time <= t + 1e-15 {
            let f = failures[next_failure];
            next_failure += 1;
            failed.fail(f.link);
            caps[f.link.idx()] = 0.0;
            if sink.enabled() {
                sink.emit(TraceEvent::LinkDown {
                    t,
                    link: f.link.idx(),
                });
            }
            if let Some(rev) = g.link(f.link).reverse {
                failed.fail(rev);
                caps[rev.idx()] = 0.0;
                if sink.enabled() {
                    sink.emit(TraceEvent::LinkDown { t, link: rev.idx() });
                }
            }
            failed_now = true;
        }
        // Fault-plan events (down and up, directed-link granularity).
        while next_event < schedule.len() && schedule[next_event].time <= t + 1e-15 {
            let ev = schedule[next_event];
            next_event += 1;
            if let Some(rep) = audit.as_deref_mut() {
                rep.events_applied += 1;
            }
            if ev.up {
                if failed.recover(ev.link) {
                    caps[ev.link.idx()] = base_caps[ev.link.idx()];
                    recovered_now = true;
                    if sink.enabled() {
                        sink.emit(TraceEvent::LinkUp {
                            t,
                            link: ev.link.idx(),
                        });
                    }
                }
            } else if failed.fail(ev.link) {
                caps[ev.link.idx()] = 0.0;
                failed_now = true;
                if sink.enabled() {
                    sink.emit(TraceEvent::LinkDown {
                        t,
                        link: ev.link.idx(),
                    });
                }
            }
        }
        if recovered_now {
            // Graceful re-convergence: refresh every active connection
            // onto the provider's routes for the healed network, then
            // revive whatever parked connections can route again.
            for a in &mut active {
                let spec = a.spec;
                if let Some(conn) = provider.route(g, &mut arena, &failed, &spec) {
                    a.path_ids = conn.path_ids;
                    a.subflow_weight = conn.subflow_weight;
                } else {
                    a.path_ids
                        .retain(|&pid| failed.path_alive(arena.links(pid)));
                }
                if sink.enabled() {
                    sink.emit(TraceEvent::FlowReroute {
                        t,
                        flow: spec.id,
                        paths: a.path_ids.len(),
                    });
                }
            }
            let mut still_parked = Vec::new();
            for mut a in parked.drain(..) {
                let spec = a.spec;
                if let Some(conn) = provider.route(g, &mut arena, &failed, &spec) {
                    a.path_ids = conn.path_ids;
                    a.subflow_weight = conn.subflow_weight;
                    if let Some(rep) = audit.as_deref_mut() {
                        rep.revived += 1;
                    }
                    if sink.enabled() {
                        sink.emit(TraceEvent::FlowRevive {
                            t,
                            flow: spec.id,
                            paths: a.path_ids.len(),
                        });
                    }
                    active.push(a);
                } else {
                    still_parked.push(a);
                }
            }
            parked = still_parked;
            // Every position may have moved or changed paths: full
            // binding invalidation.
            needs_resync = true;
        } else if failed_now {
            // Re-route connections that lost a subflow; each keeps its
            // position, so the binding is replaced in place.
            for (ci, a) in active.iter_mut().enumerate() {
                let hit = a
                    .path_ids
                    .iter()
                    .any(|&pid| !failed.path_alive(arena.links(pid)));
                if hit {
                    let spec = a.spec;
                    if let Some(conn) = provider.route(g, &mut arena, &failed, &spec) {
                        a.path_ids = conn.path_ids;
                        a.subflow_weight = conn.subflow_weight;
                    } else {
                        // Keep only surviving subflows (possibly none).
                        a.path_ids
                            .retain(|&pid| failed.path_alive(arena.links(pid)));
                    }
                    if a.path_ids.is_empty() {
                        // Zero subflows left: unbindable. The park /
                        // drop pass below removes it, then the bindings
                        // are rebuilt.
                        needs_resync = true;
                    } else {
                        bind.replace(&arena, ci, &a.path_ids, a.subflow_weight);
                    }
                    if sink.enabled() {
                        sink.emit(TraceEvent::FlowReroute {
                            t,
                            flow: spec.id,
                            paths: a.path_ids.len(),
                        });
                    }
                }
            }
        }
        if failed_now || recovered_now {
            if has_faults {
                // Connections with no path left wait parked for a
                // recovery event; finish stays None if none comes.
                let mut i = 0;
                while i < active.len() {
                    if active[i].path_ids.is_empty() {
                        if sink.enabled() {
                            sink.emit(TraceEvent::FlowPark {
                                t,
                                flow: active[i].spec.id,
                                cause: ParkCause::PathLoss,
                            });
                        }
                        parked.push(active.remove(i));
                        needs_resync = true;
                        if let Some(rep) = audit.as_deref_mut() {
                            rep.parked += 1;
                        }
                    } else {
                        i += 1;
                    }
                }
            } else {
                // Permanently stalled connections drop out; finish stays
                // None.
                let before = active.len();
                active.retain(|a| !a.path_ids.is_empty());
                if active.len() != before {
                    needs_resync = true;
                }
            }
            if let Some(rep) = audit.as_deref_mut() {
                // Invariant 2: every connection kept active after a
                // fault event has at least one fully-alive path.
                for a in &active {
                    if !a
                        .path_ids
                        .iter()
                        .any(|&pid| failed.path_alive(arena.links(pid)))
                    {
                        rep.dead_active_conn += 1;
                    }
                }
            }
        }
        if needs_resync {
            // Fault edge reshuffled positions (park / revive / drop):
            // rebuild the bindings from the active vector. Correct by
            // construction, and rare — it only runs on failure-epoch or
            // recovery boundaries, never on the arrival/completion path.
            bind.resync(
                &arena,
                active
                    .iter()
                    .map(|a| (a.path_ids.as_slice(), a.subflow_weight)),
            );
            needs_resync = false;
        }
    }

    if sink.enabled() {
        let completed = records.iter().filter(|r| r.finish.is_some()).count();
        sink.emit(TraceEvent::SimEnd {
            t,
            completed,
            unfinished: records.len() - completed,
        });
    }

    SimResult {
        records,
        series,
        end_time: t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Graph, NodeKind};

    /// Two racks joined by one 10G core link; 2 servers per rack.
    fn dumbbell() -> (Graph, Vec<NodeId>, LinkId) {
        let mut g = Graph::new();
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        let (core, _) = g.add_duplex_link(e0, e1, 10.0);
        let mut servers = Vec::new();
        for (i, &e) in [e0, e0, e1, e1].iter().enumerate() {
            let s = g.add_node(NodeKind::Server, format!("s{i}"));
            g.add_duplex_link(s, e, 10.0);
            servers.push(s);
        }
        (g, servers, core)
    }

    fn spec(id: u64, src: NodeId, dst: NodeId, bytes: f64, start: f64) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            bytes,
            start,
        }
    }

    #[test]
    fn single_flow_fct_is_exact() {
        let (g, s, _) = dumbbell();
        // 10 Gbps end to end; 1.25 GB takes exactly 1 s.
        let flows = vec![spec(0, s[0], s[2], 1.25e9, 0.0)];
        let res = simulate(&g, &flows, &SimConfig::default());
        let fct = res.records[0].fct().unwrap();
        assert!((fct - 1.0).abs() < 1e-9, "fct = {fct}");
        assert!((res.records[0].avg_rate_gbps().unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (g, s, _) = dumbbell();
        // Both cross the 10G core: share 5 Gbps each; the small one
        // finishes at 1 s, then the big one speeds up to 10.
        let flows = vec![
            spec(0, s[0], s[2], 0.625e9, 0.0), // 5 Gb at 5 Gbps -> 1 s
            spec(1, s[1], s[3], 1.25e9, 0.0),
        ];
        let res = simulate(&g, &flows, &SimConfig::default());
        let f0 = res.records[0].fct().unwrap();
        let f1 = res.records[1].fct().unwrap();
        assert!((f0 - 1.0).abs() < 1e-9, "f0 = {f0}");
        // Big flow: 5 Gbps for 1 s (0.625 GB done), then 10 Gbps for the
        // remaining 0.625 GB -> 0.5 s more.
        assert!((f1 - 1.5).abs() < 1e-9, "f1 = {f1}");
    }

    #[test]
    fn staggered_arrivals() {
        let (g, s, _) = dumbbell();
        let flows = vec![
            spec(0, s[0], s[2], 1.25e9, 0.0),
            spec(1, s[1], s[3], 1.25e9, 0.5),
        ];
        let res = simulate(&g, &flows, &SimConfig::default());
        // Flow 0: 10G for 0.5 s (half done), then 5G until done:
        // remaining 0.625 GB at 5 Gbps = 1 s -> finish 1.5.
        assert!((res.records[0].fct().unwrap() - 1.5).abs() < 1e-9);
        // Flow 1: 5G from 0.5 to 1.5 (0.625 GB), then 10G for the rest:
        // finish at 2.0, fct 1.5.
        assert!((res.records[1].fct().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn intra_rack_avoids_core() {
        let (g, s, _) = dumbbell();
        let flows = vec![
            spec(0, s[0], s[1], 1.25e9, 0.0), // same rack
            spec(1, s[2], s[3], 1.25e9, 0.0), // same rack
        ];
        let res = simulate(&g, &flows, &SimConfig::default());
        for r in &res.records {
            assert!((r.fct().unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn link_failure_stalls_when_no_alternative() {
        let (g, s, core) = dumbbell();
        let flows = vec![spec(0, s[0], s[2], 1.25e9, 0.0)];
        let cfg = SimConfig {
            link_failures: vec![LinkFailure {
                time: 0.5,
                link: core,
            }],
            ..SimConfig::default()
        };
        let res = simulate(&g, &flows, &cfg);
        assert_eq!(res.records[0].finish, None, "must stall: only path died");
    }

    /// Diamond with two disjoint switch paths: failure reroutes.
    #[test]
    fn link_failure_reroutes_over_survivor() {
        let mut g = Graph::new();
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        let x = g.add_node(NodeKind::CoreSwitch, "x");
        let y = g.add_node(NodeKind::CoreSwitch, "y");
        let (via_x, _) = g.add_duplex_link(e0, x, 10.0);
        g.add_duplex_link(x, e1, 10.0);
        g.add_duplex_link(e0, y, 10.0);
        g.add_duplex_link(y, e1, 10.0);
        let s0 = g.add_node(NodeKind::Server, "s0");
        let s1 = g.add_node(NodeKind::Server, "s1");
        g.add_duplex_link(s0, e0, 10.0);
        g.add_duplex_link(s1, e1, 10.0);
        let flows = vec![spec(0, s0, s1, 1.25e9, 0.0)];
        let cfg = SimConfig {
            transport: Transport::Mptcp {
                k: 2,
                coupled: true,
            },
            link_failures: vec![LinkFailure {
                time: 0.5,
                link: via_x,
            }],
            record_series: false,
        };
        let res = simulate(&g, &flows, &cfg);
        // NIC-limited to 10G throughout (both paths before, one after);
        // completion at 1 s regardless of the failure.
        let fct = res.records[0].fct().expect("must finish via y");
        assert!((fct - 1.0).abs() < 1e-6, "fct = {fct}");
    }

    #[test]
    fn ecmp_and_mptcp_agree_on_single_path_topology() {
        let (g, s, _) = dumbbell();
        let flows = vec![spec(0, s[0], s[2], 1.25e9, 0.0)];
        for transport in [Transport::TcpEcmp, Transport::mptcp8()] {
            let res = simulate(
                &g,
                &flows,
                &SimConfig {
                    transport,
                    ..SimConfig::default()
                },
            );
            assert!((res.records[0].fct().unwrap() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn series_records_goodput_steps() {
        let (g, s, _) = dumbbell();
        let flows = vec![
            spec(0, s[0], s[2], 1.25e9, 0.0),
            spec(1, s[1], s[3], 1.25e9, 0.0),
        ];
        let cfg = SimConfig {
            record_series: true,
            ..SimConfig::default()
        };
        let res = simulate(&g, &flows, &cfg);
        assert!(!res.series.is_empty());
        // The point at t=0 before arrivals carries 0; once both flows are
        // active the total goodput steps to the 10 G core capacity.
        let peak = res.series.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
        assert!((peak - 10.0).abs() < 1e-9, "peak {peak}");
        assert!(res.end_time > 0.0);
    }

    #[test]
    fn try_simulate_rejects_bad_input() {
        let (g, s, _) = dumbbell();
        use crate::error::SimError;
        let bad_start = vec![spec(0, s[0], s[2], 1.0, f64::NAN)];
        assert!(matches!(
            try_simulate(&g, &bad_start, &SimConfig::default()),
            Err(SimError::NonFiniteStart { flow: 0 })
        ));
        let self_flow = vec![spec(1, s[0], s[0], 1.0, 0.0)];
        assert!(matches!(
            try_simulate(&g, &self_flow, &SimConfig::default()),
            Err(SimError::SelfFlow { flow: 1, .. })
        ));
        let empty = vec![spec(2, s[0], s[1], 0.0, 0.0)];
        assert!(matches!(
            try_simulate(&g, &empty, &SimConfig::default()),
            Err(SimError::InvalidBytes { flow: 2, .. })
        ));
        let cfg = SimConfig {
            link_failures: vec![LinkFailure {
                time: 1.0,
                link: LinkId(9999),
            }],
            ..SimConfig::default()
        };
        assert!(matches!(
            try_simulate(&g, &[spec(3, s[0], s[2], 1.0, 0.0)], &cfg),
            Err(SimError::UnknownFailedLink { .. })
        ));
    }

    /// An empty fault schedule takes exactly the fault-free code path:
    /// the outcome is bit-identical to `simulate` and the auditor is
    /// silent.
    #[test]
    fn empty_schedule_is_bit_identical_to_simulate() {
        let (g, s, core) = dumbbell();
        let flows = vec![
            spec(0, s[0], s[2], 1.25e9, 0.0),
            spec(1, s[1], s[3], 0.625e9, 0.25),
        ];
        let cfg = SimConfig {
            link_failures: vec![LinkFailure {
                time: 0.5,
                link: core,
            }],
            record_series: true,
            ..SimConfig::default()
        };
        let plain = simulate(&g, &flows, &cfg);
        let faulted =
            simulate_under_faults(&g, &flows, &cfg, &crate::faults::FaultSchedule::empty())
                .expect("valid input");
        assert_eq!(plain.records, faulted.result.records);
        assert_eq!(plain.series.len(), faulted.result.series.len());
        for (a, b) in plain.series.iter().zip(&faulted.result.series) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert_eq!(plain.end_time.to_bits(), faulted.result.end_time.to_bits());
        assert_eq!(faulted.audit.violations(), 0);
        assert_eq!(faulted.audit.events_applied, 0);
        assert_eq!(faulted.audit.parked, 0);
    }

    /// A flap on the only path parks the flow and revives it on
    /// recovery: the flow completes late instead of never.
    #[test]
    fn flap_parks_then_revives_the_only_path() {
        let (g, s, core) = dumbbell();
        let flows = vec![spec(0, s[0], s[2], 1.25e9, 0.0)];
        let mut plan = crate::faults::FaultPlan::new(1);
        plan.flap(core, 0.5, Some(2.0));
        let sched = plan.compile(&g).expect("valid plan");
        let cfg = SimConfig::default();
        let out = simulate_under_faults(&g, &flows, &cfg, &sched).expect("valid input");
        // 0.625 GB done by t=0.5; parked for 1.5 s; remaining 0.625 GB
        // at 10 Gbps takes 0.5 s -> finish at 2.5 s.
        let fct = out.result.records[0].fct().expect("revived after flap");
        assert!((fct - 2.5).abs() < 1e-9, "fct = {fct}");
        assert_eq!(out.audit.parked, 1);
        assert_eq!(out.audit.revived, 1);
        assert_eq!(out.audit.violations(), 0);
        assert_eq!(out.audit.events_applied, 4); // 2 directions × down+up
    }

    /// An arrival during a partition waits parked and completes once the
    /// network heals.
    #[test]
    fn arrival_during_partition_waits_for_recovery() {
        let (g, s, core) = dumbbell();
        let flows = vec![spec(0, s[0], s[2], 1.25e9, 0.5)];
        let mut plan = crate::faults::FaultPlan::new(1);
        plan.flap(core, 0.25, Some(1.0));
        let sched = plan.compile(&g).expect("valid plan");
        let out =
            simulate_under_faults(&g, &flows, &SimConfig::default(), &sched).expect("valid input");
        // Arrives at 0.5 into a dead core, parked; core heals at 1.0;
        // 1 s of transfer -> finish 2.0, fct 1.5.
        let fct = out.result.records[0].fct().expect("must finish after heal");
        assert!((fct - 1.5).abs() < 1e-9, "fct = {fct}");
        assert_eq!(out.audit.parked, 1);
        assert_eq!(out.audit.revived, 1);
        assert_eq!(out.audit.violations(), 0);
    }

    /// A permanent (never-recovering) fault leaves the flow unfinished,
    /// matching the legacy failure semantics.
    #[test]
    fn permanent_fault_still_stalls_forever() {
        let (g, s, core) = dumbbell();
        let flows = vec![spec(0, s[0], s[2], 1.25e9, 0.0)];
        let mut plan = crate::faults::FaultPlan::new(1);
        plan.flap(core, 0.5, None);
        let sched = plan.compile(&g).expect("valid plan");
        let out =
            simulate_under_faults(&g, &flows, &SimConfig::default(), &sched).expect("valid input");
        assert_eq!(out.result.records[0].finish, None);
        assert_eq!(out.audit.parked, 1);
        assert_eq!(out.audit.revived, 0);
        assert_eq!(out.audit.violations(), 0);
    }

    /// A whole-switch flap kills every incident link and heals them all.
    #[test]
    fn switch_flap_reroutes_around_and_back() {
        // Diamond with two disjoint switch paths (as in
        // link_failure_reroutes_over_survivor).
        let mut g = Graph::new();
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        let x = g.add_node(NodeKind::CoreSwitch, "x");
        let y = g.add_node(NodeKind::CoreSwitch, "y");
        g.add_duplex_link(e0, x, 10.0);
        g.add_duplex_link(x, e1, 10.0);
        g.add_duplex_link(e0, y, 10.0);
        g.add_duplex_link(y, e1, 10.0);
        let s0 = g.add_node(NodeKind::Server, "s0");
        let s1 = g.add_node(NodeKind::Server, "s1");
        g.add_duplex_link(s0, e0, 10.0);
        g.add_duplex_link(s1, e1, 10.0);
        let flows = vec![spec(0, s0, s1, 1.25e9, 0.0)];
        let mut plan = crate::faults::FaultPlan::new(1);
        plan.switch_fault(x, 0.3, Some(0.7));
        let sched = plan.compile(&g).expect("valid plan");
        let cfg = SimConfig {
            transport: Transport::Mptcp {
                k: 2,
                coupled: true,
            },
            ..SimConfig::default()
        };
        let out = simulate_under_faults(&g, &flows, &cfg, &sched).expect("valid input");
        // NIC-limited to 10G throughout (y survives): finish at 1 s.
        let fct = out.result.records[0].fct().expect("survives via y");
        assert!((fct - 1.0).abs() < 1e-6, "fct = {fct}");
        assert_eq!(out.audit.violations(), 0);
        assert_eq!(out.audit.events_applied, 8); // 2 cables × 2 dirs × 2
    }

    /// Regression (PR 4): a degenerate NaN FCT in a hand-built record
    /// must sort last instead of panicking the comparator.
    #[test]
    fn sorted_fcts_survives_nan_records() {
        let res = SimResult {
            records: vec![
                FlowRecord {
                    id: 0,
                    start: 0.0,
                    finish: Some(2.0),
                    bytes: 1.0,
                },
                FlowRecord {
                    id: 1,
                    start: f64::NAN,
                    finish: Some(1.0), // fct = 1.0 - NaN = NaN
                    bytes: 1.0,
                },
                FlowRecord {
                    id: 2,
                    start: 0.5,
                    finish: Some(1.0),
                    bytes: 1.0,
                },
                FlowRecord {
                    id: 3,
                    start: 0.0,
                    finish: None,
                    bytes: 1.0,
                },
            ],
            series: Vec::new(),
            end_time: 2.0,
        };
        let fcts = res.sorted_fcts(); // must not panic
        assert_eq!(fcts.len(), 3);
        assert_eq!(fcts[0], 0.5);
        assert_eq!(fcts[1], 2.0);
        assert!(fcts[2].is_nan(), "NaN sorts last under total_cmp");
    }

    /// Accounting pin (PR 4): a parked-and-never-revived flow stays in
    /// `records` as incomplete — it drags `completed_fraction` and
    /// `workload_mean_rate_gbps` down but is excluded from the
    /// completed-only `mean_fct` / `mean_rate_gbps`.
    #[test]
    fn parked_never_revived_counts_as_incomplete() {
        let (g, s, core) = dumbbell();
        let flows = vec![
            spec(0, s[0], s[2], 1.25e9, 0.0), // crosses core: parked forever
            spec(1, s[2], s[3], 1.25e9, 0.0), // intra-rack: completes at 1 s
        ];
        let mut plan = crate::faults::FaultPlan::new(1);
        plan.flap(core, 0.5, None); // permanent fault
        let sched = plan.compile(&g).expect("valid plan");
        let out =
            simulate_under_faults(&g, &flows, &SimConfig::default(), &sched).expect("valid input");
        let res = &out.result;
        assert_eq!(out.audit.parked, 1);
        assert_eq!(out.audit.revived, 0);
        // The parked flow never vanishes from the records.
        assert_eq!(res.records.len(), 2);
        assert_eq!(res.records[0].finish, None);
        assert_eq!(res.completed_count(), 1);
        assert_eq!(res.unfinished_count(), 1);
        assert!((res.completed_fraction() - 0.5).abs() < 1e-12);
        // Completed-only metrics see just the intra-rack flow.
        assert!((res.mean_fct().unwrap() - 1.0).abs() < 1e-9);
        assert!((res.mean_rate_gbps().unwrap() - 10.0).abs() < 1e-9);
        // The workload-level mean counts the parked flow as zero.
        assert!((res.workload_mean_rate_gbps() - 5.0).abs() < 1e-9);
    }

    /// The traced entry point with a `NoopSink` is the plain entry
    /// point: bit-identical records, series, and end time.
    #[test]
    fn noop_traced_is_bit_identical() {
        let (g, s, core) = dumbbell();
        let flows = vec![
            spec(0, s[0], s[2], 1.25e9, 0.0),
            spec(1, s[1], s[3], 0.625e9, 0.25),
        ];
        let cfg = SimConfig {
            link_failures: vec![LinkFailure {
                time: 0.5,
                link: core,
            }],
            record_series: true,
            ..SimConfig::default()
        };
        let plain = simulate(&g, &flows, &cfg);
        let traced = try_simulate_traced(&g, &flows, &cfg, &mut NoopSink).expect("valid input");
        assert_eq!(plain.records, traced.records);
        assert_eq!(plain.series.len(), traced.series.len());
        for (a, b) in plain.series.iter().zip(&traced.series) {
            assert_eq!(a.0.to_bits(), b.0.to_bits());
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
        assert_eq!(plain.end_time.to_bits(), traced.end_time.to_bits());
    }

    /// The traced run must not perturb the simulation: same records as
    /// the un-traced run, plus a coherent event stream (starts, park /
    /// revive around the flap, one finish per completed flow, SimEnd
    /// tallies matching the result).
    #[test]
    fn trace_stream_matches_lifecycle() {
        let (g, s, core) = dumbbell();
        let flows = vec![
            spec(0, s[0], s[2], 1.25e9, 0.0),
            spec(1, s[0], s[1], 1.25e9, 0.0),
        ];
        let mut plan = crate::faults::FaultPlan::new(1);
        plan.flap(core, 0.5, Some(2.0));
        let sched = plan.compile(&g).expect("valid plan");
        let cfg = SimConfig::default();
        let plain = simulate_under_faults(&g, &flows, &cfg, &sched).expect("valid input");
        let mut ring = obs::RingSink::unbounded();
        let traced =
            simulate_under_faults_traced(&g, &flows, &cfg, &sched, &mut ring).expect("valid input");
        assert_eq!(plain.result.records, traced.result.records);
        let events = ring.into_events();
        let count = |name: &str| events.iter().filter(|e| e.name() == name).count();
        assert_eq!(count("FlowStart"), 2);
        assert_eq!(count("FlowFinish"), traced.result.completed_count());
        assert_eq!(count("FlowPark"), traced.audit.parked as usize);
        assert_eq!(count("FlowRevive"), traced.audit.revived as usize);
        assert_eq!(count("LinkDown"), 2); // core cable, both directions
        assert_eq!(count("LinkUp"), 2);
        assert_eq!(count("SimEnd"), 1);
        assert!(count("Alloc") > 0, "one Alloc per epoch");
        assert_eq!(count("Alloc"), count("LinkUtil"));
        match events.last().expect("stream not empty") {
            TraceEvent::SimEnd {
                completed,
                unfinished,
                ..
            } => {
                assert_eq!(*completed, traced.result.completed_count());
                assert_eq!(*unfinished, traced.result.unfinished_count());
            }
            other => panic!("last event must be SimEnd, got {other:?}"),
        }
        // Park / revive lifecycle of the core-crossing flow.
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::FlowPark {
                flow: 0,
                cause: ParkCause::PathLoss,
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::FlowRevive { flow: 0, .. })));
        // Every LinkUtil stays within [0, 1] utilization.
        for e in &events {
            if let TraceEvent::LinkUtil { busiest, .. } = e {
                assert!((0.0..=1.0 + 1e-9).contains(busiest), "busiest {busiest}");
            }
        }
    }

    /// Refactored engine vs the preserved pre-refactor engine: identical
    /// bits on a workload covering both transports and a mid-flight
    /// failure with reroute and with stall.
    #[test]
    fn matches_reference_engine_bitwise() {
        let (g, s, core) = dumbbell();
        let flows = vec![
            spec(0, s[0], s[2], 1.25e9, 0.0),
            spec(1, s[1], s[3], 0.625e9, 0.25),
            spec(2, s[0], s[1], 0.3e9, 0.4),
            spec(3, s[2], s[0], 0.9e9, 0.8),
        ];
        for transport in [
            Transport::TcpEcmp,
            Transport::mptcp8(),
            Transport::Mptcp {
                k: 2,
                coupled: false,
            },
        ] {
            for failures in [
                vec![],
                vec![LinkFailure {
                    time: 0.5,
                    link: core,
                }],
            ] {
                let cfg = SimConfig {
                    transport,
                    link_failures: failures,
                    record_series: true,
                };
                let new = simulate(&g, &flows, &cfg);
                let old = crate::reference::simulate_reference(&g, &flows, &cfg);
                assert_eq!(new.records, old.records, "{transport:?}");
                assert_eq!(new.series.len(), old.series.len());
                for (a, b) in new.series.iter().zip(&old.series) {
                    assert_eq!(a.0.to_bits(), b.0.to_bits(), "{transport:?}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "{transport:?}");
                }
                assert_eq!(new.end_time.to_bits(), old.end_time.to_bits());
            }
        }
    }
}
