//! Typed errors for the simulator's fallible public paths.
//!
//! The engine used to `assert!`/`unwrap()` its way through bad input
//! (NaN start times, self-flows, empty flows). Callers that construct
//! workloads programmatically get typed errors instead via
//! [`try_simulate`](crate::sim::try_simulate); the panicking wrappers
//! remain for callers whose inputs are correct by construction.

use netgraph::NodeId;

/// Why a simulation input was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// A flow's start time is NaN or infinite.
    NonFiniteStart {
        /// The offending flow's caller-chosen id.
        flow: u64,
    },
    /// A flow's byte count is not a positive finite number.
    InvalidBytes {
        /// The offending flow's caller-chosen id.
        flow: u64,
        /// The rejected byte count.
        bytes: f64,
    },
    /// A flow's source equals its destination.
    SelfFlow {
        /// The offending flow's caller-chosen id.
        flow: u64,
        /// The shared endpoint.
        node: NodeId,
    },
    /// A rate receiver handed to the allocator was malformed (empty
    /// path or non-positive fairness weight).
    InvalidAllocEntity {
        /// The allocator's typed rejection.
        source: mcf::AllocError,
    },
    /// A timed link failure's time is NaN or infinite.
    NonFiniteFailureTime,
    /// A timed link failure names a link outside the graph.
    UnknownFailedLink {
        /// The out-of-range directed-link index.
        link: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteStart { flow } => {
                write!(f, "flow {flow}: start time is not finite")
            }
            Self::InvalidBytes { flow, bytes } => {
                write!(f, "flow {flow}: byte count {bytes} is not positive finite")
            }
            Self::SelfFlow { flow, node } => {
                write!(f, "flow {flow}: source equals destination (node {node:?})")
            }
            Self::InvalidAllocEntity { source } => {
                write!(f, "allocation entity rejected: {source}")
            }
            Self::NonFiniteFailureTime => write!(f, "link failure time is not finite"),
            Self::UnknownFailedLink { link } => {
                write!(f, "link failure names unknown directed link {link}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Why a fault plan was rejected at compile time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultError {
    /// An event time is NaN, infinite, or negative.
    InvalidTime {
        /// Which field was rejected.
        which: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A recovery is scheduled at or before its failure.
    RecoveryBeforeFailure {
        /// Failure time (s).
        down_at: f64,
        /// Rejected recovery time (s).
        up_at: f64,
    },
    /// A flap names a directed link outside the graph.
    UnknownLink {
        /// The out-of-range directed-link index.
        link: usize,
    },
    /// A switch fault names a node outside the graph.
    UnknownSwitch {
        /// The out-of-range node index.
        switch: usize,
    },
    /// A control-plane probability is outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Which probability was rejected.
        which: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A control-plane delay is negative or not finite.
    InvalidDelay {
        /// Which delay was rejected.
        which: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidTime { which, value } => {
                write!(
                    f,
                    "{which}: time {value} is not a finite non-negative value"
                )
            }
            Self::RecoveryBeforeFailure { down_at, up_at } => {
                write!(f, "recovery at {up_at}s precedes failure at {down_at}s")
            }
            Self::UnknownLink { link } => write!(f, "unknown directed link {link}"),
            Self::UnknownSwitch { switch } => write!(f, "unknown switch node {switch}"),
            Self::InvalidProbability { which, value } => {
                write!(f, "{which}: probability {value} outside [0, 1]")
            }
            Self::InvalidDelay { which, value } => {
                write!(f, "{which}: delay {value} is not finite non-negative")
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render() {
        let e = SimError::SelfFlow {
            flow: 3,
            node: NodeId(5),
        };
        assert!(e.to_string().contains("flow 3"));
        let f = FaultError::InvalidProbability {
            which: "rule_fail_prob",
            value: 2.0,
        };
        assert!(f.to_string().contains("rule_fail_prob"));
    }
}
