//! Rate allocation for one simulation instant, and the persistent
//! subflow→entity bindings the event loop drives between instants.
//!
//! [`connection_rates`] is the one-shot entry point: it runs a reusable
//! [`AllocWorkspace`] over a connection list and folds subflow rates
//! back into per-connection rates. The engine itself no longer rebuilds
//! that entity list per event — it keeps a `Bindings`, which mirrors
//! the engine's `active` connection vector inside an
//! [`IncrementalAllocator`]: arrivals append, completions
//! `swap_remove`, reroutes replace in place, and fault edges that
//! reshuffle positions (park / revive / drop) resynchronize wholesale.
//! Either way the allocator sees the exact entity order the old
//! per-event rebuild produced, so rates are bit-identical.

use crate::error::SimError;
use mcf::{AllocStats, AllocWorkspace, IncrementalAllocator};
use netgraph::{Path, PathArena, PathId};

/// One active connection's path set and fairness weight model.
#[derive(Debug, Clone)]
pub struct ConnPaths {
    /// The subflow paths (1 for TCP, up to k for MPTCP).
    pub paths: Vec<Path>,
    /// Weight per subflow (1.0 uncoupled, 1/k coupled).
    pub subflow_weight: f64,
}

/// Computes per-connection rates (Gbps) under max-min fairness.
///
/// `capacity[l]` indexes directed links by `LinkId::idx()`.
///
/// Panics on a malformed connection (empty path, non-positive weight);
/// use [`try_connection_rates`] for a typed error.
pub fn connection_rates(capacity: &[f64], conns: &[ConnPaths]) -> Vec<f64> {
    try_connection_rates(capacity, conns).unwrap_or_else(|e| panic!("{e}"))
}

/// [`connection_rates`] with typed input validation instead of panics.
pub fn try_connection_rates(capacity: &[f64], conns: &[ConnPaths]) -> Result<Vec<f64>, SimError> {
    let mut ws = AllocWorkspace::new();
    let mut owner = Vec::new();
    for (ci, c) in conns.iter().enumerate() {
        for p in &c.paths {
            ws.try_push_entity(c.subflow_weight, p.links.iter().map(|l| l.idx()))
                .map_err(|source| SimError::InvalidAllocEntity { source })?;
            owner.push(ci as u32);
        }
    }
    Ok(fold_owner_rates(ws.allocate(capacity), &owner, conns.len()))
}

/// Folds flat per-subflow rates into per-connection rates by owner
/// index — the shared folding used by [`connection_rates`] and (through
/// per-group sums, which produce the same partial sums for contiguous
/// groups) by [`Bindings`].
pub(crate) fn fold_owner_rates(sub_rates: &[f64], owner: &[u32], n_conns: usize) -> Vec<f64> {
    let mut rates = vec![0.0; n_conns];
    for (&r, &ci) in sub_rates.iter().zip(owner) {
        rates[ci as usize] += r;
    }
    rates
}

/// Cumulative allocator-effort counters over a whole simulation run,
/// summed from the per-epoch [`AllocStats`].
///
/// Exposed through
/// [`simulate_with_telemetry`](crate::sim::simulate_with_telemetry) so
/// benches and perf snapshots can report how much work the incremental
/// allocator actually did versus what a from-scratch rebuild would
/// have cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocTelemetry {
    /// Allocation epochs run.
    pub epochs: u64,
    /// Progressive-filling rounds across all epochs.
    pub rounds: u64,
    /// Links re-folded because an event dirtied them.
    pub dirty_links: u64,
    /// Entities touched by dirty-link re-folds.
    pub dirty_entities: u64,
    /// Subflow rates that came out bit-identical to the previous epoch
    /// (the allocator still computed them; this counts stability, not
    /// skipped work).
    pub reused_rates: u64,
    /// Per-round link-share scans actually performed (near tier only).
    pub link_scans: u64,
    /// Link-share scans a full per-round sweep would have performed.
    pub link_scans_naive: u64,
}

impl AllocTelemetry {
    /// Folds one epoch's counters into the running totals.
    pub fn absorb(&mut self, s: &AllocStats) {
        self.epochs += 1;
        self.rounds += u64::from(s.rounds);
        self.dirty_links += u64::from(s.dirty_links);
        self.dirty_entities += u64::from(s.dirty_entities);
        self.reused_rates += u64::from(s.reused_rates);
        self.link_scans += s.link_scans;
        self.link_scans_naive += s.link_scans_naive;
    }

    /// Fraction of per-round link scans the two-tier partition skipped
    /// (0.0 when nothing ran).
    pub fn scan_savings(&self) -> f64 {
        if self.link_scans_naive == 0 {
            0.0
        } else {
            1.0 - (self.link_scans as f64 / self.link_scans_naive as f64)
        }
    }

    /// Exports the counters into an [`obs::Metrics`] registry under the
    /// `alloc.` namespace, plus the derived `alloc.scan_savings` gauge,
    /// so allocator effort shows up next to the engine's other
    /// observability instruments.
    pub fn export(&self, m: &mut obs::Metrics) {
        m.add("alloc.epochs", self.epochs);
        m.add("alloc.rounds", self.rounds);
        m.add("alloc.dirty_links", self.dirty_links);
        m.add("alloc.dirty_entities", self.dirty_entities);
        m.add("alloc.reused_rates", self.reused_rates);
        m.add("alloc.link_scans", self.link_scans);
        m.add("alloc.link_scans_naive", self.link_scans_naive);
        m.gauge("alloc.scan_savings", self.scan_savings());
    }
}

/// Persistent subflow→entity bindings between the engine's `active`
/// connection vector and an [`IncrementalAllocator`].
///
/// Invariant: binding position `i` always corresponds to `active[i]`.
/// The engine maintains it by mirroring every mutation of `active`
/// (push / `swap_remove`) with the matching call here; fault edges that
/// remove or reshuffle several connections at once call
/// [`resync`](Self::resync) instead, which rebuilds the bindings from
/// the vector itself (full invalidation — correct by construction, and
/// rare: it only runs on failure-epoch or recovery edges).
#[derive(Debug, Default)]
pub(crate) struct Bindings {
    alloc: IncrementalAllocator,
}

impl Bindings {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total subflows currently bound.
    pub fn num_subflows(&self) -> usize {
        self.alloc.num_entities()
    }

    /// Binds a newly-arrived connection at the end of the order.
    pub fn push(&mut self, arena: &PathArena, path_ids: &[PathId], subflow_weight: f64) {
        self.alloc.push_group(
            subflow_weight,
            path_ids
                .iter()
                .map(|&pid| arena.links(pid).iter().map(|l| l.idx())),
        );
    }

    /// Unbinds the connection at position `i`, moving the last into its
    /// place — the mirror of `active.swap_remove(i)`.
    pub fn swap_remove(&mut self, i: usize) {
        self.alloc.swap_remove_group(i);
    }

    /// Rebinds connection `i` to a new path set (a reroute that kept
    /// the connection's position).
    pub fn replace(&mut self, arena: &PathArena, i: usize, path_ids: &[PathId], weight: f64) {
        self.alloc.replace_group(
            i,
            weight,
            path_ids
                .iter()
                .map(|&pid| arena.links(pid).iter().map(|l| l.idx())),
        );
    }

    /// Rebuilds all bindings from scratch in iteration order — the
    /// invalidation path for fault edges (park / revive / stall-drop)
    /// that change several positions at once.
    pub fn resync<'a>(
        &mut self,
        arena: &PathArena,
        conns: impl Iterator<Item = (&'a [PathId], f64)>,
    ) {
        self.alloc.clear();
        for (path_ids, weight) in conns {
            self.push(arena, path_ids, weight);
        }
    }

    /// Runs the allocation epoch under the given capacities.
    pub fn allocate(&mut self, capacity: &[f64]) {
        self.alloc.allocate(capacity);
    }

    /// Connection `i`'s rate: its subflow rates folded in subflow
    /// order (the same partial sums as the flat owner fold).
    pub fn conn_rate(&self, i: usize) -> f64 {
        self.alloc.group_rate_sum(self.alloc.group_at(i))
    }

    /// Connection `i`'s per-subflow rates, in path order.
    pub fn subflow_rates(&self, i: usize) -> &[f64] {
        self.alloc.group_rates(self.alloc.group_at(i))
    }

    /// Filling rounds of the most recent epoch.
    pub fn rounds(&self) -> u32 {
        self.alloc.stats().rounds
    }

    /// Allocator observability counters for the most recent epoch.
    pub fn stats(&self) -> &AllocStats {
        self.alloc.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Graph, NodeKind};

    /// Two disjoint 10G paths; MPTCP uses both, TCP only one.
    fn two_path_net() -> (Graph, Vec<Path>) {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let x = g.add_node(NodeKind::GenericSwitch, "x");
        let y = g.add_node(NodeKind::GenericSwitch, "y");
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, a, 40.0);
        g.add_duplex_link(a, x, 10.0);
        g.add_duplex_link(a, y, 10.0);
        g.add_duplex_link(x, b, 10.0);
        g.add_duplex_link(y, b, 10.0);
        g.add_duplex_link(b, t, 40.0);
        let p1 = Path::from_nodes(&g, &[s, a, x, b, t]).unwrap();
        let p2 = Path::from_nodes(&g, &[s, a, y, b, t]).unwrap();
        (g, vec![p1, p2])
    }

    #[test]
    fn mptcp_fills_disjoint_paths_even_when_coupled() {
        let (g, paths) = two_path_net();
        let conns = vec![ConnPaths {
            paths,
            subflow_weight: 0.5, // coupled, k = 2
        }];
        let rates = connection_rates(&g.capacities(), &conns);
        assert!((rates[0] - 20.0).abs() < 1e-9, "got {}", rates[0]);
    }

    #[test]
    fn coupled_mptcp_takes_one_share_at_shared_bottleneck() {
        // MPTCP (2 subflows over the same pair of paths) vs two TCP flows
        // each pinned to one path: coupled weights give each path
        // TCP 2/3... with weight 1/2 vs 1: shares are 10*(1/1.5) etc.
        let (g, paths) = two_path_net();
        let conns = vec![
            ConnPaths {
                paths: paths.clone(),
                subflow_weight: 0.5,
            },
            ConnPaths {
                paths: vec![paths[0].clone()],
                subflow_weight: 1.0,
            },
            ConnPaths {
                paths: vec![paths[1].clone()],
                subflow_weight: 1.0,
            },
        ];
        let rates = connection_rates(&g.capacities(), &conns);
        // Each 10G path splits 1:0.5 between TCP and the MPTCP subflow.
        assert!((rates[1] - 20.0 / 3.0).abs() < 1e-6, "tcp got {}", rates[1]);
        assert!((rates[2] - 20.0 / 3.0).abs() < 1e-6);
        assert!(
            (rates[0] - 2.0 * 10.0 / 3.0).abs() < 1e-6,
            "mptcp got {}",
            rates[0]
        );
        // Uncoupled would have grabbed half of each path.
        let conns_unc = vec![
            ConnPaths {
                paths: paths.clone(),
                subflow_weight: 1.0,
            },
            ConnPaths {
                paths: vec![paths[0].clone()],
                subflow_weight: 1.0,
            },
            ConnPaths {
                paths: vec![paths[1].clone()],
                subflow_weight: 1.0,
            },
        ];
        let r2 = connection_rates(&g.capacities(), &conns_unc);
        assert!(r2[0] > rates[0]);
    }

    #[test]
    fn empty_input() {
        let (g, _) = two_path_net();
        assert!(connection_rates(&g.capacities(), &[]).is_empty());
    }

    #[test]
    fn malformed_conns_get_typed_errors() {
        let (g, paths) = two_path_net();
        let bad_weight = vec![ConnPaths {
            paths: paths.clone(),
            subflow_weight: 0.0,
        }];
        assert!(matches!(
            try_connection_rates(&g.capacities(), &bad_weight),
            Err(SimError::InvalidAllocEntity {
                source: mcf::AllocError::NonPositiveWeight { .. }
            })
        ));
        let no_paths = vec![ConnPaths {
            paths: Vec::new(),
            subflow_weight: 1.0,
        }];
        // A connection with no subflows pushes no entity at all: the
        // allocator sees an empty set and allocates it rate zero.
        let rates = connection_rates(&g.capacities(), &no_paths);
        assert_eq!(rates, vec![0.0]);
    }

    #[test]
    fn bindings_mirror_one_shot_allocation() {
        let (g, paths) = two_path_net();
        let caps = g.capacities();
        let mut arena = PathArena::new();
        let pids: Vec<PathId> = arena.intern_all(&paths);
        let conns = vec![
            ConnPaths {
                paths: paths.clone(),
                subflow_weight: 0.5,
            },
            ConnPaths {
                paths: vec![paths[0].clone()],
                subflow_weight: 1.0,
            },
        ];
        let want = connection_rates(&caps, &conns);
        let mut b = Bindings::new();
        b.push(&arena, &pids, 0.5);
        b.push(&arena, &pids[..1], 1.0);
        b.allocate(&caps);
        assert_eq!(b.conn_rate(0).to_bits(), want[0].to_bits());
        assert_eq!(b.conn_rate(1).to_bits(), want[1].to_bits());
        assert_eq!(b.num_subflows(), 3);
        assert!(b.rounds() >= 1);
        // swap_remove + resync keep positions aligned with the mirror.
        b.swap_remove(0);
        b.allocate(&caps);
        let solo = connection_rates(
            &caps,
            &[ConnPaths {
                paths: vec![paths[0].clone()],
                subflow_weight: 1.0,
            }],
        );
        assert_eq!(b.conn_rate(0).to_bits(), solo[0].to_bits());
        b.resync(&arena, [(pids.as_slice(), 0.5)].into_iter());
        b.allocate(&caps);
        assert_eq!(b.subflow_rates(0).len(), 2);
        assert!(b.stats().dirty_links > 0);
    }
}
