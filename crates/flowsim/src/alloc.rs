//! Rate allocation for one simulation instant.
//!
//! Thin wrapper over [`mcf::maxmin::weighted_max_min`] that builds the
//! per-subflow entity list from connection path sets and folds subflow
//! rates back into per-connection rates.

use mcf::maxmin::{weighted_max_min, Entity};
use netgraph::Path;

/// One active connection's path set and fairness weight model.
#[derive(Debug, Clone)]
pub struct ConnPaths {
    /// The subflow paths (1 for TCP, up to k for MPTCP).
    pub paths: Vec<Path>,
    /// Weight per subflow (1.0 uncoupled, 1/k coupled).
    pub subflow_weight: f64,
}

/// Computes per-connection rates (Gbps) under max-min fairness.
///
/// `capacity[l]` indexes directed links by `LinkId::idx()`.
pub fn connection_rates(capacity: &[f64], conns: &[ConnPaths]) -> Vec<f64> {
    let mut entities = Vec::new();
    let mut owner = Vec::new();
    for (ci, c) in conns.iter().enumerate() {
        for p in &c.paths {
            entities.push(Entity {
                weight: c.subflow_weight,
                links: p.links.iter().map(|l| l.idx()).collect(),
            });
            owner.push(ci);
        }
    }
    let sub_rates = weighted_max_min(capacity, &entities);
    let mut rates = vec![0.0; conns.len()];
    for (r, &ci) in sub_rates.iter().zip(&owner) {
        rates[ci] += r;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Graph, NodeKind};

    /// Two disjoint 10G paths; MPTCP uses both, TCP only one.
    fn two_path_net() -> (Graph, Vec<Path>) {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let x = g.add_node(NodeKind::GenericSwitch, "x");
        let y = g.add_node(NodeKind::GenericSwitch, "y");
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, a, 40.0);
        g.add_duplex_link(a, x, 10.0);
        g.add_duplex_link(a, y, 10.0);
        g.add_duplex_link(x, b, 10.0);
        g.add_duplex_link(y, b, 10.0);
        g.add_duplex_link(b, t, 40.0);
        let p1 = Path::from_nodes(&g, &[s, a, x, b, t]).unwrap();
        let p2 = Path::from_nodes(&g, &[s, a, y, b, t]).unwrap();
        (g, vec![p1, p2])
    }

    #[test]
    fn mptcp_fills_disjoint_paths_even_when_coupled() {
        let (g, paths) = two_path_net();
        let conns = vec![ConnPaths {
            paths,
            subflow_weight: 0.5, // coupled, k = 2
        }];
        let rates = connection_rates(&g.capacities(), &conns);
        assert!((rates[0] - 20.0).abs() < 1e-9, "got {}", rates[0]);
    }

    #[test]
    fn coupled_mptcp_takes_one_share_at_shared_bottleneck() {
        // MPTCP (2 subflows over the same pair of paths) vs two TCP flows
        // each pinned to one path: coupled weights give each path
        // TCP 2/3... with weight 1/2 vs 1: shares are 10*(1/1.5) etc.
        let (g, paths) = two_path_net();
        let conns = vec![
            ConnPaths {
                paths: paths.clone(),
                subflow_weight: 0.5,
            },
            ConnPaths {
                paths: vec![paths[0].clone()],
                subflow_weight: 1.0,
            },
            ConnPaths {
                paths: vec![paths[1].clone()],
                subflow_weight: 1.0,
            },
        ];
        let rates = connection_rates(&g.capacities(), &conns);
        // Each 10G path splits 1:0.5 between TCP and the MPTCP subflow.
        assert!((rates[1] - 20.0 / 3.0).abs() < 1e-6, "tcp got {}", rates[1]);
        assert!((rates[2] - 20.0 / 3.0).abs() < 1e-6);
        assert!(
            (rates[0] - 2.0 * 10.0 / 3.0).abs() < 1e-6,
            "mptcp got {}",
            rates[0]
        );
        // Uncoupled would have grabbed half of each path.
        let conns_unc = vec![
            ConnPaths {
                paths: paths.clone(),
                subflow_weight: 1.0,
            },
            ConnPaths {
                paths: vec![paths[0].clone()],
                subflow_weight: 1.0,
            },
            ConnPaths {
                paths: vec![paths[1].clone()],
                subflow_weight: 1.0,
            },
        ];
        let r2 = connection_rates(&g.capacities(), &conns_unc);
        assert!(r2[0] > rates[0]);
    }

    #[test]
    fn empty_input() {
        let (g, _) = two_path_net();
        assert!(connection_rates(&g.capacities(), &[]).is_empty());
    }
}
