//! The fault plane: a seeded, deterministic fault-injection DSL.
//!
//! The paper's §4.3 conversion procedure and the §4.2.1 resilience
//! footnote both hinge on the network staying operable while things go
//! wrong. [`FaultPlan`] is the substrate for asking that question: it
//! describes timed link flaps (fail **and recover**), whole-switch
//! down/up events, stuck-at converter faults, and control-plane fault
//! probabilities, all derived deterministically from a seed — the same
//! seed always produces bit-identical schedules, so every experiment
//! cell is reproducible.
//!
//! A plan is *compiled* against a concrete graph into a
//! [`FaultSchedule`]: a time-sorted list of directed-link [`LinkEvent`]s
//! the simulation engine replays (cables expand to both directions,
//! switches to every incident directed link). Stuck-converter entries
//! are not timed events — a latched crosspoint is a property of the
//! instantiated topology — so they are carried symbolically and applied
//! by `ft_bench` through `flat_tree`'s `instantiate_with_overrides`
//! hook. Control-plane faults ([`ControlFaults`]) are consumed by the
//! `control` crate's staged conversion state machine.
//!
//! Semantics at equal timestamps: down events apply before up events,
//! and the last write to a link wins (a switch-up event resurrects an
//! incident link even if a separate flap downed it — document your
//! plans accordingly).

use crate::error::FaultError;
use netgraph::{Graph, LinkId, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A timed state change of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEvent {
    /// Event time in seconds.
    pub time: f64,
    /// The directed link affected.
    pub link: LinkId,
    /// `true` = the link comes (back) up, `false` = it goes down.
    pub up: bool,
}

/// A timed fail/recover cycle of one duplex cable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// Either direction of the cable.
    pub link: LinkId,
    /// When the cable dies (s).
    pub down_at: f64,
    /// When it comes back (`None` = permanent failure).
    pub up_at: Option<f64>,
}

/// A timed fail/recover cycle of a whole switch: every incident
/// directed link dies with it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchFault {
    /// The switch node.
    pub switch: NodeId,
    /// When the switch dies (s).
    pub down_at: f64,
    /// When it comes back (`None` = permanent failure).
    pub up_at: Option<f64>,
}

/// A converter-switch crosspoint latched in a configuration, mirroring
/// `flat_tree::ConverterConfig` without a dependency on that crate.
/// `ft_bench` maps these onto `instantiate_with_overrides`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StuckConfig {
    /// Latched in the Clos wiring (a1/b1).
    Default,
    /// Latched in the local-mode wiring (a2/b2).
    Local,
    /// Latched in the peer-wise side wiring (b3, 6-port only).
    Side,
    /// Latched in the crossed side wiring (b4, 6-port only).
    Cross,
}

/// A converter switch stuck at a configuration (§3.6 failure mode: a
/// failed circuit switch latches its crosspoints).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StuckConverter {
    /// Converter id in `flat_tree`'s layout order.
    pub converter: usize,
    /// The latched configuration.
    pub config: StuckConfig,
}

/// Control-plane fault probabilities, consumed by the `control` crate's
/// staged conversion state machine. All probabilities are per attempt
/// and drawn from deterministic per-stage streams seeded by `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControlFaults {
    /// Seed of the control-plane fault streams.
    pub seed: u64,
    /// Probability that one OCS reconfiguration attempt fails outright.
    pub ocs_fail_prob: f64,
    /// Probability that one OCS reconfiguration attempt hangs until the
    /// stage timeout.
    pub ocs_timeout_prob: f64,
    /// Probability that installing/deleting one OpenFlow rule fails
    /// (failed rules are retried on the next stage attempt).
    pub rule_fail_prob: f64,
    /// Probability that a controller shard crashes during one stage
    /// attempt (the attempt makes no progress).
    pub shard_crash_prob: f64,
    /// Failover delay after a shard crash (ms).
    pub shard_recover_ms: f64,
}

impl ControlFaults {
    /// No control-plane faults: every conversion commits first try.
    pub fn none() -> Self {
        Self {
            seed: 0,
            ocs_fail_prob: 0.0,
            ocs_timeout_prob: 0.0,
            rule_fail_prob: 0.0,
            shard_crash_prob: 0.0,
            shard_recover_ms: 0.0,
        }
    }

    /// Whether every fault probability is zero.
    pub fn is_quiet(&self) -> bool {
        self.ocs_fail_prob == 0.0
            && self.ocs_timeout_prob == 0.0
            && self.rule_fail_prob == 0.0
            && self.shard_crash_prob == 0.0
    }

    /// Validates that every probability is a finite value in `[0, 1]`
    /// and the recovery delay is finite and non-negative.
    pub fn validate(&self) -> Result<(), FaultError> {
        for (name, p) in [
            ("ocs_fail_prob", self.ocs_fail_prob),
            ("ocs_timeout_prob", self.ocs_timeout_prob),
            ("rule_fail_prob", self.rule_fail_prob),
            ("shard_crash_prob", self.shard_crash_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(FaultError::InvalidProbability {
                    which: name,
                    value: p,
                });
            }
        }
        if !self.shard_recover_ms.is_finite() || self.shard_recover_ms < 0.0 {
            return Err(FaultError::InvalidDelay {
                which: "shard_recover_ms",
                value: self.shard_recover_ms,
            });
        }
        Ok(())
    }
}

impl Default for ControlFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// A deterministic multi-layer fault plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of every random draw the plan makes.
    pub seed: u64,
    /// Timed cable fail/recover cycles.
    pub link_flaps: Vec<LinkFlap>,
    /// Timed whole-switch fail/recover cycles.
    pub switch_faults: Vec<SwitchFault>,
    /// Converters latched at a fixed configuration (applied at topology
    /// instantiation, not as timed events).
    pub stuck_converters: Vec<StuckConverter>,
    /// Control-plane fault probabilities.
    pub control: ControlFaults,
}

impl FaultPlan {
    /// An empty plan: no data-plane events, quiet control plane.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            link_flaps: Vec::new(),
            switch_faults: Vec::new(),
            stuck_converters: Vec::new(),
            control: ControlFaults {
                seed,
                ..ControlFaults::none()
            },
        }
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.link_flaps.is_empty()
            && self.switch_faults.is_empty()
            && self.stuck_converters.is_empty()
            && self.control.is_quiet()
    }

    /// Adds one cable flap (`up_at = None` for a permanent failure).
    pub fn flap(&mut self, link: LinkId, down_at: f64, up_at: Option<f64>) -> &mut Self {
        self.link_flaps.push(LinkFlap {
            link,
            down_at,
            up_at,
        });
        self
    }

    /// Adds one whole-switch fail/recover cycle.
    pub fn switch_fault(&mut self, switch: NodeId, down_at: f64, up_at: Option<f64>) -> &mut Self {
        self.switch_faults.push(SwitchFault {
            switch,
            down_at,
            up_at,
        });
        self
    }

    /// Latches one converter at a configuration.
    pub fn stuck_converter(&mut self, converter: usize, config: StuckConfig) -> &mut Self {
        self.stuck_converters
            .push(StuckConverter { converter, config });
        self
    }

    /// Draws random cable flaps: a `fraction` of `cables` (rounded down)
    /// flaps once, going down at a uniform time in `window` and staying
    /// down for `mean_down_s` scaled by a uniform factor in `[0.5, 1.5)`.
    /// Fully determined by the plan seed — the same seed, cable list and
    /// parameters always produce the identical flap set.
    pub fn random_link_flaps(
        &mut self,
        cables: &[LinkId],
        fraction: f64,
        mean_down_s: f64,
        window: (f64, f64),
    ) -> &mut Self {
        assert!(
            window.0 < window.1,
            "flap window must be non-empty: {window:?}"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x666c_6170_735f_7631);
        let n = (cables.len() as f64 * fraction) as usize;
        // Deterministic choice without replacement: shuffle a copy.
        let mut chosen: Vec<LinkId> = cables.to_vec();
        rand::seq::SliceRandom::shuffle(&mut chosen[..], &mut rng);
        chosen.truncate(n);
        for link in chosen {
            let down_at = rng.gen_range(window.0..window.1);
            let down_for = mean_down_s * rng.gen_range(0.5..1.5);
            self.link_flaps.push(LinkFlap {
                link,
                down_at,
                up_at: Some(down_at + down_for),
            });
        }
        self
    }

    /// Compiles the plan against a graph into a time-sorted directed-link
    /// event schedule. Cable flaps expand to both directions; switch
    /// faults to every incident directed link. Validates that every
    /// time is finite and non-negative, recoveries follow their
    /// failures, and every link/switch id exists in `g`.
    pub fn compile(&self, g: &Graph) -> Result<FaultSchedule, FaultError> {
        self.control.validate()?;
        let mut events: Vec<LinkEvent> = Vec::new();
        let mut push_cable = |link: LinkId, time: f64, up: bool| {
            events.push(LinkEvent { time, link, up });
            if let Some(rev) = g.link(link).reverse {
                events.push(LinkEvent {
                    time,
                    link: rev,
                    up,
                });
            }
        };
        for f in &self.link_flaps {
            check_time("link flap down_at", f.down_at)?;
            if f.link.idx() >= g.link_count() {
                return Err(FaultError::UnknownLink { link: f.link.idx() });
            }
            push_cable(f.link, f.down_at, false);
            if let Some(up_at) = f.up_at {
                check_time("link flap up_at", up_at)?;
                if up_at <= f.down_at {
                    return Err(FaultError::RecoveryBeforeFailure {
                        down_at: f.down_at,
                        up_at,
                    });
                }
                push_cable(f.link, up_at, true);
            }
        }
        for s in &self.switch_faults {
            check_time("switch fault down_at", s.down_at)?;
            if s.switch.idx() >= g.node_count() {
                return Err(FaultError::UnknownSwitch {
                    switch: s.switch.idx(),
                });
            }
            let incident: Vec<LinkId> = g
                .link_ids()
                .filter(|&l| {
                    let info = g.link(l);
                    info.src == s.switch || info.dst == s.switch
                })
                .collect();
            if let Some(up_at) = s.up_at {
                check_time("switch fault up_at", up_at)?;
                if up_at <= s.down_at {
                    return Err(FaultError::RecoveryBeforeFailure {
                        down_at: s.down_at,
                        up_at,
                    });
                }
            }
            for l in incident {
                events.push(LinkEvent {
                    time: s.down_at,
                    link: l,
                    up: false,
                });
                if let Some(up_at) = s.up_at {
                    events.push(LinkEvent {
                        time: up_at,
                        link: l,
                        up: true,
                    });
                }
            }
        }
        // Total deterministic order: time, then down-before-up, then link.
        events.sort_by(|a, b| {
            a.time
                .total_cmp(&b.time)
                .then(a.up.cmp(&b.up))
                .then(a.link.idx().cmp(&b.link.idx()))
        });
        Ok(FaultSchedule { events })
    }
}

fn check_time(which: &'static str, t: f64) -> Result<(), FaultError> {
    if !t.is_finite() || t < 0.0 {
        return Err(FaultError::InvalidTime { which, value: t });
    }
    Ok(())
}

/// A compiled, time-sorted directed-link event schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Events sorted by `(time, down-before-up, link)`.
    pub events: Vec<LinkEvent>,
}

impl FaultSchedule {
    /// An empty schedule (no events; the engine is byte-identical to a
    /// fault-free run).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether the schedule carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Invariant-auditor tallies from a faulted simulation.
///
/// The two audited invariants:
/// 1. **No rate over a dead link** — at every allocation instant, no
///    subflow carries positive rate over a link that is down
///    ([`AuditReport::rate_on_down_link`] counts violations).
/// 2. **Routing-state consistency after every fault event** — after the
///    engine processes a fault event, every connection it kept active
///    still has at least one fully-alive path
///    ([`AuditReport::dead_active_conn`] counts violations).
///
/// [`AuditReport::parked`] and [`AuditReport::revived`] are not
/// violations: they count graceful degradation — connections that lost
/// all paths and were parked, and parked connections that re-routed
/// after a recovery event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AuditReport {
    /// `(instant, subflow)` rate checks performed.
    pub checks: usize,
    /// Violations of invariant 1: positive rate over a down link.
    pub rate_on_down_link: usize,
    /// Violations of invariant 2: an active connection with no alive
    /// path after a fault event.
    pub dead_active_conn: usize,
    /// Fault events the engine applied.
    pub events_applied: usize,
    /// Connections parked (all paths lost) over the run.
    pub parked: usize,
    /// Parked connections revived by a recovery event.
    pub revived: usize,
}

impl AuditReport {
    /// Total invariant violations (zero on a correct engine).
    pub fn violations(&self) -> usize {
        self.rate_on_down_link + self.dead_active_conn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeKind;

    fn line() -> (Graph, NodeId, LinkId, LinkId) {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::EdgeSwitch, "a");
        let b = g.add_node(NodeKind::EdgeSwitch, "b");
        let c = g.add_node(NodeKind::EdgeSwitch, "c");
        let (ab, _) = g.add_duplex_link(a, b, 10.0);
        let (bc, _) = g.add_duplex_link(b, c, 10.0);
        (g, b, ab, bc)
    }

    #[test]
    fn flap_expands_to_both_directions_in_order() {
        let (g, _, ab, _) = line();
        let mut plan = FaultPlan::new(1);
        plan.flap(ab, 1.0, Some(2.0));
        let sched = plan.compile(&g).unwrap();
        assert_eq!(sched.events.len(), 4);
        assert!(!sched.events[0].up && !sched.events[1].up);
        assert!(sched.events[2].up && sched.events[3].up);
        assert_eq!(sched.events[0].time, 1.0);
        assert_eq!(sched.events[2].time, 2.0);
    }

    #[test]
    fn switch_fault_downs_every_incident_directed_link() {
        let (g, b, _, _) = line();
        let mut plan = FaultPlan::new(1);
        plan.switch_fault(b, 0.5, None);
        let sched = plan.compile(&g).unwrap();
        // b touches two cables = 4 directed links, down only.
        assert_eq!(sched.events.len(), 4);
        assert!(sched.events.iter().all(|e| !e.up && e.time == 0.5));
    }

    #[test]
    fn same_seed_same_schedule() {
        let (g, _, ab, bc) = line();
        let cables = vec![ab, bc];
        let build = || {
            let mut p = FaultPlan::new(42);
            p.random_link_flaps(&cables, 1.0, 0.5, (0.0, 3.0));
            p.compile(&g).unwrap()
        };
        assert_eq!(build(), build());
        let mut other = FaultPlan::new(43);
        other.random_link_flaps(&cables, 1.0, 0.5, (0.0, 3.0));
        assert_ne!(build(), other.compile(&g).unwrap());
    }

    #[test]
    fn compile_rejects_bad_plans() {
        let (g, _, ab, _) = line();
        let mut p = FaultPlan::new(1);
        p.flap(ab, 2.0, Some(1.0));
        assert!(matches!(
            p.compile(&g),
            Err(FaultError::RecoveryBeforeFailure { .. })
        ));
        let mut p = FaultPlan::new(1);
        p.flap(LinkId(999), 1.0, None);
        assert!(matches!(p.compile(&g), Err(FaultError::UnknownLink { .. })));
        let mut p = FaultPlan::new(1);
        p.flap(ab, f64::NAN, None);
        assert!(matches!(p.compile(&g), Err(FaultError::InvalidTime { .. })));
        let mut p = FaultPlan::new(1);
        p.control.rule_fail_prob = 1.5;
        assert!(matches!(
            p.compile(&g),
            Err(FaultError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn empty_plan_compiles_to_empty_schedule() {
        let (g, _, _, _) = line();
        let plan = FaultPlan::new(7);
        assert!(plan.is_empty());
        assert!(plan.compile(&g).unwrap().is_empty());
    }
}
