//! Discrete-event **fluid** flow simulator.
//!
//! The paper evaluates transmission performance with the htsim MPTCP
//! packet simulator. Packet simulation at data center scale is expensive
//! and its artifacts (RTT, window dynamics) are not what the paper's
//! comparisons hinge on; we use the standard fluid abstraction instead:
//! at every flow arrival or completion, link bandwidth is re-divided
//! among the active flows by (weighted) **max-min fairness** — the
//! allocation long-lived TCP converges to — and flows drain their
//! remaining bytes at the allocated rate until the next event.
//!
//! Transport models:
//!
//! * [`Transport::TcpEcmp`] — one path per flow, chosen by a
//!   deterministic header hash among the equal-cost shortest paths (the
//!   Clos baseline of §5.2). Weight 1.
//! * [`Transport::Mptcp`] — k subflows over the k-shortest paths
//!   (§4.1/§4.2). `coupled` (default, approximating LIA) gives each
//!   subflow weight `1/k`, so a connection takes a single fair share at a
//!   shared bottleneck but still fills disjoint paths; uncoupled gives
//!   every subflow full weight.
//!
//! Failure injection: timed link failures drop the affected subflows and
//! re-route connections over the surviving k-shortest paths, exercising
//! the §4.2.1 footnote's resilience claim.

//!
//! # Engine layout
//!
//! The event loop ([`sim::simulate_with_provider`]) works entirely on
//! interned paths: routes come from a [`provider::PathProvider`] as
//! [`netgraph::PathId`]s in a per-run [`netgraph::PathArena`], failures
//! are a dense [`failures::FailedLinks`] set whose *epoch* invalidates
//! the provider's route cache, and rate allocation reuses one
//! [`mcf::AllocWorkspace`] across events. The pre-refactor engine is
//! preserved in [`reference`] as the behavioral oracle: both engines
//! produce bit-identical [`SimResult`]s.

pub mod alloc;
pub mod failures;
pub mod provider;
pub mod reference;
pub mod sim;

pub use failures::FailedLinks;
pub use provider::{EcmpProvider, MptcpProvider, PathProvider, RoutedConn};
pub use sim::{
    simulate, simulate_with_provider, FlowRecord, FlowSpec, LinkFailure, SimConfig, SimResult,
    Transport,
};
