//! Discrete-event **fluid** flow simulator.
//!
//! The paper evaluates transmission performance with the htsim MPTCP
//! packet simulator. Packet simulation at data center scale is expensive
//! and its artifacts (RTT, window dynamics) are not what the paper's
//! comparisons hinge on; we use the standard fluid abstraction instead:
//! at every flow arrival or completion, link bandwidth is re-divided
//! among the active flows by (weighted) **max-min fairness** — the
//! allocation long-lived TCP converges to — and flows drain their
//! remaining bytes at the allocated rate until the next event.
//!
//! Transport models:
//!
//! * [`Transport::TcpEcmp`] — one path per flow, chosen by a
//!   deterministic header hash among the equal-cost shortest paths (the
//!   Clos baseline of §5.2). Weight 1.
//! * [`Transport::Mptcp`] — k subflows over the k-shortest paths
//!   (§4.1/§4.2). `coupled` (default, approximating LIA) gives each
//!   subflow weight `1/k`, so a connection takes a single fair share at a
//!   shared bottleneck but still fills disjoint paths; uncoupled gives
//!   every subflow full weight.
//!
//! Failure injection: timed link failures drop the affected subflows and
//! re-route connections over the surviving k-shortest paths, exercising
//! the §4.2.1 footnote's resilience claim.

//!
//! # Engine layout
//!
//! The event loop ([`sim::simulate_with_provider`]) works entirely on
//! interned paths: routes come from a [`provider::PathProvider`] as
//! [`netgraph::PathId`]s in a per-run [`netgraph::PathArena`], failures
//! are a dense [`failures::FailedLinks`] set whose *epoch* invalidates
//! the provider's route cache, and rate allocation reuses one
//! [`mcf::AllocWorkspace`] across events. The pre-refactor engine is
//! preserved in [`mod@reference`] as the behavioral oracle: both engines
//! produce bit-identical [`SimResult`]s.

//!
//! # Fault plane
//!
//! [`faults`] is the fault-injection substrate: a seeded, deterministic
//! [`faults::FaultPlan`] (link flaps that fail **and recover**, whole-
//! switch down/up, stuck converters, control-plane fault rates) compiles
//! against a graph into a [`faults::FaultSchedule`] that
//! [`sim::simulate_under_faults`] replays, parking connections that lose
//! every path and reviving them on recovery. The run's invariant auditor
//! ([`faults::AuditReport`]) certifies that no flow ever carried rate
//! over a dead link and that routing state stayed consistent after every
//! fault event.

//!
//! # Observability
//!
//! Every entry point has a `*_traced` twin taking a
//! [`TraceSink`] that receives the flow lifecycle
//! (start / reroute / park / revive / finish), per-epoch allocator and
//! link-utilization events, and applied fault events. The plain entry
//! points pass [`NoopSink`]; its emission guards compile away, so the
//! un-traced engine is bit-identical and pays nothing.

pub mod alloc;
pub mod error;
pub mod failures;
pub mod faults;
pub mod provider;
pub mod reference;
pub mod sim;

pub use alloc::AllocTelemetry;
pub use error::{FaultError, SimError};
pub use failures::FailedLinks;
pub use faults::{AuditReport, ControlFaults, FaultPlan, FaultSchedule, LinkEvent, StuckConfig};
pub use provider::{EcmpProvider, MptcpProvider, PathProvider, RoutedConn};
pub use sim::{
    simulate, simulate_under_faults, simulate_under_faults_traced,
    simulate_under_faults_with_provider, simulate_under_faults_with_provider_traced,
    simulate_with_provider, simulate_with_telemetry, try_simulate, try_simulate_traced,
    try_simulate_with_provider, try_simulate_with_provider_traced, FaultSimOutcome, FlowRecord,
    FlowSpec, LinkFailure, SimConfig, SimResult, Transport,
};
// Re-exported so traced callers need not depend on `obs` directly.
pub use obs::{JsonlSink, NoopSink, ParkCause, RingSink, TraceEvent, TraceSink};
