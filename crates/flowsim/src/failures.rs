//! Dense failed-link state with an invalidation epoch.
//!
//! The event loop used to track failures in a `HashSet<usize>` probed
//! once per link per path per event. [`FailedLinks`] replaces it with a
//! `Vec<bool>` keyed by `LinkId::idx()` — O(1) with no hashing — and
//! carries a monotonically increasing **epoch** that bumps whenever the
//! failure set changes. Route caches key their validity on the epoch:
//! any cached answer computed at epoch `e` remains exact while the epoch
//! stays `e`, because routing is a pure function of the graph and the
//! failure set.

use netgraph::LinkId;

/// The set of currently-failed directed links.
#[derive(Debug, Clone)]
pub struct FailedLinks {
    down: Vec<bool>,
    count: usize,
    epoch: u64,
}

impl FailedLinks {
    /// No failures, epoch 0, sized for a graph with `link_count`
    /// directed links.
    pub fn new(link_count: usize) -> Self {
        Self {
            down: vec![false; link_count],
            count: 0,
            epoch: 0,
        }
    }

    /// Marks a directed link as failed. Bumps the epoch (only) when the
    /// link was previously up; returns whether it was newly failed.
    pub fn fail(&mut self, l: LinkId) -> bool {
        let slot = &mut self.down[l.idx()];
        if *slot {
            return false;
        }
        *slot = true;
        self.count += 1;
        self.epoch += 1;
        true
    }

    /// Marks a directed link as recovered. Bumps the epoch (only) when
    /// the link was previously down; returns whether it was newly
    /// recovered. The epoch contract is the same as [`FailedLinks::fail`]:
    /// any change to the failure set — in either direction — invalidates
    /// route caches keyed on [`FailedLinks::epoch`].
    pub fn recover(&mut self, l: LinkId) -> bool {
        let slot = &mut self.down[l.idx()];
        if !*slot {
            return false;
        }
        *slot = false;
        self.count -= 1;
        self.epoch += 1;
        true
    }

    /// Recovers every failed link in one step. Bumps the epoch once
    /// (only) when at least one link was down; returns how many links
    /// came back up.
    pub fn set_all_up(&mut self) -> usize {
        if self.count == 0 {
            return 0;
        }
        let recovered = self.count;
        self.down.fill(false);
        self.count = 0;
        self.epoch += 1;
        recovered
    }

    /// Whether this directed link is failed.
    #[inline]
    pub fn is_down(&self, l: LinkId) -> bool {
        self.down[l.idx()]
    }

    /// Whether any link has failed.
    #[inline]
    pub fn any(&self) -> bool {
        self.count > 0
    }

    /// Number of failed directed links.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Invalidation epoch: changes exactly when the failure set changes.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether every link of a path is still up.
    #[inline]
    pub fn path_alive(&self, links: &[LinkId]) -> bool {
        links.iter().all(|&l| !self.down[l.idx()])
    }

    /// The failed directed links, ascending by id. Used to hand the
    /// failure set to route-plane overlays.
    pub fn down_links(&self) -> Vec<LinkId> {
        self.down
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(LinkId(i as u32)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bumps_only_on_new_failures() {
        let mut f = FailedLinks::new(4);
        assert_eq!(f.epoch(), 0);
        assert!(!f.any());
        assert!(f.fail(LinkId(2)));
        assert_eq!(f.epoch(), 1);
        assert!(!f.fail(LinkId(2)), "re-failing is a no-op");
        assert_eq!(f.epoch(), 1);
        assert!(f.fail(LinkId(0)));
        assert_eq!(f.epoch(), 2);
        assert_eq!(f.count(), 2);
    }

    #[test]
    fn recover_bumps_epoch_only_on_transitions() {
        let mut f = FailedLinks::new(4);
        assert!(!f.recover(LinkId(1)), "recovering an up link is a no-op");
        assert_eq!(f.epoch(), 0);
        f.fail(LinkId(1));
        f.fail(LinkId(3));
        assert_eq!((f.epoch(), f.count()), (2, 2));
        assert!(f.recover(LinkId(1)));
        assert_eq!((f.epoch(), f.count()), (3, 1));
        assert!(!f.is_down(LinkId(1)));
        assert!(f.is_down(LinkId(3)));
        assert!(!f.recover(LinkId(1)), "double recovery is a no-op");
        assert_eq!(f.epoch(), 3);
    }

    #[test]
    fn set_all_up_recovers_everything_in_one_epoch() {
        let mut f = FailedLinks::new(5);
        assert_eq!(f.set_all_up(), 0, "nothing down: no epoch bump");
        assert_eq!(f.epoch(), 0);
        f.fail(LinkId(0));
        f.fail(LinkId(2));
        f.fail(LinkId(4));
        assert_eq!(f.set_all_up(), 3);
        assert_eq!((f.epoch(), f.count()), (4, 0));
        assert!(!f.any());
        assert!(f.path_alive(&[LinkId(0), LinkId(2), LinkId(4)]));
    }

    #[test]
    fn path_alive_checks_every_link() {
        let mut f = FailedLinks::new(3);
        let p = [LinkId(0), LinkId(1), LinkId(2)];
        assert!(f.path_alive(&p));
        f.fail(LinkId(1));
        assert!(!f.path_alive(&p));
        assert!(f.path_alive(&[LinkId(0), LinkId(2)]));
        assert!(f.is_down(LinkId(1)));
        assert!(!f.is_down(LinkId(0)));
    }
}
