//! Routing behind a trait, with failure-epoch route caches.
//!
//! The old event loop routed inline: ECMP enumeration per arrival, and —
//! once any link had failed — a fresh Yen run per arriving or rerouted
//! connection. Routing is a pure function of `(graph, failure set,
//! src, dst)` though, so all of it is cacheable until the failure set
//! changes. A [`PathProvider`] owns that cache and keys its validity on
//! [`FailedLinks::epoch`]: post-failure arrivals between two failure
//! events hit the cached failure-aware answer instead of recomputing it.
//!
//! Providers return paths as [`PathId`]s interned in the simulation's
//! [`PathArena`], so the hot loop never clones a path.

use crate::failures::FailedLinks;
use crate::sim::FlowSpec;
use netgraph::{dijkstra, ecmp, yen, Graph, NodeId, Path, PathArena, PathId};
use routing::{ksp, RouteTable, SharedRouteTable};
use std::collections::HashMap;
use std::sync::Arc;

/// A routed connection: interned subflow paths plus the fairness weight
/// each subflow carries in max-min allocation.
#[derive(Debug, Clone)]
pub struct RoutedConn {
    /// Interned subflow paths (1 for TCP, up to k for MPTCP).
    pub path_ids: Vec<PathId>,
    /// Weight per subflow (1.0 uncoupled, 1/k coupled).
    pub subflow_weight: f64,
}

/// Source of connection routes under a mutable failure state.
pub trait PathProvider {
    /// Routes a connection for `spec` under the current failures.
    ///
    /// Returns `None` when the endpoints are disconnected. Must be
    /// deterministic in `(g, failed, spec)` — the simulator relies on a
    /// re-route after a failure giving exactly the routes a fresh
    /// computation would.
    fn route(
        &mut self,
        g: &Graph,
        arena: &mut PathArena,
        failed: &FailedLinks,
        spec: &FlowSpec,
    ) -> Option<RoutedConn>;
}

/// ECMP + single-path TCP: hash-selects among the surviving equal-cost
/// shortest paths, falling back to any surviving path.
///
/// Caches the surviving equal-cost set (and the fallback path) per
/// server pair; the per-flow hash then picks from the cached set, so
/// only the first flow of a pair in each failure epoch pays for path
/// enumeration.
#[derive(Debug, Default)]
pub struct EcmpProvider {
    cache: HashMap<(NodeId, NodeId), EcmpEntry>,
    epoch: u64,
}

#[derive(Debug)]
struct EcmpEntry {
    /// Equal-cost shortest paths with every link up, in the enumeration
    /// order `ecmp::equal_cost_paths` produces.
    alive: Vec<PathId>,
    /// Lazily computed failure-aware shortest path, used when the whole
    /// equal-cost set is down. `None` = not yet computed.
    fallback: Option<Option<PathId>>,
}

impl EcmpProvider {
    /// Creates an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.cache.clear();
            self.epoch = epoch;
        }
    }
}

impl PathProvider for EcmpProvider {
    fn route(
        &mut self,
        g: &Graph,
        arena: &mut PathArena,
        failed: &FailedLinks,
        spec: &FlowSpec,
    ) -> Option<RoutedConn> {
        self.refresh(failed.epoch());
        let entry = self
            .cache
            .entry((spec.src, spec.dst))
            .or_insert_with(|| EcmpEntry {
                alive: ecmp::equal_cost_paths(g, spec.src, spec.dst)
                    .into_iter()
                    .filter(|p| failed.path_alive(&p.links))
                    .map(|p| arena.intern(p))
                    .collect(),
                fallback: None,
            });
        let chosen = if entry.alive.is_empty() {
            // Equal-cost set fully failed: any surviving path.
            (*entry.fallback.get_or_insert_with(|| {
                dijkstra::shortest_path_by(g, spec.src, spec.dst, |l| {
                    if failed.is_down(l) {
                        f64::INFINITY
                    } else {
                        1.0
                    }
                })
                .map(|(_, p)| arena.intern(p))
            }))?
        } else {
            // Hash modulo the *survivor* set. With every link up this is
            // exactly `ecmp::select_by_hash`; under failures the flows
            // rehash over the k' survivors (a flow can move even when its
            // own path survived), spreading load uniformly instead of
            // piling displaced flows onto hash-adjacent survivors. Pinned
            // by `ecmp_failure_epoch_hashes_modulo_survivors`.
            let i =
                (ecmp::flow_hash(spec.src, spec.dst, spec.id) % entry.alive.len() as u64) as usize;
            entry.alive[i]
        };
        Some(RoutedConn {
            path_ids: vec![chosen],
            subflow_weight: 1.0,
        })
    }
}

/// Switch-pair route source backing an [`MptcpProvider`].
#[derive(Debug)]
enum Backend {
    /// A lazily-filled per-provider table (the default).
    Lazy(RouteTable),
    /// A precomputed [`SharedRouteTable`] shared across simulations,
    /// with a lazy fallback for pairs outside the table's domain.
    Shared {
        table: Arc<SharedRouteTable>,
        fallback: RouteTable,
    },
}

/// MPTCP over the k-shortest paths.
///
/// Routing always happens at the **switch-pair** level (§4.2.1
/// Observations 1–2): paths between the ingress and egress switches,
/// with the two server uplinks spliced on. Failures keep that
/// granularity — failed links are masked in the switch-pair Yen run,
/// the surviving uplinks are spliced, and a connection parks only when
/// its own uplink or downlink is down. A switch pair is re-run masked
/// only when its cached Yen footprint touches a failed link; otherwise
/// the cached paths are provably what the masked run would return (see
/// [`netgraph::yen::k_shortest_paths_with_footprint`]), so a failure
/// epoch costs a handful of Yen runs instead of one per server pair.
///
/// Per-epoch results are cached per server pair as interned ids — the
/// rerouting burst after a failure computes each pair once, and later
/// arrivals on the pair are lookups.
#[derive(Debug)]
pub struct MptcpProvider {
    k: usize,
    coupled: bool,
    backend: Backend,
    /// Masked switch-pair path sets for the current epoch, for pairs
    /// whose Yen footprint touches a failed link.
    fail_switch: HashMap<(NodeId, NodeId), Vec<Path>>,
    /// Slots of shared-table pairs whose footprint touches a failed
    /// link, computed once per epoch. Affected pairs are then re-run
    /// lazily (into `fail_switch`) only when actually routed — cheaper
    /// than an eager [`RouteOverlay`] when a failure epoch touches few
    /// pairs.
    affected: Option<Vec<u32>>,
    cache: HashMap<(NodeId, NodeId), Option<RoutedConn>>,
    epoch: u64,
}

impl MptcpProvider {
    /// Provider for `k` subflows; `coupled` selects LIA-style weights.
    pub fn new(k: usize, coupled: bool) -> Self {
        Self::with_backend(k.max(1), coupled, Backend::Lazy(RouteTable::new(k.max(1))))
    }

    /// Provider over a precomputed route plane; `k` comes from the
    /// table. Pairs outside the table's domain fall back to a private
    /// lazy table with identical semantics.
    pub fn with_shared(table: Arc<SharedRouteTable>, coupled: bool) -> Self {
        let k = table.k();
        Self::with_backend(
            k,
            coupled,
            Backend::Shared {
                table,
                fallback: RouteTable::new(k),
            },
        )
    }

    fn with_backend(k: usize, coupled: bool, backend: Backend) -> Self {
        Self {
            k,
            coupled,
            backend,
            fail_switch: HashMap::new(),
            affected: None,
            cache: HashMap::new(),
            epoch: 0,
        }
    }

    fn refresh(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.cache.clear();
            self.fail_switch.clear();
            self.affected = None;
            self.epoch = epoch;
        }
    }

    /// The server-level path set under the current failures; empty when
    /// the pair is parked or disconnected.
    fn compute_paths(
        &mut self,
        g: &Graph,
        failed: &FailedLinks,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<Path> {
        if !failed.any() {
            return match &mut self.backend {
                Backend::Lazy(rt) => rt.server_paths(g, src, dst),
                Backend::Shared { table, fallback } => table
                    .server_paths(g, src, dst)
                    .unwrap_or_else(|| fallback.server_paths(g, src, dst)),
            };
        }
        let k = self.k;
        let masked_len = |l| {
            if failed.is_down(l) {
                f64::INFINITY
            } else {
                1.0
            }
        };
        let (Some(si), Some(di)) = (g.server_uplink_switch(src), g.server_uplink_switch(dst))
        else {
            // Unattached endpoint: no switch pair to route over.
            return yen::k_shortest_paths_by(g, src, dst, k, masked_len);
        };
        let up = g.find_link(src, si).expect("src uplink");
        let down = g.find_link(di, dst).expect("dst downlink");
        if failed.is_down(up) || failed.is_down(down) {
            // Park only when the pair's own uplink is dead — every
            // server-level path must cross both uplinks.
            return Vec::new();
        }
        if si == di {
            return vec![ksp::rack_path(g, src, si, dst)];
        }
        if let Backend::Shared { table, .. } = &self.backend {
            if let Some(slot) = table.pair_slot(si, di) {
                let affected = self
                    .affected
                    .get_or_insert_with(|| table.affected_slots(&failed.down_links()));
                if affected.binary_search(&(slot as u32)).is_err() {
                    // Footprint untouched: the precomputed paths are
                    // bit-identical to a masked recomputation.
                    let sp = table.switch_paths(si, di).expect("covered pair");
                    return ksp::splice_server_pair(g, src, dst, sp);
                }
                let sp = self
                    .fail_switch
                    .entry((si, di))
                    .or_insert_with(|| yen::k_shortest_paths_by(g, si, di, k, masked_len));
                return ksp::splice_server_pair(g, src, dst, sp);
            }
        }
        let rt = match &mut self.backend {
            Backend::Lazy(rt) => rt,
            Backend::Shared { fallback, .. } => fallback,
        };
        let (base, footprint) = rt.switch_paths_with_footprint(g, si, di);
        if failed.path_alive(footprint) {
            // No failed link anywhere in the pair's Yen footprint: the
            // cached paths are bit-identical to a masked recomputation.
            return ksp::splice_server_pair(g, src, dst, base);
        }
        let sp = self
            .fail_switch
            .entry((si, di))
            .or_insert_with(|| yen::k_shortest_paths_by(g, si, di, k, masked_len));
        ksp::splice_server_pair(g, src, dst, sp)
    }
}

impl PathProvider for MptcpProvider {
    fn route(
        &mut self,
        g: &Graph,
        arena: &mut PathArena,
        failed: &FailedLinks,
        spec: &FlowSpec,
    ) -> Option<RoutedConn> {
        self.refresh(failed.epoch());
        let key = (spec.src, spec.dst);
        if let Some(cached) = self.cache.get(&key) {
            return cached.clone();
        }
        let paths = self.compute_paths(g, failed, spec.src, spec.dst);
        let routed = if paths.is_empty() {
            None
        } else {
            let weight = if self.coupled {
                1.0 / paths.len() as f64
            } else {
                1.0
            };
            Some(RoutedConn {
                path_ids: paths.into_iter().map(|p| arena.intern(p)).collect(),
                subflow_weight: weight,
            })
        };
        self.cache.insert(key, routed.clone());
        routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{LinkId, NodeKind};

    /// Diamond: s - e0 - {x, y} - e1 - t, all 10G.
    fn diamond() -> (Graph, NodeId, NodeId, LinkId) {
        let mut g = Graph::new();
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        let x = g.add_node(NodeKind::CoreSwitch, "x");
        let y = g.add_node(NodeKind::CoreSwitch, "y");
        let (via_x, _) = g.add_duplex_link(e0, x, 10.0);
        g.add_duplex_link(x, e1, 10.0);
        g.add_duplex_link(e0, y, 10.0);
        g.add_duplex_link(y, e1, 10.0);
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, e0, 10.0);
        g.add_duplex_link(t, e1, 10.0);
        (g, s, t, via_x)
    }

    fn spec(id: u64, src: NodeId, dst: NodeId) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            bytes: 1.0,
            start: 0.0,
        }
    }

    #[test]
    fn mptcp_caches_within_epoch_and_invalidates_on_failure() {
        let (g, s, t, via_x) = diamond();
        let mut arena = PathArena::new();
        let mut failed = FailedLinks::new(g.link_count());
        let mut p = MptcpProvider::new(2, true);
        let before = p.route(&g, &mut arena, &failed, &spec(0, s, t)).unwrap();
        assert_eq!(before.path_ids.len(), 2);
        assert!((before.subflow_weight - 0.5).abs() < 1e-12);
        // Same epoch: cached, identical ids.
        let again = p.route(&g, &mut arena, &failed, &spec(1, s, t)).unwrap();
        assert_eq!(before.path_ids, again.path_ids);
        // Cut x; cache must refresh and drop the x path.
        failed.fail(via_x);
        if let Some(rev) = g.link(via_x).reverse {
            failed.fail(rev);
        }
        let after = p.route(&g, &mut arena, &failed, &spec(2, s, t)).unwrap();
        assert_eq!(after.path_ids.len(), 1);
        assert!(failed.path_alive(arena.links(after.path_ids[0])));
        assert!((after.subflow_weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecmp_selection_matches_uncached_hash_choice() {
        let (g, s, t, _) = diamond();
        let mut arena = PathArena::new();
        let failed = FailedLinks::new(g.link_count());
        let mut p = EcmpProvider::new();
        for id in 0..16u64 {
            let got = p.route(&g, &mut arena, &failed, &spec(id, s, t)).unwrap();
            let all = ecmp::equal_cost_paths(&g, s, t);
            let want = ecmp::select_by_hash(&all, s, t, id).unwrap();
            assert_eq!(arena.get(got.path_ids[0]), want, "flow {id}");
        }
    }

    #[test]
    fn ecmp_failure_epoch_hashes_modulo_survivors() {
        // Pins the documented failure-epoch contract: the per-flow hash
        // indexes the *survivor* set, not the full equal-cost set.
        let (g, s, t, via_x) = diamond();
        let mut arena = PathArena::new();
        let mut failed = FailedLinks::new(g.link_count());
        failed.fail(via_x);
        if let Some(rev) = g.link(via_x).reverse {
            failed.fail(rev);
        }
        let survivors: Vec<_> = ecmp::equal_cost_paths(&g, s, t)
            .into_iter()
            .filter(|p| failed.path_alive(&p.links))
            .collect();
        assert_eq!(survivors.len(), 1, "diamond minus x leaves the y path");
        let mut p = EcmpProvider::new();
        for id in 0..16u64 {
            let got = p.route(&g, &mut arena, &failed, &spec(id, s, t)).unwrap();
            let i = (ecmp::flow_hash(s, t, id) % survivors.len() as u64) as usize;
            assert_eq!(arena.get(got.path_ids[0]), &survivors[i], "flow {id}");
        }
    }

    #[test]
    fn mptcp_shared_table_matches_lazy_provider() {
        let (g, s, t, via_x) = diamond();
        let table = Arc::new(SharedRouteTable::build(&g, 2));
        let mut failed = FailedLinks::new(g.link_count());
        let mut arena_a = PathArena::new();
        let mut arena_b = PathArena::new();
        let mut lazy = MptcpProvider::new(2, true);
        let mut shared = MptcpProvider::with_shared(table, true);
        let same_paths = |a: &RoutedConn, aa: &PathArena, b: &RoutedConn, ab: &PathArena| {
            let pa: Vec<_> = a.path_ids.iter().map(|&i| aa.get(i)).collect();
            let pb: Vec<_> = b.path_ids.iter().map(|&i| ab.get(i)).collect();
            pa == pb
        };
        let a = lazy
            .route(&g, &mut arena_a, &failed, &spec(0, s, t))
            .unwrap();
        let b = shared
            .route(&g, &mut arena_b, &failed, &spec(0, s, t))
            .unwrap();
        assert!(same_paths(&a, &arena_a, &b, &arena_b));
        failed.fail(via_x);
        if let Some(rev) = g.link(via_x).reverse {
            failed.fail(rev);
        }
        let a = lazy
            .route(&g, &mut arena_a, &failed, &spec(1, s, t))
            .unwrap();
        let b = shared
            .route(&g, &mut arena_b, &failed, &spec(1, s, t))
            .unwrap();
        assert!(same_paths(&a, &arena_a, &b, &arena_b));
        assert_eq!(a.path_ids.len(), 1, "x route must be gone");
    }

    #[test]
    fn mptcp_parks_only_on_dead_uplink() {
        let (g, s, t, _) = diamond();
        let si = g.server_uplink_switch(s).unwrap();
        let up = g.find_link(s, si).unwrap();
        let mut arena = PathArena::new();
        let mut failed = FailedLinks::new(g.link_count());
        failed.fail(up);
        let mut p = MptcpProvider::new(2, true);
        assert!(
            p.route(&g, &mut arena, &failed, &spec(0, s, t)).is_none(),
            "dead uplink must park the connection"
        );
        // The reverse direction only needs t's uplink and s's downlink.
        assert!(p.route(&g, &mut arena, &failed, &spec(1, t, s)).is_some());
    }

    #[test]
    fn ecmp_falls_back_to_survivor_when_equal_cost_set_dies() {
        // Line with a longer detour: s - e0 - x - e1 - t and
        // e0 - a - b - e1 as a 2-switch detour.
        let mut g = Graph::new();
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        let x = g.add_node(NodeKind::CoreSwitch, "x");
        let a = g.add_node(NodeKind::CoreSwitch, "a");
        let b = g.add_node(NodeKind::CoreSwitch, "b");
        let (via_x, _) = g.add_duplex_link(e0, x, 10.0);
        g.add_duplex_link(x, e1, 10.0);
        g.add_duplex_link(e0, a, 10.0);
        g.add_duplex_link(a, b, 10.0);
        g.add_duplex_link(b, e1, 10.0);
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, e0, 10.0);
        g.add_duplex_link(t, e1, 10.0);

        let mut arena = PathArena::new();
        let mut failed = FailedLinks::new(g.link_count());
        failed.fail(via_x);
        if let Some(rev) = g.link(via_x).reverse {
            failed.fail(rev);
        }
        let mut p = EcmpProvider::new();
        let got = p
            .route(&g, &mut arena, &failed, &spec(7, s, t))
            .expect("detour exists");
        let links = arena.links(got.path_ids[0]);
        assert!(failed.path_alive(links));
        assert_eq!(links.len(), 5, "s-e0-a-b-e1-t detour");
    }
}
