//! Routing behind a trait, with failure-epoch route caches.
//!
//! The old event loop routed inline: ECMP enumeration per arrival, and —
//! once any link had failed — a fresh Yen run per arriving or rerouted
//! connection. Routing is a pure function of `(graph, failure set,
//! src, dst)` though, so all of it is cacheable until the failure set
//! changes. A [`PathProvider`] owns that cache and keys its validity on
//! [`FailedLinks::epoch`]: post-failure arrivals between two failure
//! events hit the cached failure-aware answer instead of recomputing it.
//!
//! Providers return paths as [`PathId`]s interned in the simulation's
//! [`PathArena`], so the hot loop never clones a path.

use crate::failures::FailedLinks;
use crate::sim::FlowSpec;
use netgraph::{dijkstra, ecmp, yen, Graph, NodeId, PathArena, PathId};
use routing::RouteTable;
use std::collections::HashMap;

/// A routed connection: interned subflow paths plus the fairness weight
/// each subflow carries in max-min allocation.
#[derive(Debug, Clone)]
pub struct RoutedConn {
    /// Interned subflow paths (1 for TCP, up to k for MPTCP).
    pub path_ids: Vec<PathId>,
    /// Weight per subflow (1.0 uncoupled, 1/k coupled).
    pub subflow_weight: f64,
}

/// Source of connection routes under a mutable failure state.
pub trait PathProvider {
    /// Routes a connection for `spec` under the current failures.
    ///
    /// Returns `None` when the endpoints are disconnected. Must be
    /// deterministic in `(g, failed, spec)` — the simulator relies on a
    /// re-route after a failure giving exactly the routes a fresh
    /// computation would.
    fn route(
        &mut self,
        g: &Graph,
        arena: &mut PathArena,
        failed: &FailedLinks,
        spec: &FlowSpec,
    ) -> Option<RoutedConn>;
}

/// ECMP + single-path TCP: hash-selects among the surviving equal-cost
/// shortest paths, falling back to any surviving path.
///
/// Caches the surviving equal-cost set (and the fallback path) per
/// server pair; the per-flow hash then picks from the cached set, so
/// only the first flow of a pair in each failure epoch pays for path
/// enumeration.
#[derive(Debug, Default)]
pub struct EcmpProvider {
    cache: HashMap<(NodeId, NodeId), EcmpEntry>,
    epoch: u64,
}

#[derive(Debug)]
struct EcmpEntry {
    /// Equal-cost shortest paths with every link up, in the enumeration
    /// order `ecmp::equal_cost_paths` produces.
    alive: Vec<PathId>,
    /// Lazily computed failure-aware shortest path, used when the whole
    /// equal-cost set is down. `None` = not yet computed.
    fallback: Option<Option<PathId>>,
}

impl EcmpProvider {
    /// Creates an empty provider.
    pub fn new() -> Self {
        Self::default()
    }

    fn refresh(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.cache.clear();
            self.epoch = epoch;
        }
    }
}

impl PathProvider for EcmpProvider {
    fn route(
        &mut self,
        g: &Graph,
        arena: &mut PathArena,
        failed: &FailedLinks,
        spec: &FlowSpec,
    ) -> Option<RoutedConn> {
        self.refresh(failed.epoch());
        let entry = self
            .cache
            .entry((spec.src, spec.dst))
            .or_insert_with(|| EcmpEntry {
                alive: ecmp::equal_cost_paths(g, spec.src, spec.dst)
                    .into_iter()
                    .filter(|p| failed.path_alive(&p.links))
                    .map(|p| arena.intern(p))
                    .collect(),
                fallback: None,
            });
        let chosen = if entry.alive.is_empty() {
            // Equal-cost set fully failed: any surviving path.
            (*entry.fallback.get_or_insert_with(|| {
                dijkstra::shortest_path_by(g, spec.src, spec.dst, |l| {
                    if failed.is_down(l) {
                        f64::INFINITY
                    } else {
                        1.0
                    }
                })
                .map(|(_, p)| arena.intern(p))
            }))?
        } else {
            // Same selection as `ecmp::select_by_hash` over the alive set.
            let i =
                (ecmp::flow_hash(spec.src, spec.dst, spec.id) % entry.alive.len() as u64) as usize;
            entry.alive[i]
        };
        Some(RoutedConn {
            path_ids: vec![chosen],
            subflow_weight: 1.0,
        })
    }
}

/// MPTCP over the k-shortest paths.
///
/// With no failures, routes come from the [`RouteTable`]'s switch-pair
/// cache (splice per pair cached here as interned ids). With failures,
/// the failure-aware Yen result is cached per server pair for the
/// current epoch — the rerouting burst after a failure computes each
/// pair once, and later arrivals on the pair are lookups.
#[derive(Debug)]
pub struct MptcpProvider {
    k: usize,
    coupled: bool,
    rt: RouteTable,
    cache: HashMap<(NodeId, NodeId), Option<RoutedConn>>,
    epoch: u64,
}

impl MptcpProvider {
    /// Provider for `k` subflows; `coupled` selects LIA-style weights.
    pub fn new(k: usize, coupled: bool) -> Self {
        Self {
            k,
            coupled,
            rt: RouteTable::new(k.max(1)),
            cache: HashMap::new(),
            epoch: 0,
        }
    }

    fn refresh(&mut self, epoch: u64) {
        if self.epoch != epoch {
            self.cache.clear();
            self.epoch = epoch;
        }
    }
}

impl PathProvider for MptcpProvider {
    fn route(
        &mut self,
        g: &Graph,
        arena: &mut PathArena,
        failed: &FailedLinks,
        spec: &FlowSpec,
    ) -> Option<RoutedConn> {
        self.refresh(failed.epoch());
        let key = (spec.src, spec.dst);
        if let Some(cached) = self.cache.get(&key) {
            return cached.clone();
        }
        let paths = if !failed.any() {
            self.rt.server_paths(g, spec.src, spec.dst)
        } else {
            yen::k_shortest_paths_by(g, spec.src, spec.dst, self.k, |l| {
                if failed.is_down(l) {
                    f64::INFINITY
                } else {
                    1.0
                }
            })
        };
        let routed = if paths.is_empty() {
            None
        } else {
            let weight = if self.coupled {
                1.0 / paths.len() as f64
            } else {
                1.0
            };
            Some(RoutedConn {
                path_ids: paths.into_iter().map(|p| arena.intern(p)).collect(),
                subflow_weight: weight,
            })
        };
        self.cache.insert(key, routed.clone());
        routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{LinkId, NodeKind};

    /// Diamond: s - e0 - {x, y} - e1 - t, all 10G.
    fn diamond() -> (Graph, NodeId, NodeId, LinkId) {
        let mut g = Graph::new();
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        let x = g.add_node(NodeKind::CoreSwitch, "x");
        let y = g.add_node(NodeKind::CoreSwitch, "y");
        let (via_x, _) = g.add_duplex_link(e0, x, 10.0);
        g.add_duplex_link(x, e1, 10.0);
        g.add_duplex_link(e0, y, 10.0);
        g.add_duplex_link(y, e1, 10.0);
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, e0, 10.0);
        g.add_duplex_link(t, e1, 10.0);
        (g, s, t, via_x)
    }

    fn spec(id: u64, src: NodeId, dst: NodeId) -> FlowSpec {
        FlowSpec {
            id,
            src,
            dst,
            bytes: 1.0,
            start: 0.0,
        }
    }

    #[test]
    fn mptcp_caches_within_epoch_and_invalidates_on_failure() {
        let (g, s, t, via_x) = diamond();
        let mut arena = PathArena::new();
        let mut failed = FailedLinks::new(g.link_count());
        let mut p = MptcpProvider::new(2, true);
        let before = p.route(&g, &mut arena, &failed, &spec(0, s, t)).unwrap();
        assert_eq!(before.path_ids.len(), 2);
        assert!((before.subflow_weight - 0.5).abs() < 1e-12);
        // Same epoch: cached, identical ids.
        let again = p.route(&g, &mut arena, &failed, &spec(1, s, t)).unwrap();
        assert_eq!(before.path_ids, again.path_ids);
        // Cut x; cache must refresh and drop the x path.
        failed.fail(via_x);
        if let Some(rev) = g.link(via_x).reverse {
            failed.fail(rev);
        }
        let after = p.route(&g, &mut arena, &failed, &spec(2, s, t)).unwrap();
        assert_eq!(after.path_ids.len(), 1);
        assert!(failed.path_alive(arena.links(after.path_ids[0])));
        assert!((after.subflow_weight - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecmp_selection_matches_uncached_hash_choice() {
        let (g, s, t, _) = diamond();
        let mut arena = PathArena::new();
        let failed = FailedLinks::new(g.link_count());
        let mut p = EcmpProvider::new();
        for id in 0..16u64 {
            let got = p.route(&g, &mut arena, &failed, &spec(id, s, t)).unwrap();
            let all = ecmp::equal_cost_paths(&g, s, t);
            let want = ecmp::select_by_hash(&all, s, t, id).unwrap();
            assert_eq!(arena.get(got.path_ids[0]), want, "flow {id}");
        }
    }

    #[test]
    fn ecmp_falls_back_to_survivor_when_equal_cost_set_dies() {
        // Line with a longer detour: s - e0 - x - e1 - t and
        // e0 - a - b - e1 as a 2-switch detour.
        let mut g = Graph::new();
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        let x = g.add_node(NodeKind::CoreSwitch, "x");
        let a = g.add_node(NodeKind::CoreSwitch, "a");
        let b = g.add_node(NodeKind::CoreSwitch, "b");
        let (via_x, _) = g.add_duplex_link(e0, x, 10.0);
        g.add_duplex_link(x, e1, 10.0);
        g.add_duplex_link(e0, a, 10.0);
        g.add_duplex_link(a, b, 10.0);
        g.add_duplex_link(b, e1, 10.0);
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, e0, 10.0);
        g.add_duplex_link(t, e1, 10.0);

        let mut arena = PathArena::new();
        let mut failed = FailedLinks::new(g.link_count());
        failed.fail(via_x);
        if let Some(rev) = g.link(via_x).reverse {
            failed.fail(rev);
        }
        let mut p = EcmpProvider::new();
        let got = p
            .route(&g, &mut arena, &failed, &spec(7, s, t))
            .expect("detour exists");
        let links = arena.links(got.path_ids[0]);
        assert!(failed.path_alive(links));
        assert_eq!(links.len(), 5, "s-e0-a-b-e1-t detour");
    }
}
