//! The pre-refactor simulation engine, kept verbatim.
//!
//! [`simulate_reference`] is the event loop as it existed before the
//! engine refactor (interned paths, reusable allocation workspace,
//! failure-epoch route cache): it clones `ConnPaths` per event, tracks
//! failures in a `HashSet`, and re-routes with fresh Yen runs. It is the
//! behavioral oracle — [`crate::simulate`] must produce bit-identical
//! [`SimResult`]s — and the baseline the `bench_simcore` benchmark
//! measures the refactored engine against. It is not meant for
//! production use.

use crate::alloc::{connection_rates, ConnPaths};
use crate::sim::{FlowRecord, FlowSpec, SimConfig, SimResult, Transport};
use crate::sim::{DONE_BYTES, GBPS_TO_BPS, STALL_RATE};
use netgraph::{ecmp, yen, Graph};
use routing::RouteTable;

struct Active {
    rec_idx: usize,
    spec: FlowSpec,
    remaining: f64,
    conn: ConnPaths,
}

/// Runs the fluid simulation with the pre-refactor engine.
pub fn simulate_reference(g: &Graph, flows: &[FlowSpec], cfg: &SimConfig) -> SimResult {
    let mut caps: Vec<f64> = g.link_ids().map(|l| g.link(l).capacity_gbps).collect();
    let k = match cfg.transport {
        Transport::TcpEcmp => 1,
        Transport::Mptcp { k, .. } => k,
    };
    let mut rt = RouteTable::new(k.max(1));

    // Records in input order; simulation works on a start-sorted index.
    let mut records: Vec<FlowRecord> = flows
        .iter()
        .map(|f| FlowRecord {
            id: f.id,
            start: f.start,
            finish: None,
            bytes: f.bytes,
        })
        .collect();
    let mut order: Vec<usize> = (0..flows.len()).collect();
    order.sort_by(|&a, &b| flows[a].start.total_cmp(&flows[b].start).then(a.cmp(&b)));
    let mut failures = cfg.link_failures.clone();
    failures.sort_by(|a, b| a.time.total_cmp(&b.time));
    let mut failed: std::collections::HashSet<usize> = std::collections::HashSet::new();

    let mut next_arrival = 0usize;
    let mut next_failure = 0usize;
    let mut active: Vec<Active> = Vec::new();
    let mut series = Vec::new();
    let mut t = 0.0f64;

    let route = |rt: &mut RouteTable,
                 failed: &std::collections::HashSet<usize>,
                 spec: &FlowSpec|
     -> Option<ConnPaths> {
        match cfg.transport {
            Transport::TcpEcmp => {
                let all = ecmp::equal_cost_paths(g, spec.src, spec.dst);
                let alive: Vec<netgraph::Path> = all
                    .into_iter()
                    .filter(|p| p.links.iter().all(|l| !failed.contains(&l.idx())))
                    .collect();
                let path = match ecmp::select_by_hash(&alive, spec.src, spec.dst, spec.id) {
                    Some(p) => p.clone(),
                    None => {
                        // Equal-cost set fully failed: any surviving path.
                        netgraph::dijkstra::shortest_path_by(g, spec.src, spec.dst, |l| {
                            if failed.contains(&l.idx()) {
                                f64::INFINITY
                            } else {
                                1.0
                            }
                        })
                        .map(|(_, p)| p)?
                    }
                };
                Some(ConnPaths {
                    paths: vec![path],
                    subflow_weight: 1.0,
                })
            }
            Transport::Mptcp { k, coupled } => {
                let paths: Vec<netgraph::Path> = if failed.is_empty() {
                    rt.server_paths(g, spec.src, spec.dst)
                } else {
                    yen::k_shortest_paths_by(g, spec.src, spec.dst, k, |l| {
                        if failed.contains(&l.idx()) {
                            f64::INFINITY
                        } else {
                            1.0
                        }
                    })
                };
                if paths.is_empty() {
                    return None;
                }
                let weight = if coupled {
                    1.0 / paths.len() as f64
                } else {
                    1.0
                };
                Some(ConnPaths {
                    paths,
                    subflow_weight: weight,
                })
            }
        }
    };

    loop {
        // Allocate under the current active set.
        let conns: Vec<ConnPaths> = active.iter().map(|a| a.conn.clone()).collect();
        let rates = connection_rates(&caps, &conns);
        if cfg.record_series {
            series.push((t, rates.iter().sum()));
        }

        // Next event time.
        let t_arr = (next_arrival < order.len()).then(|| flows[order[next_arrival]].start);
        let t_fail = (next_failure < failures.len()).then(|| failures[next_failure].time);
        let t_fin = active
            .iter()
            .zip(&rates)
            .filter(|(_, &r)| r > STALL_RATE)
            .map(|(a, &r)| t + a.remaining / (r * GBPS_TO_BPS))
            .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.min(x))));
        let candidates = [t_arr, t_fail, t_fin];
        let Some(t_next) = candidates
            .iter()
            .flatten()
            .fold(None::<f64>, |acc, &x| Some(acc.map_or(x, |a| a.min(x))))
        else {
            // No events left; anything still active is stalled forever.
            break;
        };
        let t_next = t_next.max(t);

        // Drain bytes until t_next.
        let dt = t_next - t;
        for (a, &r) in active.iter_mut().zip(&rates) {
            a.remaining -= r * GBPS_TO_BPS * dt;
        }
        t = t_next;

        // Completions.
        let mut i = 0;
        while i < active.len() {
            if active[i].remaining <= DONE_BYTES {
                records[active[i].rec_idx].finish = Some(t);
                active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Arrivals.
        while next_arrival < order.len() && flows[order[next_arrival]].start <= t + 1e-15 {
            let idx = order[next_arrival];
            next_arrival += 1;
            let spec = flows[idx];
            assert_ne!(spec.src, spec.dst, "self-flow {}", spec.id);
            assert!(spec.bytes > 0.0, "empty flow {}", spec.id);
            match route(&mut rt, &failed, &spec) {
                Some(conn) => active.push(Active {
                    rec_idx: idx,
                    spec,
                    remaining: spec.bytes,
                    conn,
                }),
                None => { /* unroutable: record stays unfinished */ }
            }
        }
        // Failures.
        let mut failed_now = false;
        while next_failure < failures.len() && failures[next_failure].time <= t + 1e-15 {
            let f = failures[next_failure];
            next_failure += 1;
            failed.insert(f.link.idx());
            caps[f.link.idx()] = 0.0;
            if let Some(rev) = g.link(f.link).reverse {
                failed.insert(rev.idx());
                caps[rev.idx()] = 0.0;
            }
            failed_now = true;
        }
        if failed_now {
            // Re-route connections that lost a subflow.
            for a in &mut active {
                let hit = a
                    .conn
                    .paths
                    .iter()
                    .any(|p| p.links.iter().any(|l| failed.contains(&l.idx())));
                if hit {
                    if let Some(conn) = route(&mut rt, &failed, &a.spec) {
                        a.conn = conn;
                    } else {
                        // Keep only surviving subflows (possibly none).
                        a.conn
                            .paths
                            .retain(|p| p.links.iter().all(|l| !failed.contains(&l.idx())));
                    }
                }
            }
            active.retain(|a| {
                if a.conn.paths.is_empty() {
                    // Permanently stalled; finish stays None.
                    false
                } else {
                    true
                }
            });
        }
    }

    SimResult {
        records,
        series,
        end_time: t,
    }
}
