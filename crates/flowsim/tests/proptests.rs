//! Property tests for the fluid simulator.

use flowsim::{simulate, FailedLinks, FaultPlan, FlowSpec, SimConfig, Transport};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use topology::ClosParams;

fn mini_net() -> topology::DcNetwork {
    ClosParams::mini().build().net
}

fn random_flows(n_servers: usize, n_flows: usize, seed: u64) -> Vec<(usize, usize, f64, f64)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n_flows)
        .map(|_| {
            let src = rng.gen_range(0..n_servers);
            let mut dst = rng.gen_range(0..n_servers);
            while dst == src {
                dst = rng.gen_range(0..n_servers);
            }
            (src, dst, rng.gen_range(1e5..5e8), rng.gen_range(0.0..0.5))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// In a connected, failure-free network every flow completes, and no
    /// flow beats the physical lower bound bytes / NIC-rate.
    #[test]
    fn all_flows_complete_with_physical_fcts(
        n_flows in 1usize..24,
        seed in any::<u64>(),
        mptcp in prop::bool::ANY,
    ) {
        let net = mini_net();
        let flows: Vec<FlowSpec> = random_flows(net.servers.len(), n_flows, seed)
            .into_iter()
            .enumerate()
            .map(|(i, (s, d, bytes, start))| FlowSpec {
                id: i as u64,
                src: net.servers[s],
                dst: net.servers[d],
                bytes,
                start,
            })
            .collect();
        let cfg = SimConfig {
            transport: if mptcp { Transport::mptcp8() } else { Transport::TcpEcmp },
            ..SimConfig::default()
        };
        let res = simulate(&net.graph, &flows, &cfg);
        for (r, f) in res.records.iter().zip(&flows) {
            let fct = r.fct();
            prop_assert!(fct.is_some(), "flow {} never finished", f.id);
            let ideal = f.bytes * 8.0 / 10e9; // 10G NIC
            prop_assert!(
                fct.unwrap() >= ideal - 1e-9,
                "flow {} fct {} beats ideal {}",
                f.id, fct.unwrap(), ideal
            );
            prop_assert!(r.avg_rate_gbps().unwrap() <= 10.0 + 1e-6);
        }
    }

    /// Bit-for-bit determinism.
    #[test]
    fn deterministic(n_flows in 1usize..16, seed in any::<u64>()) {
        let net = mini_net();
        let flows: Vec<FlowSpec> = random_flows(net.servers.len(), n_flows, seed)
            .into_iter()
            .enumerate()
            .map(|(i, (s, d, bytes, start))| FlowSpec {
                id: i as u64,
                src: net.servers[s],
                dst: net.servers[d],
                bytes,
                start,
            })
            .collect();
        let a = simulate(&net.graph, &flows, &SimConfig::default());
        let b = simulate(&net.graph, &flows, &SimConfig::default());
        prop_assert_eq!(a.records, b.records);
    }

    /// MPTCP over k-shortest paths never loses to single-path ECMP on
    /// total completion time of a permutation batch (it has a superset of
    /// the path diversity).
    #[test]
    fn mptcp_beats_or_matches_ecmp_makespan(seed in any::<u64>()) {
        let net = mini_net();
        let n = net.servers.len();
        let pairs = traffic::patterns::permutation(n, seed);
        let flows: Vec<FlowSpec> = pairs
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| FlowSpec {
                id: i as u64,
                src: net.servers[s],
                dst: net.servers[d],
                bytes: 1e7,
                start: 0.0,
            })
            .collect();
        let ecmp = simulate(&net.graph, &flows, &SimConfig {
            transport: Transport::TcpEcmp,
            ..SimConfig::default()
        });
        let mptcp = simulate(&net.graph, &flows, &SimConfig::default());
        let makespan = |r: &flowsim::SimResult| {
            r.records.iter().filter_map(|x| x.finish).fold(0.0f64, f64::max)
        };
        prop_assert!(makespan(&mptcp) <= makespan(&ecmp) * 1.10 + 1e-9,
            "mptcp {} vs ecmp {}", makespan(&mptcp), makespan(&ecmp));
    }

    /// `FailedLinks` under an arbitrary fail/recover sequence: the epoch
    /// is monotone, bumps exactly on state transitions, and `count`
    /// always matches a model `HashSet` of down links.
    #[test]
    fn failed_links_epoch_and_count_track_transitions(
        ops in prop::collection::vec((0usize..12, prop::bool::ANY), 0..64),
    ) {
        let mut fl = FailedLinks::new(12);
        let mut model = std::collections::HashSet::new();
        let mut last_epoch = fl.epoch();
        for (idx, fail) in ops {
            let link = netgraph::LinkId(idx as u32);
            let before = fl.epoch();
            let changed = if fail { fl.fail(link) } else { fl.recover(link) };
            let model_changed = if fail { model.insert(idx) } else { model.remove(&idx) };
            prop_assert_eq!(changed, model_changed, "transition report diverged");
            if changed {
                prop_assert_eq!(fl.epoch(), before + 1, "transition must bump epoch once");
            } else {
                prop_assert_eq!(fl.epoch(), before, "no-op must not bump epoch");
            }
            prop_assert!(fl.epoch() >= last_epoch, "epoch must be monotone");
            last_epoch = fl.epoch();
            prop_assert_eq!(fl.count(), model.len(), "count diverged from model");
            for i in 0..12 {
                prop_assert_eq!(fl.is_down(netgraph::LinkId(i as u32)), model.contains(&i));
            }
        }
        // Mass recovery drains everything in at most one epoch bump.
        let before = fl.epoch();
        let recovered = fl.set_all_up();
        prop_assert_eq!(recovered, model.len());
        prop_assert_eq!(fl.count(), 0);
        prop_assert_eq!(fl.epoch(), if recovered > 0 { before + 1 } else { before });
    }

    /// A run where every injected flap recovers completes every flow:
    /// parked connections must be revived, never silently dropped.
    #[test]
    fn all_flows_complete_when_every_flap_recovers(
        n_flows in 1usize..12,
        seed in any::<u64>(),
        fraction in 0.0f64..0.4,
    ) {
        let net = mini_net();
        let flows: Vec<FlowSpec> = random_flows(net.servers.len(), n_flows, seed)
            .into_iter()
            .enumerate()
            .map(|(i, (s, d, bytes, start))| FlowSpec {
                id: i as u64,
                src: net.servers[s],
                dst: net.servers[d],
                bytes,
                start,
            })
            .collect();
        // One direction per cable so flaps cover distinct duplex links.
        let cables: Vec<netgraph::LinkId> = net
            .graph
            .link_ids()
            .filter(|&l| match net.graph.link(l).reverse {
                Some(rev) => l.idx() < rev.idx(),
                None => true,
            })
            .collect();
        let mut plan = FaultPlan::new(seed);
        plan.random_link_flaps(&cables, fraction, 0.3, (0.0, 1.0));
        let sched = plan.compile(&net.graph).unwrap();
        let out = flowsim::simulate_under_faults(&net.graph, &flows, &SimConfig::default(), &sched)
            .expect("valid workload");
        prop_assert_eq!(out.audit.violations(), 0, "auditor flagged: {:?}", out.audit);
        for r in &out.result.records {
            prop_assert!(r.finish.is_some(), "flow {} never finished: {:?}", r.id, out.audit);
        }
        // Determinism of the faulted path.
        let again = flowsim::simulate_under_faults(&net.graph, &flows, &SimConfig::default(), &sched)
            .expect("valid workload");
        prop_assert_eq!(out.result.records, again.result.records);
        prop_assert_eq!(out.audit, again.audit);
    }
}

/// Engine-level pinning of the incremental allocator: under random
/// arrival/departure/failure-epoch sequences the refactored engine
/// (persistent bindings, dirty-set allocation) must match the preserved
/// from-scratch reference engine bit for bit at every epoch — the
/// series is the per-epoch aggregate rate, so one differing allocation
/// anywhere shows up as a bit flip here.
mod incremental_engine {
    use super::*;
    use flowsim::sim::LinkFailure;
    use flowsim::{reference::simulate_reference, TraceEvent, TraceSink};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn engine_matches_reference_bitwise_under_failures(
            n_flows in 1usize..24,
            n_fails in 0usize..4,
            seed in any::<u64>(),
            mptcp in any::<bool>(),
        ) {
            let net = mini_net();
            let flows: Vec<FlowSpec> = random_flows(net.servers.len(), n_flows, seed)
                .into_iter()
                .enumerate()
                .map(|(i, (s, d, bytes, start))| FlowSpec {
                    id: i as u64,
                    src: net.servers[s],
                    dst: net.servers[d],
                    bytes,
                    start,
                })
                .collect();
            let cables: Vec<netgraph::LinkId> = net
                .graph
                .link_ids()
                .filter(|&l| match net.graph.link(l).reverse {
                    Some(rev) => l.idx() < rev.idx(),
                    None => true,
                })
                .collect();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x9e3779b9);
            let link_failures: Vec<LinkFailure> = (0..n_fails)
                .map(|_| LinkFailure {
                    time: rng.gen_range(0.0..0.8),
                    link: cables[rng.gen_range(0..cables.len())],
                })
                .collect();
            let cfg = SimConfig {
                transport: if mptcp {
                    Transport::mptcp8()
                } else {
                    Transport::TcpEcmp
                },
                link_failures,
                record_series: true,
            };
            let new = simulate(&net.graph, &flows, &cfg);
            let old = simulate_reference(&net.graph, &flows, &cfg);
            prop_assert_eq!(&new.records, &old.records);
            prop_assert_eq!(new.series.len(), old.series.len());
            for (a, b) in new.series.iter().zip(&old.series) {
                prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
                prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
            prop_assert_eq!(new.end_time.to_bits(), old.end_time.to_bits());
        }
    }

    /// Counts allocation epochs; everything else is dropped.
    struct AllocCounter {
        epochs: usize,
    }

    impl TraceSink for AllocCounter {
        fn emit(&mut self, ev: TraceEvent) {
            if matches!(ev, TraceEvent::Alloc { .. }) {
                self.epochs += 1;
            }
        }
    }

    /// Same-timestamp batching contract: events landing within the
    /// engine's `1e-15` coalescing window form ONE allocation epoch.
    /// Eight flows arriving at the same instant must not cost eight
    /// epochs — this pins the batching semantics the incremental
    /// allocator's dirty-set pass relies on.
    #[test]
    fn same_timestamp_arrivals_batch_into_one_epoch() {
        let net = mini_net();
        let mk = |starts: &[f64]| -> Vec<FlowSpec> {
            starts
                .iter()
                .enumerate()
                .map(|(i, &start)| FlowSpec {
                    id: i as u64,
                    src: net.servers[i % net.servers.len()],
                    dst: net.servers[(i + 3) % net.servers.len()],
                    bytes: 1e7,
                    start,
                })
                .collect()
        };
        let cfg = SimConfig {
            transport: Transport::mptcp8(),
            ..SimConfig::default()
        };
        // All eight arrive at t = 0.1 exactly: epoch count must match
        // a single staggered arrival count, not scale with the batch.
        let batched = mk(&[0.1; 8]);
        let mut sink = AllocCounter { epochs: 0 };
        let res = flowsim::try_simulate_traced(&net.graph, &batched, &cfg, &mut sink)
            .expect("valid workload");
        // Epochs: t=0 bootstrap, the t=0.1 batch, then one per
        // distinct completion instant — never one per arrival.
        let distinct_finishes = {
            let mut f: Vec<u64> = res
                .records
                .iter()
                .map(|r| r.finish.expect("completes").to_bits())
                .collect();
            f.sort_unstable();
            f.dedup();
            f.len()
        };
        assert_eq!(
            sink.epochs,
            2 + distinct_finishes,
            "same-instant arrivals must form one allocation epoch"
        );
        // And the batch is semantically identical to listing the same
        // instant eight times in any order — reference agrees.
        let old = simulate_reference(&net.graph, &batched, &cfg);
        assert_eq!(res.records, old.records);
    }
}
