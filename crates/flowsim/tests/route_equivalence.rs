//! Pinning tests for the failure-epoch routing fix: the provider's
//! switch-level masked routing (mask failed links between the ingress
//! and egress switches, splice surviving uplinks, park on a dead
//! uplink) must yield exactly the path sets of the **server-level
//! oracle** — a from-scratch masked Yen run per server pair — on mini
//! topologies, for both the lazy and the shared-table backends.

use flowsim::provider::{MptcpProvider, PathProvider};
use flowsim::sim::FlowSpec;
use flowsim::FailedLinks;
use netgraph::{yen, Graph, LinkId, NodeId, Path, PathArena};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::SharedRouteTable;
use std::sync::Arc;
use topology::ClosParams;

/// All switch-switch directed links (one per duplex cable).
fn cables(g: &Graph) -> Vec<LinkId> {
    g.link_ids()
        .filter(|&l| {
            let info = g.link(l);
            g.node(info.src).kind.is_switch()
                && g.node(info.dst).kind.is_switch()
                && info.reverse.is_none_or(|r| r.0 > l.0)
        })
        .collect()
}

/// The server-level oracle: a fresh masked Yen run between the servers.
fn oracle(g: &Graph, src: NodeId, dst: NodeId, failed: &FailedLinks, k: usize) -> Vec<Path> {
    yen::k_shortest_paths_by(g, src, dst, k, |l| {
        if failed.is_down(l) {
            f64::INFINITY
        } else {
            1.0
        }
    })
}

fn spec(id: u64, src: NodeId, dst: NodeId) -> FlowSpec {
    FlowSpec {
        id,
        src,
        dst,
        bytes: 1.0,
        start: 0.0,
    }
}

fn routed_paths(
    p: &mut MptcpProvider,
    g: &Graph,
    arena: &mut PathArena,
    failed: &FailedLinks,
    sp: &FlowSpec,
) -> Vec<Path> {
    p.route(g, arena, failed, sp).map_or(Vec::new(), |r| {
        r.path_ids.iter().map(|&i| arena.get(i).clone()).collect()
    })
}

#[test]
fn provider_matches_server_level_oracle_under_random_failures() {
    let clos = ClosParams::mini().build();
    let g = &clos.net.graph;
    let servers = g.servers();
    let all_cables = cables(g);
    for k in [4usize, 8] {
        let table = Arc::new(SharedRouteTable::build(g, k));
        let mut rng = ChaCha8Rng::seed_from_u64(0x5eed ^ k as u64);
        for trial in 0..6usize {
            let mut failed = FailedLinks::new(g.link_count());
            let mut chosen = all_cables.clone();
            chosen.shuffle(&mut rng);
            for &l in chosen.iter().take(trial * 2) {
                failed.fail(l);
                if let Some(r) = g.link(l).reverse {
                    failed.fail(r);
                }
            }
            let mut lazy = MptcpProvider::new(k, true);
            let mut shared = MptcpProvider::with_shared(table.clone(), true);
            let mut arena_lazy = PathArena::new();
            let mut arena_shared = PathArena::new();
            // Inter-rack, intra-rack, and random pairs.
            let mut pairs = vec![
                (servers[0], servers[1]),
                (servers[0], servers[servers.len() - 1]),
                (servers[2], servers[3]),
            ];
            for _ in 0..8 {
                let a = servers[rng.gen_range(0..servers.len())];
                let b = servers[rng.gen_range(0..servers.len())];
                if a != b {
                    pairs.push((a, b));
                }
            }
            for (id, &(src, dst)) in pairs.iter().enumerate() {
                let want = oracle(g, src, dst, &failed, k);
                let sp = spec(id as u64, src, dst);
                let got_lazy = routed_paths(&mut lazy, g, &mut arena_lazy, &failed, &sp);
                let got_shared = routed_paths(&mut shared, g, &mut arena_shared, &failed, &sp);
                assert_eq!(
                    got_lazy, want,
                    "lazy backend diverges from the oracle (k={k}, trial={trial})"
                );
                assert_eq!(
                    got_shared, want,
                    "shared backend diverges from the oracle (k={k}, trial={trial})"
                );
            }
            // Recovery epoch: the same providers must match a fresh
            // no-failure oracle once every link is back up.
            failed.set_all_up();
            let (src, dst) = (servers[0], servers[servers.len() - 1]);
            let want = oracle(g, src, dst, &failed, k);
            let sp = spec(99, src, dst);
            assert_eq!(
                routed_paths(&mut lazy, g, &mut arena_lazy, &failed, &sp),
                want
            );
            assert_eq!(
                routed_paths(&mut shared, g, &mut arena_shared, &failed, &sp),
                want
            );
        }
    }
}

#[test]
fn dead_uplink_parks_exactly_like_the_oracle() {
    let clos = ClosParams::mini().build();
    let g = &clos.net.graph;
    let servers = g.servers();
    let (src, dst) = (servers[0], servers[servers.len() - 1]);
    let si = g.server_uplink_switch(src).unwrap();
    let up = g.find_link(src, si).unwrap();
    let mut failed = FailedLinks::new(g.link_count());
    failed.fail(up);
    let k = 4;
    let table = Arc::new(SharedRouteTable::build(g, k));
    let mut arena = PathArena::new();
    for provider in [
        &mut MptcpProvider::new(k, true),
        &mut MptcpProvider::with_shared(table, true),
    ] {
        // src's only outgoing link is dead: oracle finds nothing, the
        // provider parks.
        assert!(oracle(g, src, dst, &failed, k).is_empty());
        assert!(provider
            .route(g, &mut arena, &failed, &spec(0, src, dst))
            .is_none());
        // The reverse direction never crosses the dead directed link.
        let want = oracle(g, dst, src, &failed, k);
        assert!(!want.is_empty());
        assert_eq!(
            routed_paths(provider, g, &mut arena, &failed, &spec(1, dst, src)),
            want
        );
    }
}
