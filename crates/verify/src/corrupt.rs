//! Corruption injection for negative testing.
//!
//! Each corruption plants one realistic defect into an otherwise clean
//! artifact; the battery must flag it with the documented rule code.
//! CI runs `ftcheck --smoke --inject <name>` for every variant and
//! requires a non-zero exit.

use crate::diag::RuleCode;
use flat_tree::FlatTreeInstance;
use flowsim::faults::StuckConfig;
use flowsim::{FaultPlan, FaultSchedule};

/// A plantable defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Plug a side cable between two non-adjacent pods, as a technician
    /// swapping two trunk cables would.
    SwapSideLink,
    /// Land one extra cable on a converter's core, exceeding the §3.1
    /// port budget.
    OverloadPort,
    /// Drop the k-shortest-path set of the first switch pair, as a
    /// truncated rule download would.
    TruncatePaths,
    /// Reverse the compiled fault schedule, as hand-edited event lists
    /// end up.
    UnsortedSchedule,
    /// Drop the last recovery event, leaving a flap's promised `up_at`
    /// with no matching up event.
    DanglingRecovery,
    /// Point a stuck-converter override one past the converter
    /// inventory, as a stale plan replayed on a smaller topology would.
    StuckOutOfRange,
    /// Bump one shard's first switch index past the job set, as an
    /// off-by-one in partition replay would.
    ShardOutOfRange,
}

impl Corruption {
    /// Every variant, in CLI order.
    pub const ALL: [Corruption; 7] = [
        Corruption::SwapSideLink,
        Corruption::OverloadPort,
        Corruption::TruncatePaths,
        Corruption::UnsortedSchedule,
        Corruption::DanglingRecovery,
        Corruption::StuckOutOfRange,
        Corruption::ShardOutOfRange,
    ];

    /// The `--inject` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Corruption::SwapSideLink => "swap-side-link",
            Corruption::OverloadPort => "overload-port",
            Corruption::TruncatePaths => "truncate-paths",
            Corruption::UnsortedSchedule => "unsorted-schedule",
            Corruption::DanglingRecovery => "dangling-recovery",
            Corruption::StuckOutOfRange => "stuck-out-of-range",
            Corruption::ShardOutOfRange => "shard-out-of-range",
        }
    }

    /// Parses the `--inject` spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The rule code the battery must report for this corruption.
    pub fn expected_code(self) -> RuleCode {
        match self {
            Corruption::SwapSideLink => RuleCode::SideWiring,
            Corruption::OverloadPort => RuleCode::PortBudget,
            Corruption::TruncatePaths => RuleCode::Blackhole,
            Corruption::UnsortedSchedule => RuleCode::FaultScheduleOrder,
            Corruption::DanglingRecovery => RuleCode::FaultScheduleOrder,
            Corruption::StuckOutOfRange => RuleCode::FaultTargets,
            Corruption::ShardOutOfRange => RuleCode::ShardPartition,
        }
    }

    /// Applies a graph-level corruption to an instance. `TruncatePaths`
    /// is routing-level and the `FT-Fxxx` variants are fault-plane-level;
    /// both leave the graph untouched.
    pub fn apply(self, inst: &mut FlatTreeInstance) {
        let rate = crate::graph_rules::unit_gbps(&*inst);
        match self {
            Corruption::SwapSideLink => {
                assert!(
                    inst.pod_edges.len() >= 3,
                    "side-link swap needs a non-adjacent pod pair"
                );
                let a = inst.pod_edges[0][0];
                let b = inst.pod_edges[2][0];
                inst.net.graph.add_duplex_link(a, b, rate);
            }
            Corruption::OverloadPort => {
                let edge = inst.pod_edges[0][0];
                let core = inst.cores[0];
                inst.net.graph.add_duplex_link(edge, core, rate);
            }
            Corruption::TruncatePaths
            | Corruption::UnsortedSchedule
            | Corruption::DanglingRecovery
            | Corruption::StuckOutOfRange
            | Corruption::ShardOutOfRange => {}
        }
    }

    /// Number of leading switch pairs whose path sets the routing
    /// battery empties under this corruption.
    pub fn truncated_pairs(self) -> usize {
        match self {
            Corruption::TruncatePaths => 1,
            _ => 0,
        }
    }

    /// Applies a fault-plane corruption to the battery's fault-cell
    /// artifacts: the plan, its compiled schedule, and the shard
    /// partition. Graph/routing variants leave them untouched.
    pub fn apply_to_faults(
        self,
        converter_count: usize,
        plan: &mut FaultPlan,
        schedule: &mut FaultSchedule,
        partition: &mut [Vec<usize>],
        jobs: usize,
    ) {
        match self {
            Corruption::UnsortedSchedule => {
                assert!(schedule.events.len() >= 2, "need events to unsort");
                schedule.events.reverse();
            }
            Corruption::DanglingRecovery => {
                // Drop every up event of one flapped cable, so the
                // plan's promised `up_at` has no surviving match.
                let link = plan
                    .link_flaps
                    .last()
                    .expect("fault cell plans at least one flap")
                    .link;
                schedule.events.retain(|e| !(e.up && e.link == link));
            }
            Corruption::StuckOutOfRange => {
                plan.stuck_converter(converter_count, StuckConfig::Default);
            }
            Corruption::ShardOutOfRange => {
                let sw = partition
                    .iter_mut()
                    .flat_map(|shard| shard.iter_mut())
                    .next()
                    .expect("fault cell partitions at least one switch");
                *sw = jobs;
            }
            Corruption::SwapSideLink | Corruption::OverloadPort | Corruption::TruncatePaths => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in Corruption::ALL {
            assert_eq!(Corruption::from_name(c.name()), Some(c));
        }
        assert_eq!(Corruption::from_name("nope"), None);
    }

    #[test]
    fn fault_variants_expect_fault_codes() {
        for c in [
            Corruption::UnsortedSchedule,
            Corruption::DanglingRecovery,
            Corruption::StuckOutOfRange,
            Corruption::ShardOutOfRange,
        ] {
            assert!(c.expected_code().code().starts_with("FT-F"), "{c:?}");
        }
    }
}
