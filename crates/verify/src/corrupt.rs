//! Corruption injection for negative testing.
//!
//! Each corruption plants one realistic defect into an otherwise clean
//! artifact; the battery must flag it with the documented rule code.
//! CI runs `ftcheck --smoke --inject <name>` for every variant and
//! requires a non-zero exit.

use crate::diag::RuleCode;
use flat_tree::FlatTreeInstance;

/// A plantable defect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Plug a side cable between two non-adjacent pods, as a technician
    /// swapping two trunk cables would.
    SwapSideLink,
    /// Land one extra cable on a converter's core, exceeding the §3.1
    /// port budget.
    OverloadPort,
    /// Drop the k-shortest-path set of the first switch pair, as a
    /// truncated rule download would.
    TruncatePaths,
}

impl Corruption {
    /// Every variant, in CLI order.
    pub const ALL: [Corruption; 3] = [
        Corruption::SwapSideLink,
        Corruption::OverloadPort,
        Corruption::TruncatePaths,
    ];

    /// The `--inject` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Corruption::SwapSideLink => "swap-side-link",
            Corruption::OverloadPort => "overload-port",
            Corruption::TruncatePaths => "truncate-paths",
        }
    }

    /// Parses the `--inject` spelling.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.name() == name)
    }

    /// The rule code the battery must report for this corruption.
    pub fn expected_code(self) -> RuleCode {
        match self {
            Corruption::SwapSideLink => RuleCode::SideWiring,
            Corruption::OverloadPort => RuleCode::PortBudget,
            Corruption::TruncatePaths => RuleCode::Blackhole,
        }
    }

    /// Applies a graph-level corruption to an instance. `TruncatePaths`
    /// is routing-level and leaves the graph untouched — the battery
    /// truncates the path set instead.
    pub fn apply(self, inst: &mut FlatTreeInstance) {
        let rate = crate::graph_rules::unit_gbps(&*inst);
        match self {
            Corruption::SwapSideLink => {
                assert!(
                    inst.pod_edges.len() >= 3,
                    "side-link swap needs a non-adjacent pod pair"
                );
                let a = inst.pod_edges[0][0];
                let b = inst.pod_edges[2][0];
                inst.net.graph.add_duplex_link(a, b, rate);
            }
            Corruption::OverloadPort => {
                let edge = inst.pod_edges[0][0];
                let core = inst.cores[0];
                inst.net.graph.add_duplex_link(edge, core, rate);
            }
            Corruption::TruncatePaths => {}
        }
    }

    /// Number of leading switch pairs whose path sets the routing
    /// battery empties under this corruption.
    pub fn truncated_pairs(self) -> usize {
        match self {
            Corruption::TruncatePaths => 1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for c in Corruption::ALL {
            assert_eq!(Corruption::from_name(c.name()), Some(c));
        }
        assert_eq!(Corruption::from_name("nope"), None);
    }
}
