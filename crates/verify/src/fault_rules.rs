//! Fault-plan rules (`FT-Fxxx`): static checks over the failure-injection
//! artifacts the resilience experiments consume.
//!
//! The fault plane has three hand-off points where a malformed artifact
//! silently corrupts an experiment instead of crashing it:
//!
//! 1. the compiled [`FaultSchedule`] the flow engine replays — it must
//!    be time-sorted (the engine processes events in order, never
//!    re-sorting) and every flap that promises a recovery must deliver
//!    one (`FT-F001`);
//! 2. the stuck-converter overrides `ft_bench` maps onto
//!    [`flat_tree::FlatTree::instantiate_with_overrides`] — a converter
//!    id past the inventory or a configuration a 4-port blade cannot
//!    latch panics deep inside instantiation (`FT-F002`);
//! 3. the controller shard partition the staged conversion machine
//!    executes — it must be an exact in-range permutation of the
//!    per-switch job set, or rules are installed twice or never
//!    (`FT-F003`).

use crate::diag::{Finding, RuleCode};
use flat_tree::{ConverterConfig, FlatTree};
use flowsim::faults::{FaultPlan, FaultSchedule, StuckConfig};

/// The `flowsim`-side stuck configuration mapped to the `flat_tree`
/// configuration it forces (the same mapping `ft_bench` applies).
pub fn to_converter_config(c: StuckConfig) -> ConverterConfig {
    match c {
        StuckConfig::Default => ConverterConfig::Default,
        StuckConfig::Local => ConverterConfig::Local,
        StuckConfig::Side => ConverterConfig::Side,
        StuckConfig::Cross => ConverterConfig::Cross,
    }
}

/// FT-F001 — the compiled schedule is sorted by `(time, down-before-up,
/// link)` and every flap with a recovery time has its up event present.
pub fn check_schedule(plan: &FaultPlan, schedule: &FaultSchedule) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, pair) in schedule.events.windows(2).enumerate() {
        let key = |e: &flowsim::LinkEvent| (e.time, e.up, e.link.idx());
        let (a, b) = (key(&pair[0]), key(&pair[1]));
        if a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
            == std::cmp::Ordering::Greater
        {
            findings.push(Finding::new(
                RuleCode::FaultScheduleOrder,
                format!("event[{i}]"),
                format!(
                    "schedule out of order: t={} up={} link={} precedes t={} up={} link={}",
                    a.0, a.1, a.2, b.0, b.1, b.2
                ),
            ));
        }
    }
    for f in &plan.link_flaps {
        let Some(up_at) = f.up_at else { continue };
        let recovered = schedule
            .events
            .iter()
            .any(|e| e.up && e.link == f.link && e.time == up_at);
        if !recovered {
            findings.push(Finding::new(
                RuleCode::FaultScheduleOrder,
                format!("link{}", f.link.idx()),
                format!(
                    "flap down@{} promises recovery @{up_at} but the schedule has no up event",
                    f.down_at
                ),
            ));
        }
    }
    findings
}

/// FT-F002 — every stuck-converter override targets a converter that
/// exists and forces a configuration its blade kind can latch.
pub fn check_stuck_targets(ft: &FlatTree, plan: &FaultPlan) -> Vec<Finding> {
    let count = ft.layout.converters.len();
    let mut findings = Vec::new();
    for s in &plan.stuck_converters {
        if s.converter >= count {
            findings.push(Finding::new(
                RuleCode::FaultTargets,
                format!("converter{}", s.converter),
                format!(
                    "stuck-converter override targets id {} of {count}",
                    s.converter
                ),
            ));
            continue;
        }
        let kind = ft.layout.converters[s.converter].blade.kind();
        let cfg = to_converter_config(s.config);
        if !cfg.valid_for(kind) {
            findings.push(Finding::new(
                RuleCode::FaultTargets,
                format!("converter{}", s.converter),
                format!("{cfg:?} cannot be latched by a {kind:?} converter"),
            ));
        }
    }
    findings
}

/// FT-F003 — the controller shard partition is an exact permutation of
/// `0..jobs` with every switch assigned to exactly one in-range shard.
pub fn check_shard_partition(jobs: usize, partition: &[Vec<usize>]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen = vec![0usize; jobs];
    for (shard, members) in partition.iter().enumerate() {
        for &sw in members {
            if sw >= jobs {
                findings.push(Finding::new(
                    RuleCode::ShardPartition,
                    format!("shard{shard}"),
                    format!("switch index {sw} out of range (jobs={jobs})"),
                ));
            } else {
                seen[sw] += 1;
            }
        }
    }
    for (sw, &n) in seen.iter().enumerate() {
        if n != 1 {
            findings.push(Finding::new(
                RuleCode::ShardPartition,
                format!("switch{sw}"),
                format!("assigned to {n} shards (want exactly 1)"),
            ));
        }
    }
    findings
}

/// Runs all fault-plan rules over one plan's artifacts.
pub fn check(
    ft: &FlatTree,
    plan: &FaultPlan,
    schedule: &FaultSchedule,
    jobs: usize,
    partition: &[Vec<usize>],
) -> Vec<Finding> {
    let mut findings = check_schedule(plan, schedule);
    findings.extend(check_stuck_targets(ft, plan));
    findings.extend(check_shard_partition(jobs, partition));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_tree::{ModeAssignment, PodMode};
    use testbed::rig::testbed_params;

    fn testbed() -> FlatTree {
        FlatTree::new(testbed_params()).expect("testbed params are valid")
    }

    fn compiled(ft: &FlatTree, plan: &FaultPlan) -> FaultSchedule {
        let inst = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Global));
        plan.compile(&inst.net.graph).expect("plan compiles")
    }

    #[test]
    fn clean_plan_has_no_findings() {
        let ft = testbed();
        let mut plan = FaultPlan::new(7);
        let inst = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Global));
        let link = inst.net.graph.link_ids().next().expect("graph has links");
        plan.flap(link, 0.5, Some(1.5));
        plan.stuck_converter(0, StuckConfig::Default);
        let schedule = compiled(&ft, &plan);
        let partition = control::resilient::shard_partition(&[(3, 2), (1, 1), (2, 2)], 2);
        assert_eq!(check(&ft, &plan, &schedule, 3, &partition), vec![]);
    }

    #[test]
    fn unsorted_schedule_and_dropped_recovery_fire_f001() {
        let ft = testbed();
        let mut plan = FaultPlan::new(7);
        let inst = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Global));
        let link = inst.net.graph.link_ids().next().expect("graph has links");
        plan.flap(link, 0.5, Some(1.5));
        let mut schedule = compiled(&ft, &plan);
        schedule.events.reverse();
        let found = check_schedule(&plan, &schedule);
        assert!(
            found.iter().any(|f| f.code == "FT-F001"),
            "unsorted: {found:?}"
        );

        let mut schedule = compiled(&ft, &plan);
        schedule.events.retain(|e| !e.up);
        let found = check_schedule(&plan, &schedule);
        assert!(
            found.iter().any(|f| f.code == "FT-F001"),
            "dropped recovery: {found:?}"
        );
    }

    #[test]
    fn bad_stuck_targets_fire_f002() {
        let ft = testbed();
        let count = ft.layout.converters.len();
        let mut plan = FaultPlan::new(7);
        plan.stuck_converter(count, StuckConfig::Default);
        let found = check_stuck_targets(&ft, &plan);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].code, "FT-F002");

        // A 4-port (blade A) converter cannot latch the side circuit.
        let four_port = ft
            .layout
            .converters
            .iter()
            .position(|c| c.blade.kind() == flat_tree::ConverterKind::FourPort)
            .expect("testbed has 4-port converters");
        let mut plan = FaultPlan::new(7);
        plan.stuck_converter(four_port, StuckConfig::Side);
        let found = check_stuck_targets(&ft, &plan);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].code, "FT-F002");
    }

    #[test]
    fn bad_shard_partitions_fire_f003() {
        // Out-of-range index.
        let found = check_shard_partition(2, &[vec![0, 5], vec![1]]);
        assert!(found.iter().any(|f| f.code == "FT-F003"), "{found:?}");

        // Duplicate assignment.
        let found = check_shard_partition(2, &[vec![0, 1], vec![1]]);
        assert!(found.iter().any(|f| f.code == "FT-F003"), "{found:?}");

        // Dropped switch.
        let found = check_shard_partition(3, &[vec![0], vec![1]]);
        assert!(found.iter().any(|f| f.code == "FT-F003"), "{found:?}");

        // The real partitioner passes for a spread of shapes.
        for shards in 1..4 {
            let jobs = [(5, 4), (1, 0), (3, 3), (2, 2), (8, 1)];
            let p = control::resilient::shard_partition(&jobs, shards);
            assert_eq!(p.len(), shards);
            assert_eq!(check_shard_partition(jobs.len(), &p), vec![]);
        }
    }
}
