//! Routing rules (`FT-Rxxx`): k-shortest-path sets, source-route
//! encodability, and route-cache epoch discipline.
//!
//! The path-set checks run at switch-pair granularity — exactly the
//! granularity the rule compiler installs state at (§4.2.1 Observation
//! 2) — over *every* ordered pair of ingress switches, so a blackhole
//! between any two server racks is caught even though servers are
//! spliced on afterwards.

use crate::diag::{Finding, RuleCode};
use flat_tree::FlatTreeInstance;
use flowsim::failures::FailedLinks;
use flowsim::provider::{MptcpProvider, PathProvider};
use flowsim::sim::FlowSpec;
use netgraph::{Graph, NodeId, Path, PathArena};
use routing::source_routing::{self, SourceRouteHeader, INITIAL_TTL, MAX_HOPS};
use routing::SharedRouteTable;
use std::collections::{BTreeMap, BTreeSet};

/// The ingress switches of an instance (every switch with a server),
/// with one representative server each, ascending by node id.
pub fn ingress_switches(inst: &FlatTreeInstance) -> BTreeMap<NodeId, NodeId> {
    let mut out = BTreeMap::new();
    for &s in &inst.net.servers {
        out.entry(inst.ingress_switch(s)).or_insert(s);
    }
    out
}

fn pair_label(g: &Graph, a: NodeId, b: NodeId) -> String {
    format!("{} -> {}", g.node(a).label, g.node(b).label)
}

/// Checks one switch-pair path set: FT-R001 (blackhole), FT-R002
/// (loop), FT-R003 (graph validity), FT-R004 (MAC hop budget).
///
/// Taking the path set as an argument (rather than computing it) keeps
/// the rule pure, so the corruption injector can feed it truncated sets.
pub fn path_set_findings(
    g: &Graph,
    a: NodeId,
    b: NodeId,
    paths: &[Path],
    k: usize,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let loc = pair_label(g, a, b);
    if paths.is_empty() {
        out.push(Finding::new(
            RuleCode::Blackhole,
            loc,
            "k-shortest-path set is empty for a switch pair with attached servers",
        ));
        return out;
    }
    if paths.len() > k {
        out.push(Finding::new(
            RuleCode::Blackhole,
            loc.clone(),
            format!("{} paths exceed the k = {k} budget", paths.len()),
        ));
    }
    for (i, p) in paths.iter().enumerate() {
        let ploc = format!("{loc} path {i}");
        let mut seen = BTreeSet::new();
        if !p.nodes.iter().all(|&n| seen.insert(n)) {
            out.push(Finding::new(
                RuleCode::RoutingLoop,
                ploc.clone(),
                "path visits a node twice",
            ));
        }
        if let Err(e) = p.validate(g) {
            out.push(Finding::new(RuleCode::PathInvalid, ploc, e));
        }
    }
    // §4.2.2's diameter claim, statically: after splicing server
    // endpoints on, every node of a switch-level path consumes one
    // MAC-encoded hop. Deep k-shortest detours legitimately exceed the
    // budget (they stay on IP-prefix rules), but the *shortest* path of
    // every pair must be source-routable or the claimed headroom is gone.
    if let Some(shortest) = paths.first() {
        if shortest.nodes.len() > MAX_HOPS {
            out.push(Finding::new(
                RuleCode::SourceRouteBudget,
                loc,
                format!(
                    "shortest path needs {} switch hops, exceeding the {MAX_HOPS}-hop MAC budget",
                    shortest.nodes.len()
                ),
            ));
        }
    }
    out
}

/// FT-R004 (dynamic half): compiles the spliced server-level shortest
/// path into the MAC+TTL header and replays it with only the static
/// per-TTL rules; the replay must visit exactly the path's nodes.
pub fn source_route_replay_findings(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    switch_path: &Path,
) -> Vec<Finding> {
    let mut nodes = Vec::with_capacity(switch_path.nodes.len() + 2);
    nodes.push(src);
    nodes.extend_from_slice(&switch_path.nodes);
    nodes.push(dst);
    let loc = pair_label(g, src, dst);
    let Some(full) = Path::from_nodes(g, &nodes) else {
        return vec![Finding::new(
            RuleCode::PathInvalid,
            loc,
            "server uplinks cannot be spliced onto the switch path",
        )];
    };
    let ports = match source_routing::compile_path(g, &full) {
        Ok(p) => p,
        Err(e) => return vec![Finding::new(RuleCode::SourceRouteBudget, loc, e)],
    };
    let header = SourceRouteHeader {
        mac: source_routing::encode_ports(&ports),
        ttl: INITIAL_TTL,
    };
    let ingress = full.nodes[1];
    match source_routing::forward(g, ingress, header, ports.len()) {
        Ok(visited) if visited == full.nodes[1..] => Vec::new(),
        Ok(visited) => vec![Finding::new(
            RuleCode::SourceRouteBudget,
            loc,
            format!(
                "replayed route diverges after hop {}",
                visited
                    .iter()
                    .zip(&full.nodes[1..])
                    .take_while(|(a, b)| a == b)
                    .count()
            ),
        )],
        Err(e) => vec![Finding::new(RuleCode::SourceRouteBudget, loc, e)],
    }
}

/// FT-R005: the MPTCP provider's route cache must key on the
/// [`FailedLinks`] epoch. For a sampled server pair the rule fails a
/// link on the pair's first subflow, re-routes (the answer must avoid
/// the dead link), recovers, and re-routes again (the answer must match
/// the pre-failure routes exactly).
pub fn cache_epoch_findings(g: &Graph, src: NodeId, dst: NodeId, k: usize) -> Vec<Finding> {
    let loc = pair_label(g, src, dst);
    let mut provider = MptcpProvider::new(k, false);
    let mut arena = PathArena::new();
    let mut failed = FailedLinks::new(g.link_count());
    let spec = FlowSpec {
        id: 0,
        src,
        dst,
        bytes: 1.0,
        start: 0.0,
    };
    let Some(before) = provider.route(g, &mut arena, &failed, &spec) else {
        return vec![Finding::new(
            RuleCode::Blackhole,
            loc,
            "provider cannot route the pair with every link up",
        )];
    };
    let dead = arena.get(before.path_ids[0]).links[1];
    failed.fail(dead);
    let mut out = Vec::new();
    match provider.route(g, &mut arena, &failed, &spec) {
        Some(after) => {
            for &pid in &after.path_ids {
                if !failed.path_alive(&arena.get(pid).links) {
                    out.push(Finding::new(
                        RuleCode::CacheEpoch,
                        loc.clone(),
                        "post-failure route still crosses the failed link (stale cache entry)",
                    ));
                }
            }
        }
        None => out.push(Finding::new(
            RuleCode::CacheEpoch,
            loc.clone(),
            "pair became unroutable after a single cable failure",
        )),
    }
    failed.recover(dead);
    match provider.route(g, &mut arena, &failed, &spec) {
        Some(restored) if restored.path_ids == before.path_ids => {}
        Some(_) => out.push(Finding::new(
            RuleCode::CacheEpoch,
            loc,
            "post-recovery routes differ from the pre-failure routes (epoch not refreshed)",
        )),
        None => out.push(Finding::new(
            RuleCode::CacheEpoch,
            loc,
            "pair unroutable after full recovery",
        )),
    }
    out
}

/// The full routing battery for one instantiated mode with `k`
/// concurrent paths. `truncate_pairs` empties the path set of that many
/// leading switch pairs before checking — the hook the corruption
/// injector uses to prove FT-R001 fires.
pub fn check_with_truncation(
    inst: &FlatTreeInstance,
    k: usize,
    truncate_pairs: usize,
) -> Vec<Finding> {
    let g = &inst.net.graph;
    let ingress = ingress_switches(inst);
    // Precompute every ordered ingress pair's path set in parallel; the
    // FT-R checks then reuse the table instead of running Yen serially
    // pair-by-pair. Iteration order (and thus finding order) is the
    // same nested ascending order as before.
    let pairs: Vec<(NodeId, NodeId)> = ingress
        .keys()
        .flat_map(|&a| {
            ingress
                .keys()
                .filter_map(move |&b| (a != b).then_some((a, b)))
        })
        .collect();
    let rt = SharedRouteTable::build_for_pairs(g, k, &pairs);
    let mut out = Vec::new();
    let mut pair_index = 0usize;
    for (&a, &sa) in &ingress {
        for (&b, &sb) in &ingress {
            if a == b {
                continue;
            }
            let paths = rt
                .switch_paths(a, b)
                .expect("ingress pair covered by the table")
                .to_vec();
            let paths = if pair_index < truncate_pairs {
                Vec::new()
            } else {
                paths
            };
            pair_index += 1;
            out.extend(path_set_findings(g, a, b, &paths, k));
            if let Some(shortest) = paths.first() {
                out.extend(source_route_replay_findings(g, sa, sb, shortest));
            }
        }
    }
    // Epoch discipline is a per-provider property; two distant sampled
    // pairs witness it without re-running Yen for every pair.
    let servers = &inst.net.servers;
    if servers.len() >= 2 {
        out.extend(cache_epoch_findings(
            g,
            servers[0],
            servers[servers.len() - 1],
            k,
        ));
    }
    if servers.len() >= 4 {
        out.extend(cache_epoch_findings(
            g,
            servers[1],
            servers[servers.len() / 2],
            k,
        ));
    }
    out
}

/// The full routing battery (no corruption).
pub fn check(inst: &FlatTreeInstance, k: usize) -> Vec<Finding> {
    check_with_truncation(inst, k, 0)
}
