//! Control rules (`FT-Cxxx`): conversion deltas and rule-churn algebra.
//!
//! Runs every ordered mode-to-mode conversion of the assignment grid
//! through the production [`Controller`] artifacts and checks, per pair:
//! the physical delta stays inside the converter inventory (FT-C001),
//! the rule delete/add sets are disjoint and replay the old rule set
//! into the new one exactly (FT-C002), and the resilient-conversion
//! stage plan distributes exactly the rule diff over the per-switch
//! shards (FT-C003).

use crate::diag::{Finding, RuleCode};
use control::controller::Controller;
use control::conversion::DelayModel;
use flat_tree::{invariants, FlatTree, ModeAssignment};
use routing::rules::RuleSet;
use std::collections::BTreeSet;

/// FT-C002: the delete and add sets must be disjoint per switch, and
/// applying `delete` then `add` to `from` must reproduce `to` exactly.
pub fn rule_churn_findings(label: &str, from: &RuleSet, to: &RuleSet) -> Vec<Finding> {
    let mut out = Vec::new();
    let switches: BTreeSet<_> = from
        .per_switch
        .keys()
        .chain(to.per_switch.keys())
        .copied()
        .collect();
    static EMPTY: BTreeSet<routing::rules::Rule> = BTreeSet::new();
    for sw in switches {
        let a = from.per_switch.get(&sw).unwrap_or(&EMPTY);
        let b = to.per_switch.get(&sw).unwrap_or(&EMPTY);
        let deletes: BTreeSet<_> = a.difference(b).copied().collect();
        let adds: BTreeSet<_> = b.difference(a).copied().collect();
        if deletes.intersection(&adds).next().is_some() {
            out.push(Finding::new(
                RuleCode::RuleChurn,
                format!("{label} switch {}", sw.0),
                "a rule appears in both the delete and the add set",
            ));
        }
        let replayed: BTreeSet<_> = a.difference(&deletes).chain(adds.iter()).copied().collect();
        if &replayed != b {
            out.push(Finding::new(
                RuleCode::RuleChurn,
                format!("{label} switch {}", sw.0),
                "applying the delete/add sets does not reproduce the target rules",
            ));
        }
    }
    out
}

/// FT-C003: the per-switch stage plan must sum to the rule diff.
pub fn stage_plan_findings(
    label: &str,
    plan: &[(usize, usize)],
    diff: routing::rules::RuleDiff,
) -> Vec<Finding> {
    let (d, a) = plan
        .iter()
        .fold((0, 0), |(d, a), &(pd, pa)| (d + pd, a + pa));
    if (d, a) == (diff.deletes, diff.adds) {
        Vec::new()
    } else {
        vec![Finding::new(
            RuleCode::StagePlan,
            label.to_string(),
            format!(
                "stage plan covers {d} deletes / {a} adds but the delta is {} / {}",
                diff.deletes, diff.adds
            ),
        )]
    }
}

/// The full control battery over every ordered pair of `assignments`.
pub fn check(ft: &FlatTree, assignments: &[ModeAssignment], k: usize) -> Vec<Finding> {
    let controller = Controller::new(ft.clone(), k, DelayModel::testbed());
    let mut out = Vec::new();
    for from in assignments {
        for to in assignments {
            if from.label() == to.label() {
                continue;
            }
            let label = format!("{} -> {}", from.label(), to.label());
            let old = controller.artifacts(from);
            let new = controller.artifacts(to);
            // FT-C001: the crosspoint delta touches converter circuits only.
            out.extend(
                invariants::conversion_delta_violations(ft, &old.instance, &new.instance)
                    .into_iter()
                    .map(|v| {
                        Finding::new(
                            RuleCode::ConversionDelta,
                            format!("{label} {}", v.location),
                            v.detail,
                        )
                    }),
            );
            out.extend(rule_churn_findings(&label, &old.rules, &new.rules));
            let churn = controller.churn(from, to);
            out.extend(stage_plan_findings(
                &label,
                &churn.per_switch,
                old.rules.diff(&new.rules),
            ));
        }
    }
    out
}
