//! # verify — `ftcheck`, the static invariant verifier
//!
//! Statically analyzes generated flat-tree artifacts — instantiated
//! topologies, k-shortest-path sets, conversion deltas, and the §4.1
//! address plan — without running any simulation, and emits structured,
//! deterministic diagnostics (rule code, severity, location, fix hint).
//!
//! The rule battery:
//!
//! * **graph rules** (`FT-Gxxx`) — per-switch port budgets, converter
//!   configuration validity, symmetry of the §3.3 shifting side-link
//!   pattern, connectivity via union-find, sampled min-cut floors, and
//!   per-class degree regularity;
//! * **routing rules** (`FT-Rxxx`) — loop- and blackhole-freedom of the
//!   k-shortest-path set of every ingress-switch pair, MAC+TTL
//!   source-route encodability with a full replay (§4.2.2), and route
//!   cache / `FailedLinks` epoch discipline;
//! * **control rules** (`FT-Cxxx`) — conversions touch converter
//!   circuits only, rule delete/add algebra, stage-plan coverage;
//! * **addressing rules** (`FT-Axxx`) — uniqueness, field widths, and
//!   /24 aggregation of the MPTCP address plan;
//! * **fault-plan rules** (`FT-Fxxx`) — compiled fault schedules are
//!   time-sorted with every promised recovery present, stuck-converter
//!   overrides target real converters with latchable configs, and the
//!   controller shard partition is an exact in-range permutation.
//!
//! The graph rules share their rule source with the `strict-invariants`
//! cargo feature: [`flat_tree::invariants`] backs both the static
//! battery here and the `debug_assert!`s at the construction sites, so
//! the two can never drift apart.
//!
//! The `ftcheck` binary runs the battery over a (topology × check) grid
//! on the [`ft_bench::sweep`] driver and exits non-zero on any finding;
//! `--inject <corruption>` plants a defect to prove the battery catches
//! it (used by CI's negative tests).

pub mod addressing_rules;
pub mod battery;
pub mod control_rules;
pub mod corrupt;
pub mod diag;
pub mod fault_rules;
pub mod graph_rules;
pub mod routing_rules;

pub use battery::{run, run_cell, BatteryReport, Cell, CellReport, CheckKind};
pub use corrupt::Corruption;
pub use diag::{Finding, RuleCode, Severity};
