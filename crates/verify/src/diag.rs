//! Structured, deterministic diagnostics for the `ftcheck` rule battery.
//!
//! Every rule has a stable code (`FT-Gxxx` graph, `FT-Rxxx` routing,
//! `FT-Cxxx` control, `FT-Axxx` addressing), a fixed severity, and a
//! fix hint. Findings sort by `(code, location, detail)` so reports are
//! byte-identical across runs regardless of discovery order.

use serde::Serialize;
use std::fmt;

/// How bad a finding is. Everything the battery emits today is a hard
/// error — the invariants are structural facts, not style preferences —
/// but the severity channel keeps room for advisory rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Advisory: suspicious but not provably wrong.
    Warning,
    /// The artifact violates a structural invariant of the paper.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The rule catalog. Codes are append-only: never renumber a shipped rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum RuleCode {
    /// Per-switch port budget: cable count != the §3 wiring expectation.
    PortBudget,
    /// Converter configuration invalid for its blade kind, or the config
    /// vector does not match the converter inventory.
    ConverterConfig,
    /// The §3.3 shifting inter-pod side-link pattern is asymmetric.
    SidePattern,
    /// Inter-pod side cables in the graph disagree with the pattern.
    SideWiring,
    /// A server is not attached by exactly one uplink.
    ServerAttachment,
    /// A mode's graph is not a single connected component.
    Connectivity,
    /// A sampled min-cut fell below the Table 1 lower bound.
    MinCut,
    /// Switches of one class have unequal degrees in a uniform mode.
    DegreeRegularity,
    /// A reachable src/dst pair has an empty k-shortest-path set.
    Blackhole,
    /// A routed path revisits a node.
    RoutingLoop,
    /// A routed path does not exist edge-by-edge in the graph.
    PathInvalid,
    /// A path does not fit the §4.2.2 MAC+TTL source-route budget, or
    /// the encoded route does not replay to the same node sequence.
    SourceRouteBudget,
    /// A route cache served a stale answer across a `FailedLinks` epoch.
    CacheEpoch,
    /// A mode-to-mode delta changes cables no converter circuit owns.
    ConversionDelta,
    /// A conversion's delete and add rule sets overlap, or applying them
    /// does not reproduce the target rule set.
    RuleChurn,
    /// A resilient-conversion stage plan does not cover exactly the delta.
    StagePlan,
    /// Two configured addresses collide.
    AddressUnique,
    /// Per-switch /24 prefix aggregation is violated.
    PrefixAggregation,
    /// An address field exceeds its Figure 5a bit width, or a server has
    /// the wrong number of addresses for its mode's k.
    AddressWidth,
    /// A compiled fault schedule is out of order, or a flap's promised
    /// recovery event is missing.
    FaultScheduleOrder,
    /// A stuck-converter override targets a converter that does not
    /// exist, or forces a config its blade kind cannot latch.
    FaultTargets,
    /// A controller shard partition is not an exact in-range permutation
    /// of the per-switch job set.
    ShardPartition,
}

impl RuleCode {
    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            RuleCode::PortBudget => "FT-G001",
            RuleCode::ConverterConfig => "FT-G002",
            RuleCode::SidePattern => "FT-G003",
            RuleCode::SideWiring => "FT-G004",
            RuleCode::ServerAttachment => "FT-G005",
            RuleCode::Connectivity => "FT-G006",
            RuleCode::MinCut => "FT-G007",
            RuleCode::DegreeRegularity => "FT-G008",
            RuleCode::Blackhole => "FT-R001",
            RuleCode::RoutingLoop => "FT-R002",
            RuleCode::PathInvalid => "FT-R003",
            RuleCode::SourceRouteBudget => "FT-R004",
            RuleCode::CacheEpoch => "FT-R005",
            RuleCode::ConversionDelta => "FT-C001",
            RuleCode::RuleChurn => "FT-C002",
            RuleCode::StagePlan => "FT-C003",
            RuleCode::AddressUnique => "FT-A001",
            RuleCode::PrefixAggregation => "FT-A002",
            RuleCode::AddressWidth => "FT-A003",
            RuleCode::FaultScheduleOrder => "FT-F001",
            RuleCode::FaultTargets => "FT-F002",
            RuleCode::ShardPartition => "FT-F003",
        }
    }

    /// Fixed severity of the rule.
    pub fn severity(self) -> Severity {
        Severity::Error
    }

    /// A short remediation pointer.
    pub fn fix_hint(self) -> &'static str {
        match self {
            RuleCode::PortBudget => "re-derive the wiring from §3.1/§3.2; a cable was added or dropped outside the converter inventory",
            RuleCode::ConverterConfig => "4-port blade-A circuits support only default/local (§3.1); regenerate configs with modes::configs_for",
            RuleCode::SidePattern => "side peers must follow side_peer_column's shifted pattern (§3.3)",
            RuleCode::SideWiring => "inter-pod cables must equal the side_pairs × pair_links multiset; check wrap_side_links and converter configs",
            RuleCode::ServerAttachment => "every server needs exactly one uplink (§4.2.1 Observation 1); check the converter's server_attachment",
            RuleCode::Connectivity => "a mode left islands; check side-link wrap and converter configs for dark bundles",
            RuleCode::MinCut => "capacity between sampled switches fell below the Table 1 floor; check uplink multiplicities",
            RuleCode::DegreeRegularity => "uniform modes are vertex-transitive per class; a switch gained or lost cables",
            RuleCode::Blackhole => "Yen returned no path for a connected pair; check link direction and reverse pairing",
            RuleCode::RoutingLoop => "k-shortest-path sets must be simple paths; check the spur-path filter",
            RuleCode::PathInvalid => "path links must connect consecutive path nodes; the path was spliced against a different instance",
            RuleCode::SourceRouteBudget => "paths must fit 6 MAC-encoded hops (§4.2.2); raise k-shortest-path locality or shrink diameter",
            RuleCode::CacheEpoch => "route caches must key on FailedLinks::epoch; clear the cache on epoch change",
            RuleCode::ConversionDelta => "conversions may touch converter-owned circuits only (§3.1); the delta reaches foreign cables",
            RuleCode::RuleChurn => "delete/add sets must be disjoint and apply to exactly the target rule set; recompute the diff",
            RuleCode::StagePlan => "the per-switch stage plan must sum to the rule diff; regenerate ConversionWork from diff_per_switch",
            RuleCode::AddressUnique => "Figure 5a addresses must be unique; check switch-id stability across modes",
            RuleCode::PrefixAggregation => "all servers under one ingress switch must share a /24 per path id (§4.2.1)",
            RuleCode::AddressWidth => "fields must fit 13/3/2/6 bits and each server needs ceil(sqrt(k)) addresses per mode (§4.1)",
            RuleCode::FaultScheduleOrder => "FaultPlan::compile must sort by (time, down-before-up, link) and keep every up_at event; recompile instead of editing events",
            RuleCode::FaultTargets => "stuck overrides must name converters in the layout inventory with configs valid_for their blade kind; 4-port blades latch default/local only",
            RuleCode::ShardPartition => "shard_partition must place each switch job in exactly one in-range shard; regenerate from ConversionWork::per_switch",
        }
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One diagnostic: rule, severity, where, what, and how to fix it.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleCode,
    /// Stable code string (`FT-G001`), duplicated for JSON consumers.
    pub code: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Where in the artifact (node label, pair, mode).
    pub location: String,
    /// What is wrong.
    pub detail: String,
    /// How to fix it.
    pub fix: &'static str,
}

impl Finding {
    /// Builds a finding for `rule`.
    pub fn new(rule: RuleCode, location: impl Into<String>, detail: impl Into<String>) -> Self {
        Finding {
            rule,
            code: rule.code(),
            severity: rule.severity(),
            location: location.into(),
            detail: detail.into(),
            fix: rule.fix_hint(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}: {} [fix: {}]",
            self.code, self.severity, self.location, self.detail, self.fix
        )
    }
}

/// Sorts findings into the canonical report order and drops duplicates,
/// making output independent of rule execution order.
pub fn canonicalize(mut findings: Vec<Finding>) -> Vec<Finding> {
    findings.sort();
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let all = [
            RuleCode::PortBudget,
            RuleCode::ConverterConfig,
            RuleCode::SidePattern,
            RuleCode::SideWiring,
            RuleCode::ServerAttachment,
            RuleCode::Connectivity,
            RuleCode::MinCut,
            RuleCode::DegreeRegularity,
            RuleCode::Blackhole,
            RuleCode::RoutingLoop,
            RuleCode::PathInvalid,
            RuleCode::SourceRouteBudget,
            RuleCode::CacheEpoch,
            RuleCode::ConversionDelta,
            RuleCode::RuleChurn,
            RuleCode::StagePlan,
            RuleCode::AddressUnique,
            RuleCode::PrefixAggregation,
            RuleCode::AddressWidth,
            RuleCode::FaultScheduleOrder,
            RuleCode::FaultTargets,
            RuleCode::ShardPartition,
        ];
        let mut codes: Vec<&str> = all.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "duplicate rule code");
        for r in all {
            assert!(r.code().starts_with("FT-"));
            assert!(!r.fix_hint().is_empty());
        }
    }

    #[test]
    fn canonical_order_is_input_independent() {
        let a = Finding::new(RuleCode::PortBudget, "E0", "x");
        let b = Finding::new(RuleCode::Blackhole, "E1", "y");
        let fwd = canonicalize(vec![a.clone(), b.clone()]);
        let rev = canonicalize(vec![b, a.clone(), a]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.len(), 2);
    }

    #[test]
    fn display_mentions_code_and_fix() {
        let f = Finding::new(RuleCode::SideWiring, "pod0->pod1", "missing cable");
        let s = f.to_string();
        assert!(s.contains("FT-G004") && s.contains("error") && s.contains("fix:"));
    }
}
