//! Addressing rules (`FT-Axxx`): the §4.1 MPTCP address plan.
//!
//! Builds the deployment-time [`AddressPlan`] across all three mode ids
//! and checks global uniqueness of the encoded IPv4 addresses, the
//! Figure 5a field widths, the per-server address count
//! (`ceil(sqrt(k))` per mode), and the per-switch /24 aggregation that
//! ingress prefix rules rely on.

use crate::diag::{Finding, RuleCode};
use flat_tree::FlatTreeInstance;
use routing::addressing::{
    addresses_for_k, verify_prefix_aggregation, AddressPlan, TopologyModeId,
};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// The full addressing battery over one instance per mode id.
pub fn check(instances: &[(TopologyModeId, &FlatTreeInstance)], k: usize) -> Vec<Finding> {
    let mut out = Vec::new();
    // Width preflight: the plan builder asserts on overflow, so emit
    // findings (instead of panicking) for anything out of range.
    for (mode, inst) in instances {
        for &s in &inst.net.servers {
            let sw = inst.ingress_switch(s);
            if sw.0 >= 1 << 13 {
                out.push(Finding::new(
                    RuleCode::AddressWidth,
                    inst.net.graph.node(sw).label.clone(),
                    format!("switch id {} exceeds the 13-bit field ({mode:?})", sw.0),
                ));
            }
        }
        for (e, servers) in inst.edge_servers.iter().enumerate() {
            if servers.len() >= 64 {
                out.push(Finding::new(
                    RuleCode::AddressWidth,
                    format!("edge {e}"),
                    format!("{} servers exceed the 6-bit server field", servers.len()),
                ));
            }
        }
    }
    if !out.is_empty() {
        return out;
    }
    let k_per_mode: HashMap<TopologyModeId, usize> =
        TopologyModeId::ALL.iter().map(|&m| (m, k)).collect();
    let plan = AddressPlan::build(instances, &k_per_mode);
    let per_mode = addresses_for_k(k);

    // FT-A001: no two (server, mode, path) tuples may encode to the same
    // IPv4 address anywhere in the deployment.
    let mut seen: BTreeMap<Ipv4Addr, String> = BTreeMap::new();
    // Deterministic iteration: servers in id order.
    let mut servers: Vec<_> = plan.server_addrs.iter().collect();
    servers.sort_by_key(|(s, _)| **s);
    for (server, addrs) in servers {
        for a in addrs {
            let ip = a.encode();
            let owner = format!("server {} {:?} path {}", server.0, a.mode, a.path_id);
            if let Some(prev) = seen.insert(ip, owner.clone()) {
                out.push(Finding::new(
                    RuleCode::AddressUnique,
                    owner,
                    format!("address {ip} already assigned to {prev}"),
                ));
            }
        }
        // FT-A003: exactly ceil(sqrt(k)) addresses per configured mode.
        for &(mode, _) in instances {
            let got = addrs.iter().filter(|a| a.mode == mode).count();
            if got != per_mode {
                out.push(Finding::new(
                    RuleCode::AddressWidth,
                    format!("server {}", server.0),
                    format!("{got} addresses for {mode:?}, need {per_mode} for k = {k}"),
                ));
            }
        }
    }

    // FT-A002: per-switch /24 aggregation in every mode.
    for (mode, inst) in instances {
        if let Err(e) = verify_prefix_aggregation(&inst.net.graph, &plan, *mode) {
            out.push(Finding::new(
                RuleCode::PrefixAggregation,
                format!("{mode:?}"),
                e,
            ));
        }
    }
    out
}
