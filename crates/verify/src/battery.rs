//! The `ftcheck` battery: the (topology × check) grid and its runner.
//!
//! Cells are independent and deterministic, so they run on the same
//! parallel sweep driver as the experiments ([`ft_bench::sweep`]) and
//! the assembled report is byte-identical regardless of thread count.

use crate::corrupt::Corruption;
use crate::diag::{canonicalize, Finding};
use crate::{addressing_rules, control_rules, fault_rules, graph_rules, routing_rules};
use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode};
use flowsim::faults::StuckConfig;
use flowsim::FaultPlan;
use ft_bench::Scale;
use netgraph::{Graph, LinkId};
use routing::addressing::TopologyModeId;
use serde::Serialize;
use testbed::rig::testbed_params;
use topology::ClosParams;

/// Concurrent paths for rule compilation and path-set checks: the
/// testbed's k = 4 (§5.3).
pub const DEFAULT_K: usize = 4;

/// Fixed seed of the fault cell's plan. Deliberately NOT the CLI seed:
/// the battery's artifacts must be identical across invocations, so the
/// plan's flap draw is pinned here and the CLI seed is echo-only.
pub const FAULT_PLAN_SEED: u64 = 0xf1a7;

/// Shards the fault cell partitions its per-switch jobs over.
pub const FAULT_SHARDS: usize = 3;

/// What a cell verifies.
#[derive(Debug, Clone)]
pub enum CheckKind {
    /// Graph + routing rules of one instantiated mode.
    Mode(ModeAssignment),
    /// Conversion rules over every ordered mode pair.
    Control,
    /// The §4.1 address plan across all mode ids.
    Addressing,
    /// Fault-plane artifacts: compiled schedule, stuck-converter
    /// targets, and the controller shard partition.
    Faults,
}

/// One independent battery cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Topology name (stable, used in the report).
    pub topo: String,
    /// Flat-tree parameters of the topology.
    pub params: FlatTreeParams,
    /// What to verify.
    pub kind: CheckKind,
}

/// The verified result of one cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Topology name.
    pub topo: String,
    /// Check label (`mode:global`, `control`, `addressing`, `faults`).
    pub check: String,
    /// Canonicalized findings; empty means the cell is clean.
    pub findings: Vec<Finding>,
}

/// The whole battery's result.
#[derive(Debug, Clone, Serialize)]
pub struct BatteryReport {
    /// Seed echoed from the CLI. The battery never draws from it: the
    /// fault cell's only randomness is pinned to [`FAULT_PLAN_SEED`].
    pub seed: u64,
    /// Grid label (`smoke`, `default`, `full`).
    pub grid: String,
    /// k used for routing and addressing checks.
    pub k: usize,
    /// Per-cell results, in grid order.
    pub cells: Vec<CellReport>,
}

impl BatteryReport {
    /// Total findings across all cells.
    pub fn total_findings(&self) -> usize {
        self.cells.iter().map(|c| c.findings.len()).sum()
    }
}

/// The four assignments every topology is checked in: the three uniform
/// modes plus one hybrid (pod 0 converted, the rest Clos).
pub fn mode_grid(pods: usize) -> Vec<ModeAssignment> {
    let mut hybrid = vec![PodMode::Clos; pods];
    hybrid[0] = PodMode::Global;
    vec![
        ModeAssignment::uniform(pods, PodMode::Clos),
        ModeAssignment::uniform(pods, PodMode::Local),
        ModeAssignment::uniform(pods, PodMode::Global),
        ModeAssignment::hybrid(hybrid),
    ]
}

fn topologies(scale: &Scale) -> Vec<(String, FlatTreeParams)> {
    let mut out = vec![("testbed".to_string(), testbed_params())];
    if scale.smoke {
        return out;
    }
    out.push((
        "mini".to_string(),
        FlatTreeParams::new(ClosParams::mini(), 1, 1),
    ));
    if scale.full {
        out.push((
            "topo-1-mini".to_string(),
            FlatTreeParams::new(ft_bench::experiments::common::mini_topo(1), 1, 1),
        ));
    }
    out
}

/// The grid label for a scale.
pub fn grid_label(scale: &Scale) -> &'static str {
    if scale.smoke {
        "smoke"
    } else if scale.full {
        "full"
    } else {
        "default"
    }
}

/// Builds the (topology × check) grid for a scale.
pub fn grid(scale: &Scale) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (topo, params) in topologies(scale) {
        for assignment in mode_grid(params.clos.pods) {
            cells.push(Cell {
                topo: topo.clone(),
                params,
                kind: CheckKind::Mode(assignment),
            });
        }
        cells.push(Cell {
            topo: topo.clone(),
            params,
            kind: CheckKind::Control,
        });
        cells.push(Cell {
            topo: topo.clone(),
            params,
            kind: CheckKind::Addressing,
        });
        cells.push(Cell {
            topo,
            params,
            kind: CheckKind::Faults,
        });
    }
    cells
}

/// All duplex switch-switch cables (one direction per cable) — the
/// population the fault cell's flap draw samples from.
fn cables(g: &Graph) -> Vec<LinkId> {
    g.link_ids()
        .filter(|&l| {
            let info = g.link(l);
            g.node(info.src).kind.is_switch()
                && g.node(info.dst).kind.is_switch()
                && info.reverse.is_none_or(|r| r.0 > l.0)
        })
        .collect()
}

/// Runs one cell, optionally with a planted corruption.
pub fn run_cell(cell: &Cell, k: usize, corruption: Option<Corruption>) -> CellReport {
    let ft = FlatTree::new(cell.params).expect("grid params are valid");
    let (check, findings) = match &cell.kind {
        CheckKind::Mode(assignment) => {
            let mut inst = ft.instantiate(assignment);
            if let Some(c) = corruption {
                c.apply(&mut inst);
            }
            let truncate = corruption.map_or(0, Corruption::truncated_pairs);
            let mut findings = graph_rules::check(&ft, &inst);
            findings.extend(routing_rules::check_with_truncation(&inst, k, truncate));
            (format!("mode:{}", assignment.label()), findings)
        }
        CheckKind::Control => (
            "control".to_string(),
            control_rules::check(&ft, &mode_grid(ft.pods()), k),
        ),
        CheckKind::Addressing => {
            let global = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Global));
            let local = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Local));
            let clos = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Clos));
            let instances = [
                (TopologyModeId::Global, &global),
                (TopologyModeId::Local, &local),
                (TopologyModeId::Clos, &clos),
            ];
            (
                "addressing".to_string(),
                addressing_rules::check(&instances, k),
            )
        }
        CheckKind::Faults => {
            let inst = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Global));
            let g = &inst.net.graph;
            let converters = ft.layout.converters.len();

            // A quarter of the cables flap (all recovering), plus one
            // stuck override per blade class — the same artifact shapes
            // the faultsweep experiment feeds the engine.
            let mut plan = FaultPlan::new(FAULT_PLAN_SEED);
            plan.random_link_flaps(&cables(g), 0.25, 0.4, (0.0, 2.0));
            plan.stuck_converter(0, StuckConfig::Default);
            plan.stuck_converter(converters - 1, StuckConfig::Local);
            let mut schedule = plan.compile(g).expect("battery fault plan compiles");

            // Per-switch jobs derived from the deterministic port-usage
            // map: synthetic but shaped like real ConversionWork.
            let per_switch: Vec<(usize, usize)> = inst
                .port_usage()
                .values()
                .map(|&gbps| {
                    let units = gbps.round() as usize;
                    (units, units / 2)
                })
                .collect();
            let mut partition = control::resilient::shard_partition(&per_switch, FAULT_SHARDS);

            if let Some(c) = corruption {
                c.apply_to_faults(
                    converters,
                    &mut plan,
                    &mut schedule,
                    &mut partition,
                    per_switch.len(),
                );
            }
            (
                "faults".to_string(),
                fault_rules::check(&ft, &plan, &schedule, per_switch.len(), &partition),
            )
        }
    };
    CellReport {
        topo: cell.topo.clone(),
        check,
        findings: canonicalize(findings),
    }
}

/// Runs the whole battery for a scale on the parallel sweep driver.
pub fn run(scale: &Scale, corruption: Option<Corruption>) -> BatteryReport {
    let cells = grid(scale);
    let k = DEFAULT_K;
    let reports = ft_bench::sweep::sweep(&cells, |_, cell| run_cell(cell, k, corruption));
    BatteryReport {
        seed: scale.seed,
        grid: grid_label(scale).to_string(),
        k,
        cells: reports,
    }
}

/// Renders the deterministic text report.
pub fn render(report: &BatteryReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ftcheck: grid={} seed={} k={} cells={}",
        report.grid,
        report.seed,
        report.k,
        report.cells.len()
    );
    for cell in &report.cells {
        if cell.findings.is_empty() {
            let _ = writeln!(out, "  [{} {}] ok", cell.topo, cell.check);
        } else {
            let _ = writeln!(
                out,
                "  [{} {}] {} finding(s)",
                cell.topo,
                cell.check,
                cell.findings.len()
            );
            for f in &cell.findings {
                let _ = writeln!(out, "    {f}");
            }
        }
    }
    let _ = writeln!(out, "total findings: {}", report.total_findings());
    out
}
