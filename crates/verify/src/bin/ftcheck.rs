//! `ftcheck` — static invariant verification over the (topology × check)
//! grid. See EXPERIMENTS.md.
//!
//! Exits non-zero if any rule fires, so CI catches wiring, routing,
//! conversion, and addressing regressions before they surface as
//! silently-wrong experiment numbers.

use ft_bench::Scale;
use verify::battery;
use verify::Corruption;

struct Args {
    scale: Scale,
    inject: Option<Corruption>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ftcheck [--smoke] [--full] [--seed <u64>] [--json] [--inject <name>]\n\
         corruptions: {}",
        Corruption::ALL
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

/// Parses the `ftcheck` CLI. The battery accepts the shared scale flags
/// plus `--inject <corruption>`, so it keeps its own strict parser
/// (same contract as `ft_bench::Cli`: unknown flags exit 2 with usage).
fn parse_args() -> Args {
    let mut scale = Scale::default();
    let mut inject = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--full" => scale.full = true,
            "--smoke" => scale.smoke = true,
            "--json" => scale.json = true,
            "--seed" => {
                i += 1;
                match argv.get(i).and_then(|v| v.parse().ok()) {
                    Some(s) => scale.seed = s,
                    None => usage(),
                }
            }
            "--inject" => {
                i += 1;
                match argv.get(i).map(|v| Corruption::from_name(v)) {
                    Some(Some(c)) => inject = Some(c),
                    _ => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    Args { scale, inject }
}

fn main() {
    let args = parse_args();
    let report = battery::run(&args.scale, args.inject);
    print!("{}", battery::render(&report));
    if args.scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("serializable")
        );
    }
    let total = report.total_findings();
    if total > 0 {
        eprintln!("ftcheck: {total} findings");
        std::process::exit(1);
    }
}
