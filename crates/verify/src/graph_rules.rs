//! Graph rules (`FT-Gxxx`): static structure of one instantiated mode.
//!
//! The first five rules re-use the shared rule source in
//! [`flat_tree::invariants`] — the same functions the `strict-invariants`
//! feature installs as `debug_assert!`s at the construction sites — and
//! only translate [`flat_tree::invariants::Violation`]s into coded
//! findings. On top of those this module adds whole-graph analyses that
//! are too expensive for a construction-site assert: union-find
//! connectivity, sampled max-flow min-cuts against the Table 1 capacity
//! floors, and per-class degree regularity.

use crate::diag::{Finding, RuleCode};
use flat_tree::invariants::{self, Violation};
use flat_tree::{FlatTree, FlatTreeInstance, PodMode};
use netgraph::components;
use netgraph::mincut::FlowNetwork;
use netgraph::{NodeId, NodeKind};

fn lift(rule: RuleCode, violations: Vec<Violation>) -> Vec<Finding> {
    violations
        .into_iter()
        .map(|v| Finding::new(rule, v.location, v.detail))
        .collect()
}

/// The base link rate of an instance, used to convert aggregated link
/// capacities back into physical cable counts. Server cables always have
/// multiplicity 1, so the minimum capacity over all links is the rate.
pub fn unit_gbps(inst: &FlatTreeInstance) -> f64 {
    inst.net
        .graph
        .capacities()
        .iter()
        .fold(f64::INFINITY, |m, &c| m.min(c))
}

/// Number of inter-pod switch pairs the min-cut rule samples per mode.
const MIN_CUT_SAMPLES: usize = 4;

/// The Table 1 capacity floor, in cables, for a sampled inter-pod
/// edge-switch pair. Clos mode keeps the full Clos property — an edge
/// switch reaches any other pod at its entire uplink bundle — while the
/// converted modes trade structured capacity for path diversity, so the
/// static floor is survival of any single cable cut.
pub fn min_cut_floor(ft: &FlatTree, mode: Option<PodMode>) -> u64 {
    match mode {
        Some(PodMode::Clos) => ft.params().clos.edge_uplinks as u64,
        _ => 2,
    }
}

/// Deterministic inter-pod edge-switch sample pairs: pod 0's first edge
/// against a pod-stride of last edges, matching the paper's "distant
/// pair" probes without any RNG.
fn sample_pairs(inst: &FlatTreeInstance) -> Vec<(NodeId, NodeId)> {
    let pods = inst.pod_edges.len();
    if pods < 2 {
        return Vec::new();
    }
    let stride = (pods - 1).div_ceil(MIN_CUT_SAMPLES).max(1);
    let src = inst.pod_edges[0][0];
    (1..pods)
        .step_by(stride)
        .map(|p| (src, *inst.pod_edges[p].last().expect("pod has edges")))
        .collect()
}

/// FT-G006: every node (server or switch) must sit in one component.
pub fn connectivity_findings(inst: &FlatTreeInstance) -> Vec<Finding> {
    let g = &inst.net.graph;
    let nodes: Vec<NodeId> = g.node_ids().collect();
    let n = components::component_count_among(g, &nodes);
    if n <= 1 {
        Vec::new()
    } else {
        vec![Finding::new(
            RuleCode::Connectivity,
            inst.net.name.clone(),
            format!("graph splits into {n} components"),
        )]
    }
}

/// FT-G007: sampled min-cuts must meet the mode's Table 1 floor.
pub fn min_cut_findings(ft: &FlatTree, inst: &FlatTreeInstance) -> Vec<Finding> {
    let g = &inst.net.graph;
    let unit = unit_gbps(inst);
    if !unit.is_finite() || unit <= 0.0 {
        return Vec::new();
    }
    let floor = min_cut_floor(ft, inst.assignment.uniform_mode());
    let mut net = FlowNetwork::in_cable_units(g, unit);
    let mut out = Vec::new();
    for (s, t) in sample_pairs(inst) {
        let cut = net.min_cut(s, t);
        if cut < floor {
            out.push(Finding::new(
                RuleCode::MinCut,
                format!("{} -> {}", g.node(s).label, g.node(t).label),
                format!("min-cut {cut} cables is below the Table 1 floor {floor}"),
            ));
        }
    }
    out
}

/// FT-G008: in a uniform mode every switch class is degree-regular.
///
/// Hybrid assignments are skipped: mixed-mode side bundles legitimately
/// go dark (§3.5), which makes edge/agg degrees pod-dependent.
pub fn degree_regularity_findings(inst: &FlatTreeInstance) -> Vec<Finding> {
    if inst.assignment.uniform_mode().is_none() {
        return Vec::new();
    }
    let g = &inst.net.graph;
    let ports = invariants::actual_ports(inst);
    let mut out = Vec::new();
    for kind in [
        NodeKind::EdgeSwitch,
        NodeKind::AggSwitch,
        NodeKind::CoreSwitch,
    ] {
        let degrees: Vec<(NodeId, usize)> = g
            .nodes_of_kind(kind)
            .into_iter()
            .map(|n| (n, ports.get(&n).copied().unwrap_or(0)))
            .collect();
        let Some(&(_, first)) = degrees.first() else {
            continue;
        };
        let lo = degrees.iter().map(|&(_, d)| d).min().unwrap_or(first);
        let hi = degrees.iter().map(|&(_, d)| d).max().unwrap_or(first);
        if lo != hi {
            let worst = degrees.iter().find(|&&(_, d)| d == lo).expect("min exists");
            out.push(Finding::new(
                RuleCode::DegreeRegularity,
                g.node(worst.0).label.clone(),
                format!(
                    "{kind:?} cable degrees span {lo}..{hi} in uniform mode {}",
                    inst.assignment.label()
                ),
            ));
        }
    }
    out
}

/// The full graph battery for one instantiated mode.
pub fn check(ft: &FlatTree, inst: &FlatTreeInstance) -> Vec<Finding> {
    let mut out = Vec::new();
    out.extend(lift(
        RuleCode::ConverterConfig,
        invariants::config_violations(&ft.layout, &inst.configs),
    ));
    out.extend(lift(
        RuleCode::SidePattern,
        invariants::side_pattern_violations(&ft.layout),
    ));
    out.extend(lift(
        RuleCode::PortBudget,
        invariants::port_violations(ft, inst),
    ));
    out.extend(lift(
        RuleCode::SideWiring,
        invariants::side_wiring_violations(ft, inst),
    ));
    out.extend(lift(
        RuleCode::ServerAttachment,
        invariants::server_attachment_violations(inst),
    ));
    out.extend(connectivity_findings(inst));
    out.extend(min_cut_findings(ft, inst));
    out.extend(degree_regularity_findings(inst));
    out
}
