//! Positive and negative coverage for the `ftcheck` rule battery.
//!
//! Positive: seeded flat-trees are clean for k ∈ {4, 6, 8} across all
//! four modes. Negative: each planted corruption is flagged with its
//! documented rule code, and nothing else silences the battery.

use flat_tree::{FlatTree, ModeAssignment, PodMode};
use ft_bench::Scale;
use proptest::prelude::*;
use routing::addressing::TopologyModeId;
use testbed::rig::testbed_params;
use verify::battery::{self, mode_grid, Cell, CheckKind};
use verify::{diag, Corruption, RuleCode};

fn testbed_ft() -> FlatTree {
    FlatTree::new(testbed_params()).expect("testbed params are valid")
}

fn mode_cell(assignment: ModeAssignment) -> Cell {
    Cell {
        topo: "testbed".to_string(),
        params: testbed_params(),
        kind: CheckKind::Mode(assignment),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Zero findings on clean seeded flat-trees, for every k the §4.1
    /// address plan supports on 3 path-id bits and all four modes.
    #[test]
    fn clean_flat_trees_have_zero_findings(ki in 0usize..3, mi in 0usize..4) {
        let k = [4, 6, 8][ki];
        let ft = testbed_ft();
        let assignment = mode_grid(ft.pods())[mi].clone();
        let inst = ft.instantiate(&assignment);
        let mut findings = verify::graph_rules::check(&ft, &inst);
        findings.extend(verify::routing_rules::check(&inst, k));
        prop_assert!(findings.is_empty(), "mode {} k {k}: {findings:?}", assignment.label());
    }

    /// The addressing battery is clean for every supported k.
    #[test]
    fn clean_address_plans_have_zero_findings(ki in 0usize..3) {
        let k = [4, 6, 8][ki];
        let ft = testbed_ft();
        let global = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Global));
        let local = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Local));
        let clos = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Clos));
        let instances = [
            (TopologyModeId::Global, &global),
            (TopologyModeId::Local, &local),
            (TopologyModeId::Clos, &clos),
        ];
        let findings = verify::addressing_rules::check(&instances, k);
        prop_assert!(findings.is_empty(), "k {k}: {findings:?}");
    }
}

#[test]
fn control_battery_is_clean() {
    let ft = testbed_ft();
    let findings = verify::control_rules::check(&ft, &mode_grid(ft.pods()), 4);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn smoke_battery_is_clean_and_deterministic() {
    let scale = Scale {
        smoke: true,
        ..Scale::default()
    };
    let a = battery::run(&scale, None);
    let b = battery::run(&scale, None);
    assert_eq!(a.total_findings(), 0, "{}", battery::render(&a));
    assert_eq!(battery::render(&a), battery::render(&b));
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

fn codes_for(corruption: Corruption, assignment: ModeAssignment) -> Vec<RuleCode> {
    let report = battery::run_cell(&mode_cell(assignment), 4, Some(corruption));
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn swapped_side_link_is_flagged_as_side_wiring() {
    let pods = testbed_ft().pods();
    let codes = codes_for(
        Corruption::SwapSideLink,
        ModeAssignment::uniform(pods, PodMode::Global),
    );
    assert!(
        codes.contains(&RuleCode::SideWiring),
        "expected FT-G004, got {codes:?}"
    );
    assert!(codes.contains(&RuleCode::PortBudget));
}

#[test]
fn oversubscribed_converter_port_is_flagged_as_port_budget() {
    let pods = testbed_ft().pods();
    for assignment in [
        ModeAssignment::uniform(pods, PodMode::Clos),
        ModeAssignment::uniform(pods, PodMode::Global),
    ] {
        let codes = codes_for(Corruption::OverloadPort, assignment);
        assert!(
            codes.contains(&RuleCode::PortBudget),
            "expected FT-G001, got {codes:?}"
        );
        assert!(
            !codes.contains(&RuleCode::SideWiring),
            "an extra core cable is not a side-wiring defect: {codes:?}"
        );
    }
}

#[test]
fn truncated_path_set_is_flagged_as_blackhole() {
    let pods = testbed_ft().pods();
    let codes = codes_for(
        Corruption::TruncatePaths,
        ModeAssignment::uniform(pods, PodMode::Clos),
    );
    assert_eq!(
        codes,
        vec![RuleCode::Blackhole],
        "truncation must fire FT-R001 and nothing else"
    );
}

#[test]
fn every_corruption_fails_the_smoke_battery_with_its_code() {
    let scale = Scale {
        smoke: true,
        ..Scale::default()
    };
    for corruption in Corruption::ALL {
        let report = battery::run(&scale, Some(corruption));
        assert!(
            report.total_findings() > 0,
            "{} went undetected",
            corruption.name()
        );
        let expected = corruption.expected_code();
        assert!(
            report
                .cells
                .iter()
                .flat_map(|c| &c.findings)
                .any(|f| f.rule == expected),
            "{} did not fire {}",
            corruption.name(),
            expected.code()
        );
    }
}

#[test]
fn findings_carry_code_severity_location_and_fix() {
    let pods = testbed_ft().pods();
    let report = battery::run_cell(
        &mode_cell(ModeAssignment::uniform(pods, PodMode::Global)),
        4,
        Some(Corruption::SwapSideLink),
    );
    let f = report.findings.first().expect("corruption found");
    assert_eq!(f.code, f.rule.code());
    assert_eq!(f.severity, diag::Severity::Error);
    assert!(!f.location.is_empty() && !f.detail.is_empty() && !f.fix.is_empty());
    // Canonical order: findings arrive sorted and deduplicated.
    let mut sorted = report.findings.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(sorted, report.findings);
}
