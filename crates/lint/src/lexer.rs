//! A purpose-built lightweight Rust lexer.
//!
//! `ftlint` needs far less than a full parser: identifiers, punctuation,
//! and line numbers, with comments and string/char literals correctly
//! skipped so rule patterns never fire inside them. The lexer handles
//! the constructs that trip naive scanners — nested block comments, raw
//! strings with `#` fences, byte strings, lifetimes vs. char literals —
//! and records every line comment verbatim so the suppression scanner
//! ([`crate::allow`]) can find `ftlint::allow(...)` directives.
//!
//! The token stream is intentionally lossy (numeric literal values and
//! string contents are discarded); rules only match identifier/punct
//! shapes, which keeps every rule check a linear scan.

/// What a token is. `PathSep` is `::` glued into one token so rules can
/// distinguish `name: HashMap` (type ascription) from `HashMap::new`
/// (path) without counting colons.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`let`, `for`, `HashMap`, ...).
    Ident(String),
    /// The `::` path separator.
    PathSep,
    /// Any single punctuation character (`.`, `(`, `{`, `;`, ...).
    Punct(char),
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// A string literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (value discarded).
    Num,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line number.
    pub line: u32,
    /// The token.
    pub kind: TokKind,
}

/// One `//` line comment (doc comments included), with `//` stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// 1-based line number.
    pub line: u32,
    /// Comment text after the leading slashes, untrimmed.
    pub text: String,
}

/// The lexed file: tokens plus captured line comments.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub toks: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

impl Lexed {
    /// The first line at or after `line` that carries a token — where a
    /// suppression directive written above code actually lands.
    pub fn next_token_line(&self, line: u32) -> Option<u32> {
        self.toks.iter().map(|t| t.line).find(|&l| l >= line)
    }
}

/// Lexes `src`. Never panics: unterminated literals or comments simply
/// consume the rest of the file.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    line,
                    text: b[start..j].iter().collect(),
                });
                i = j;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Nested block comments; contents (and their directives,
                // if any) are discarded — only line comments carry
                // ftlint::allow.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == '/' && b.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if b[j] == '*' && b.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let tok_line = line;
                i = skip_string(&b, i + 1, &mut line);
                out.toks.push(Tok {
                    line: tok_line,
                    kind: TokKind::Str,
                });
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let tok_line = line;
                let next = b.get(i + 1).copied();
                let is_lifetime = matches!(next, Some(n) if n == '_' || n.is_alphabetic())
                    && b.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == '_' || b[j].is_alphanumeric()) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        line: tok_line,
                        kind: TokKind::Lifetime,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    if b.get(j) == Some(&'\\') {
                        j += 2; // escape + escaped char
                                // \u{...} and \x.. escapes: scan to the quote.
                        while j < b.len() && b[j] != '\'' {
                            j += 1;
                        }
                    } else if j < b.len() {
                        j += 1;
                    }
                    if b.get(j) == Some(&'\'') {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        line: tok_line,
                        kind: TokKind::Char,
                    });
                    i = j;
                }
            }
            ':' if b.get(i + 1) == Some(&':') => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::PathSep,
                });
                i += 2;
            }
            c if c.is_ascii_digit() => {
                let tok_line = line;
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.'
                        && b.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                        && b.get(j - 1).is_some_and(|p| p.is_ascii_digit())
                    {
                        // `1.5` continues the number; `0..n` does not.
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok {
                    line: tok_line,
                    kind: TokKind::Num,
                });
                i = j;
            }
            c if c == '_' || c.is_alphabetic() => {
                let tok_line = line;
                let mut j = i + 1;
                while j < b.len() && (b[j] == '_' || b[j].is_alphanumeric()) {
                    j += 1;
                }
                let ident: String = b[i..j].iter().collect();
                // Raw/byte string prefixes: `r"..."`, `r#"..."#`,
                // `b"..."`, `br#"..."#` — and raw identifiers `r#name`.
                if matches!(ident.as_str(), "r" | "b" | "br" | "rb") {
                    let mut k = j;
                    let mut fences = 0usize;
                    while b.get(k) == Some(&'#') {
                        fences += 1;
                        k += 1;
                    }
                    if b.get(k) == Some(&'"') {
                        i = skip_raw_string(&b, k + 1, fences, &mut line);
                        out.toks.push(Tok {
                            line: tok_line,
                            kind: TokKind::Str,
                        });
                        continue;
                    }
                    if ident == "b" && b.get(j) == Some(&'\'') {
                        // Byte literal b'x': skip past the closing quote.
                        let mut k = j + 1;
                        if b.get(k) == Some(&'\\') {
                            k += 1;
                        }
                        while k < b.len() && b[k] != '\'' {
                            k += 1;
                        }
                        out.toks.push(Tok {
                            line: tok_line,
                            kind: TokKind::Char,
                        });
                        i = k + 1;
                        continue;
                    }
                    if ident == "r" && fences == 1 && b.get(k).is_some_and(is_ident_start) {
                        // Raw identifier r#name: emit `name`.
                        let mut m = k + 1;
                        while m < b.len() && (b[m] == '_' || b[m].is_alphanumeric()) {
                            m += 1;
                        }
                        out.toks.push(Tok {
                            line: tok_line,
                            kind: TokKind::Ident(b[k..m].iter().collect()),
                        });
                        i = m;
                        continue;
                    }
                }
                out.toks.push(Tok {
                    line: tok_line,
                    kind: TokKind::Ident(ident),
                });
                i = j;
            }
            other => {
                out.toks.push(Tok {
                    line,
                    kind: TokKind::Punct(other),
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: &char) -> bool {
    *c == '_' || c.is_alphabetic()
}

/// Skips a regular string body starting just after the opening quote;
/// returns the index after the closing quote.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() {
        match b[i] {
            '\\' => {
                // A line-continuation (`\` at end of line) escapes the
                // newline itself; it still advances the line counter.
                if b.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                i += 2;
            }
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a raw string body (no escapes) until `"` followed by `fences`
/// `#` characters; returns the index after the fence.
fn skip_raw_string(b: &[char], mut i: usize, fences: usize, line: &mut u32) -> usize {
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' && (1..=fences).all(|k| b.get(i + k) == Some(&'#')) {
            return i + 1 + fences;
        } else {
            i += 1;
        }
    }
    i
}

/// Token-index ranges covered by test-only items: any item whose
/// attributes mention `test` (`#[test]`, `#[cfg(test)]`,
/// `#[cfg(all(test, ...))]`, `#[tokio::test]`-style paths). Rules skip
/// findings whose token falls inside one of these ranges — test code is
/// exempt from every FTL rule by design.
pub fn test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind != TokKind::Punct('#') {
            i += 1;
            continue;
        }
        // One attribute: `#[...]` (balanced brackets; the opener sits
        // at `i + 1`, so the scan starts at `i + 2`).
        let Some(attr_end) = match_close(toks, i + 2, '[', ']') else {
            i += 1;
            continue;
        };
        let mentions_test = toks[i + 1..attr_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident("test".to_string()));
        if !mentions_test {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes, then span the item itself:
        // through its balanced `{...}` body, or to the terminating `;`.
        let mut j = attr_end + 1;
        while j < toks.len() && toks[j].kind == TokKind::Punct('#') {
            match match_close(toks, j + 2, '[', ']') {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        let mut depth_paren = 0i32;
        let mut end = j;
        while end < toks.len() {
            match toks[end].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth_paren += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth_paren -= 1,
                TokKind::Punct('{') if depth_paren == 0 => {
                    end = match_close(toks, end + 1, '{', '}').unwrap_or(toks.len());
                    break;
                }
                TokKind::Punct(';') if depth_paren == 0 => break,
                _ => {}
            }
            end += 1;
        }
        ranges.push((i, end.min(toks.len())));
        i = end.min(toks.len()) + 1;
    }
    ranges
}

/// Finds the index of the closer matching the opener expected at
/// `start - 1`; scans from `start` with nesting.
fn match_close(toks: &[Tok], start: usize, open: char, close: char) -> Option<usize> {
    if start == 0 || toks.get(start - 1).map(|t| &t.kind) != Some(&TokKind::Punct(open)) {
        return None;
    }
    let mut depth = 1i32;
    let mut i = start;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Punct(c) if c == open => depth += 1,
            TokKind::Punct(c) if c == close => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "partial_cmp in a string"; // partial_cmp in a comment
            /* block partial_cmp */ let b = r#"raw partial_cmp"#;
            let c = 'x'; let d = b'\n'; let e: &'static str = "s";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"partial_cmp".to_string()), "{ids:?}");
        // `'static` lexes as one Lifetime token, not an Ident.
        let toks = lex(src).toks;
        assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime), "{toks:?}");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").toks;
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
        assert!(!toks.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn path_sep_is_one_token() {
        let toks = lex("HashMap::new(); x: u32").toks;
        assert!(toks.iter().any(|t| t.kind == TokKind::PathSep));
        assert!(toks.iter().any(|t| t.kind == TokKind::Punct(':')));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"s\ntr\"\nb // c\nd";
        let l = lex(src);
        let b = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("b".into()))
            .expect("b token is present in the fixture");
        assert_eq!(b.line, 4);
        let d = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("d".into()))
            .expect("d token is present in the fixture");
        assert_eq!(d.line, 5);
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 4);
    }

    #[test]
    fn string_line_continuations_count_lines() {
        // `"a\` + newline + `b"` spans two lines; the next statement
        // must land on line 3.
        let src = "let s = \"a\\\nb\";\nlet t = 1;";
        let l = lex(src);
        let t = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Ident("t".into()))
            .expect("t token is present in the fixture");
        assert_eq!(t.line, 3);
    }

    #[test]
    fn cfg_test_items_are_ranged() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { bad(); } }\nfn live2() {}";
        let l = lex(src);
        let ranges = test_ranges(&l.toks);
        assert_eq!(ranges.len(), 1);
        let (s, e) = ranges[0];
        let inside: Vec<_> = l.toks[s..=e]
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect();
        assert!(inside.contains(&"bad"));
        assert!(!inside.contains(&"live2"));
    }

    #[test]
    fn test_attribute_functions_are_ranged() {
        let src = "#[test]\nfn t() { x(); }\nfn live() {}";
        let l = lex(src);
        let ranges = test_ranges(&l.toks);
        assert_eq!(ranges.len(), 1);
        let live_idx = l
            .toks
            .iter()
            .position(|t| t.kind == TokKind::Ident("live".into()))
            .expect("live token is present in the fixture");
        assert!(live_idx > ranges[0].1);
    }
}
