//! `ftlint` — source-level determinism & robustness lint over the
//! workspace. See EXPERIMENTS.md.
//!
//! Exits 1 if any rule fires (unjustified suppressions included), so CI
//! catches hash-iteration, wall-clock, RNG, float-ordering, and panic
//! regressions before they surface as broken goldens.

use ftlint::{render, workspace_files, LintReport};
use std::path::PathBuf;

struct Args {
    root: PathBuf,
    json: bool,
}

fn usage() -> ! {
    eprintln!("usage: ftlint [--root <dir>] [--json]");
    std::process::exit(2)
}

/// Strict parser, same contract as `ft_bench::Cli`: unknown flags exit
/// 2 with usage.
fn parse_args() -> Args {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => json = true,
            "--root" => {
                i += 1;
                match argv.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => usage(),
                }
            }
            _ => usage(),
        }
        i += 1;
    }
    Args { root, json }
}

fn main() {
    let args = parse_args();
    let files = match workspace_files(&args.root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("ftlint: cannot walk {}: {e}", args.root.display());
            std::process::exit(2);
        }
    };
    let report = LintReport::run(&files);
    print!("{}", render(&report));
    if args.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).expect("report serializes")
        );
    }
    if !report.findings.is_empty() {
        eprintln!("ftlint: {} findings", report.findings.len());
        std::process::exit(1);
    }
}
