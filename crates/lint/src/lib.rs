//! # ftlint — source-level determinism & robustness lint
//!
//! Every plane in this workspace — the parallel sweep, shared route
//! tables, incremental allocation, the distributed `ftd` dispatch —
//! stakes its correctness on one contract: *byte-identical output for
//! any thread count, worker count, or failure schedule*. Golden files
//! and proptests enforce that contract after the fact, on the workloads
//! they happen to cover; `ftlint` enforces the discipline at the source
//! level, the way `ftcheck` (the `verify` crate) checks generated
//! artifacts.
//!
//! The tool parses every non-test `.rs` file under `crates/*/src` with
//! a purpose-built lightweight lexer ([`lexer`]) — no `syn`, no
//! `rustc` — and runs the FTL rule catalog ([`rules`]): the
//! determinism family (`FTL-D001` hash-iteration escape, `FTL-D002`
//! wall-clock in engine crates, `FTL-D003` entropy-seeded RNG,
//! `FTL-D004` `partial_cmp().unwrap()` float ordering) and the
//! robustness family (`FTL-R001` library unwraps on fallible paths,
//! `FTL-R002` library printing, `FTL-R003` truncating index/len
//! casts). Diagnostics are `ftcheck`-style — rule code, severity,
//! `file:line`, fix hint, text + JSON — sorted by `(file, line, rule)`
//! and byte-identical across runs.
//!
//! Justified exceptions stay in the code via the scoped suppression
//! directive ([`allow`]):
//!
//! ```text
//! // ftlint::allow(FTL-R001): poisoning only follows a worker panic, which propagates anyway
//! ```
//!
//! An allow with no justification (or an unknown code) is itself a
//! finding (`FTL-S001`/`FTL-S002`), so the suppression ledger stays
//! honest. The `ftlint` binary exits 1 on any finding; CI runs it
//! workspace-wide, strict from day one.

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod walk;

pub use diag::{canonicalize, LintFinding, LintRule, Severity, ALL_RULES};
pub use source::{FileCtx, FileInput, FileKind, ENGINE_CRATES};
pub use walk::workspace_files;

use serde::Serialize;

/// Lints one file: lex, classify, run the catalog, apply suppressions.
pub fn analyze_file(input: &FileInput) -> Vec<LintFinding> {
    let ctx = FileCtx::new(input);
    let findings = rules::check_file(&ctx);
    let allows = allow::parse_allows(&ctx.lexed);
    allow::apply_allows(&ctx.path, &allows, findings)
}

/// Lints a set of files and canonicalizes the combined findings. The
/// result is independent of input order.
pub fn analyze_files(files: &[FileInput]) -> Vec<LintFinding> {
    let mut all = Vec::new();
    for f in files {
        all.extend(analyze_file(f));
    }
    canonicalize(all)
}

/// The whole run's result, as serialized by `--json`.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Files scanned.
    pub files: usize,
    /// Rule codes in the catalog, in order.
    pub rules: Vec<&'static str>,
    /// Canonicalized findings; empty means the workspace is lint-clean.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Runs the catalog over `files`.
    pub fn run(files: &[FileInput]) -> Self {
        LintReport {
            files: files.len(),
            rules: ALL_RULES.iter().map(|r| r.code()).collect(),
            findings: analyze_files(files),
        }
    }
}

/// Renders the deterministic text report (`ftcheck` shape).
pub fn render(report: &LintReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ftlint: files={} rules={} findings={}",
        report.files,
        report.rules.len(),
        report.findings.len()
    );
    for f in &report.findings {
        let _ = writeln!(out, "  {f}");
    }
    let _ = writeln!(out, "total findings: {}", report.findings.len());
    out
}
