//! The scoped suppression mechanism.
//!
//! A violation that is justified stays in the code but must say why,
//! on the line directly above it:
//!
//! ```text
//! // ftlint::allow(FTL-D001): folded into a commutative sum; order cannot escape
//! for (_, v) in &totals { acc += v; }
//! ```
//!
//! The directive suppresses findings of exactly that rule on the next
//! line that carries code (so directives stack, and a directive above a
//! long expression lands on its first line). Hygiene is enforced by two
//! rules that are themselves findings and cannot be suppressed:
//! `FTL-S001` — an allow with no justification text; `FTL-S002` — an
//! allow naming a rule code that is not in the catalog.

use crate::diag::{LintFinding, LintRule};
use crate::lexer::Lexed;

/// One parsed `ftlint::allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the directive comment is on.
    pub line: u32,
    /// Line the suppression applies to (first token-bearing line after
    /// the directive).
    pub target: Option<u32>,
    /// The rule named, if the code is in the catalog.
    pub rule: Option<LintRule>,
    /// The code string as written.
    pub code: String,
    /// Justification text after the colon, trimmed.
    pub justification: String,
}

const DIRECTIVE: &str = "ftlint::allow(";

/// Extracts every directive from a lexed file's line comments.
pub fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix(DIRECTIVE) else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            // `ftlint::allow(FTL-D001` with no closing paren: treat the
            // whole remainder as the (unknown) code so it surfaces as
            // FTL-S002 instead of being silently ignored.
            out.push(Allow {
                line: c.line,
                target: lexed.next_token_line(c.line + 1),
                rule: None,
                code: rest.trim().to_string(),
                justification: String::new(),
            });
            continue;
        };
        let code = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let justification = after.strip_prefix(':').unwrap_or("").trim().to_string();
        out.push(Allow {
            line: c.line,
            target: lexed.next_token_line(c.line + 1),
            rule: LintRule::from_code(&code),
            code,
            justification,
        });
    }
    out
}

/// Applies the directives to `findings`: drops suppressed findings and
/// appends the hygiene findings (`FTL-S001`/`FTL-S002`) for malformed
/// directives. `file` is the repo-relative path used in diagnostics.
pub fn apply_allows(
    file: &str,
    allows: &[Allow],
    mut findings: Vec<LintFinding>,
) -> Vec<LintFinding> {
    findings.retain(|f| {
        !f.rule.suppressible()
            || !allows.iter().any(|a| {
                a.rule == Some(f.rule) && a.target == Some(f.line) && !a.justification.is_empty()
            })
    });
    for a in allows {
        if a.rule.is_none() {
            findings.push(LintFinding::new(
                LintRule::AllowUnknownRule,
                file,
                a.line,
                format!("ftlint::allow names unknown rule `{}`", a.code),
            ));
        } else if a.justification.is_empty() {
            findings.push(LintFinding::new(
                LintRule::AllowNoJustification,
                file,
                a.line,
                format!("ftlint::allow({}) has no justification text", a.code),
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn directive_parses_code_and_justification() {
        let l =
            lex("// ftlint::allow(FTL-D003): seeded upstream, this draw is replayed\nlet x = 1;");
        let allows = parse_allows(&l);
        assert_eq!(allows.len(), 1);
        let a = &allows[0];
        assert_eq!(a.rule, Some(LintRule::EntropyRng));
        assert_eq!(a.target, Some(2));
        assert_eq!(a.justification, "seeded upstream, this draw is replayed");
    }

    #[test]
    fn directives_stack_over_comment_lines() {
        let l =
            lex("// ftlint::allow(FTL-D001): sorted downstream\n// a plain comment\nlet x = 1;");
        let allows = parse_allows(&l);
        assert_eq!(allows[0].target, Some(3), "lands on the first code line");
    }

    #[test]
    fn unjustified_and_unknown_allows_become_findings() {
        let l = lex("// ftlint::allow(FTL-D001)\n// ftlint::allow(FTL-Z999): because\nlet x = 1;");
        let allows = parse_allows(&l);
        let got = apply_allows("crates/x/src/lib.rs", &allows, Vec::new());
        let codes: Vec<&str> = got.iter().map(|f| f.code).collect();
        assert!(codes.contains(&"FTL-S001"), "{codes:?}");
        assert!(codes.contains(&"FTL-S002"), "{codes:?}");
    }

    #[test]
    fn suppression_requires_matching_rule_line_and_justification() {
        let finding = |line| LintFinding::new(LintRule::EntropyRng, "f.rs", line, "thread_rng");
        let l = lex(
            "// ftlint::allow(FTL-D003): replayed\nlet a = thread_rng();\nlet b = thread_rng();",
        );
        let allows = parse_allows(&l);
        let got = apply_allows("f.rs", &allows, vec![finding(2), finding(3)]);
        assert_eq!(got.len(), 1, "only the annotated line is suppressed");
        assert_eq!(got[0].line, 3);

        // Wrong rule code: nothing suppressed, and the directive is fine.
        let l2 = lex("// ftlint::allow(FTL-D002): wrong rule\nlet a = thread_rng();");
        let got2 = apply_allows("f.rs", &parse_allows(&l2), vec![finding(2)]);
        assert_eq!(got2.len(), 1);
        assert_eq!(got2[0].rule, LintRule::EntropyRng);
    }
}
