//! Deterministic workspace discovery.
//!
//! Collects every non-test `.rs` file under `crates/*/src` — crate-root
//! `tests/`, `benches/`, and `examples/` directories are siblings of
//! `src/` and never entered, and `#[cfg(test)]` regions inside `src`
//! files are excluded later, token-wise, by the rules. Traversal order
//! is sorted at every level so the file list (and therefore the report)
//! is byte-identical on any filesystem.

use crate::source::FileInput;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collects the lintable files of the workspace rooted at `root`
/// (the directory containing `crates/`), repo-relative, sorted.
pub fn workspace_files(root: &Path) -> io::Result<Vec<FileInput>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut out = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        collect_rs(root, &src, &mut out)?;
    }
    // Directory-inline recursion is *almost* path order (`foo.rs` vs a
    // sibling `foo/` directory disagree), so pin the contract with a
    // final sort.
    out.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(out)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<FileInput>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(FileInput {
                path: rel,
                text: fs::read_to_string(&p)?,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_this_workspace_sorted_and_src_only() {
        // The crate's own tests run with CWD = crates/lint.
        let root = Path::new("../..");
        let files = workspace_files(root).expect("workspace layout");
        assert!(files.len() > 50, "found {} files", files.len());
        let paths: Vec<&str> = files.iter().map(|f| f.path.as_str()).collect();
        let mut sorted = paths.clone();
        sorted.sort_unstable();
        assert_eq!(paths, sorted, "traversal is sorted");
        assert!(paths.iter().all(|p| p.starts_with("crates/")));
        assert!(paths.iter().all(|p| p.contains("/src/")), "src only");
        assert!(
            !paths
                .iter()
                .any(|p| p.contains("/tests/") || p.contains("/benches/")),
            "no test/bench dirs"
        );
        assert!(paths.contains(&"crates/lint/src/walk.rs"), "self-scan");
    }
}
