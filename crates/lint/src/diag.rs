//! Structured, deterministic diagnostics for the `ftlint` rule catalog.
//!
//! Mirrors `verify::diag` (the `ftcheck` battery): every rule has a
//! stable code, a fixed severity, and a fix hint; findings sort by
//! `(file, line, rule, detail)` so reports are byte-identical across
//! runs regardless of scan order.

use serde::Serialize;
use std::fmt;

/// How bad a finding is. The whole launch catalog is `Error` — the CI
/// gate is strict from day one — but the channel keeps room for
/// advisory rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Severity {
    /// Advisory: suspicious but not provably wrong.
    Warning,
    /// Violates a determinism or robustness contract of the workspace.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The rule catalog. Codes are append-only: never renumber a shipped
/// rule. Two launch families — determinism (`FTL-Dxxx`) and robustness
/// (`FTL-Rxxx`) — plus the suppression-hygiene rules (`FTL-Sxxx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum LintRule {
    /// Iteration over `HashMap`/`HashSet` contents escapes the
    /// statement without an intervening sort or collect-to-ordered.
    HashIterEscape,
    /// `Instant::now`/`SystemTime::now` wall-clock read in an engine
    /// crate.
    WallClock,
    /// Entropy-seeded RNG (`thread_rng`, `from_entropy`, `OsRng`)
    /// outside tests.
    EntropyRng,
    /// Float ordering via `partial_cmp(..).unwrap()`/`.expect()`
    /// instead of `total_cmp`.
    PartialCmpUnwrap,
    /// `unwrap()`/`expect()` in library code on a fallible
    /// I/O/parse/lock path.
    UnwrapOnFallible,
    /// `println!`/`eprintln!` in a library crate (output belongs to
    /// bins and `report`).
    PrintlnInLib,
    /// Truncating `as` cast on index/len arithmetic in an allocator or
    /// wire-protocol hot path.
    TruncatingCast,
    /// An `ftlint::allow` with no justification text.
    AllowNoJustification,
    /// An `ftlint::allow` naming an unknown rule code.
    AllowUnknownRule,
}

/// Every rule, in catalog order.
pub const ALL_RULES: [LintRule; 9] = [
    LintRule::HashIterEscape,
    LintRule::WallClock,
    LintRule::EntropyRng,
    LintRule::PartialCmpUnwrap,
    LintRule::UnwrapOnFallible,
    LintRule::PrintlnInLib,
    LintRule::TruncatingCast,
    LintRule::AllowNoJustification,
    LintRule::AllowUnknownRule,
];

impl LintRule {
    /// The stable diagnostic code.
    pub fn code(self) -> &'static str {
        match self {
            LintRule::HashIterEscape => "FTL-D001",
            LintRule::WallClock => "FTL-D002",
            LintRule::EntropyRng => "FTL-D003",
            LintRule::PartialCmpUnwrap => "FTL-D004",
            LintRule::UnwrapOnFallible => "FTL-R001",
            LintRule::PrintlnInLib => "FTL-R002",
            LintRule::TruncatingCast => "FTL-R003",
            LintRule::AllowNoJustification => "FTL-S001",
            LintRule::AllowUnknownRule => "FTL-S002",
        }
    }

    /// Parses a stable code back to its rule.
    pub fn from_code(code: &str) -> Option<Self> {
        ALL_RULES.into_iter().find(|r| r.code() == code)
    }

    /// Fixed severity of the rule.
    pub fn severity(self) -> Severity {
        Severity::Error
    }

    /// Whether an `ftlint::allow` directive may suppress this rule.
    /// Suppression hygiene itself cannot be suppressed.
    pub fn suppressible(self) -> bool {
        !matches!(
            self,
            LintRule::AllowNoJustification | LintRule::AllowUnknownRule
        )
    }

    /// A short remediation pointer.
    pub fn fix_hint(self) -> &'static str {
        match self {
            LintRule::HashIterEscape => "sort before escaping (collect + sort, or collect into a BTreeMap/BTreeSet), or consume order-insensitively (sum/count/min/max/contains)",
            LintRule::WallClock => "engine output must be a pure function of inputs and seed; take times as parameters or move the measurement to the bench/bin layer",
            LintRule::EntropyRng => "seed explicitly: ChaCha8Rng::seed_from_u64(seed) derived from the experiment seed",
            LintRule::PartialCmpUnwrap => "use f64::total_cmp (NaN-total, asserts nothing); the sorted_fcts and report::sorted NaN panics were exactly this bug",
            LintRule::UnwrapOnFallible => "return a typed error (SimError/WireError/FaultError style) or handle the failure; library code must not panic on fallible I/O, parse, or lock paths",
            LintRule::PrintlnInLib => "route output through the bin layer or the report module; library crates must stay silent on stdout/stderr",
            LintRule::TruncatingCast => "use u32::try_from(x).expect(\"fits\") (or propagate a typed error) so an overflow is a loud panic, not a silent wrap",
            LintRule::AllowNoJustification => "write the reason after the colon: // ftlint::allow(FTL-XNNN): <why this site is sound>",
            LintRule::AllowUnknownRule => "name a rule from the catalog (FTL-D001..D004, FTL-R001..R003); check for typos",
        }
    }
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One diagnostic: rule, severity, `file:line`, what, and how to fix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LintFinding {
    /// Which rule fired.
    pub rule: LintRule,
    /// Stable code string (`FTL-D001`), duplicated for JSON consumers.
    pub code: &'static str,
    /// Severity of the rule.
    pub severity: Severity,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// What is wrong.
    pub detail: String,
    /// How to fix it.
    pub fix: &'static str,
}

impl LintFinding {
    /// Builds a finding for `rule` at `file:line`.
    pub fn new(
        rule: LintRule,
        file: impl Into<String>,
        line: u32,
        detail: impl Into<String>,
    ) -> Self {
        LintFinding {
            rule,
            code: rule.code(),
            severity: rule.severity(),
            file: file.into(),
            line,
            detail: detail.into(),
            fix: rule.fix_hint(),
        }
    }

    fn sort_key(&self) -> (&str, u32, LintRule, &str) {
        (&self.file, self.line, self.rule, &self.detail)
    }
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} at {}:{}: {} [fix: {}]",
            self.code, self.severity, self.file, self.line, self.detail, self.fix
        )
    }
}

/// Sorts findings into the canonical `(file, line, rule)` report order
/// and drops duplicates, making output independent of scan order.
pub fn canonicalize(mut findings: Vec<LintFinding>) -> Vec<LintFinding> {
    findings.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_stable_and_hinted() {
        let mut codes: Vec<&str> = ALL_RULES.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), ALL_RULES.len(), "duplicate rule code");
        for r in ALL_RULES {
            assert!(r.code().starts_with("FTL-"));
            assert!(!r.fix_hint().is_empty());
            assert_eq!(LintRule::from_code(r.code()), Some(r));
        }
        assert_eq!(LintRule::from_code("FTL-D999"), None);
    }

    #[test]
    fn canonical_order_is_input_independent() {
        let a = LintFinding::new(LintRule::WallClock, "crates/a/src/lib.rs", 9, "x");
        let b = LintFinding::new(LintRule::EntropyRng, "crates/a/src/lib.rs", 3, "y");
        let fwd = canonicalize(vec![a.clone(), b.clone()]);
        let rev = canonicalize(vec![b, a.clone(), a]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.len(), 2);
        assert_eq!(fwd[0].line, 3, "line sorts before rule");
    }

    #[test]
    fn display_is_file_line_addressable() {
        let f = LintFinding::new(LintRule::PartialCmpUnwrap, "crates/x/src/a.rs", 12, "bad");
        let s = f.to_string();
        assert!(s.contains("FTL-D004") && s.contains("crates/x/src/a.rs:12") && s.contains("fix:"));
    }
}
