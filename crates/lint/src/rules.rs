//! The FTL rule catalog: determinism (`FTL-Dxxx`) and robustness
//! (`FTL-Rxxx`) checks over the lexed token stream.
//!
//! Every check is a linear scan with small fixed-size look-arounds, so
//! a whole-workspace run is milliseconds and — critically — the
//! findings are a pure function of the source bytes: byte-identical
//! across runs, machines, and scan orders.
//!
//! These are lint heuristics, not proofs: they are tuned to catch the
//! bug classes this repo has actually shipped (golden-breaking hash
//! iteration, `partial_cmp().unwrap()` NaN panics) with few enough
//! false positives that every remaining hit is either fixed or carries
//! a justified `ftlint::allow`. The catalog:
//!
//! * **FTL-D001** — iteration over `HashMap`/`HashSet` contents that
//!   escapes its statement without an ordering sink (a `sort*`, a
//!   collect into a `BTreeMap`/`BTreeSet`/hash rebuild, or an
//!   order-insensitive reduction like `sum`/`count`/`min`/`max`). The
//!   window is the statement plus its successor, so the idiomatic
//!   `let mut v: Vec<_> = m.iter().collect(); v.sort();` passes.
//! * **FTL-D002** — `Instant::now`/`SystemTime::now` in engine crates
//!   ([`crate::source::ENGINE_CRATES`]): engine output must be a pure
//!   function of inputs and seed.
//! * **FTL-D003** — entropy-seeded RNG (`thread_rng`, `from_entropy`,
//!   `OsRng`) anywhere outside tests.
//! * **FTL-D004** — `partial_cmp(..).unwrap()`/`.expect()` float
//!   ordering instead of `total_cmp`.
//! * **FTL-R001** — `unwrap()`/`expect()` in library code on a fallible
//!   I/O/parse/lock path (bins and tests exempt).
//! * **FTL-R002** — `println!`/`eprintln!` in library crates (bins and
//!   the `report` module exempt).
//! * **FTL-R003** — truncating `as` casts on index/len arithmetic in
//!   the allocator (`mcf`) and wire-protocol (`bench::dispatch`) hot
//!   paths.

use crate::diag::{LintFinding, LintRule};
use crate::lexer::TokKind;
use crate::source::{FileCtx, FileKind};
use std::collections::BTreeSet;

/// Iterator-producing methods on hash containers whose order is
/// nondeterministic.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Idents that make an escaping hash iteration order-safe: explicit
/// sorts, ordered collection targets, and order-insensitive
/// reductions/queries.
const ORDER_SINKS: [&str; 26] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    "sum",
    "product",
    "count",
    "len",
    "is_empty",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "all",
    "any",
    "contains",
    "contains_key",
    "fold_commutative", // reserved spelling for annotated commutative folds
];

/// Tokens that mark a statement as touching a fallible I/O, parse, or
/// lock path (the `FTL-R001` trigger set).
const FALLIBLE: [&str; 40] = [
    "File",
    "OpenOptions",
    "open",
    "create",
    "create_new",
    "read_to_string",
    "read_to_end",
    "read_line",
    "read_exact",
    "write_all",
    "write_fmt",
    "flush",
    "parse",
    "from_str",
    "from_slice",
    "from_reader",
    "from_utf8",
    "lock",
    "try_lock",
    "read",
    "write",
    "recv",
    "recv_timeout",
    "try_recv",
    "send",
    "join",
    "var",
    "current_dir",
    "canonicalize",
    "metadata",
    "read_dir",
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "accept",
    "connect",
    "bind",
    "spawn",
    "wait",
    "kill",
];

/// `serde_json::<fn>` calls that return `Result` (serialization can
/// fail on non-string map keys and unrepresentable floats).
const SERDE_FALLIBLE: [&str; 5] = [
    "to_string",
    "to_string_pretty",
    "to_vec",
    "to_writer",
    "from_value",
];

/// Runs every rule over one file.
pub fn check_file(ctx: &FileCtx) -> Vec<LintFinding> {
    let mut out = Vec::new();
    hash_iter_escape(ctx, &mut out);
    wall_clock(ctx, &mut out);
    entropy_rng(ctx, &mut out);
    partial_cmp_unwrap(ctx, &mut out);
    unwrap_on_fallible(ctx, &mut out);
    println_in_lib(ctx, &mut out);
    truncating_cast(ctx, &mut out);
    out
}

fn ident_at(ctx: &FileCtx, i: usize) -> Option<&str> {
    match ctx.lexed.toks.get(i).map(|t| &t.kind) {
        Some(TokKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(ctx: &FileCtx, i: usize, c: char) -> bool {
    ctx.lexed.toks.get(i).map(|t| &t.kind) == Some(&TokKind::Punct(c))
}

fn window_has_sink(ctx: &FileCtx, i: usize) -> bool {
    let window = ctx.window(i);
    let mut has_collect = false;
    let mut has_hash_target = false;
    for t in &window {
        if let TokKind::Ident(id) = &t.kind {
            if ORDER_SINKS.contains(&id.as_str()) {
                return true;
            }
            if id == "collect" {
                has_collect = true;
            }
            if id == "HashMap" || id == "HashSet" {
                has_hash_target = true;
            }
        }
    }
    // A hash-to-hash rebuild (`let m2: HashMap<..> = m.iter()..collect()`)
    // is order-insensitive: the destination re-hashes.
    has_collect && has_hash_target
}

/// FTL-D001: names bound to `HashMap`/`HashSet` values in this file.
fn hash_names(ctx: &FileCtx) -> BTreeSet<String> {
    let toks = &ctx.lexed.toks;
    let mut names = BTreeSet::new();
    // `let` bindings whose statement mentions a hash type or ctor.
    // Test regions are skipped: a test-local `let m = HashSet::...`
    // must not taint a live binding that shares its name.
    for r in 0..ctx.run_count() {
        let run = ctx.run(r);
        let (run_start, _) = ctx.run_bounds(r);
        if ctx.in_test(run_start) {
            continue;
        }
        let mentions_hash = run
            .iter()
            .any(|t| matches!(&t.kind, TokKind::Ident(i) if i == "HashMap" || i == "HashSet"));
        if !mentions_hash {
            continue;
        }
        let Some(let_pos) = run
            .iter()
            .position(|t| t.kind == TokKind::Ident("let".to_string()))
        else {
            continue;
        };
        for t in &run[let_pos + 1..] {
            match &t.kind {
                TokKind::Ident(id) if id == "mut" || id == "ref" => {}
                TokKind::Ident(id) => {
                    names.insert(id.clone());
                    // Keep scanning only through a destructuring pattern.
                }
                TokKind::Punct('(') | TokKind::Punct(',') => {}
                _ => break, // `:` or `=` ends the pattern
            }
        }
    }
    // `name: HashMap<..>` type ascriptions: struct fields, fn params.
    for i in 0..toks.len() {
        let TokKind::Ident(id) = &toks[i].kind else {
            continue;
        };
        if id != "HashMap" && id != "HashSet" || ctx.in_test(i) {
            continue;
        }
        let mut j = i;
        let mut steps = 0;
        while j > 0 && steps < 8 {
            j -= 1;
            steps += 1;
            match &toks[j].kind {
                TokKind::PathSep
                | TokKind::Lifetime
                | TokKind::Punct('<')
                | TokKind::Punct('&') => {}
                TokKind::Ident(_) => {}
                TokKind::Punct(':') => {
                    if let Some(TokKind::Ident(name)) = j.checked_sub(1).map(|p| &toks[p].kind) {
                        names.insert(name.clone());
                    }
                    break;
                }
                _ => break,
            }
        }
    }
    names
}

/// FTL-D001 — hash iteration escaping without an ordering sink.
fn hash_iter_escape(ctx: &FileCtx, out: &mut Vec<LintFinding>) {
    let names = hash_names(ctx);
    if names.is_empty() {
        return;
    }
    let toks = &ctx.lexed.toks;
    let mut hits: Vec<(u32, String)> = Vec::new();
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = ident_at(ctx, i) else {
            continue;
        };
        if !names.contains(name) || ctx.in_test(i) {
            continue;
        }
        // Method form: `name.iter()`, `name.keys()`, ...
        let method_hit = punct_at(ctx, i + 1, '.')
            && ident_at(ctx, i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
            && punct_at(ctx, i + 3, '(');
        // For-loop form: `for pat in [&mut ][self.]name {` — the name is
        // the loop iterable itself (function-call wrappers excluded:
        // their output order is the callee's contract, not the map's).
        let for_hit = !method_hit && is_direct_for_iterable(ctx, i);
        if (method_hit || for_hit) && !window_has_sink(ctx, i) {
            hits.push((
                tok.line,
                format!("iteration over hash-ordered contents of `{name}` escapes without an ordering sink"),
            ));
        }
    }
    hits.dedup();
    for (line, detail) in hits {
        out.push(LintFinding::new(
            LintRule::HashIterEscape,
            &ctx.path,
            line,
            detail,
        ));
    }
}

/// Whether token `i` (a hash-bound name) is the direct iterable of a
/// `for` statement: every token between `in` and the name is `&`,
/// `mut`, `self`, or `.`.
fn is_direct_for_iterable(ctx: &FileCtx, i: usize) -> bool {
    let Some(r) = ctx.run_index(i) else {
        return false;
    };
    let (start, end) = ctx.run_bounds(r);
    let run = ctx.run(r);
    if run.first().map(|t| &t.kind) != Some(&TokKind::Ident("for".to_string())) {
        return false;
    }
    let Some(in_off) = run
        .iter()
        .position(|t| t.kind == TokKind::Ident("in".to_string()))
    else {
        return false;
    };
    let in_abs = start + in_off;
    if i <= in_abs {
        return false;
    }
    // Clean prefix between `in` and the name.
    let prefix_ok = (in_abs + 1..i).all(|k| {
        matches!(
            ctx.lexed.toks[k].kind,
            TokKind::Punct('&') | TokKind::Punct('.')
        ) || matches!(&ctx.lexed.toks[k].kind, TokKind::Ident(id) if id == "mut" || id == "self")
    });
    // And nothing but field access may follow before the loop body.
    let suffix_ok = (i + 1..end).all(|k| {
        matches!(ctx.lexed.toks[k].kind, TokKind::Punct('.'))
            || matches!(&ctx.lexed.toks[k].kind, TokKind::Ident(_))
    });
    prefix_ok && suffix_ok
}

/// FTL-D002 — wall-clock reads in engine crates.
fn wall_clock(ctx: &FileCtx, out: &mut Vec<LintFinding>) {
    if !ctx.is_engine() {
        return;
    }
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        let Some(id) = ident_at(ctx, i) else { continue };
        if (id == "Instant" || id == "SystemTime")
            && toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::PathSep)
            && ident_at(ctx, i + 2) == Some("now")
            && !ctx.in_test(i)
        {
            out.push(LintFinding::new(
                LintRule::WallClock,
                &ctx.path,
                toks[i].line,
                format!("`{id}::now()` in engine crate `{}`", ctx.crate_name),
            ));
        }
    }
}

/// FTL-D003 — entropy-seeded RNG outside tests.
fn entropy_rng(ctx: &FileCtx, out: &mut Vec<LintFinding>) {
    for (i, t) in ctx.lexed.toks.iter().enumerate() {
        let TokKind::Ident(id) = &t.kind else {
            continue;
        };
        if matches!(id.as_str(), "thread_rng" | "from_entropy" | "OsRng") && !ctx.in_test(i) {
            out.push(LintFinding::new(
                LintRule::EntropyRng,
                &ctx.path,
                t.line,
                format!("entropy-seeded RNG via `{id}`"),
            ));
        }
    }
}

/// FTL-D004 — `partial_cmp` chained into `unwrap`/`expect`.
fn partial_cmp_unwrap(ctx: &FileCtx, out: &mut Vec<LintFinding>) {
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        if ident_at(ctx, i) != Some("partial_cmp") || ctx.in_test(i) {
            continue;
        }
        let Some(r) = ctx.run_index(i) else { continue };
        let (_, end) = ctx.run_bounds(r);
        // The comparator-closure form (`sort_by(|a, b| a.partial_cmp(b)
        // .unwrap())`) chains forward too, so one forward scan covers
        // both spellings.
        let chained = (i + 1..end).any(
            |k| matches!(&toks[k].kind, TokKind::Ident(id) if id == "unwrap" || id == "expect"),
        );
        if chained {
            out.push(LintFinding::new(
                LintRule::PartialCmpUnwrap,
                &ctx.path,
                toks[i].line,
                "float ordering via `partial_cmp(..).unwrap()`-style chain".to_string(),
            ));
        }
    }
}

/// FTL-R001 — library `unwrap`/`expect` on a fallible path.
fn unwrap_on_fallible(ctx: &FileCtx, out: &mut Vec<LintFinding>) {
    if ctx.kind == FileKind::Bin {
        return;
    }
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        let Some(id) = ident_at(ctx, i) else { continue };
        if (id != "unwrap" && id != "expect") || !punct_at(ctx, i.wrapping_sub(1), '.') {
            continue;
        }
        if ctx.in_test(i) {
            continue;
        }
        let Some(r) = ctx.run_index(i) else { continue };
        let (start, _) = ctx.run_bounds(r);
        let mut cause: Option<String> = None;
        for k in start..i {
            match &toks[k].kind {
                TokKind::Ident(f) if FALLIBLE.contains(&f.as_str()) => {
                    cause = Some(f.clone());
                    break;
                }
                TokKind::Ident(f)
                    if f == "serde_json"
                        && toks.get(k + 1).map(|t| &t.kind) == Some(&TokKind::PathSep)
                        && ident_at(ctx, k + 2).is_some_and(|m| SERDE_FALLIBLE.contains(&m)) =>
                {
                    cause = Some(format!(
                        "serde_json::{}",
                        ident_at(ctx, k + 2).unwrap_or_default()
                    ));
                    break;
                }
                _ => {}
            }
        }
        if let Some(cause) = cause {
            out.push(LintFinding::new(
                LintRule::UnwrapOnFallible,
                &ctx.path,
                toks[i].line,
                format!("`.{id}()` on a fallible path (`{cause}`) in library code"),
            ));
        }
    }
}

/// FTL-R002 — stdout/stderr printing from library code.
fn println_in_lib(ctx: &FileCtx, out: &mut Vec<LintFinding>) {
    if ctx.kind == FileKind::Bin || ctx.stem() == "report" {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, tok) in toks.iter().enumerate() {
        let Some(id) = ident_at(ctx, i) else { continue };
        if matches!(id, "println" | "eprintln" | "print" | "eprint")
            && punct_at(ctx, i + 1, '!')
            && !ctx.in_test(i)
        {
            out.push(LintFinding::new(
                LintRule::PrintlnInLib,
                &ctx.path,
                tok.line,
                format!("`{id}!` in library crate `{}`", ctx.crate_name),
            ));
        }
    }
}

/// Narrow integer targets a cast can silently truncate into.
const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Idents in a cast operand that mark it as index/len arithmetic.
const LENGTHY: [&str; 4] = ["len", "count", "capacity", "position"];

/// FTL-R003 — truncating casts on index/len arithmetic in allocator and
/// wire-protocol hot paths.
fn truncating_cast(ctx: &FileCtx, out: &mut Vec<LintFinding>) {
    let in_scope = ctx.crate_name == "mcf" || ctx.path.contains("/bench/src/dispatch/");
    if !in_scope {
        return;
    }
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        if ident_at(ctx, i) != Some("as") || ctx.in_test(i) {
            continue;
        }
        let Some(target) = ident_at(ctx, i + 1) else {
            continue;
        };
        if !NARROW.contains(&target) {
            continue;
        }
        // Walk the cast operand backwards: a parenthesized expression or
        // a field/index chain. Flag if it involves length arithmetic.
        let mut lengthy = false;
        let mut j = i;
        let mut depth = 0i32;
        let mut steps = 0;
        while j > 0 && steps < 48 {
            j -= 1;
            steps += 1;
            match &toks[j].kind {
                TokKind::Punct(')') | TokKind::Punct(']') => depth += 1,
                TokKind::Punct('(') | TokKind::Punct('[') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokKind::Ident(id) => {
                    if LENGTHY.contains(&id.as_str()) {
                        lengthy = true;
                    }
                    if depth == 0 && !punct_at(ctx, j.wrapping_sub(1), '.') {
                        break; // start of a plain field chain
                    }
                }
                TokKind::Punct('.') | TokKind::Num => {}
                _ if depth > 0 => {}
                _ => break,
            }
        }
        if lengthy {
            out.push(LintFinding::new(
                LintRule::TruncatingCast,
                &ctx.path,
                toks[i].line,
                format!("length/index arithmetic truncated by `as {target}`"),
            ));
        }
    }
}
