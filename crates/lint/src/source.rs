//! Source-file model: classification and statement segmentation.
//!
//! Rules need three facts about a file before they can fire: *which
//! crate* it belongs to (the wall-clock rule only covers engine
//! crates), *what kind* of file it is (bins are exempt from the
//! robustness rules), and *where statements begin and end* (sink
//! windows for the hash-iteration rule span the statement and its
//! successor). All of it is derived from the path and the token
//! stream — no filesystem access, so tests can feed virtual files.

use crate::lexer::{lex, test_ranges, Lexed, Tok, TokKind};

/// One file to lint: a repo-relative path and its contents. The path is
/// the diagnostic location *and* the classification key, so fixtures
/// pick their crate/kind by naming (`crates/flowsim/src/x.rs`).
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Repo-relative path; `\` is normalized to `/`.
    pub path: String,
    /// Full source text.
    pub text: String,
}

/// What kind of compilation unit the file feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: every rule applies.
    Lib,
    /// A binary (`src/bin/*` or `src/main.rs`): exempt from the
    /// robustness family (unwraps, printing), covered by determinism.
    Bin,
}

/// Engine crates: their outputs are golden-pinned, so wall-clock reads
/// (`FTL-D002`) are forbidden anywhere inside them. The bench/verify
/// layers legitimately measure wall time and are excluded.
pub const ENGINE_CRATES: [&str; 8] = [
    "flowsim", "mcf", "routing", "netgraph", "topology", "control", "traffic", "decomp",
];

/// A lexed, classified, segmented file ready for rule checks.
pub struct FileCtx {
    /// Normalized repo-relative path.
    pub path: String,
    /// Crate directory name under `crates/` (empty if the path does not
    /// match the workspace layout).
    pub crate_name: String,
    /// Lib or bin.
    pub kind: FileKind,
    /// The token stream and comments.
    pub lexed: Lexed,
    /// Token-index ranges of test-only items.
    tests: Vec<(usize, usize)>,
    /// Statement runs: half-open token-index ranges split at `;`, `{`,
    /// `}` (the boundary tokens belong to no run).
    runs: Vec<(usize, usize)>,
}

impl FileCtx {
    /// Lexes and classifies one input.
    pub fn new(input: &FileInput) -> Self {
        let path = input.path.replace('\\', "/");
        let crate_name = path
            .split_once("crates/")
            .map(|(_, rest)| rest.split('/').next().unwrap_or("").to_string())
            .unwrap_or_default();
        let kind = if path.contains("/src/bin/") || path.ends_with("/src/main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        let lexed = lex(&input.text);
        let tests = test_ranges(&lexed.toks);
        let runs = segment_runs(&lexed.toks);
        FileCtx {
            path,
            crate_name,
            kind,
            lexed,
            tests,
            runs,
        }
    }

    /// Whether the file belongs to an engine crate.
    pub fn is_engine(&self) -> bool {
        ENGINE_CRATES.contains(&self.crate_name.as_str())
    }

    /// The file stem (`report` for `crates/bench/src/report.rs`).
    pub fn stem(&self) -> &str {
        self.path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("")
    }

    /// Whether token `i` sits inside a test-only item.
    pub fn in_test(&self, i: usize) -> bool {
        self.tests.iter().any(|&(s, e)| i >= s && i <= e)
    }

    /// Index (into the run list) of the statement run containing token
    /// `i`, if any (boundary tokens belong to none).
    pub fn run_index(&self, i: usize) -> Option<usize> {
        self.runs
            .partition_point(|&(s, _)| s <= i)
            .checked_sub(1)
            .filter(|&r| {
                let (s, e) = self.runs[r];
                i >= s && i < e
            })
    }

    /// Tokens of run `r`.
    pub fn run(&self, r: usize) -> &[Tok] {
        let (s, e) = self.runs[r];
        &self.lexed.toks[s..e]
    }

    /// Token bounds of run `r`.
    pub fn run_bounds(&self, r: usize) -> (usize, usize) {
        self.runs[r]
    }

    /// Number of statement runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The sink window for token `i`: its statement run plus the
    /// following run (where a `collect`-then-`sort` idiom lives).
    pub fn window(&self, i: usize) -> Vec<&Tok> {
        let mut out = Vec::new();
        if let Some(r) = self.run_index(i) {
            out.extend(self.run(r));
            if r + 1 < self.runs.len() {
                out.extend(self.run(r + 1));
            }
        }
        out
    }
}

/// Splits the token stream into statement runs at `;`, `{`, `}`
/// (any nesting depth — a run is a maximal boundary-free stretch, which
/// is exactly the window granularity the rules want).
fn segment_runs(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if matches!(
            t.kind,
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}')
        ) {
            if i > start {
                runs.push((start, i));
            }
            start = i + 1;
        }
    }
    if toks.len() > start {
        runs.push((start, toks.len()));
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str, text: &str) -> FileCtx {
        FileCtx::new(&FileInput {
            path: path.to_string(),
            text: text.to_string(),
        })
    }

    #[test]
    fn classification_from_path() {
        let c = ctx("crates/mcf/src/incremental.rs", "");
        assert_eq!(c.crate_name, "mcf");
        assert_eq!(c.kind, FileKind::Lib);
        assert!(c.is_engine());

        let b = ctx("crates/bench/src/bin/perfsnap.rs", "");
        assert_eq!(b.crate_name, "bench");
        assert_eq!(b.kind, FileKind::Bin);
        assert!(!b.is_engine());

        assert_eq!(ctx("crates/bench/src/report.rs", "").stem(), "report");
    }

    #[test]
    fn runs_split_at_statement_boundaries() {
        let c = ctx("crates/x/src/lib.rs", "let a = 1; let b = 2; { inner() }");
        // `let a = 1` / `let b = 2` / `inner ( )` — empty stretches
        // between adjacent boundaries produce no run.
        assert_eq!(c.run_count(), 3);
        let first: Vec<_> = c
            .run(0)
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(first, vec!["let", "a"]);
    }

    #[test]
    fn window_spans_statement_and_successor() {
        let c = ctx(
            "crates/x/src/lib.rs",
            "let v = m.iter().collect(); v.sort(); other();",
        );
        let iter_idx = c
            .lexed
            .toks
            .iter()
            .position(|t| t.kind == TokKind::Ident("iter".into()))
            .expect("iter token is present in the fixture");
        let names: Vec<_> = c
            .window(iter_idx)
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Ident(i) => Some(i.as_str()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"sort"), "{names:?}");
        assert!(!names.contains(&"other"), "{names:?}");
    }
}
