//! Rule-injection self-tests: every rule in the catalog is proven live
//! by a fixture that injects exactly one violation and asserts the
//! exact code fires at the expected line — the same negative-testing
//! discipline as `ftcheck`'s corruption battery. The clean fixtures
//! pin the false-positive budget: the idioms the workspace actually
//! uses (collect-then-sort, hash rebuilds, bins that print, test
//! modules) must not fire.

use ftlint::{analyze_file, analyze_files, render, FileInput, LintReport, ALL_RULES};

fn input(path: &str, text: &str) -> FileInput {
    FileInput {
        path: path.to_string(),
        text: text.to_string(),
    }
}

fn codes(path: &str, text: &str) -> Vec<(&'static str, u32)> {
    analyze_file(&input(path, text))
        .into_iter()
        .map(|f| (f.code, f.line))
        .collect()
}

/// One injection per rule: (rule code, fixture path, fixture source,
/// line the finding must land on).
fn injections() -> Vec<(&'static str, &'static str, &'static str, u32)> {
    vec![
        (
            "FTL-D001",
            "crates/routing/src/lib.rs",
            "use std::collections::HashMap;\n\
             fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             let out: Vec<u32> = m.keys().copied().collect();\n\
             out\n\
             }\n",
            3,
        ),
        (
            "FTL-D002",
            "crates/flowsim/src/timing.rs",
            "pub fn stamp() -> std::time::Instant {\n\
             std::time::Instant::now()\n\
             }\n",
            2,
        ),
        (
            "FTL-D003",
            "crates/traffic/src/gen.rs",
            "pub fn draw() -> u64 {\n\
             let mut rng = rand::thread_rng();\n\
             rng.gen()\n\
             }\n",
            2,
        ),
        (
            "FTL-D004",
            "crates/mcf/src/order.rs",
            "pub fn sorted(v: &mut Vec<f64>) {\n\
             v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
             }\n",
            2,
        ),
        (
            "FTL-R001",
            "crates/obs/src/load.rs",
            "pub fn load(p: &str) -> String {\n\
             std::fs::read_to_string(p).unwrap()\n\
             }\n",
            2,
        ),
        (
            "FTL-R002",
            "crates/netgraph/src/debug.rs",
            "pub fn show(n: usize) {\n\
             println!(\"nodes: {n}\");\n\
             }\n",
            2,
        ),
        (
            "FTL-R003",
            "crates/mcf/src/pack.rs",
            "pub fn head(xs: &[u64]) -> u32 {\n\
             xs.len() as u32\n\
             }\n",
            2,
        ),
        (
            "FTL-S001",
            "crates/control/src/plan.rs",
            "// ftlint::allow(FTL-D003)\n\
             pub fn noop() {}\n",
            1,
        ),
        (
            "FTL-S002",
            "crates/control/src/plan2.rs",
            "// ftlint::allow(FTL-Q999): the catalog has no Q family\n\
             pub fn noop() {}\n",
            1,
        ),
    ]
}

#[test]
fn every_rule_fires_on_its_injection_at_the_exact_line() {
    for (code, path, src, line) in injections() {
        let got = codes(path, src);
        assert!(
            got.contains(&(code, line)),
            "{code} did not fire at {path}:{line}; got {got:?}"
        );
        // Exactly one finding: the injection is minimal by construction.
        assert_eq!(got.len(), 1, "{code} fixture over-fires: {got:?}");
    }
}

#[test]
fn the_whole_catalog_is_covered_by_injections() {
    let covered: Vec<&str> = injections().iter().map(|(c, ..)| *c).collect();
    for rule in ALL_RULES {
        assert!(
            covered.contains(&rule.code()),
            "no injection fixture for {}",
            rule.code()
        );
    }
}

#[test]
fn for_loop_form_of_hash_iteration_fires_too() {
    let src = "use std::collections::HashMap;\n\
               fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
               let mut out = Vec::new();\n\
               for (k, _) in m {\n\
               out.push(*k);\n\
               }\n\
               out\n\
               }\n";
    let got = codes("crates/routing/src/lib.rs", src);
    assert_eq!(got, vec![("FTL-D001", 4)], "{got:?}");
}

#[test]
fn collect_then_sort_and_hash_rebuild_idioms_are_clean() {
    // The successor-statement sink window: collect, then sort.
    let sorted = "use std::collections::HashMap;\n\
                  fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                  let mut v: Vec<u32> = m.keys().copied().collect();\n\
                  v.sort_unstable();\n\
                  v\n\
                  }\n";
    assert_eq!(codes("crates/routing/src/lib.rs", sorted), vec![]);

    // Hash-to-hash rebuild: destination re-hashes, order cannot escape.
    let rebuild = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) -> HashMap<u32, u32> {\n\
                   let m2: HashMap<u32, u32> = m.iter().map(|(k, v)| (*k, v + 1)).collect();\n\
                   m2\n\
                   }\n";
    assert_eq!(codes("crates/routing/src/lib.rs", rebuild), vec![]);

    // Order-insensitive reduction.
    let summed = "use std::collections::HashMap;\n\
                  fn f(m: &HashMap<u32, u32>) -> u32 {\n\
                  let total: u32 = m.values().sum();\n\
                  total\n\
                  }\n";
    assert_eq!(codes("crates/routing/src/lib.rs", summed), vec![]);

    // Collect into a BTreeMap: ordered by construction.
    let btree = "use std::collections::{BTreeMap, HashMap};\n\
                 fn f(m: &HashMap<u32, u32>) -> BTreeMap<u32, u32> {\n\
                 let b: BTreeMap<u32, u32> = m.iter().map(|(k, v)| (*k, *v)).collect();\n\
                 b\n\
                 }\n";
    assert_eq!(codes("crates/routing/src/lib.rs", btree), vec![]);
}

#[test]
fn exemptions_hold_for_bins_tests_report_and_non_engine_crates() {
    // Bins may print and unwrap I/O.
    let bin = "fn main() {\n\
               let s = std::fs::read_to_string(\"x\").unwrap();\n\
               println!(\"{s}\");\n\
               }\n";
    assert_eq!(codes("crates/bench/src/bin/tool.rs", bin), vec![]);

    // The report module is the sanctioned stdout surface.
    let report = "pub fn emit(s: &str) {\n\
                  println!(\"{s}\");\n\
                  }\n";
    assert_eq!(codes("crates/bench/src/report.rs", report), vec![]);

    // Test regions are exempt from every rule.
    let tests = "#[cfg(test)]\n\
                 mod tests {\n\
                 fn f() -> u64 {\n\
                 let mut rng = rand::thread_rng();\n\
                 rng.gen()\n\
                 }\n\
                 }\n";
    assert_eq!(codes("crates/traffic/src/gen.rs", tests), vec![]);

    // Wall-clock reads are fine outside engine crates (bench measures).
    let bench = "pub fn measure() -> std::time::Instant {\n\
                 std::time::Instant::now()\n\
                 }\n";
    assert_eq!(codes("crates/bench/src/timer.rs", bench), vec![]);

    // total_cmp is the sanctioned float ordering.
    let total = "pub fn sorted(v: &mut Vec<f64>) {\n\
                 v.sort_by(|a, b| a.total_cmp(b));\n\
                 }\n";
    assert_eq!(codes("crates/mcf/src/order.rs", total), vec![]);

    // try_from is the sanctioned narrowing (no `as`, no R003; try_from
    // is not on the fallible-path list, so the expect is fine too).
    let tryfrom = "pub fn head(xs: &[u64]) -> u32 {\n\
                   u32::try_from(xs.len()).expect(\"fits u32\")\n\
                   }\n";
    assert_eq!(codes("crates/mcf/src/pack.rs", tryfrom), vec![]);

    // Truncating casts outside the allocator/wire scope are not R003.
    let elsewhere = "pub fn head(xs: &[u64]) -> u32 {\n\
                     xs.len() as u32\n\
                     }\n";
    assert_eq!(codes("crates/topology/src/pack.rs", elsewhere), vec![]);
}

#[test]
fn justified_allow_suppresses_exactly_its_rule_and_line() {
    let src = "pub fn draw() -> u64 {\n\
               // ftlint::allow(FTL-D003): draws are replayed from the seeded event log\n\
               let mut rng = rand::thread_rng();\n\
               rng.gen()\n\
               }\n";
    assert_eq!(codes("crates/traffic/src/gen.rs", src), vec![]);

    // The same directive does not cover a second violation line.
    let two = "pub fn draw() -> u64 {\n\
               // ftlint::allow(FTL-D003): first draw is replayed\n\
               let mut a = rand::thread_rng();\n\
               let mut b = rand::thread_rng();\n\
               a.gen() ^ b.gen()\n\
               }\n";
    assert_eq!(
        codes("crates/traffic/src/gen.rs", two),
        vec![("FTL-D003", 4)]
    );

    // A directive naming the wrong rule suppresses nothing.
    let wrong = "pub fn draw() -> u64 {\n\
                 // ftlint::allow(FTL-D002): wrong family\n\
                 let mut rng = rand::thread_rng();\n\
                 rng.gen()\n\
                 }\n";
    assert_eq!(
        codes("crates/traffic/src/gen.rs", wrong),
        vec![("FTL-D003", 3)]
    );
}

#[test]
fn unjustified_allow_reports_hygiene_and_does_not_suppress() {
    let src = "pub fn draw() -> u64 {\n\
               // ftlint::allow(FTL-D003)\n\
               let mut rng = rand::thread_rng();\n\
               rng.gen()\n\
               }\n";
    let got = codes("crates/traffic/src/gen.rs", src);
    assert!(got.contains(&("FTL-S001", 2)), "{got:?}");
    assert!(got.contains(&("FTL-D003", 3)), "{got:?}");
}

#[test]
fn report_is_input_order_independent_and_byte_identical() {
    let files: Vec<FileInput> = injections()
        .iter()
        .map(|(_, path, src, _)| input(path, src))
        .collect();
    let mut reversed = files.clone();
    reversed.reverse();
    assert_eq!(analyze_files(&files), analyze_files(&reversed));

    let a = render(&LintReport::run(&files));
    let b = render(&LintReport::run(&files));
    assert_eq!(a, b, "text report is byte-identical across runs");
    let ja = serde_json::to_string_pretty(&LintReport::run(&files)).expect("report serializes");
    let jb = serde_json::to_string_pretty(&LintReport::run(&reversed)).expect("report serializes");
    assert_eq!(ja, jb, "JSON report is byte-identical across input orders");
}
