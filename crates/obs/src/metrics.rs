//! A small static-dispatch metrics facade: counters, gauges, and
//! HDR-style log-bucketed histograms.
//!
//! [`Metrics`] is a plain struct owned by whoever is measuring — no
//! globals, no atomics, no trait objects. Registration is implicit
//! (first touch creates the instrument) and iteration order is
//! insertion order, so a serialized dump is deterministic for a
//! deterministic program.

use serde::{Deserialize, Serialize};

/// Sub-buckets per power of two. 16 gives <= 6.25% relative bucket
/// width — HDR-histogram-like precision at 2 decimal significant
/// digits, with pure integer indexing.
const SUBS: usize = 16;
/// Binary exponents covered: 2^-64 .. 2^64. Values outside clamp.
const MIN_EXP: i32 = -64;
const MAX_EXP: i32 = 64;

/// A log-bucketed histogram of non-negative `f64` samples.
///
/// Layout: one underflow bucket for zero (and sub-2^-64) values, then
/// 16 linear sub-buckets per binary order of magnitude — the
/// classic HDR scheme, sized for the ranges this workspace records
/// (seconds, milliseconds, rates, utilizations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; 1 + ((MAX_EXP - MIN_EXP) as usize) * SUBS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn index(v: f64) -> usize {
        if v <= 0.0 || !v.is_finite() {
            return 0; // zero / negative / NaN land in the underflow bucket
        }
        // `log2().floor()` can round *up* for v = 2^k · (1 - ε) (the
        // nearest double to log2(v) is exactly k), which would put v in a
        // bucket whose lower bound exceeds v. Step down when that happens
        // so bucket lower bounds are true lower bounds.
        let mut exp = v.log2().floor() as i32;
        if exp > MIN_EXP && 2f64.powi(exp) > v {
            exp -= 1;
        }
        let exp = exp.clamp(MIN_EXP, MAX_EXP - 1);
        let base = 2f64.powi(exp);
        // v / base is in [1, 2): spread over SUBS linear sub-buckets.
        let sub = (((v / base - 1.0) * SUBS as f64) as usize).min(SUBS - 1);
        1 + ((exp - MIN_EXP) as usize) * SUBS + sub
    }

    /// Representative (lower-bound) value of bucket `i`.
    fn bucket_value(i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let i = i - 1;
        let exp = MIN_EXP + (i / SUBS) as i32;
        let sub = i % SUBS;
        2f64.powi(exp) * (1.0 + sub as f64 / SUBS as f64)
    }

    /// Public view of the bucketing scheme: the bucket index `v` lands
    /// in. Deterministic, monotone in `v`; index 0 is the underflow
    /// bucket (zero, negative, and non-finite samples).
    ///
    /// Exposed so signature layers (the decomposed-simulation plane)
    /// can bucket values with exactly the histogram's resolution
    /// without recording them.
    pub fn bucket_index(v: f64) -> usize {
        Self::index(v)
    }

    /// Lower-bound value of bucket `i` (the value [`percentile`]
    /// reports for samples in that bucket). 0 for the underflow bucket.
    ///
    /// [`percentile`]: Histogram::percentile
    pub fn bucket_lower_bound(i: usize) -> f64 {
        Self::bucket_value(i)
    }

    /// Records one sample. Negative, zero, and non-finite samples count
    /// in the underflow bucket (they still bump `count`).
    pub fn record(&mut self, v: f64) {
        self.counts[Self::index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded (finite) samples; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest finite sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min.min(self.max) // min is +inf if only non-finite seen
        }
    }

    /// Largest finite sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 || self.max == f64::NEG_INFINITY {
            0.0
        } else {
            self.max
        }
    }

    /// The `p`-th percentile as the matching bucket's lower-bound value
    /// (<= 6.25% below the true sample, never above it).
    ///
    /// Pinned edge semantics (regression-tested):
    /// * empty histogram → 0 for every `p`;
    /// * `p` is clamped to `[0, 100]` (NaN behaves like 0);
    /// * `p <= 0` → the lowest occupied bucket's lower bound (the rank-1
    ///   sample), so a one-sample histogram reports that sample's bucket
    ///   at **every** `p`;
    /// * `p = 100` → the highest occupied bucket's lower bound, which is
    ///   always <= [`max`](Self::max) — the result is additionally
    ///   clamped by the true finite maximum so no percentile can exceed
    ///   a recorded sample. (Samples below 2^-64 clamp into the first
    ///   regular bucket, whose lower bound exceeds them; the clamp keeps
    ///   the contract even there.)
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let v = Self::bucket_value(i);
                // Non-finite samples sit in the underflow bucket with
                // max() == 0; only clamp when a finite max exists.
                return if self.max == f64::NEG_INFINITY {
                    v
                } else {
                    v.min(self.max)
                };
            }
        }
        self.max()
    }
}

/// One named instrument.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instrument {
    /// Monotone event count.
    Counter(u64),
    /// Last-write-wins value.
    Gauge(f64),
    /// Sample distribution.
    Histogram(Histogram),
}

/// Insertion-ordered named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    entries: Vec<(String, Instrument)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(&mut self, name: &str, make: impl FnOnce() -> Instrument) -> &mut Instrument {
        if let Some(i) = self.entries.iter().position(|(n, _)| n == name) {
            return &mut self.entries[i].1;
        }
        self.entries.push((name.to_string(), make()));
        &mut self.entries.last_mut().expect("just pushed").1
    }

    /// Adds `delta` to the named counter (creating it at zero).
    /// Panics if `name` is already a gauge or histogram.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self.slot(name, || Instrument::Counter(0)) {
            Instrument::Counter(c) => *c += delta,
            other => panic!("metric {name} is {other:?}, not a counter"),
        }
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Sets the named gauge. Panics if `name` is another instrument
    /// kind.
    pub fn gauge(&mut self, name: &str, value: f64) {
        match self.slot(name, || Instrument::Gauge(0.0)) {
            Instrument::Gauge(g) => *g = value,
            other => panic!("metric {name} is {other:?}, not a gauge"),
        }
    }

    /// Records a sample into the named histogram. Panics if `name` is
    /// another instrument kind.
    pub fn record(&mut self, name: &str, value: f64) {
        match self.slot(name, || Instrument::Histogram(Histogram::new())) {
            Instrument::Histogram(h) => h.record(value),
            other => panic!("metric {name} is {other:?}, not a histogram"),
        }
    }

    /// Looks up an instrument by name.
    pub fn get(&self, name: &str) -> Option<&Instrument> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, i)| i)
    }

    /// The named counter's value (0 if absent or another kind).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(Instrument::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(Instrument::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterates `(name, instrument)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Instrument)> {
        self.entries.iter().map(|(n, i)| (n.as_str(), i))
    }

    /// Renders a compact deterministic one-object JSON summary:
    /// counters and gauges verbatim, histograms as
    /// `{count, mean, min, p50, p99, max}`.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, inst)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:", quote(name)));
            match inst {
                Instrument::Counter(c) => out.push_str(&c.to_string()),
                Instrument::Gauge(g) => out.push_str(&fmt_f64(*g)),
                Instrument::Histogram(h) => out.push_str(&format!(
                    "{{\"count\":{},\"mean\":{},\"min\":{},\"p50\":{},\"p99\":{},\"max\":{}}}",
                    h.count(),
                    fmt_f64(h.mean()),
                    fmt_f64(h.min()),
                    fmt_f64(h.percentile(50.0)),
                    fmt_f64(h.percentile(99.0)),
                    fmt_f64(h.max()),
                )),
            }
        }
        out.push('}');
        out
    }
}

fn quote(s: &str) -> String {
    // ftlint::allow(FTL-R001): serializing a plain &str cannot fail
    serde_json::to_string(&s).expect("strings serialize")
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // ftlint::allow(FTL-R001): serializing a finite f64 cannot fail (non-finite handled above)
        serde_json::to_string(&v).expect("finite floats serialize")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = Metrics::new();
        m.incr("cells");
        m.add("cells", 4);
        m.gauge("peak_rss", 123.0);
        m.gauge("peak_rss", 456.0);
        assert_eq!(m.counter("cells"), 5);
        assert!(matches!(m.get("peak_rss"), Some(Instrument::Gauge(g)) if *g == 456.0));
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn histogram_percentiles_bound_samples() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        let p50 = h.percentile(50.0);
        // Bucket lower bound: within 6.25% below the true median.
        assert!((500.0 * (1.0 - 1.0 / 16.0)..=500.0).contains(&p50), "{p50}");
        let p99 = h.percentile(99.0);
        assert!((990.0 * (1.0 - 1.0 / 16.0)..=990.0).contains(&p99), "{p99}");
        assert!(h.percentile(100.0) <= 1000.0);
    }

    #[test]
    fn histogram_handles_degenerate_samples() {
        let mut h = Histogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(2.5);
        assert_eq!(h.count(), 4);
        assert_eq!(h.percentile(10.0), 0.0);
        assert_eq!(h.max(), 2.5);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
    }

    /// Regression (PR 9): for v = 2^k · (1 - ε), `log2().floor()` rounds
    /// up to k, which used to file v in a bucket whose lower bound (2^k)
    /// exceeds v — so `percentile(100.0)` reported a value *above* the
    /// true maximum sample. Both the indexing and the percentile clamp
    /// now keep every percentile <= max().
    #[test]
    fn percentile_never_exceeds_true_max() {
        let just_below: f64 = 8.0 * (1.0 - f64::EPSILON);
        assert!(just_below < 8.0);
        let mut h = Histogram::new();
        h.record(just_below);
        assert!(
            h.percentile(100.0) <= just_below,
            "p100 {} > max sample {just_below}",
            h.percentile(100.0)
        );
        // The bucket itself must be a lower bound too.
        let b = Histogram::bucket_index(just_below);
        assert!(Histogram::bucket_lower_bound(b) <= just_below);
        // And across a spread of awkward values.
        let mut h = Histogram::new();
        for i in 1..=64u32 {
            let v = f64::from(i);
            h.record(v * (1.0 - f64::EPSILON));
            h.record(v);
        }
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert!(h.percentile(p) <= h.max(), "p{p}");
        }
    }

    /// Pin (PR 9): the documented edge semantics of `percentile`.
    #[test]
    fn percentile_edge_semantics_are_pinned() {
        // Empty: 0 at every p, including out-of-range p.
        let h = Histogram::new();
        for p in [-5.0, 0.0, 50.0, 100.0, 250.0, f64::NAN] {
            assert_eq!(h.percentile(p), 0.0);
        }
        // One sample: every p reports that sample's bucket lower bound.
        let mut h = Histogram::new();
        h.record(3.0);
        let expect = Histogram::bucket_lower_bound(Histogram::bucket_index(3.0));
        for p in [-1.0, 0.0, 50.0, 100.0, 101.0, f64::NAN] {
            assert_eq!(h.percentile(p), expect, "p = {p}");
        }
        assert!((3.0 * (1.0 - 1.0 / 16.0)..=3.0).contains(&expect));
        // p <= 0 is the rank-1 (lowest) sample; p = 100 the highest.
        let mut h = Histogram::new();
        h.record(1.0);
        h.record(1024.0);
        assert!(h.percentile(0.0) <= 1.0);
        assert!(h.percentile(0.0) >= 1.0 - 1.0 / 16.0);
        assert!(h.percentile(100.0) <= 1024.0);
        assert!(h.percentile(100.0) > 512.0);
        // Sub-2^-64 samples clamp upward into the first regular bucket;
        // the max() clamp keeps the contract anyway.
        let mut h = Histogram::new();
        h.record(1e-300);
        assert!(h.percentile(100.0) <= 1e-300);
    }

    /// `bucket_index` is monotone and agrees with `record`.
    #[test]
    fn bucket_index_is_monotone_and_public() {
        let values = [1e-20, 0.5, 0.9999, 1.0, 1.5, 2.0, 3.7, 1e6];
        let mut last = 0usize;
        for &v in &values {
            let i = Histogram::bucket_index(v);
            assert!(i >= last, "index must be monotone at {v}");
            assert!(Histogram::bucket_lower_bound(i) > 0.0);
            last = i;
        }
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
    }

    #[test]
    fn tiny_and_huge_values_clamp_into_range() {
        let mut h = Histogram::new();
        h.record(1e-300);
        h.record(1e300);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) > 0.0);
    }

    #[test]
    fn summary_json_is_deterministic_and_ordered() {
        let mut m = Metrics::new();
        m.incr("b_second");
        m.gauge("a_first", 1.5);
        m.record("lat_ms", 10.0);
        let a = m.summary_json();
        assert_eq!(a, m.summary_json());
        // Insertion order, not alphabetical.
        let ib = a.find("b_second").unwrap();
        let ia = a.find("a_first").unwrap();
        assert!(ib < ia);
        assert!(a.contains("\"count\":1"));
        // The summary must itself be valid JSON.
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_confusion_panics() {
        let mut m = Metrics::new();
        m.gauge("x", 1.0);
        m.add("x", 1);
    }
}
