//! Trace sinks: no-op, ring buffer, JSONL writer.

use crate::event::TraceEvent;
use std::collections::VecDeque;
use std::io::Write;

/// Where instrumented code sends [`TraceEvent`]s.
///
/// Instrumented layers are **generic** over the sink (static dispatch)
/// and guard every emission site with [`enabled`](Self::enabled):
///
/// ```ignore
/// if sink.enabled() {
///     sink.emit(TraceEvent::FlowStart { t, flow, paths });
/// }
/// ```
///
/// [`NoopSink`] returns `false` from a one-line `enabled`, so after
/// monomorphization and inlining the guard — event construction
/// included — compiles away entirely. This is the zero-cost contract:
/// un-traced entry points must not measurably regress and must produce
/// bit-identical results.
pub trait TraceSink {
    /// Whether [`emit`](Self::emit) records anything. Callers skip
    /// building events when this is `false`.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event. Must be cheap relative to the caller's epoch
    /// work; sinks that do I/O should buffer.
    fn emit(&mut self, ev: TraceEvent);
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _ev: TraceEvent) {}
}

/// Keeps the last `capacity` events in memory (flight-recorder style);
/// older events are dropped and counted.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// A ring keeping the last `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "ring capacity must be >= 1");
        Self {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// A ring that never evicts (plain in-memory collector).
    pub fn unbounded() -> Self {
        Self {
            capacity: usize::MAX,
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning the retained events oldest-first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// Serializes every event as one compact JSON object per line into any
/// [`Write`]. Write errors are latched (emission becomes a no-op) and
/// surfaced via [`take_error`](Self::take_error) rather than panicking
/// mid-simulation.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    written: u64,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer. Callers doing file I/O should pass a
    /// `BufWriter`.
    pub fn new(w: W) -> Self {
        Self {
            w,
            written: 0,
            error: None,
        }
    }

    /// Lines successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any, clearing it.
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }

    /// Flushes and returns the underlying writer, or the latched error.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.flush()?;
        Ok(self.w)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, ev: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        // ftlint::allow(FTL-R001): TraceEvent is a derive(Serialize) enum with string keys; serialization cannot fail
        let line = serde_json::to_string(&ev).expect("trace events always serialize");
        let res = self
            .w
            .write_all(line.as_bytes())
            .and_then(|()| self.w.write_all(b"\n"));
        match res {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Forwards to any other sink behind a mutable reference, so one sink
/// can serve several traced calls in sequence.
impl<S: TraceSink> TraceSink for &mut S {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn emit(&mut self, ev: TraceEvent) {
        (**self).emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(flow: u64) -> TraceEvent {
        TraceEvent::FlowFinish {
            t: 1.0,
            flow,
            fct: 0.5,
        }
    }

    #[test]
    fn noop_is_disabled_and_silent() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.emit(ev(1)); // must not panic
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut s = RingSink::new(2);
        assert!(s.enabled());
        for i in 0..5 {
            s.emit(ev(i));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let flows: Vec<u64> = s
            .into_events()
            .iter()
            .map(|e| match e {
                TraceEvent::FlowFinish { flow, .. } => *flow,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(flows, vec![3, 4]);
    }

    #[test]
    fn unbounded_ring_keeps_everything() {
        let mut s = RingSink::unbounded();
        for i in 0..100 {
            s.emit(ev(i));
        }
        assert_eq!(s.len(), 100);
        assert_eq!(s.dropped(), 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut s = JsonlSink::new(Vec::new());
        s.emit(ev(7));
        s.emit(ev(8));
        assert_eq!(s.written(), 2);
        let bytes = s.into_inner().expect("no io error");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"flow\":7"));
    }

    #[test]
    fn jsonl_latches_write_errors() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk on fire"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut s = JsonlSink::new(Broken);
        s.emit(ev(1));
        s.emit(ev(2)); // silently dropped after the latch
        assert_eq!(s.written(), 0);
        assert!(s.take_error().is_some());
        assert!(s.take_error().is_none());
    }

    #[test]
    fn mut_ref_forwards() {
        fn traced<S: TraceSink>(mut sink: S) {
            assert!(sink.enabled());
            sink.emit(ev(1));
        }
        let mut ring = RingSink::unbounded();
        traced(&mut ring);
        assert_eq!(ring.len(), 1);
    }
}
