//! Observability plane: tracing and metrics for the flat-tree workspace.
//!
//! The engine (`flowsim`), the resilient controller
//! (`control::resilient`) and the sweep driver (`ft_bench::sweep`)
//! compute rich transient state — flow lifecycles, per-epoch link
//! utilization, conversion stage timelines — and, before this crate,
//! threw it away. This crate gives them somewhere to put it **without
//! taxing the hot path**:
//!
//! * [`TraceSink`] — a statically-dispatched event sink. The
//!   instrumented layers are generic over `S: TraceSink`; the default
//!   [`NoopSink`] reports [`TraceSink::enabled`]` == false`, so every
//!   `if sink.enabled() { sink.emit(..) }` block monomorphizes to
//!   nothing and the un-traced entry points are bit- and
//!   byte-identical to the pre-observability code (pinned by the golden
//!   stdout checks in CI and the `bench_obs` Criterion comparison).
//! * [`TraceEvent`] — the one shared event vocabulary (flow lifecycle,
//!   allocator epochs, conversion stages, sweep progress). Events are
//!   plain serde values; [`JsonlSink`] writes one compact JSON object
//!   per line, deterministically for a deterministic event stream.
//! * [`Metrics`] — a small insertion-ordered facade over counters,
//!   gauges and HDR-style log-bucketed [`Histogram`]s, used by the
//!   experiment bins (`--metrics out.jsonl`) and `perfsnap`.
//!
//! No layer below `ft-bench` ever *requires* a sink: tracing is opt-in
//! per call site via the `*_traced` entry points.

pub mod event;
pub mod metrics;
pub mod sink;

pub use event::{ParkCause, TraceEvent};
pub use metrics::{Histogram, Metrics};
pub use sink::{JsonlSink, NoopSink, RingSink, TraceSink};
