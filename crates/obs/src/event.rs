//! The shared trace-event vocabulary.
//!
//! One enum covers the three instrumented layers so any sink can absorb
//! any stream. Variants serialize externally tagged
//! (`{"FlowStart":{...}}`), one JSON object per event — the JSONL
//! framing is the sink's job ([`crate::JsonlSink`]).

use serde::{Deserialize, Serialize};

/// Why a connection was parked by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParkCause {
    /// Arrived while its endpoints were partitioned.
    Arrival,
    /// Lost every path to a fault event mid-flight.
    PathLoss,
}

/// One observable occurrence in the engine, the controller, or the
/// sweep driver. Times `t` are simulation seconds; `*_ms` are modeled
/// milliseconds; `wall_ms` are measured host milliseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    // --- flowsim: flow lifecycle -------------------------------------
    /// A flow arrived and was routed onto `paths` subflow paths.
    FlowStart { t: f64, flow: u64, paths: usize },
    /// A connection was re-routed after a fault/recovery event; `paths`
    /// is the surviving (or refreshed) path count.
    FlowReroute { t: f64, flow: u64, paths: usize },
    /// A connection lost every path (or arrived unroutable under an
    /// active fault schedule) and waits for recovery.
    FlowPark { t: f64, flow: u64, cause: ParkCause },
    /// A parked connection was revived by a recovery event.
    FlowRevive { t: f64, flow: u64, paths: usize },
    /// A flow drained its last byte.
    FlowFinish { t: f64, flow: u64, fct: f64 },
    /// A flow arrived unroutable with no fault schedule active; it will
    /// never finish.
    FlowUnroutable { t: f64, flow: u64 },

    // --- flowsim: epochs and failures --------------------------------
    /// One allocator epoch: `conns` active connections fanned into
    /// `subflows` rate entities, converged in `rounds` filling rounds.
    Alloc {
        t: f64,
        conns: usize,
        subflows: usize,
        rounds: u32,
    },
    /// Per-epoch link-utilization histogram over links carrying
    /// capacity: `deciles[i]` counts links with utilization in
    /// `[i/10, (i+1)/10)`, `saturated` counts links at >= 99.9%.
    LinkUtil {
        t: f64,
        deciles: [u32; 10],
        saturated: u32,
        busiest: f64,
    },
    /// A directed link went down at `t`.
    LinkDown { t: f64, link: usize },
    /// A directed link recovered at `t`.
    LinkUp { t: f64, link: usize },
    /// The event loop drained: final tallies.
    SimEnd {
        t: f64,
        completed: usize,
        unfinished: usize,
    },

    // --- control::resilient: conversion timeline ---------------------
    /// A staged conversion began.
    ConvStart {
        from: String,
        to: String,
        crosspoints: usize,
        deletes: usize,
        adds: usize,
    },
    /// One attempt of one `(stage, shard)` cell. `outcome` is `"ok"`,
    /// `"timeout"`, `"fail"`, `"crash"`, or `"partial"`; `cost_ms` is
    /// the attempt's wall-clock contribution (backoff excluded).
    ConvAttempt {
        stage: String,
        shard: usize,
        attempt: u32,
        outcome: String,
        cost_ms: f64,
    },
    /// A `(stage, shard)` cell finished (the per-stage span): total
    /// attempts, wall-clock including backoffs, and whether it
    /// completed its work.
    ConvStage {
        stage: String,
        shard: usize,
        attempts: u32,
        elapsed_ms: f64,
        ok: bool,
    },
    /// The conversion reached a terminal state
    /// (`"committed"`/`"rolledback"`/`"degraded"`).
    ConvEnd {
        status: String,
        total_ms: f64,
        retries: u32,
    },

    // --- ft-bench: sweep progress ------------------------------------
    /// One sweep cell completed (emitted in completion order, which is
    /// scheduler-dependent; `cell` is the deterministic input index).
    SweepCell { cell: usize, wall_ms: f64 },
    /// End-of-run summary written by the `--metrics` recorder.
    SweepSummary {
        bin: String,
        cells: usize,
        wall_ms: f64,
        cells_per_s: f64,
        p50_ms: f64,
        p99_ms: f64,
        max_ms: f64,
    },

    // --- ft-bench: distributed dispatch ------------------------------
    /// A `ftd` worker process passed the protocol handshake.
    WorkerUp { worker: usize, pid: u32 },
    /// A worker died or was quarantined; `reason` is free-form
    /// ("eof", "quarantined: 2 strikes (last: lease timeout)", ...).
    WorkerDown { worker: usize, reason: String },
    /// A sweep cell was leased to a worker under request id `req`.
    Lease {
        worker: usize,
        cell: usize,
        req: u64,
    },
    /// A leased cell's result was merged (first result wins;
    /// `wall_ms` is the worker-side cell wall-clock).
    LeaseDone {
        worker: usize,
        cell: usize,
        req: u64,
        wall_ms: f64,
    },
    /// A cell lost its lease (timeout, worker death, worker-side
    /// failure) and went back on the queue after `backoff_ms`.
    Requeue {
        cell: usize,
        reason: String,
        backoff_ms: f64,
    },
    /// The dispatch driver finished: the full counter block of the
    /// run's `DispatchSummary`.
    DispatchEnd {
        cells: usize,
        leases: u64,
        speculations: u64,
        requeues: u64,
        timeouts: u64,
        deaths: u64,
        quarantines: u64,
        duplicates: u64,
        degraded_cells: u64,
        fallback: bool,
        wall_ms: f64,
    },
}

impl TraceEvent {
    /// The event's name (its serialized tag), for filtering and tallies.
    pub fn name(&self) -> &'static str {
        match self {
            Self::FlowStart { .. } => "FlowStart",
            Self::FlowReroute { .. } => "FlowReroute",
            Self::FlowPark { .. } => "FlowPark",
            Self::FlowRevive { .. } => "FlowRevive",
            Self::FlowFinish { .. } => "FlowFinish",
            Self::FlowUnroutable { .. } => "FlowUnroutable",
            Self::Alloc { .. } => "Alloc",
            Self::LinkUtil { .. } => "LinkUtil",
            Self::LinkDown { .. } => "LinkDown",
            Self::LinkUp { .. } => "LinkUp",
            Self::SimEnd { .. } => "SimEnd",
            Self::ConvStart { .. } => "ConvStart",
            Self::ConvAttempt { .. } => "ConvAttempt",
            Self::ConvStage { .. } => "ConvStage",
            Self::ConvEnd { .. } => "ConvEnd",
            Self::SweepCell { .. } => "SweepCell",
            Self::SweepSummary { .. } => "SweepSummary",
            Self::WorkerUp { .. } => "WorkerUp",
            Self::WorkerDown { .. } => "WorkerDown",
            Self::Lease { .. } => "Lease",
            Self::LeaseDone { .. } => "LeaseDone",
            Self::Requeue { .. } => "Requeue",
            Self::DispatchEnd { .. } => "DispatchEnd",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_roundtrip_through_json() {
        let evs = vec![
            TraceEvent::FlowStart {
                t: 0.5,
                flow: 3,
                paths: 8,
            },
            TraceEvent::FlowPark {
                t: 1.0,
                flow: 3,
                cause: ParkCause::PathLoss,
            },
            TraceEvent::LinkUtil {
                t: 2.0,
                deciles: [1, 0, 0, 0, 0, 0, 0, 0, 0, 4],
                saturated: 4,
                busiest: 1.0,
            },
            TraceEvent::ConvEnd {
                status: "committed".into(),
                total_ms: 825.0,
                retries: 0,
            },
        ];
        for ev in evs {
            let s = serde_json::to_string(&ev).expect("serializable");
            let back: TraceEvent = serde_json::from_str(&s).expect("parseable");
            assert_eq!(back, ev);
            assert!(s.contains(ev.name()), "{s} must carry tag {}", ev.name());
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        let ev = TraceEvent::FlowFinish {
            t: 1.25,
            flow: 42,
            fct: 0.75,
        };
        let a = serde_json::to_string(&ev).unwrap();
        let b = serde_json::to_string(&ev).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, r#"{"FlowFinish":{"t":1.25,"flow":42,"fct":0.75}}"#);
    }
}
