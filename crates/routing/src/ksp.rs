//! k-shortest-path route tables with switch-level caching.
//!
//! §4.2.1, Observation 1: a server has exactly one ingress/egress switch,
//! so there is no path diversion between a server and its switch.
//! Observation 2: the k-shortest paths between ingress and egress switches
//! almost capture the full path set between the servers. Accordingly the
//! table stores **switch-pair** paths once and splices server uplinks on
//! demand — the same aggregation that reduces network state by the
//! paper's 400–1600×.

use netgraph::{yen, Graph, LinkId, NodeId, Path};
use std::collections::HashMap;

/// The single 2-hop path between two servers on the same ingress switch.
///
/// Panics when either server is not attached to `si` — callers resolve
/// the switch via [`Graph::server_uplink_switch`] first.
pub fn rack_path(g: &Graph, src: NodeId, si: NodeId, dst: NodeId) -> Path {
    Path::from_nodes(g, &[src, si, dst]).expect("rack path")
}

/// Splices the `src` uplink and `dst` downlink onto a switch-pair path
/// set: the §4.2.1 Observation 1 step turning ingress/egress switch
/// paths into server-level paths. The switch paths must run from
/// `src`'s ingress switch to `dst`'s (distinct) ingress switch.
pub fn splice_server_pair(g: &Graph, src: NodeId, dst: NodeId, switch_paths: &[Path]) -> Vec<Path> {
    if switch_paths.is_empty() {
        return Vec::new();
    }
    let up = g.find_link(src, switch_paths[0].src()).expect("src uplink");
    let down = g
        .find_link(switch_paths[0].dst(), dst)
        .expect("dst downlink");
    let paths: Vec<Path> = switch_paths
        .iter()
        .map(|sp| {
            let mut nodes = Vec::with_capacity(sp.nodes.len() + 2);
            nodes.push(src);
            nodes.extend_from_slice(&sp.nodes);
            nodes.push(dst);
            let mut links = Vec::with_capacity(sp.links.len() + 2);
            links.push(up);
            links.extend_from_slice(&sp.links);
            links.push(down);
            Path { nodes, links }
        })
        .collect();
    #[cfg(feature = "strict-invariants")]
    for p in &paths {
        debug_assert!(
            p.validate(g).is_ok(),
            "spliced server path is invalid: {:?}",
            p.validate(g)
        );
    }
    paths
}

/// One cached switch pair: the selected paths plus the Yen run's link
/// footprint (every link any examined path used), the exact certificate
/// for reusing the entry after link failures.
#[derive(Debug, Clone)]
struct PairEntry {
    paths: Vec<Path>,
    footprint: Vec<LinkId>,
}

/// A lazy k-shortest-path routing table over one network instance.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// Number of concurrent paths (k in k-shortest-path routing).
    pub k: usize,
    cache: HashMap<(NodeId, NodeId), PairEntry>,
}

impl RouteTable {
    /// Creates an empty table for `k` concurrent paths.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k-shortest-path routing needs k >= 1");
        Self {
            k,
            cache: HashMap::new(),
        }
    }

    fn entry(&mut self, g: &Graph, a: NodeId, b: NodeId) -> &PairEntry {
        self.cache.entry((a, b)).or_insert_with(|| {
            let (paths, footprint) = yen::k_shortest_paths_with_footprint(g, a, b, self.k);
            PairEntry { paths, footprint }
        })
    }

    /// The switch-level paths between two switches, computed on first use.
    pub fn switch_paths(&mut self, g: &Graph, a: NodeId, b: NodeId) -> &[Path] {
        &self.entry(g, a, b).paths
    }

    /// The switch-level paths plus the pair's Yen link footprint: if no
    /// footprint link is failed, the paths are bit-identical to what a
    /// failure-aware recomputation would return.
    pub fn switch_paths_with_footprint(
        &mut self,
        g: &Graph,
        a: NodeId,
        b: NodeId,
    ) -> (&[Path], &[LinkId]) {
        let e = self.entry(g, a, b);
        (&e.paths, &e.footprint)
    }

    /// The server-level paths for a (src, dst) server pair: the cached
    /// switch-pair paths with the two server uplinks spliced on.
    ///
    /// Intra-rack pairs (same ingress switch) get the single 2-hop path.
    /// Returns an empty vector only if the pair is disconnected.
    pub fn server_paths(&mut self, g: &Graph, src: NodeId, dst: NodeId) -> Vec<Path> {
        assert_ne!(src, dst, "no self-flows");
        let si = g
            .server_uplink_switch(src)
            .expect("src must be an attached server");
        let di = g
            .server_uplink_switch(dst)
            .expect("dst must be an attached server");
        if si == di {
            return vec![rack_path(g, src, si, dst)];
        }
        splice_server_pair(g, src, dst, self.switch_paths(g, si, di))
    }

    /// Number of cached switch pairs (diagnostics).
    pub fn cached_pairs(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode};
    use topology::ClosParams;

    fn mini_global() -> netgraph::Graph {
        let ft = FlatTree::new(FlatTreeParams::new(ClosParams::mini(), 1, 1)).unwrap();
        ft.instantiate(&ModeAssignment::uniform(4, PodMode::Global))
            .net
            .graph
    }

    #[test]
    fn server_paths_are_valid_and_k_bounded() {
        let g = mini_global();
        let servers = g.servers();
        let mut rt = RouteTable::new(8);
        let paths = rt.server_paths(&g, servers[0], servers[40]);
        assert!(!paths.is_empty() && paths.len() <= 8);
        for p in &paths {
            p.validate(&g).unwrap();
            assert_eq!(p.src(), servers[0]);
            assert_eq!(p.dst(), servers[40]);
        }
        // Sorted by length after splicing (uplinks add 2 to each).
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn intra_rack_is_two_hops() {
        let clos = ClosParams::mini().build();
        let g = &clos.net.graph;
        let mut rt = RouteTable::new(4);
        let s0 = clos.edge_servers[0][2]; // fixed servers on same edge
        let s1 = clos.edge_servers[0][3];
        let paths = rt.server_paths(g, s0, s1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 2);
    }

    #[test]
    fn cache_is_shared_across_server_pairs() {
        let clos = ClosParams::mini().build();
        let g = &clos.net.graph;
        let mut rt = RouteTable::new(4);
        // Two pairs under the same two edges hit the same cache entry.
        let _ = rt.server_paths(g, clos.edge_servers[0][2], clos.edge_servers[1][2]);
        let n1 = rt.cached_pairs();
        let _ = rt.server_paths(g, clos.edge_servers[0][3], clos.edge_servers[1][3]);
        assert_eq!(rt.cached_pairs(), n1, "same switch pair must not recompute");
    }

    #[test]
    fn k_one_is_single_shortest() {
        let g = mini_global();
        let servers = g.servers();
        let mut rt = RouteTable::new(1);
        let paths = rt.server_paths(&g, servers[0], servers[63]);
        assert_eq!(paths.len(), 1);
        let sp = netgraph::dijkstra::hop_distance(&g, servers[0], servers[63]).unwrap();
        assert_eq!(paths[0].len(), sp);
    }

    #[test]
    #[should_panic(expected = "no self-flows")]
    fn self_flow_rejected() {
        let g = mini_global();
        let servers = g.servers();
        RouteTable::new(2).server_paths(&g, servers[0], servers[0]);
    }
}
