//! OpenFlow-compatible source routing (§4.2.2).
//!
//! The hop-by-hop list of output ports is encoded into the 48-bit source
//! MAC address; the TTL field acts as the location pointer. A transit
//! switch at TTL `t` applies the byte mask for hop `255 − t`, extracts
//! the port number, forwards, and the TTL decrement moves the pointer.
//! Flat-tree's switch diameter is small (< 3 switch hops on average), so
//! 6 bytes cover 6 hops of up to 256 ports each — enough headroom.
//!
//! Transit switches need only `D × C` static rules (diameter × port
//! count), independent of the topology mode, so these rules are installed
//! once and survive conversion.

use bytes::{Buf, BufMut};
use netgraph::{Graph, NodeId, Path};
use serde::{Deserialize, Serialize};

/// Maximum number of switch hops encodable in a MAC address.
pub const MAX_HOPS: usize = 6;

/// TTL value carried by a packet entering its first switch.
pub const INITIAL_TTL: u8 = 255;

/// A packet header as far as source routing is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceRouteHeader {
    /// Source MAC carrying the encoded port list.
    pub mac: [u8; 6],
    /// Remaining TTL.
    pub ttl: u8,
}

/// Encodes a list of per-hop output ports into a MAC address.
/// Unused trailing bytes are zero.
pub fn encode_ports(ports: &[u8]) -> [u8; 6] {
    assert!(ports.len() <= MAX_HOPS, "at most {MAX_HOPS} hops fit a MAC");
    let mut mac = [0u8; 6];
    let mut buf = &mut mac[..];
    for &p in ports {
        buf.put_u8(p);
    }
    mac
}

/// Decodes the first `n` hop ports back out of a MAC address.
pub fn decode_ports(mac: &[u8; 6], n: usize) -> Vec<u8> {
    assert!(n <= MAX_HOPS);
    let mut buf = &mac[..];
    (0..n).map(|_| buf.get_u8()).collect()
}

/// The byte mask a switch applies at a given TTL (cf. the paper's example:
/// TTL 253 = third hop = mask `00:00:ff:00:00:00`). Returns `None` when
/// the packet has exceeded the encodable hop count.
pub fn mask_for_ttl(ttl: u8) -> Option<[u8; 6]> {
    let hop = (INITIAL_TTL - ttl) as usize;
    if hop >= MAX_HOPS {
        return None;
    }
    let mut m = [0u8; 6];
    m[hop] = 0xff;
    Some(m)
}

/// The output port a transit switch extracts for a header.
pub fn port_for(header: &SourceRouteHeader) -> Option<u8> {
    let mask = mask_for_ttl(header.ttl)?;
    let hop = (INITIAL_TTL - header.ttl) as usize;
    debug_assert_eq!(mask[hop], 0xff);
    Some(header.mac[hop])
}

/// Compiles a path into the per-hop output-port list, numbering each
/// switch's ports by adjacency order (the physical port index).
///
/// The path must start and end at servers; the ports listed are those of
/// the switches in between (the ingress switch's port toward the second
/// switch, etc., ending with the egress switch's port toward the server).
pub fn compile_path(g: &Graph, path: &Path) -> Result<Vec<u8>, String> {
    if path.nodes.len() < 3 {
        return Err("source routes need at least one switch hop".into());
    }
    let switch_count = path.nodes.len() - 2;
    if switch_count > MAX_HOPS {
        return Err(format!("{switch_count} switch hops exceed {MAX_HOPS}"));
    }
    let mut ports = Vec::with_capacity(switch_count);
    for i in 1..path.nodes.len() - 1 {
        let sw = path.nodes[i];
        let next = path.nodes[i + 1];
        let port = g
            .neighbors(sw)
            .iter()
            .position(|&(v, _)| v == next)
            .ok_or_else(|| format!("no port from {sw:?} to {next:?}"))?;
        if port > 255 {
            return Err(format!("switch {sw:?} port {port} exceeds 8 bits"));
        }
        ports.push(port as u8);
    }
    Ok(ports)
}

/// A forwarding engine that executes source routing with only the static
/// per-TTL rules — used to *prove* the encoded path is followed.
///
/// Starting at the ingress switch with [`INITIAL_TTL`], each switch
/// extracts its port, forwards, and decrements the TTL. Returns the node
/// sequence visited (switches + final endpoint).
pub fn forward(
    g: &Graph,
    ingress: NodeId,
    header: SourceRouteHeader,
    hops: usize,
) -> Result<Vec<NodeId>, String> {
    let mut visited = vec![ingress];
    let mut at = ingress;
    let mut h = header;
    for _ in 0..hops {
        let port = port_for(&h).ok_or("TTL exhausted the encodable hops")? as usize;
        let nbrs = g.neighbors(at);
        let &(next, _) = nbrs
            .get(port)
            .ok_or_else(|| format!("switch {at:?} has no port {port}"))?;
        visited.push(next);
        at = next;
        h.ttl -= 1;
    }
    Ok(visited)
}

/// Number of static OpenFlow rules per transit switch: one per
/// (TTL, output port) combination (§4.2.2: `D × C`).
pub fn transit_rules_per_switch(diameter: usize, port_count: usize) -> usize {
    diameter * port_count
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeKind;

    fn line() -> (Graph, Path) {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s");
        let a = g.add_node(NodeKind::EdgeSwitch, "a");
        let b = g.add_node(NodeKind::CoreSwitch, "b");
        let c = g.add_node(NodeKind::EdgeSwitch, "c");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, a, 10.0);
        g.add_duplex_link(a, b, 10.0);
        g.add_duplex_link(b, c, 10.0);
        g.add_duplex_link(c, t, 10.0);
        let p = Path::from_nodes(&g, &[s, a, b, c, t]).unwrap();
        (g, p)
    }

    #[test]
    fn ports_roundtrip_mac() {
        let ports = vec![7u8, 255, 0, 13];
        let mac = encode_ports(&ports);
        assert_eq!(decode_ports(&mac, 4), ports);
        assert_eq!(mac[4], 0);
    }

    #[test]
    fn mask_matches_paper_example() {
        // TTL 253 = third hop -> mask 00:00:ff:00:00:00.
        assert_eq!(mask_for_ttl(253), Some([0, 0, 0xff, 0, 0, 0]));
        assert_eq!(mask_for_ttl(255), Some([0xff, 0, 0, 0, 0, 0]));
        assert_eq!(mask_for_ttl(249), None); // 7th hop, out of MAC bits
    }

    #[test]
    fn forwarding_follows_the_encoded_path() {
        let (g, p) = line();
        let ports = compile_path(&g, &p).unwrap();
        let header = SourceRouteHeader {
            mac: encode_ports(&ports),
            ttl: INITIAL_TTL,
        };
        let visited = forward(&g, p.nodes[1], header, ports.len()).unwrap();
        assert_eq!(visited, p.nodes[1..].to_vec());
    }

    #[test]
    fn compile_rejects_long_paths() {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s");
        let mut prev = g.add_node(NodeKind::GenericSwitch, "w0");
        g.add_duplex_link(s, prev, 10.0);
        let mut nodes = vec![s, prev];
        for i in 1..8 {
            let w = g.add_node(NodeKind::GenericSwitch, format!("w{i}"));
            g.add_duplex_link(prev, w, 10.0);
            nodes.push(w);
            prev = w;
        }
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(prev, t, 10.0);
        nodes.push(t);
        let p = Path::from_nodes(&g, &nodes).unwrap();
        assert!(compile_path(&g, &p).is_err());
    }

    #[test]
    fn rule_budget_matches_paper_claim() {
        // "at most a thousand, far below the capacity of an OpenFlow
        // switch": diameter 6, 256 ports -> 1536 static rules; for
        // flat-tree's real diameter (< 4) and 48-port switches it is tiny.
        assert_eq!(transit_rules_per_switch(6, 256), 1536);
        assert_eq!(transit_rules_per_switch(4, 48), 192);
    }

    #[test]
    fn forwarding_detects_bogus_port() {
        let (g, p) = line();
        let header = SourceRouteHeader {
            mac: encode_ports(&[99]),
            ttl: INITIAL_TTL,
        };
        assert!(forward(&g, p.nodes[1], header, 1).is_err());
    }
}
