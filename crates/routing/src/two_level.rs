//! Two-level routing tables for Clos mode (§4: "For flat-tree Clos mode,
//! we can use ECMP, two-level routing, or customized SDN routing with
//! pre-computed paths").
//!
//! This is the classic fat-tree scheme of Al-Fares et al. \[12\]: every
//! switch holds a small **primary table** of prefix rules for downward
//! (intra-subtree) destinations plus a **secondary table** of suffix
//! rules that spread upward traffic across the uplinks by destination
//! server index. The result is deterministic, loop-free, rack-locality-
//! respecting routing with O(ports) state per switch — the baseline the
//! paper contrasts against the k-shortest-path machinery needed by the
//! converted modes.
//!
//! We implement it structurally (against the built Clos graph, not
//! against literal IP prefixes): each switch's table maps a destination
//! server to an output port. The suffix spreading uses the destination's
//! index within its rack, exactly like the dst-host byte in \[12\].

use flat_tree::FlatTreeInstance;
use netgraph::{Graph, NodeId, NodeKind, Path};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A compiled two-level routing fabric for one Clos-mode instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoLevelRouting {
    /// Downward tables: `down[switch][dst_server] = port`. Populated only
    /// for destinations in the switch's subtree.
    down: HashMap<NodeId, HashMap<NodeId, usize>>,
    /// Upward spreading: `up[switch] = ports` (uplink port list, indexed
    /// by destination suffix).
    up: HashMap<NodeId, Vec<usize>>,
    /// Destination suffix (index within rack) per server.
    suffix: HashMap<NodeId, usize>,
}

impl TwoLevelRouting {
    /// Compiles the tables from a flat-tree instance in **Clos mode**.
    ///
    /// Panics if any server is not attached to an edge switch (i.e. the
    /// instance is not in Clos mode — two-level routing is meaningless on
    /// the converted topologies, which is the paper's §4 point).
    pub fn compile(inst: &FlatTreeInstance) -> Self {
        let g = &inst.net.graph;
        let mut down: HashMap<NodeId, HashMap<NodeId, usize>> = HashMap::new();
        let mut up: HashMap<NodeId, Vec<usize>> = HashMap::new();
        let mut suffix: HashMap<NodeId, usize> = HashMap::new();

        let port_to = |sw: NodeId, next: NodeId| -> usize {
            g.neighbors(sw)
                .iter()
                .position(|&(v, _)| v == next)
                .expect("adjacent")
        };

        // Suffixes and edge downward tables.
        for (pod, edges) in inst.pod_edges.iter().enumerate() {
            for &e in edges {
                let mut idx = 0usize;
                for &(v, _) in g.neighbors(e) {
                    if g.node(v).kind == NodeKind::Server {
                        suffix.insert(v, idx);
                        down.entry(e).or_default().insert(v, port_to(e, v));
                        idx += 1;
                    }
                }
                // Edge uplinks, in port order.
                let ups: Vec<usize> = g
                    .neighbors(e)
                    .iter()
                    .enumerate()
                    .filter(|(_, &(v, _))| g.node(v).kind == NodeKind::AggSwitch)
                    .map(|(p, _)| p)
                    .collect();
                assert!(!ups.is_empty(), "edge without uplinks");
                up.insert(e, ups);
            }
            // Agg downward tables: one entry per server under the pod.
            for &a in &inst.pod_aggs[pod] {
                let mut table = HashMap::new();
                for &e in edges {
                    if g.find_link(a, e).is_some() {
                        for &(v, _) in g.neighbors(e) {
                            if g.node(v).kind == NodeKind::Server {
                                table.insert(v, port_to(a, e));
                            }
                        }
                    }
                }
                down.insert(a, table);
                let ups: Vec<usize> = g
                    .neighbors(a)
                    .iter()
                    .enumerate()
                    .filter(|(_, &(v, _))| g.node(v).kind == NodeKind::CoreSwitch)
                    .map(|(p, _)| p)
                    .collect();
                assert!(!ups.is_empty(), "agg without core uplinks");
                up.insert(a, ups);
            }
        }
        // Core downward tables: per pod, the agg this core connects to.
        for &c in &inst.cores {
            let mut table = HashMap::new();
            for (pod, aggs) in inst.pod_aggs.iter().enumerate() {
                let Some(&agg) = aggs.iter().find(|&&a| g.find_link(c, a).is_some()) else {
                    continue;
                };
                let port = port_to(c, agg);
                for &srv in &inst.net.pod_servers[pod] {
                    table.insert(srv, port);
                }
            }
            down.insert(c, table);
        }

        for &s in &inst.net.servers {
            let sw = inst.ingress_switch(s);
            assert_eq!(
                g.node(sw).kind,
                NodeKind::EdgeSwitch,
                "two-level routing requires Clos mode (server {s:?} is on a \
                 {:?})",
                g.node(sw).kind
            );
        }
        Self { down, up, suffix }
    }

    /// The output port a switch uses for a destination: primary
    /// (downward) table first, then suffix-spread uplink.
    pub fn port_at(&self, sw: NodeId, dst: NodeId) -> Option<usize> {
        if let Some(p) = self.down.get(&sw).and_then(|t| t.get(&dst)) {
            return Some(*p);
        }
        let ups = self.up.get(&sw)?;
        let sfx = *self.suffix.get(&dst)?;
        Some(ups[sfx % ups.len()])
    }

    /// Forwards a packet from `src` to `dst`, returning the full path.
    /// Errors on loops or dead ends (neither can occur on a well-formed
    /// Clos; tests rely on this).
    pub fn route(&self, g: &Graph, src: NodeId, dst: NodeId) -> Result<Path, String> {
        let mut nodes = vec![src];
        let mut at = g
            .server_uplink_switch(src)
            .ok_or("src is not an attached server")?;
        nodes.push(at);
        for _ in 0..16 {
            if let Some(&(v, _)) = g.neighbors(at).iter().find(|&&(v, _)| v == dst) {
                nodes.push(v);
                return Path::from_nodes(g, &nodes).ok_or_else(|| "loop".into());
            }
            let port = self
                .port_at(at, dst)
                .ok_or_else(|| format!("no table entry at {at:?}"))?;
            let &(next, _) = g
                .neighbors(at)
                .get(port)
                .ok_or_else(|| format!("bad port {port} at {at:?}"))?;
            nodes.push(next);
            at = next;
        }
        Err("routing loop (hop budget exceeded)".into())
    }

    /// Total table entries per switch — the state-cost comparison against
    /// k-shortest-path rules.
    pub fn entries_at(&self, sw: NodeId) -> usize {
        self.down.get(&sw).map_or(0, |t| t.len()) + self.up.get(&sw).map_or(0, |u| u.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode};
    use topology::ClosParams;

    fn clos_instance() -> FlatTreeInstance {
        let ft = FlatTree::new(FlatTreeParams::new(ClosParams::mini(), 1, 1)).unwrap();
        ft.instantiate(&ModeAssignment::uniform(4, PodMode::Clos))
    }

    #[test]
    fn routes_every_pair_with_shortest_lengths() {
        let inst = clos_instance();
        let g = &inst.net.graph;
        let rt = TwoLevelRouting::compile(&inst);
        let servers = &inst.net.servers;
        for (i, &s) in servers.iter().enumerate().step_by(7) {
            for (j, &d) in servers.iter().enumerate().step_by(5) {
                if s == d {
                    continue;
                }
                let p = rt.route(g, s, d).unwrap();
                p.validate(g).unwrap();
                assert_eq!(p.src(), s);
                assert_eq!(p.dst(), d);
                let sp = netgraph::dijkstra::hop_distance(g, s, d).unwrap();
                assert_eq!(p.len(), sp, "pair ({i},{j}) not shortest");
            }
        }
    }

    #[test]
    fn upward_traffic_spreads_across_uplinks() {
        let inst = clos_instance();
        let g = &inst.net.graph;
        let rt = TwoLevelRouting::compile(&inst);
        // Destinations in a remote pod with different suffixes take
        // different aggs out of the source edge.
        let src = inst.net.pod_servers[0][0];
        let remote = &inst.net.pod_servers[2];
        let mut first_hops = std::collections::HashSet::new();
        for &d in remote.iter().take(4) {
            let p = rt.route(g, src, d).unwrap();
            first_hops.insert(p.nodes[2]); // the agg after the edge
        }
        assert!(first_hops.len() > 1, "no spreading: {first_hops:?}");
    }

    #[test]
    fn state_is_small_and_local() {
        let inst = clos_instance();
        let rt = TwoLevelRouting::compile(&inst);
        // Edge switch: 4 local servers + 4 uplinks = 8 entries.
        let e = inst.pod_edges[0][0];
        assert_eq!(rt.entries_at(e), 8);
        // Agg: 16 pod servers + 4 uplinks.
        let a = inst.pod_aggs[0][0];
        assert_eq!(rt.entries_at(a), 20);
        // Core: one entry per server (64), no uplinks.
        assert_eq!(rt.entries_at(inst.cores[0]), 64);
    }

    #[test]
    #[should_panic(expected = "requires Clos mode")]
    fn rejects_converted_topologies() {
        let ft = FlatTree::new(FlatTreeParams::new(ClosParams::mini(), 1, 1)).unwrap();
        let global = ft.instantiate(&ModeAssignment::uniform(4, PodMode::Global));
        TwoLevelRouting::compile(&global);
    }
}
