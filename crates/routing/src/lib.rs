//! Routing and control-state machinery for flat-tree networks (§4).
//!
//! * [`ksp`] — k-shortest-path route tables. Per §4.2.1's Observations 1
//!   and 2, paths are computed and cached at the **ingress/egress switch**
//!   level and spliced with the single server uplinks, which is both the
//!   paper's state-reduction trick and a large computational win.
//! * [`plane`] — the shared route plane: an immutable, fully-precomputed
//!   switch-pair table built in parallel (deterministically), with an
//!   exact failure overlay that recomputes only the pairs a failed link
//!   can affect.
//! * [`addressing`] — the flat-tree IPv4 address layout of Figure 5:
//!   `10/8 | 13-bit switch id | 3-bit path id | 2-bit topology mode |
//!   6-bit server id`, with per-mode address sets preconfigured on every
//!   server and `/24` prefix aggregation at the ingress switch.
//! * [`source_routing`] — §4.2.2's OpenFlow-compatible source routing:
//!   the hop-by-hop output-port list packed into the 48-bit source MAC,
//!   with the TTL acting as the location pointer and per-TTL bit masks at
//!   transit switches.
//! * [`two_level`] — the classic fat-tree two-level (prefix/suffix)
//!   routing for Clos mode, the §4 baseline that needs no SDN machinery.
//! * [`segment`] — §4.2.2's first option: segment routing with a Path
//!   Computation Element pushing MPLS label stacks at ingress.
//! * [`rules`] — OpenFlow rule synthesis and counting for both schemes,
//!   plus the network-state analysis of §4.2 (`n²kL/N` → `S²kL/N` →
//!   `S·k`). The rule *diffs* between modes drive the Table 3 conversion
//!   delay model in the `control` crate.

pub mod addressing;
pub mod ksp;
pub mod plane;
pub mod rules;
pub mod segment;
pub mod source_routing;
pub mod two_level;

pub use addressing::{AddressPlan, FlatTreeAddress, TopologyModeId};
pub use ksp::RouteTable;
pub use plane::{RouteOverlay, SharedRouteTable};
pub use rules::{Rule, RuleMatch, RuleSet, StateAnalysis};
pub use segment::{LabelStack, Pce};
pub use two_level::TwoLevelRouting;
