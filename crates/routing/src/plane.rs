//! The shared route plane: a fully-precomputed, immutable switch-pair
//! k-shortest-path table with an exact failure overlay.
//!
//! [`crate::RouteTable`] fills its switch-pair cache lazily and is owned
//! by one simulation. Experiment sweeps run many simulations over the
//! same `(topology, mode, k)` though, each re-deriving the identical
//! table. [`SharedRouteTable`] precomputes every ingress-pair path set
//! once — in parallel, with output independent of the worker count — and
//! is then shared immutably (typically behind an `Arc`) across cells,
//! threads, and verifier passes.
//!
//! Failures reuse the table instead of discarding it: each pair records
//! the link **footprint** of its Yen run (selected *and* candidate
//! paths), and [`SharedRouteTable::overlay`] recomputes only the pairs
//! whose footprint touches a failed link. For every other pair the
//! precomputed paths are provably bit-identical to what a failure-aware
//! recomputation would return (see
//! [`netgraph::yen::k_shortest_paths_with_footprint`]), so the overlay
//! equals a from-scratch rebuild at a small fraction of the cost.

use crate::ksp::{rack_path, splice_server_pair};
use netgraph::{yen, Graph, LinkId, NodeId, Path};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// An immutable, fully-precomputed switch-pair k-shortest-path table.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedRouteTable {
    k: usize,
    pairs: Vec<(NodeId, NodeId)>,
    paths: Vec<Vec<Path>>,
    pair_index: HashMap<(NodeId, NodeId), usize>,
    /// `LinkId::idx()` → slots of pairs whose Yen footprint uses the
    /// link; ascending, deduped. Drives the overlay's recompute set.
    link_pairs: Vec<Vec<u32>>,
}

/// Failure view over a [`SharedRouteTable`]: the failed-link mask plus
/// recomputed path sets for exactly the pairs the failures can affect.
///
/// Callers key an overlay on their failure epoch and rebuild it when the
/// failure set changes; the table itself never mutates.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOverlay {
    down: Vec<bool>,
    recomputed: HashMap<usize, Vec<Path>>,
}

impl RouteOverlay {
    /// Whether a directed link is failed in this overlay.
    #[inline]
    pub fn is_down(&self, l: LinkId) -> bool {
        self.down[l.idx()]
    }

    /// How many pairs the failure set forced to recompute (diagnostics).
    pub fn recomputed_pairs(&self) -> usize {
        self.recomputed.len()
    }
}

impl SharedRouteTable {
    /// Every ordered pair of ingress switches (switches with at least
    /// one attached server), ascending — the full route-plane domain.
    pub fn ingress_pairs(g: &Graph) -> Vec<(NodeId, NodeId)> {
        let mut switches: Vec<NodeId> = g
            .servers()
            .iter()
            .filter_map(|&s| g.server_uplink_switch(s))
            .collect();
        switches.sort_unstable();
        switches.dedup();
        let mut pairs = Vec::with_capacity(switches.len() * switches.len().saturating_sub(1));
        for &a in &switches {
            for &b in &switches {
                if a != b {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Precomputes the full ingress-pair table with one worker per CPU.
    pub fn build(g: &Graph, k: usize) -> Self {
        Self::build_with_threads(g, k, default_threads())
    }

    /// [`SharedRouteTable::build`] with an explicit worker count. The
    /// result is identical for every worker count.
    pub fn build_with_threads(g: &Graph, k: usize, threads: usize) -> Self {
        Self::build_for_pairs_with_threads(g, k, &Self::ingress_pairs(g), threads)
    }

    /// Precomputes a table restricted to the given switch pairs (deduped,
    /// self-pairs dropped), one worker per CPU. Use when the traffic only
    /// touches a known pair subset.
    pub fn build_for_pairs(g: &Graph, k: usize, pairs: &[(NodeId, NodeId)]) -> Self {
        Self::build_for_pairs_with_threads(g, k, pairs, default_threads())
    }

    /// [`SharedRouteTable::build_for_pairs`] with an explicit worker
    /// count. The result depends only on `(g, k, pairs)` — never on
    /// `threads` or scheduling.
    pub fn build_for_pairs_with_threads(
        g: &Graph,
        k: usize,
        pairs: &[(NodeId, NodeId)],
        threads: usize,
    ) -> Self {
        assert!(k >= 1, "k-shortest-path routing needs k >= 1");
        let mut pairs: Vec<(NodeId, NodeId)> =
            pairs.iter().copied().filter(|&(a, b)| a != b).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let computed = par_map(&pairs, threads, |&(a, b)| {
            yen::k_shortest_paths_with_footprint(g, a, b, k)
        });
        let mut paths = Vec::with_capacity(pairs.len());
        let mut link_pairs: Vec<Vec<u32>> = vec![Vec::new(); g.link_count()];
        for (slot, (ps, footprint)) in computed.into_iter().enumerate() {
            for l in footprint {
                link_pairs[l.idx()].push(slot as u32);
            }
            paths.push(ps);
        }
        let pair_index = pairs.iter().enumerate().map(|(i, &p)| (p, i)).collect();
        Self {
            k,
            pairs,
            paths,
            pair_index,
            link_pairs,
        }
    }

    /// Number of concurrent paths (k in k-shortest-path routing).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of precomputed switch pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the table covers this ordered switch pair.
    pub fn contains_pair(&self, a: NodeId, b: NodeId) -> bool {
        self.pair_index.contains_key(&(a, b))
    }

    /// The precomputed paths for a covered switch pair; `None` when the
    /// pair is outside the table's domain.
    pub fn switch_paths(&self, a: NodeId, b: NodeId) -> Option<&[Path]> {
        self.pair_index
            .get(&(a, b))
            .map(|&i| self.paths[i].as_slice())
    }

    /// The table slot of a covered ordered pair (`None` outside the
    /// domain). Slots are stable and index into [`Self::affected_slots`].
    pub fn pair_slot(&self, a: NodeId, b: NodeId) -> Option<usize> {
        self.pair_index.get(&(a, b)).copied()
    }

    /// The slots of every pair whose Yen footprint touches a failed
    /// link — exactly the pairs the failure set can change (ascending,
    /// deduped). For every other pair the precomputed paths are provably
    /// identical to a failure-aware recomputation. Callers that route
    /// only a few pairs per failure epoch can recompute affected pairs
    /// lazily with this set instead of paying for a full
    /// [`Self::overlay`].
    pub fn affected_slots(&self, down: &[LinkId]) -> Vec<u32> {
        let mut affected: Vec<u32> = down
            .iter()
            .flat_map(|&l| self.link_pairs[l.idx()].iter().copied())
            .collect();
        affected.sort_unstable();
        affected.dedup();
        affected
    }

    /// Server-level paths with every link up: the covered switch-pair
    /// paths spliced with the server uplinks (intra-rack pairs get the
    /// single 2-hop path). `None` when an endpoint is unattached or the
    /// pair's switches are outside the table; `Some(vec![])` only when
    /// the pair is disconnected.
    pub fn server_paths(&self, g: &Graph, src: NodeId, dst: NodeId) -> Option<Vec<Path>> {
        assert_ne!(src, dst, "no self-flows");
        let si = g.server_uplink_switch(src)?;
        let di = g.server_uplink_switch(dst)?;
        if si == di {
            return Some(vec![rack_path(g, src, si, dst)]);
        }
        let sp = self.switch_paths(si, di)?;
        Some(splice_server_pair(g, src, dst, sp))
    }

    /// Builds the failure overlay for a failed directed-link set:
    /// recomputes (with the failed links masked) exactly the pairs whose
    /// Yen footprint touches a failed link, and reuses the precomputed
    /// paths — provably unchanged — for every other pair.
    pub fn overlay(&self, g: &Graph, down: &[LinkId]) -> RouteOverlay {
        let mut mask = vec![false; g.link_count()];
        for &l in down {
            mask[l.idx()] = true;
        }
        let recomputed = self
            .affected_slots(down)
            .into_iter()
            .map(|slot| {
                let (a, b) = self.pairs[slot as usize];
                let ps = yen::k_shortest_paths_by(g, a, b, self.k, |l| {
                    if mask[l.idx()] {
                        f64::INFINITY
                    } else {
                        1.0
                    }
                });
                (slot as usize, ps)
            })
            .collect();
        RouteOverlay {
            down: mask,
            recomputed,
        }
    }

    /// The switch-pair paths under an overlay: the recomputed set for
    /// affected pairs, the precomputed set otherwise. `None` when the
    /// pair is outside the table's domain.
    pub fn switch_paths_with<'a>(
        &'a self,
        ov: &'a RouteOverlay,
        a: NodeId,
        b: NodeId,
    ) -> Option<&'a [Path]> {
        let &i = self.pair_index.get(&(a, b))?;
        Some(
            ov.recomputed
                .get(&i)
                .map_or(self.paths[i].as_slice(), Vec::as_slice),
        )
    }

    /// Server-level paths under an overlay. Splices the surviving
    /// switch-pair paths; a pair whose own uplink or downlink is failed
    /// gets `Some(vec![])` — parked, exactly as a server-level masked
    /// search would find no route. `None` when an endpoint is unattached
    /// or the pair's switches are outside the table.
    pub fn server_paths_with(
        &self,
        g: &Graph,
        ov: &RouteOverlay,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Vec<Path>> {
        assert_ne!(src, dst, "no self-flows");
        let si = g.server_uplink_switch(src)?;
        let di = g.server_uplink_switch(dst)?;
        let up = g.find_link(src, si)?;
        let down = g.find_link(di, dst)?;
        if ov.is_down(up) || ov.is_down(down) {
            return Some(Vec::new());
        }
        if si == di {
            return Some(vec![rack_path(g, src, si, dst)]);
        }
        let sp = self.switch_paths_with(ov, si, di)?;
        Some(splice_server_pair(g, src, dst, sp))
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Deterministic parallel map: workers pull indices from a shared atomic
/// queue and results are reassembled in input order, so the output never
/// depends on the worker count or scheduling — the same discipline the
/// experiment sweep driver uses.
fn par_map<I, T, F>(items: &[I], threads: usize, job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = threads.clamp(1, items.len().max(1));
    if workers == 1 {
        return items.iter().map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let collected = &collected;
                let job = &job;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = job(&items[i]);
                    collected
                        .lock()
                        // ftlint::allow(FTL-R001): Mutex poisoning only follows a worker panic, which join() then propagates
                        .expect("route-plane collector")
                        .push((i, out));
                })
            })
            .collect();
        for h in handles {
            // ftlint::allow(FTL-R001): a worker panic must propagate; a partial route plane would be unsound
            h.join().expect("route-plane worker panicked");
        }
    })
    .expect("route-plane scope");
    let mut indexed = collected.into_inner().expect("route-plane collector");
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode};
    use topology::ClosParams;

    fn mini_global() -> Graph {
        let ft = FlatTree::new(FlatTreeParams::new(ClosParams::mini(), 1, 1)).unwrap();
        ft.instantiate(&ModeAssignment::uniform(4, PodMode::Global))
            .net
            .graph
    }

    #[test]
    fn matches_lazy_route_table() {
        let g = mini_global();
        let table = SharedRouteTable::build(&g, 4);
        let mut rt = crate::RouteTable::new(4);
        assert!(table.pair_count() > 0);
        let servers = g.servers();
        for (a, b) in [(0usize, 17), (3, 40), (12, 5)] {
            let want = rt.server_paths(&g, servers[a], servers[b]);
            let got = table.server_paths(&g, servers[a], servers[b]).unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let g = mini_global();
        let one = SharedRouteTable::build_with_threads(&g, 4, 1);
        for threads in [2, 3, 8] {
            assert_eq!(SharedRouteTable::build_with_threads(&g, 4, threads), one);
        }
    }

    #[test]
    fn overlay_recomputes_only_affected_pairs() {
        let g = mini_global();
        let table = SharedRouteTable::build(&g, 4);
        let no_failures = table.overlay(&g, &[]);
        assert_eq!(no_failures.recomputed_pairs(), 0);
        let cable = g
            .link_ids()
            .find(|&l| {
                let info = g.link(l);
                g.node(info.src).kind.is_switch() && g.node(info.dst).kind.is_switch()
            })
            .unwrap();
        let ov = table.overlay(&g, &[cable]);
        assert!(ov.recomputed_pairs() > 0);
        assert!(ov.recomputed_pairs() < table.pair_count());
        assert!(ov.is_down(cable));
        // Every pair's overlay answer equals a from-scratch masked run.
        for &(a, b) in &table.pairs {
            let want =
                yen::k_shortest_paths_by(
                    &g,
                    a,
                    b,
                    4,
                    |l| {
                        if l == cable {
                            f64::INFINITY
                        } else {
                            1.0
                        }
                    },
                );
            assert_eq!(table.switch_paths_with(&ov, a, b).unwrap(), &want[..]);
        }
    }

    #[test]
    fn restricted_table_covers_only_requested_pairs() {
        let g = mini_global();
        let all = SharedRouteTable::ingress_pairs(&g);
        let subset = &all[..4];
        let table = SharedRouteTable::build_for_pairs(&g, 4, subset);
        assert_eq!(table.pair_count(), 4);
        for &(a, b) in subset {
            assert!(table.contains_pair(a, b));
        }
        let &(a, b) = all.last().unwrap();
        assert!(!table.contains_pair(a, b));
        assert!(table.switch_paths(a, b).is_none());
    }

    #[test]
    fn parked_when_uplink_is_down() {
        let g = mini_global();
        let table = SharedRouteTable::build(&g, 4);
        let servers = g.servers();
        let (src, dst) = (servers[0], servers[40]);
        let si = g.server_uplink_switch(src).unwrap();
        let up = g.find_link(src, si).unwrap();
        let ov = table.overlay(&g, &[up]);
        assert_eq!(table.server_paths_with(&g, &ov, src, dst).unwrap(), vec![]);
        // The reverse pair still routes: only src's uplink is down.
        assert!(!table
            .server_paths_with(&g, &ov, dst, src)
            .unwrap()
            .is_empty());
    }
}
