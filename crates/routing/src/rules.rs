//! OpenFlow rule synthesis, counting, and the §4.2 network-state analysis.
//!
//! Two rule schemes are modeled, matching the paper:
//!
//! * **IP prefix pairs** (the testbed scheme of §5.3, for switches whose
//!   OpenFlow image cannot mask arbitrary bits): every transit hop of
//!   every k-shortest switch-pair path installs one rule matching
//!   `(src ingress switch, dst egress switch, path id, mode)`; egress
//!   switches additionally hold one delivery rule per attached server.
//! * **Source routing** (§4.2.2): `D × C` static per-TTL rules on every
//!   switch plus `S · k` route rules at ingress switches only.
//!
//! Rule-set *diffs* between topology modes drive the rule-deletion and
//! rule-addition terms of the Table 3 conversion-delay model.

use crate::addressing::TopologyModeId;
use crate::ksp::RouteTable;
use netgraph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// What a rule matches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RuleMatch {
    /// Transit rule: source/destination ingress-switch prefixes plus the
    /// path id (all three live inside the /24 prefixes of §4.2.1).
    IpPair {
        /// Ingress switch id of the source.
        src_switch: u16,
        /// Egress switch id of the destination.
        dst_switch: u16,
        /// Which of the k paths.
        path_id: u8,
        /// Topology mode bits.
        mode: u8,
    },
    /// Egress delivery rule: destination server under this switch.
    Delivery {
        /// Egress switch id (also implied by rule placement).
        dst_switch: u16,
        /// 6-bit server id.
        server_id: u8,
        /// Topology mode bits.
        mode: u8,
    },
    /// Static source-routing rule: hop index (from TTL) and port byte.
    SourceMac {
        /// Hop index `255 - ttl`.
        hop: u8,
        /// Extracted port byte.
        port: u8,
    },
}

/// A forwarding rule: match plus output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// Match fields.
    pub matcher: RuleMatch,
    /// Physical output port (adjacency index).
    pub out_port: u32,
}

/// Rules installed per switch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    /// Rules per switch node.
    pub per_switch: BTreeMap<NodeId, BTreeSet<Rule>>,
}

impl RuleSet {
    /// Total rule count across the network.
    pub fn total(&self) -> usize {
        self.per_switch.values().map(|s| s.len()).sum()
    }

    /// The largest per-switch rule count (the §5.3 metric: "the maximum
    /// number of OpenFlow rules per switch under each topology").
    pub fn max_per_switch(&self) -> usize {
        self.per_switch.values().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Rules at one switch.
    pub fn count_at(&self, sw: NodeId) -> usize {
        self.per_switch.get(&sw).map_or(0, |s| s.len())
    }

    /// `(deletions, additions)` needed to convert `self` into `to`.
    pub fn diff(&self, to: &RuleSet) -> RuleDiff {
        let mut deletes = 0;
        let mut adds = 0;
        let switches: BTreeSet<NodeId> = self
            .per_switch
            .keys()
            .chain(to.per_switch.keys())
            .copied()
            .collect();
        static EMPTY: BTreeSet<Rule> = BTreeSet::new();
        for sw in switches {
            let a = self.per_switch.get(&sw).unwrap_or(&EMPTY);
            let b = to.per_switch.get(&sw).unwrap_or(&EMPTY);
            deletes += a.difference(b).count();
            adds += b.difference(a).count();
        }
        RuleDiff { deletes, adds }
    }
}

impl RuleSet {
    /// Per-switch `(deleted, added)` churn converting `self` into `to`,
    /// ascending by switch id. Feeds the distributed-controller model.
    pub fn diff_per_switch(&self, to: &RuleSet) -> Vec<(NodeId, usize, usize)> {
        let switches: BTreeSet<NodeId> = self
            .per_switch
            .keys()
            .chain(to.per_switch.keys())
            .copied()
            .collect();
        static EMPTY: BTreeSet<Rule> = BTreeSet::new();
        switches
            .into_iter()
            .map(|sw| {
                let a = self.per_switch.get(&sw).unwrap_or(&EMPTY);
                let b = to.per_switch.get(&sw).unwrap_or(&EMPTY);
                (sw, a.difference(b).count(), b.difference(a).count())
            })
            .collect()
    }
}

/// Rule churn between two modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleDiff {
    /// Rules removed from switches.
    pub deletes: usize,
    /// Rules installed on switches.
    pub adds: usize,
}

/// Compiles the IP-prefix-pair rule set for one topology instance.
///
/// `k` is the number of concurrent paths. Ingress switches are all
/// switches with at least one attached server.
pub fn compile_ip_rules(g: &Graph, k: usize, mode: TopologyModeId) -> RuleSet {
    let mut rt = RouteTable::new(k);
    let mut set = RuleSet::default();
    // Ingress switches and their servers in id order.
    let mut ingress: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for s in g.servers() {
        if let Some(sw) = g.server_uplink_switch(s) {
            ingress.entry(sw).or_default().push(s);
        }
    }
    let switches: Vec<NodeId> = ingress.keys().copied().collect();
    // Delivery rules.
    for (&sw, servers) in &ingress {
        let entry = set.per_switch.entry(sw).or_default();
        for (sid, &srv) in servers.iter().enumerate() {
            let port = g
                .neighbors(sw)
                .iter()
                .position(|&(v, _)| v == srv)
                .expect("server port") as u32;
            entry.insert(Rule {
                matcher: RuleMatch::Delivery {
                    dst_switch: sw.0 as u16,
                    server_id: sid as u8,
                    mode: mode as u8,
                },
                out_port: port,
            });
        }
    }
    // Transit rules along every switch-pair path.
    for &a in &switches {
        for &b in &switches {
            if a == b {
                continue;
            }
            let paths = rt.switch_paths(g, a, b).to_vec();
            #[cfg(feature = "strict-invariants")]
            debug_assert!(
                !paths.is_empty(),
                "ingress pair {a:?} -> {b:?} has no path: blackhole at compile time"
            );
            for (pid, path) in paths.iter().enumerate() {
                for i in 0..path.nodes.len() - 1 {
                    let sw = path.nodes[i];
                    let next = path.nodes[i + 1];
                    let port = g
                        .neighbors(sw)
                        .iter()
                        .position(|&(v, _)| v == next)
                        .expect("path port") as u32;
                    set.per_switch.entry(sw).or_default().insert(Rule {
                        matcher: RuleMatch::IpPair {
                            src_switch: a.0 as u16,
                            dst_switch: b.0 as u16,
                            path_id: pid as u8,
                            mode: mode as u8,
                        },
                        out_port: port,
                    });
                }
            }
        }
    }
    set
}

/// Compiles the source-routing rule set: static `D × C` per-TTL rules on
/// every switch plus `S · k` route rules at each ingress switch (one per
/// reachable egress switch per path).
pub fn compile_source_routing_rules(
    g: &Graph,
    k: usize,
    diameter: usize,
    mode: TopologyModeId,
) -> RuleSet {
    let mut rt = RouteTable::new(k);
    let mut set = RuleSet::default();
    // Static transit rules: identical on every switch; the out_port equals
    // the matched port byte (the rule semantics of §4.2.2).
    for sw in g.switches() {
        let ports = g.degree(sw);
        let entry = set.per_switch.entry(sw).or_default();
        for hop in 0..diameter.min(crate::source_routing::MAX_HOPS) as u8 {
            for port in 0..ports.min(256) as u16 {
                entry.insert(Rule {
                    matcher: RuleMatch::SourceMac {
                        hop,
                        port: port as u8,
                    },
                    out_port: port as u32,
                });
            }
        }
    }
    // Ingress route rules: at switch `a`, one rule per (egress, path id)
    // — the rule writes the MAC and therefore matches on the destination
    // /24 prefix, modeled as an IpPair with src = self.
    let ingress: BTreeSet<NodeId> = g
        .servers()
        .iter()
        .filter_map(|&s| g.server_uplink_switch(s))
        .collect();
    for &a in &ingress {
        for &b in &ingress {
            if a == b {
                continue;
            }
            let n_paths = rt.switch_paths(g, a, b).len();
            let entry = set.per_switch.entry(a).or_default();
            for pid in 0..n_paths {
                entry.insert(Rule {
                    matcher: RuleMatch::IpPair {
                        src_switch: a.0 as u16,
                        dst_switch: b.0 as u16,
                        path_id: pid as u8,
                        mode: mode as u8,
                    },
                    out_port: 0,
                });
            }
        }
    }
    set
}

/// The §4.2 state-explosion arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateAnalysis {
    /// Naive per-switch states: `n² · k · L / N` (server-pair rules).
    pub naive_per_switch: f64,
    /// Ingress/egress-level states: `S² · k · L / N`.
    pub switch_level_per_switch: f64,
    /// With source routing: per-*ingress* states `S · k`.
    pub source_routed_per_ingress: f64,
    /// Static transit rules `D × C`.
    pub transit_static: usize,
}

impl StateAnalysis {
    /// Computes all four quantities.
    ///
    /// * `n` servers, `big_n` switches, `s` ingress/egress switches,
    /// * `k` concurrent paths, `avg_len` average path length (switch
    ///   hops), `diameter` and `port_count` for the static rules.
    pub fn compute(
        n: usize,
        big_n: usize,
        s: usize,
        k: usize,
        avg_len: f64,
        diameter: usize,
        port_count: usize,
    ) -> Self {
        let nf = n as f64;
        let sf = s as f64;
        let kf = k as f64;
        let nn = big_n.max(1) as f64;
        Self {
            naive_per_switch: nf * nf * kf * avg_len / nn,
            switch_level_per_switch: sf * sf * kf * avg_len / nn,
            source_routed_per_ingress: sf * kf,
            transit_static: diameter * port_count,
        }
    }

    /// The aggregation factor the paper quotes ("reduced by a factor of
    /// 400 to 1600" for 20–40 servers per ToR).
    pub fn aggregation_factor(&self) -> f64 {
        self.naive_per_switch / self.switch_level_per_switch.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode};
    use topology::ClosParams;

    fn instances() -> Vec<(TopologyModeId, netgraph::Graph)> {
        let ft = FlatTree::new(FlatTreeParams::new(ClosParams::mini(), 1, 1)).unwrap();
        [
            (TopologyModeId::Global, PodMode::Global),
            (TopologyModeId::Local, PodMode::Local),
            (TopologyModeId::Clos, PodMode::Clos),
        ]
        .into_iter()
        .map(|(mid, pm)| {
            (
                mid,
                ft.instantiate(&ModeAssignment::uniform(4, pm)).net.graph,
            )
        })
        .collect()
    }

    #[test]
    fn ip_rules_nonempty_and_bounded() {
        for (mid, g) in instances() {
            let rules = compile_ip_rules(&g, 2, mid);
            assert!(rules.total() > 0);
            assert!(rules.max_per_switch() <= rules.total());
            // Every switch holding rules is a real switch.
            for sw in rules.per_switch.keys() {
                assert!(g.node(*sw).kind.is_switch());
            }
        }
    }

    #[test]
    fn more_ingress_switches_more_rules() {
        // Global mode spreads servers over more switches than Clos mode,
        // so its rule population is larger (this is why the testbed saw
        // 242 vs 76 rules, §5.3).
        let insts = instances();
        let global = compile_ip_rules(&insts[0].1, 2, insts[0].0);
        let clos = compile_ip_rules(&insts[2].1, 2, insts[2].0);
        assert!(
            global.max_per_switch() > clos.max_per_switch(),
            "global {} vs clos {}",
            global.max_per_switch(),
            clos.max_per_switch()
        );
    }

    #[test]
    fn diff_counts_rule_churn() {
        let insts = instances();
        let a = compile_ip_rules(&insts[0].1, 2, insts[0].0);
        let b = compile_ip_rules(&insts[2].1, 2, insts[2].0);
        let d = a.diff(&b);
        assert!(d.deletes > 0 && d.adds > 0);
        // Converting to self is free.
        let zero = a.diff(&a);
        assert_eq!((zero.deletes, zero.adds), (0, 0));
        // Diff sizes are consistent with totals.
        assert_eq!(a.total() - d.deletes, b.total() - d.adds);
    }

    #[test]
    fn source_routing_shrinks_transit_state() {
        let insts = instances();
        let g = &insts[0].1;
        let ip = compile_ip_rules(g, 4, insts[0].0);
        let sr = compile_source_routing_rules(g, 4, 4, insts[0].0);
        // Max per switch must drop for transit-heavy switches: compare the
        // largest non-ingress switch load. (Static rules are D×C which is
        // small here.)
        assert!(sr.max_per_switch() <= ip.max_per_switch());
    }

    #[test]
    fn state_analysis_formulas() {
        // Paper's example: 20-40 servers per ToR -> 400-1600x reduction.
        let a = StateAnalysis::compute(4096, 320, 128, 8, 5.0, 4, 48);
        assert!((a.aggregation_factor() - (4096.0f64 / 128.0).powi(2)).abs() < 1e-6);
        assert_eq!(a.transit_static, 192);
        assert!((a.source_routed_per_ingress - 1024.0).abs() < 1e-9);
    }
}
