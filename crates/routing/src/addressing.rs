//! The flat-tree addressing scheme (§4.2.1, Figure 5).
//!
//! Every server is preconfigured, at deployment time, with one IPv4
//! address per (topology mode, path id) pair inside `10.0.0.0/8`:
//!
//! ```text
//! 8 bits   13 bits     3 bits    2 bits   6 bits
//! 00001010 | switch id | path id | mode | server id
//! ```
//!
//! MPTCP establishes subflows via multi-homing, so the number of
//! addresses per mode is `ceil(sqrt(k))` for k-shortest-path routing, and
//! MPTCP's property of only sending on *routable* addresses lets all
//! modes' addresses coexist on the NIC while the controller loads routing
//! logic for the active subset only. Matching the first 24 bits
//! (`prefix | switch | path`) aggregates all servers of an ingress switch
//! into one rule.

use flat_tree::FlatTreeInstance;
use netgraph::{Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// 2-bit topology mode field (Figure 5a supports 3 values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyModeId {
    /// Global mode addresses (value 0 in Figure 5c).
    Global = 0,
    /// Local mode addresses (value 1).
    Local = 1,
    /// Clos mode addresses (value 2).
    Clos = 2,
}

impl TopologyModeId {
    /// All defined mode ids.
    pub const ALL: [TopologyModeId; 3] = [
        TopologyModeId::Global,
        TopologyModeId::Local,
        TopologyModeId::Clos,
    ];

    fn from_bits(v: u32) -> Option<Self> {
        match v {
            0 => Some(Self::Global),
            1 => Some(Self::Local),
            2 => Some(Self::Clos),
            _ => None,
        }
    }
}

/// A decoded flat-tree address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlatTreeAddress {
    /// Ingress/egress switch id (13 bits, ≤ 8191). Unique per switch and
    /// *stable across topology conversion*.
    pub switch_id: u16,
    /// Path id within the k-shortest paths (3 bits, ≤ 7): which of the
    /// server's MPTCP addresses this is.
    pub path_id: u8,
    /// Topology mode the address routes under.
    pub mode: TopologyModeId,
    /// Server index under the ingress switch (6 bits, ≤ 63).
    pub server_id: u8,
}

impl FlatTreeAddress {
    /// Packs into the `10.0.0.0/8` IPv4 layout of Figure 5a.
    pub fn encode(&self) -> Ipv4Addr {
        assert!(self.switch_id < (1 << 13), "switch id exceeds 13 bits");
        assert!(self.path_id < (1 << 3), "path id exceeds 3 bits");
        assert!(self.server_id < (1 << 6), "server id exceeds 6 bits");
        let v: u32 = (10u32 << 24)
            | ((self.switch_id as u32) << 11)
            | ((self.path_id as u32) << 8)
            | ((self.mode as u32) << 6)
            | (self.server_id as u32);
        Ipv4Addr::from(v)
    }

    /// Decodes an address; `None` if outside `10/8` or an undefined mode.
    pub fn decode(ip: Ipv4Addr) -> Option<Self> {
        let v = u32::from(ip);
        if v >> 24 != 10 {
            return None;
        }
        Some(Self {
            switch_id: ((v >> 11) & 0x1fff) as u16,
            path_id: ((v >> 8) & 0x7) as u8,
            mode: TopologyModeId::from_bits((v >> 6) & 0x3)?,
            server_id: (v & 0x3f) as u8,
        })
    }

    /// The 24-bit prefix matched at ingress/egress switches
    /// (`prefix | switch id | path id`).
    pub fn prefix24(&self) -> u32 {
        u32::from(self.encode()) >> 8
    }
}

/// Number of IP addresses a server needs per mode for k concurrent paths:
/// MPTCP full-mesh gives `a²` subflows from `a` addresses per end, so
/// `a = ceil(sqrt(k))` (§4.1).
pub fn addresses_for_k(k: usize) -> usize {
    assert!((1..=64).contains(&k), "3-bit path field supports k <= 64");
    (1..=8).find(|a| a * a >= k).expect("k <= 64")
}

/// The complete preconfigured address plan of a flat-tree deployment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressPlan {
    /// `k` per mode (each topology may favor a different k, Figure 5b).
    pub k_per_mode: HashMap<TopologyModeId, usize>,
    /// All addresses per server node, across all modes.
    pub server_addrs: HashMap<NodeId, Vec<FlatTreeAddress>>,
}

impl AddressPlan {
    /// Builds the plan from one instantiated network per mode.
    ///
    /// Switch ids are node ids (stable across modes by construction);
    /// server ids order the servers under each ingress switch by node id
    /// ("ordered from left to right", Figure 5b).
    pub fn build(
        instances: &[(TopologyModeId, &FlatTreeInstance)],
        k_per_mode: &HashMap<TopologyModeId, usize>,
    ) -> Self {
        let mut server_addrs: HashMap<NodeId, Vec<FlatTreeAddress>> = HashMap::new();
        for (mode, inst) in instances {
            let k = *k_per_mode.get(mode).unwrap_or(&8);
            let num_addrs = addresses_for_k(k);
            // Server id = rank under the ingress switch.
            let g = &inst.net.graph;
            let mut rank: HashMap<NodeId, u8> = HashMap::new();
            let mut next: HashMap<NodeId, u8> = HashMap::new();
            for &s in &inst.net.servers {
                let sw = inst.ingress_switch(s);
                let r = next.entry(sw).or_insert(0);
                rank.insert(s, *r);
                *r = r
                    .checked_add(1)
                    .expect("more than 255 servers under a switch");
            }
            for &s in &inst.net.servers {
                let sw = inst.ingress_switch(s);
                let sid = rank[&s];
                assert!(sid < 64, "6-bit server field supports 64 per switch");
                assert!(g.node(sw).kind.is_switch());
                for path_id in 0..num_addrs as u8 {
                    server_addrs.entry(s).or_default().push(FlatTreeAddress {
                        switch_id: sw.0 as u16,
                        path_id,
                        mode: *mode,
                        server_id: sid,
                    });
                }
            }
        }
        Self {
            k_per_mode: k_per_mode.clone(),
            server_addrs,
        }
    }

    /// Addresses of `server` that are routable under `mode`.
    pub fn addresses(&self, server: NodeId, mode: TopologyModeId) -> Vec<FlatTreeAddress> {
        self.server_addrs
            .get(&server)
            .map(|v| v.iter().filter(|a| a.mode == mode).copied().collect())
            .unwrap_or_default()
    }

    /// Total configured addresses (the naive flat scheme would use
    /// `ceil(sqrt(k))` per server per mode too, but without aggregation
    /// structure; this count drives the §4.2.1 probing-overhead note).
    pub fn total_addresses(&self) -> usize {
        self.server_addrs.values().map(|v| v.len()).sum()
    }
}

/// Checks the aggregation invariant used by ingress-switch prefix rules:
/// all addresses of all servers under one switch share a /24 per path id.
pub fn verify_prefix_aggregation(
    g: &Graph,
    plan: &AddressPlan,
    mode: TopologyModeId,
) -> Result<(), String> {
    let mut by_prefix: HashMap<u32, NodeId> = HashMap::new();
    for (&server, addrs) in &plan.server_addrs {
        let sw = g
            .server_uplink_switch(server)
            .ok_or_else(|| format!("{server:?} detached"))?;
        for a in addrs.iter().filter(|a| a.mode == mode) {
            if a.switch_id != sw.0 as u16 {
                // Address of a *different* mode's attachment: skip, it is
                // not routable here (checked by the caller building per
                // mode).
                continue;
            }
            match by_prefix.insert(a.prefix24(), sw) {
                Some(prev) if prev != sw => {
                    return Err(format!(
                        "prefix {:x} spans switches {prev:?} and {sw:?}",
                        a.prefix24()
                    ))
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode};
    use topology::ClosParams;

    #[test]
    fn encode_decode_roundtrip() {
        let a = FlatTreeAddress {
            switch_id: 3,
            path_id: 1,
            mode: TopologyModeId::Global,
            server_id: 2,
        };
        let ip = a.encode();
        assert_eq!(FlatTreeAddress::decode(ip), Some(a));
    }

    #[test]
    fn figure_5c_examples() {
        // Figure 5c row 2: switch 3, path 1, global (0), server 2
        // = 10.0.25.2 (binary 00001010 0000000000011 001 00 000010).
        let a = FlatTreeAddress {
            switch_id: 3,
            path_id: 1,
            mode: TopologyModeId::Global,
            server_id: 2,
        };
        assert_eq!(a.encode(), Ipv4Addr::new(10, 0, 25, 2));
        // Local-mode row: switch 8, path 1, local (1), server 1
        // = 10.0.65.65.
        let b = FlatTreeAddress {
            switch_id: 8,
            path_id: 1,
            mode: TopologyModeId::Local,
            server_id: 1,
        };
        assert_eq!(b.encode(), Ipv4Addr::new(10, 0, 65, 65));
        // Clos-mode row: switch 5, path 1, clos (2), server 0
        // = 10.0.41.128.
        let c = FlatTreeAddress {
            switch_id: 5,
            path_id: 1,
            mode: TopologyModeId::Clos,
            server_id: 0,
        };
        assert_eq!(c.encode(), Ipv4Addr::new(10, 0, 41, 128));
    }

    #[test]
    fn address_count_is_sqrt_of_k() {
        assert_eq!(addresses_for_k(1), 1);
        assert_eq!(addresses_for_k(4), 2);
        assert_eq!(addresses_for_k(8), 3); // Figure 5: k=8 -> 3 addresses
        assert_eq!(addresses_for_k(16), 4);
        assert_eq!(addresses_for_k(64), 8);
    }

    #[test]
    fn decode_rejects_foreign_and_bad_mode() {
        assert!(FlatTreeAddress::decode(Ipv4Addr::new(192, 168, 0, 1)).is_none());
        // mode bits = 3 is undefined.
        let bad = (10u32 << 24) | (3 << 6);
        assert!(FlatTreeAddress::decode(Ipv4Addr::from(bad)).is_none());
    }

    fn plan() -> (AddressPlan, Vec<FlatTreeInstance>) {
        let ft = FlatTree::new(FlatTreeParams::new(ClosParams::mini(), 1, 1)).unwrap();
        let insts: Vec<FlatTreeInstance> = [PodMode::Global, PodMode::Local, PodMode::Clos]
            .into_iter()
            .map(|m| ft.instantiate(&ModeAssignment::uniform(4, m)))
            .collect();
        let mut k = HashMap::new();
        k.insert(TopologyModeId::Global, 8);
        k.insert(TopologyModeId::Local, 8);
        k.insert(TopologyModeId::Clos, 4);
        let refs: Vec<(TopologyModeId, &FlatTreeInstance)> = vec![
            (TopologyModeId::Global, &insts[0]),
            (TopologyModeId::Local, &insts[1]),
            (TopologyModeId::Clos, &insts[2]),
        ];
        (AddressPlan::build(&refs, &k), insts)
    }

    #[test]
    fn plan_covers_all_servers_and_modes() {
        let (plan, insts) = plan();
        assert_eq!(plan.server_addrs.len(), 64);
        // Per server: 3 (global, k=8) + 3 (local) + 2 (clos, k=4) = 8.
        for addrs in plan.server_addrs.values() {
            assert_eq!(addrs.len(), 8);
        }
        assert_eq!(plan.total_addresses(), 64 * 8);
        // Relocated server's global-mode address names its *core* switch.
        let s = insts[0].edge_servers[0][0];
        let addr = plan.addresses(s, TopologyModeId::Global)[0];
        assert_eq!(addr.switch_id as u32, insts[0].ingress_switch(s).0);
    }

    #[test]
    fn prefixes_aggregate_per_switch() {
        let (plan, insts) = plan();
        verify_prefix_aggregation(&insts[0].net.graph, &plan, TopologyModeId::Global).unwrap();
        verify_prefix_aggregation(&insts[1].net.graph, &plan, TopologyModeId::Local).unwrap();
        verify_prefix_aggregation(&insts[2].net.graph, &plan, TopologyModeId::Clos).unwrap();
    }
}
