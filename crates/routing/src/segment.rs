//! Segment routing with a Path Computation Element (§4.2.2, first
//! option).
//!
//! "Segment routing is a natural fit to this request in SDN. In segment
//! routing, the k-shortest-path routing algorithm can be implemented in
//! the Path Computation Element (PCE), an equivalent of the centralized
//! network controller, which enforces per-route states only at ingress
//! switches. It relies on the MPLS and IPv6 architecture. The ingress
//! switch encodes the hops of a path as a stack of MPLS labels. The
//! transit switches forward packets by dumb matching of the label on top
//! of the stack and pop it upon completion."
//!
//! Labels here are adjacency segments: a label names an output port of
//! the switch currently holding the packet. The [`Pce`] computes the
//! k-shortest paths, compiles them to label stacks, and installs
//! per-route state **only at ingress switches**; transit switches need no
//! per-route rules at all (they pop and forward), which is even leaner
//! than the MAC/TTL scheme's `D × C` static rules.

use crate::ksp::RouteTable;
use bytes::{Buf, BufMut, BytesMut};
use netgraph::{Graph, NodeId, Path};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An MPLS label stack (top of stack first). 20-bit labels as in RFC
/// 3031; we use the label value as an adjacency segment = output port.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelStack {
    labels: Vec<u32>,
}

impl LabelStack {
    /// Builds a stack from per-hop output ports (first hop on top).
    pub fn from_ports(ports: &[u32]) -> Self {
        for &p in ports {
            assert!(p < (1 << 20), "MPLS labels are 20-bit");
        }
        Self {
            labels: ports.to_vec(),
        }
    }

    /// Top label, if any.
    pub fn top(&self) -> Option<u32> {
        self.labels.first().copied()
    }

    /// Pops the top label (the transit switch's only action).
    pub fn pop(&mut self) -> Option<u32> {
        if self.labels.is_empty() {
            None
        } else {
            Some(self.labels.remove(0))
        }
    }

    /// Remaining stack depth.
    pub fn depth(&self) -> usize {
        self.labels.len()
    }

    /// Serializes as an RFC-3032-style label stack: 4 bytes per entry,
    /// 20-bit label, bottom-of-stack bit on the last entry.
    pub fn encode(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(self.labels.len() * 4);
        for (i, &l) in self.labels.iter().enumerate() {
            let bos = (i + 1 == self.labels.len()) as u32;
            // label(20) | TC(3) | S(1) | TTL(8)
            let entry = (l << 12) | (bos << 8) | 0xff;
            buf.put_u32(entry);
        }
        buf
    }

    /// Parses an encoded stack.
    pub fn decode(mut buf: &[u8]) -> Result<Self, String> {
        if !buf.len().is_multiple_of(4) {
            return Err("label stack length must be a multiple of 4".into());
        }
        let mut labels = Vec::with_capacity(buf.len() / 4);
        let mut saw_bottom = false;
        while buf.remaining() >= 4 {
            if saw_bottom {
                return Err("entries after bottom-of-stack".into());
            }
            let entry = buf.get_u32();
            labels.push(entry >> 12);
            saw_bottom = (entry >> 8) & 1 == 1;
        }
        if !saw_bottom && !labels.is_empty() {
            return Err("missing bottom-of-stack bit".into());
        }
        Ok(Self { labels })
    }
}

/// The Path Computation Element: computes k-shortest paths and hands out
/// label stacks; tracks how much state each ingress switch holds.
pub struct Pce {
    table: RouteTable,
    /// Installed per-(ingress, egress) stacks.
    installed: HashMap<(NodeId, NodeId), Vec<LabelStack>>,
}

impl Pce {
    /// A PCE computing `k` concurrent paths.
    pub fn new(k: usize) -> Self {
        Self {
            table: RouteTable::new(k),
            installed: HashMap::new(),
        }
    }

    /// Compiles a path to its adjacency-segment stack. The stack covers
    /// the switch hops (the ingress switch's own output port is the top
    /// label; the final label delivers to the destination server).
    pub fn compile(g: &Graph, path: &Path) -> LabelStack {
        let mut ports = Vec::with_capacity(path.nodes.len().saturating_sub(2) + 1);
        for i in 1..path.nodes.len() - 1 {
            let sw = path.nodes[i];
            let next = path.nodes[i + 1];
            let port = g
                .neighbors(sw)
                .iter()
                .position(|&(v, _)| v == next)
                .expect("consecutive path nodes are adjacent") as u32;
            ports.push(port);
        }
        LabelStack::from_ports(&ports)
    }

    /// Computes and installs the stacks for a server pair at its ingress
    /// switch; returns them.
    pub fn install(&mut self, g: &Graph, src: NodeId, dst: NodeId) -> Vec<LabelStack> {
        let ingress = g.server_uplink_switch(src).expect("attached src");
        let egress = g.server_uplink_switch(dst).expect("attached dst");
        let stacks: Vec<LabelStack> = self
            .table
            .server_paths(g, src, dst)
            .iter()
            .map(|p| Self::compile(g, p))
            .collect();
        self.installed.insert((ingress, egress), stacks.clone());
        stacks
    }

    /// Per-ingress state: number of installed stacks (the §4.2.2 claim is
    /// `S · k` per ingress; transit switches hold zero per-route state).
    pub fn state_at(&self, ingress: NodeId) -> usize {
        self.installed
            .iter()
            .filter(|((i, _), _)| *i == ingress)
            .map(|(_, v)| v.len())
            .sum()
    }

    /// Executes a stack from an ingress switch: each transit switch pops
    /// the top label and forwards on that port. Returns the nodes
    /// visited; the last one should be the destination server.
    pub fn forward(
        g: &Graph,
        ingress: NodeId,
        mut stack: LabelStack,
    ) -> Result<Vec<NodeId>, String> {
        let mut at = ingress;
        let mut visited = vec![ingress];
        while let Some(label) = stack.pop() {
            let &(next, _) = g
                .neighbors(at)
                .get(label as usize)
                .ok_or_else(|| format!("switch {at:?} has no port {label}"))?;
            visited.push(next);
            at = next;
        }
        Ok(visited)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode};
    use topology::ClosParams;

    fn global() -> flat_tree::FlatTreeInstance {
        let ft = FlatTree::new(FlatTreeParams::new(ClosParams::mini(), 1, 1)).unwrap();
        ft.instantiate(&ModeAssignment::uniform(4, PodMode::Global))
    }

    #[test]
    fn stack_roundtrip_and_bottom_bit() {
        let s = LabelStack::from_ports(&[3, 0, 17]);
        let enc = s.encode();
        assert_eq!(enc.len(), 12);
        let dec = LabelStack::decode(&enc).unwrap();
        assert_eq!(dec, s);
        // Truncated stack (no bottom bit) must be rejected.
        assert!(LabelStack::decode(&enc[..8]).is_err());
        assert!(LabelStack::decode(&enc[..7]).is_err());
    }

    #[test]
    fn forwarding_follows_each_installed_path() {
        let inst = global();
        let g = &inst.net.graph;
        let mut pce = Pce::new(4);
        let (src, dst) = (inst.net.servers[0], inst.net.servers[50]);
        let stacks = pce.install(g, src, dst);
        assert!(!stacks.is_empty() && stacks.len() <= 4);
        let mut rt = RouteTable::new(4);
        let paths = rt.server_paths(g, src, dst);
        for (stack, path) in stacks.into_iter().zip(paths) {
            let visited = Pce::forward(g, path.nodes[1], stack).unwrap();
            assert_eq!(visited, path.nodes[1..].to_vec(), "stack diverged");
            assert_eq!(*visited.last().unwrap(), dst);
        }
    }

    #[test]
    fn state_lives_only_at_ingress() {
        let inst = global();
        let g = &inst.net.graph;
        let mut pce = Pce::new(4);
        let src = inst.net.servers[0];
        let ingress = g.server_uplink_switch(src).unwrap();
        for &dst in inst.net.servers.iter().skip(1).take(8) {
            pce.install(g, src, dst);
        }
        assert!(pce.state_at(ingress) > 0);
        // Any other switch holds no per-route state.
        for sw in g.switches() {
            if sw != ingress {
                assert_eq!(pce.state_at(sw), 0);
            }
        }
        // The bound is S * k per ingress.
        assert!(pce.state_at(ingress) <= 8 * 4);
    }

    #[test]
    fn pop_semantics() {
        let mut s = LabelStack::from_ports(&[1, 2]);
        assert_eq!(s.top(), Some(1));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.depth(), 1);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), None);
    }

    #[test]
    #[should_panic(expected = "20-bit")]
    fn rejects_oversized_labels() {
        LabelStack::from_ports(&[1 << 20]);
    }
}
