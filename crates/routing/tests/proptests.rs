//! Property tests for addressing and source routing.

use netgraph::{Graph, NodeId, NodeKind};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::addressing::{addresses_for_k, FlatTreeAddress, TopologyModeId};
use routing::source_routing::{
    compile_path, encode_ports, forward, SourceRouteHeader, INITIAL_TTL,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Address encode/decode is a bijection on the valid field ranges.
    #[test]
    fn address_roundtrip(
        switch_id in 0u16..(1 << 13),
        path_id in 0u8..8,
        mode_idx in 0usize..3,
        server_id in 0u8..64,
    ) {
        let a = FlatTreeAddress {
            switch_id,
            path_id,
            mode: TopologyModeId::ALL[mode_idx],
            server_id,
        };
        prop_assert_eq!(FlatTreeAddress::decode(a.encode()), Some(a));
        // /24 prefix is exactly `10 | switch id | path id`.
        prop_assert_eq!(
            a.prefix24(),
            (10u32 << 16) | ((switch_id as u32) << 3) | (path_id as u32)
        );
    }

    /// sqrt-of-k address counts: a² >= k and (a-1)² < k.
    #[test]
    fn address_count_tight(k in 1usize..=64) {
        let a = addresses_for_k(k);
        prop_assert!(a * a >= k);
        prop_assert!((a - 1) * (a - 1) < k);
    }

    /// Any random simple path of <= 6 switch hops through a random
    /// network is exactly reproduced by the MAC/TTL forwarding engine.
    #[test]
    fn source_routing_follows_random_paths(
        switches in 3usize..16,
        extra in 0usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = Graph::new();
        let sw: Vec<NodeId> = (0..switches)
            .map(|i| g.add_node(NodeKind::GenericSwitch, format!("sw{i}")))
            .collect();
        for i in 1..switches {
            let p = rng.gen_range(0..i);
            g.add_duplex_link(sw[i], sw[p], 10.0);
        }
        for _ in 0..extra {
            let a = rng.gen_range(0..switches);
            let b = rng.gen_range(0..switches);
            if a != b && g.find_link(sw[a], sw[b]).is_none() {
                g.add_duplex_link(sw[a], sw[b], 10.0);
            }
        }
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, sw[0], 10.0);
        g.add_duplex_link(t, sw[switches - 1], 10.0);
        let Some(path) = netgraph::dijkstra::shortest_path(&g, s, t) else {
            return Ok(());
        };
        if path.nodes.len() - 2 > routing::source_routing::MAX_HOPS {
            return Ok(()); // too long to encode; compile_path rejects it
        }
        let ports = compile_path(&g, &path).unwrap();
        let header = SourceRouteHeader { mac: encode_ports(&ports), ttl: INITIAL_TTL };
        let visited = forward(&g, path.nodes[1], header, ports.len()).unwrap();
        prop_assert_eq!(visited, path.nodes[1..].to_vec());
    }
}
