//! Property tests for the shared route plane: the parallel build is
//! bit-identical for every worker count, and the failure overlay equals
//! a from-scratch masked recomputation for random failed-link sets.

use netgraph::{yen, Graph, LinkId, NodeId, NodeKind};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing::SharedRouteTable;

/// Connected random switch graph: spanning tree plus `extra` links.
fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| g.add_node(NodeKind::GenericSwitch, format!("n{i}")))
        .collect();
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_duplex_link(nodes[i], nodes[parent], 10.0);
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && g.find_link(nodes[a], nodes[b]).is_none() {
            g.add_duplex_link(nodes[a], nodes[b], 10.0);
        }
    }
    g
}

/// Every ordered pair over the first few nodes — a small route domain.
fn some_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    let m = n.min(5) as u32;
    let mut pairs = Vec::new();
    for a in 0..m {
        for b in 0..m {
            if a != b {
                pairs.push((NodeId(a), NodeId(b)));
            }
        }
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// One worker and N workers build bit-identical tables.
    #[test]
    fn build_is_independent_of_worker_count(
        n in 4usize..12, extra in 0usize..10, seed in any::<u64>(), k in 1usize..6
    ) {
        let g = random_connected(n, extra, seed);
        let pairs = some_pairs(n);
        let one = SharedRouteTable::build_for_pairs_with_threads(&g, k, &pairs, 1);
        for threads in [2usize, 3, 7] {
            let many = SharedRouteTable::build_for_pairs_with_threads(&g, k, &pairs, threads);
            prop_assert_eq!(&many, &one, "threads = {}", threads);
        }
    }

    /// For a random failed-link set, the overlay answer for *every* pair
    /// — recomputed or reused — equals a from-scratch masked Yen run.
    #[test]
    fn overlay_equals_from_scratch_rebuild(
        n in 4usize..12, extra in 0usize..10, seed in any::<u64>(),
        k in 1usize..6, nfail in 0usize..5
    ) {
        let g = random_connected(n, extra, seed);
        let pairs = some_pairs(n);
        let table = SharedRouteTable::build_for_pairs(&g, k, &pairs);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfa11);
        let mut links: Vec<LinkId> = g.link_ids().collect();
        links.shuffle(&mut rng);
        let down: Vec<LinkId> = links.into_iter().take(nfail).collect();
        let ov = table.overlay(&g, &down);
        for &(a, b) in &pairs {
            let want = yen::k_shortest_paths_by(&g, a, b, k, |l| {
                if down.contains(&l) { f64::INFINITY } else { 1.0 }
            });
            let got = table.switch_paths_with(&ov, a, b).unwrap();
            prop_assert_eq!(got, &want[..], "pair {:?} -> {:?}", a, b);
        }
    }
}
