//! Property-based tests for the graph substrate.
//!
//! Strategy: generate random connected switch graphs (a spanning tree plus
//! random extra duplex links), then check algebraic invariants of the
//! shortest-path, Yen, and ECMP implementations.

use netgraph::{dijkstra, ecmp, yen, Graph, NodeId, NodeKind};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Builds a connected random graph of `n` switches with roughly `extra`
/// additional links beyond the spanning tree.
fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    let mut g = Graph::new();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| g.add_node(NodeKind::GenericSwitch, format!("n{i}")))
        .collect();
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_duplex_link(nodes[i], nodes[parent], 10.0);
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && g.find_link(nodes[a], nodes[b]).is_none() {
            g.add_duplex_link(nodes[a], nodes[b], 10.0);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yen paths are simple, sorted by length, distinct, and the first one
    /// matches Dijkstra's shortest path length.
    #[test]
    fn yen_invariants(n in 4usize..24, extra in 0usize..20, seed in any::<u64>(), k in 1usize..9) {
        let g = random_connected(n, extra, seed);
        let src = NodeId(0);
        let dst = NodeId(n as u32 - 1);
        let paths = yen::k_shortest_paths(&g, src, dst, k);
        prop_assert!(!paths.is_empty(), "connected graph must have a path");
        prop_assert!(paths.len() <= k);
        let spl = dijkstra::hop_distance(&g, src, dst).unwrap();
        prop_assert_eq!(paths[0].len(), spl);
        let mut seen = std::collections::HashSet::new();
        let mut prev_len = 0usize;
        for p in &paths {
            prop_assert!(p.validate(&g).is_ok());
            prop_assert_eq!(p.src(), src);
            prop_assert_eq!(p.dst(), dst);
            prop_assert!(p.len() >= prev_len, "paths must be sorted by length");
            prev_len = p.len();
            prop_assert!(seen.insert(p.nodes.clone()), "duplicate path");
        }
    }

    /// Every enumerated equal-cost path has exactly the shortest length and
    /// the hash selection always lands inside the set.
    #[test]
    fn ecmp_invariants(n in 4usize..20, extra in 0usize..16, seed in any::<u64>()) {
        let g = random_connected(n, extra, seed);
        let src = NodeId(0);
        let dst = NodeId(n as u32 - 1);
        let spl = dijkstra::hop_distance(&g, src, dst).unwrap();
        let paths = ecmp::equal_cost_paths(&g, src, dst);
        prop_assert!(!paths.is_empty());
        for p in &paths {
            prop_assert_eq!(p.len(), spl);
            prop_assert!(p.validate(&g).is_ok());
        }
        for fid in 0..8u64 {
            let chosen = ecmp::ecmp_path(&g, src, dst, fid).unwrap();
            prop_assert!(paths.contains(&chosen));
        }
    }

    /// BFS distance satisfies the triangle property over one extra hop and
    /// symmetric graphs give symmetric distances.
    #[test]
    fn bfs_symmetry(n in 3usize..20, extra in 0usize..12, seed in any::<u64>()) {
        let g = random_connected(n, extra, seed);
        for a in 0..n.min(5) {
            let da = dijkstra::hop_distances(&g, NodeId(a as u32));
            for (b, &dab) in da.iter().enumerate().take(n.min(5)) {
                let db = dijkstra::hop_distances(&g, NodeId(b as u32));
                prop_assert_eq!(dab, db[a], "duplex graph distances must be symmetric");
            }
        }
    }

    /// Weighted Dijkstra with unit weights equals BFS hop distance.
    #[test]
    fn dijkstra_unit_equals_bfs(n in 3usize..20, extra in 0usize..12, seed in any::<u64>()) {
        let g = random_connected(n, extra, seed);
        let src = NodeId(0);
        let bfs = dijkstra::hop_distances(&g, src);
        for (t, &hops) in bfs.iter().enumerate().take(n).skip(1) {
            let dst = NodeId(t as u32);
            let (cost, p) = dijkstra::shortest_path_by(&g, src, dst, |_| 1.0).unwrap();
            prop_assert_eq!(cost as usize, hops);
            prop_assert_eq!(p.len(), hops);
        }
    }
}

/// Every simple path from `src` to `dst` by exhaustive DFS; node
/// sequences only. Small graphs only — the count is exponential.
fn all_simple_paths(g: &Graph, src: NodeId, dst: NodeId) -> Vec<Vec<NodeId>> {
    fn dfs(
        g: &Graph,
        u: NodeId,
        dst: NodeId,
        stack: &mut Vec<NodeId>,
        on_path: &mut Vec<bool>,
        out: &mut Vec<Vec<NodeId>>,
    ) {
        if u == dst {
            out.push(stack.clone());
            return;
        }
        for &(v, _) in g.neighbors(u) {
            if !on_path[v.idx()] {
                on_path[v.idx()] = true;
                stack.push(v);
                dfs(g, v, dst, stack, on_path, out);
                stack.pop();
                on_path[v.idx()] = false;
            }
        }
    }
    let mut out = Vec::new();
    let mut on_path = vec![false; g.node_count()];
    on_path[src.idx()] = true;
    dfs(g, src, dst, &mut vec![src], &mut on_path, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Yen against brute force: the returned hop counts are exactly the
    /// k smallest over all simple paths, every returned path exists, and
    /// with k at least the total count the output is the full simple-path
    /// set in canonical (length, lexicographic) order.
    #[test]
    fn yen_matches_brute_force(n in 4usize..8, extra in 0usize..7, seed in any::<u64>(), k in 1usize..7) {
        let g = random_connected(n, extra, seed);
        let src = NodeId(0);
        let dst = NodeId(n as u32 - 1);
        let got = yen::k_shortest_paths(&g, src, dst, k);
        let mut all = all_simple_paths(&g, src, dst);
        all.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        let want_hops: Vec<usize> = all.iter().take(k).map(|p| p.len() - 1).collect();
        let got_hops: Vec<usize> = got.iter().map(netgraph::Path::len).collect();
        prop_assert_eq!(got_hops, want_hops, "hop-count multiset must be the k smallest");
        let universe: std::collections::HashSet<&[NodeId]> =
            all.iter().map(Vec::as_slice).collect();
        for p in &got {
            prop_assert!(universe.contains(p.nodes.as_slice()), "path not in enumeration");
        }
        if k >= all.len() {
            let got_nodes: Vec<Vec<NodeId>> = got.iter().map(|p| p.nodes.clone()).collect();
            prop_assert_eq!(got_nodes, all, "exhaustive k must return every simple path");
        }
    }

    /// The footprint is a valid reuse certificate: masking any link the
    /// run never examined reproduces the unmasked output bit-for-bit.
    #[test]
    fn yen_footprint_certifies_reuse(n in 4usize..10, extra in 0usize..8, seed in any::<u64>(), k in 1usize..6) {
        let g = random_connected(n, extra, seed);
        let src = NodeId(0);
        let dst = NodeId(n as u32 - 1);
        let (base, fp) = yen::k_shortest_paths_with_footprint(&g, src, dst, k);
        prop_assert!(fp.windows(2).all(|w| w[0].idx() < w[1].idx()), "sorted, deduped");
        let fpset: std::collections::HashSet<_> = fp.iter().copied().collect();
        for p in &base {
            for l in &p.links {
                prop_assert!(fpset.contains(l), "selected links must be in the footprint");
            }
        }
        for dead in g.link_ids().filter(|l| !fpset.contains(l)).take(6) {
            let masked = yen::k_shortest_paths_by(&g, src, dst, k, |l| {
                if l == dead { f64::INFINITY } else { 1.0 }
            });
            prop_assert_eq!(&masked, &base, "non-footprint mask changed the output");
        }
    }
}
