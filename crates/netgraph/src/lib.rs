//! Capacitated network-graph substrate for the flat-tree reproduction.
//!
//! This crate owns the lowest layer of the stack: a compact, index-based
//! directed graph of **nodes** (servers and switches) and **links**
//! (full-duplex cables modeled as two directed arcs), together with the
//! path algorithms every higher layer relies on:
//!
//! * [`dijkstra`] — single-source shortest paths (hop count or weighted),
//! * [`yen`] — Yen's k-shortest loopless paths (the paper routes on these),
//! * [`ecmp`] — enumeration of equal-cost shortest paths and deterministic
//!   hash-based path selection (the Clos/ECMP baseline of §5.2),
//! * [`metrics`] — diameter and average shortest-path length (§3.4 uses the
//!   average server-pair path length to profile the `(m, n)` split).
//!
//! Nodes carry a [`NodeKind`] so that path algorithms can refuse to route
//! *through* servers: a server may only appear as the first or last hop of a
//! path, exactly like a NIC in a real data center.
//!
//! The graph is deliberately dependency-free and deterministic: node and
//! link ids are dense `u32` indices in insertion order, and every algorithm
//! breaks ties by smallest node id, so identical inputs produce identical
//! paths on every platform.
//!
//! # Example
//!
//! ```
//! use netgraph::{Graph, NodeKind};
//!
//! let mut g = Graph::new();
//! let a = g.add_node(NodeKind::EdgeSwitch, "e0");
//! let b = g.add_node(NodeKind::CoreSwitch, "c0");
//! let s = g.add_node(NodeKind::Server, "s0");
//! let t = g.add_node(NodeKind::Server, "s1");
//! g.add_duplex_link(s, a, 10.0);
//! g.add_duplex_link(a, b, 10.0);
//! g.add_duplex_link(b, t, 10.0);
//! let paths = netgraph::yen::k_shortest_paths(&g, s, t, 4);
//! assert_eq!(paths.len(), 1);
//! assert_eq!(paths[0].nodes, vec![s, a, b, t]);
//! ```

pub mod arena;
pub mod components;
pub mod dijkstra;
pub mod dot;
pub mod ecmp;
pub mod graph;
pub mod metrics;
pub mod mincut;
pub mod path;
pub mod yen;

pub use arena::{PathArena, PathId};
pub use graph::{Graph, LinkId, LinkInfo, NodeId, NodeInfo, NodeKind};
pub use path::Path;
