//! Connected-component analysis via union-find.
//!
//! The flat-tree verifier needs a cheap, allocation-light answer to "is this
//! mode's network one component?" before spending time on max-flow cuts.
//! Union-find with path halving and union by size gives near-O(n) behaviour
//! and, unlike a DFS, composes naturally with restricted node sets (e.g.
//! "switches only").

use crate::graph::{Graph, NodeId};

/// Disjoint-set forest over dense `NodeId` indices.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// A forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set, with path halving.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x;
        while self.parent[x] as usize != x {
            let grand = self.parent[self.parent[x] as usize];
            self.parent[x] = grand;
            x = grand as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

/// Union-find over every link of `g`. Isolated nodes stay singletons.
pub fn components(g: &Graph) -> UnionFind {
    let mut uf = UnionFind::new(g.node_count());
    for l in g.link_ids() {
        let info = g.link(l);
        uf.union(info.src.idx(), info.dst.idx());
    }
    uf
}

/// Number of connected components among `nodes` (treating links as
/// undirected). Nodes outside the set still conduct: two servers joined only
/// through switches count as one component.
pub fn component_count_among(g: &Graph, nodes: &[NodeId]) -> usize {
    let mut uf = components(g);
    let mut reps: Vec<usize> = nodes.iter().map(|&n| uf.find(n.idx())).collect();
    reps.sort_unstable();
    reps.dedup();
    reps.len()
}

/// Whether every node in `nodes` lies in one connected component.
pub fn all_connected(g: &Graph, nodes: &[NodeId]) -> bool {
    component_count_among(g, nodes) <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn singleton_forest() {
        let mut uf = UnionFind::new(3);
        assert!(!uf.connected(0, 2));
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.connected(0, 1));
        assert_eq!(uf.set_size(1), 2);
    }

    #[test]
    fn graph_components() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let c = g.add_node(NodeKind::GenericSwitch, "c");
        let d = g.add_node(NodeKind::GenericSwitch, "d");
        g.add_duplex_link(a, b, 1.0);
        g.add_duplex_link(c, d, 1.0);
        assert_eq!(component_count_among(&g, &[a, b, c, d]), 2);
        assert!(all_connected(&g, &[a, b]));
        assert!(!all_connected(&g, &[a, c]));
        g.add_duplex_link(b, c, 1.0);
        assert!(all_connected(&g, &[a, b, c, d]));
    }

    #[test]
    fn servers_connected_through_switches() {
        let mut g = Graph::new();
        let s1 = g.add_node(NodeKind::Server, "s1");
        let s2 = g.add_node(NodeKind::Server, "s2");
        let e = g.add_node(NodeKind::EdgeSwitch, "e");
        g.add_duplex_link(s1, e, 10.0);
        g.add_duplex_link(s2, e, 10.0);
        assert!(all_connected(&g, &[s1, s2]));
    }
}
