//! Max-flow / min-cut in integer cable units (Edmonds–Karp).
//!
//! The verifier checks sampled pairwise min-cuts against lower bounds derived
//! from the Clos parameters. Working in *cable units* (link capacity divided
//! by the per-cable rate) keeps the arithmetic exact: a flat-tree link that
//! aggregates `c` parallel cables contributes capacity `c`, so every cut
//! value is an integer and byte-identical across runs.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

#[derive(Debug, Clone)]
struct Arc {
    to: u32,
    cap: u64,
    /// Index of the paired reverse arc in `arcs`.
    rev: u32,
}

/// Residual flow network built once per graph, reusable across s–t queries.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// `head[n]` lists arc indices leaving node `n`.
    head: Vec<Vec<u32>>,
    arcs: Vec<Arc>,
    /// Initial capacities, so the residual state can be reset between queries.
    caps: Vec<u64>,
}

impl FlowNetwork {
    /// Builds the residual network of `g`, converting each directed link's
    /// capacity to integer cable units via `unit_gbps` (rounded to nearest).
    ///
    /// # Panics
    /// Panics if `unit_gbps` is not strictly positive.
    pub fn in_cable_units(g: &Graph, unit_gbps: f64) -> Self {
        assert!(unit_gbps > 0.0, "cable unit must be positive");
        let mut net = Self {
            head: vec![Vec::new(); g.node_count()],
            arcs: Vec::with_capacity(g.link_count() * 2),
            caps: Vec::with_capacity(g.link_count() * 2),
        };
        for l in g.link_ids() {
            let info = g.link(l);
            let cables = (info.capacity_gbps / unit_gbps).round() as u64;
            net.add_arc(info.src, info.dst, cables);
        }
        net
    }

    fn add_arc(&mut self, src: NodeId, dst: NodeId, cap: u64) {
        let fwd = self.arcs.len() as u32;
        let bwd = fwd + 1;
        self.arcs.push(Arc {
            to: dst.0,
            cap,
            rev: bwd,
        });
        self.arcs.push(Arc {
            to: src.0,
            cap: 0,
            rev: fwd,
        });
        self.caps.push(cap);
        self.caps.push(0);
        self.head[src.idx()].push(fwd);
        self.head[dst.idx()].push(bwd);
    }

    fn reset(&mut self) {
        for (arc, &cap) in self.arcs.iter_mut().zip(&self.caps) {
            arc.cap = cap;
        }
    }

    /// Max flow (= min cut, by duality) from `s` to `t` in cable units.
    ///
    /// Resets the residual state first, so queries are independent.
    pub fn min_cut(&mut self, s: NodeId, t: NodeId) -> u64 {
        assert_ne!(s, t, "min-cut endpoints must differ");
        self.reset();
        let n = self.head.len();
        let mut flow = 0u64;
        // parent[v] = arc index used to reach v in the BFS, u32::MAX = unseen.
        let mut parent = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        loop {
            parent.iter_mut().for_each(|p| *p = u32::MAX);
            parent[s.idx()] = u32::MAX - 1;
            queue.clear();
            queue.push_back(s.0);
            'bfs: while let Some(u) = queue.pop_front() {
                for &ai in &self.head[u as usize] {
                    let arc = &self.arcs[ai as usize];
                    if arc.cap > 0 && parent[arc.to as usize] == u32::MAX {
                        parent[arc.to as usize] = ai;
                        if arc.to == t.0 {
                            break 'bfs;
                        }
                        queue.push_back(arc.to);
                    }
                }
            }
            if parent[t.idx()] == u32::MAX {
                return flow;
            }
            // Find the bottleneck along the augmenting path, then push it.
            let mut bottleneck = u64::MAX;
            let mut v = t.0;
            while v != s.0 {
                let ai = parent[v as usize] as usize;
                bottleneck = bottleneck.min(self.arcs[ai].cap);
                v = self.arcs[self.arcs[ai].rev as usize].to;
            }
            let mut v = t.0;
            while v != s.0 {
                let ai = parent[v as usize] as usize;
                self.arcs[ai].cap -= bottleneck;
                let rev = self.arcs[ai].rev as usize;
                self.arcs[rev].cap += bottleneck;
                v = self.arcs[rev].to;
            }
            flow += bottleneck;
        }
    }
}

/// One-shot s–t min-cut in cable units. Prefer [`FlowNetwork`] directly when
/// querying many pairs on the same graph.
pub fn min_cut_cables(g: &Graph, s: NodeId, t: NodeId, unit_gbps: f64) -> u64 {
    FlowNetwork::in_cable_units(g, unit_gbps).min_cut(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    /// Two switches joined by 3 parallel cables, modeled as one aggregated
    /// link of capacity 30 over 10 Gbps cables.
    #[test]
    fn aggregated_link_counts_cables() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        g.add_duplex_link(a, b, 30.0);
        assert_eq!(min_cut_cables(&g, a, b, 10.0), 3);
    }

    /// Diamond: s -> {x, y} -> t, unit capacities. Cut = 2.
    #[test]
    fn diamond_cut_is_two() {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::GenericSwitch, "s");
        let x = g.add_node(NodeKind::GenericSwitch, "x");
        let y = g.add_node(NodeKind::GenericSwitch, "y");
        let t = g.add_node(NodeKind::GenericSwitch, "t");
        for (u, v) in [(s, x), (s, y), (x, t), (y, t)] {
            g.add_duplex_link(u, v, 10.0);
        }
        assert_eq!(min_cut_cables(&g, s, t, 10.0), 2);
    }

    /// A chain bottlenecks at its thinnest link.
    #[test]
    fn chain_bottleneck() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let c = g.add_node(NodeKind::GenericSwitch, "c");
        g.add_duplex_link(a, b, 40.0);
        g.add_duplex_link(b, c, 10.0);
        assert_eq!(min_cut_cables(&g, a, c, 10.0), 1);
    }

    /// Disconnected nodes have a zero cut.
    #[test]
    fn disconnected_cut_is_zero() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        assert_eq!(min_cut_cables(&g, a, b, 10.0), 0);
    }

    /// Queries on one `FlowNetwork` are independent (state resets).
    #[test]
    fn repeated_queries_reset() {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::GenericSwitch, "s");
        let x = g.add_node(NodeKind::GenericSwitch, "x");
        let t = g.add_node(NodeKind::GenericSwitch, "t");
        g.add_duplex_link(s, x, 20.0);
        g.add_duplex_link(x, t, 10.0);
        let mut net = FlowNetwork::in_cable_units(&g, 10.0);
        assert_eq!(net.min_cut(s, t), 1);
        assert_eq!(net.min_cut(s, t), 1);
        assert_eq!(net.min_cut(s, x), 2);
    }
}
