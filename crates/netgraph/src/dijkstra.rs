//! Shortest-path algorithms: BFS for hop counts, Dijkstra for weighted
//! lengths with a caller-supplied link-length function.
//!
//! All routines refuse to expand *through* non-transit nodes (servers):
//! a server may start or terminate a path but never forward.

use crate::graph::{Graph, LinkId, NodeId};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Hop distances from `src` to every node (BFS). `usize::MAX` = unreachable.
pub fn hop_distances(g: &Graph, src: NodeId) -> Vec<usize> {
    let mut dist = vec![usize::MAX; g.node_count()];
    let mut queue = std::collections::VecDeque::new();
    dist[src.idx()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        // Do not forward through servers (except the source itself).
        if u != src && !g.node(u).kind.is_transit() {
            continue;
        }
        for &(v, _) in g.neighbors(u) {
            if dist[v.idx()] == usize::MAX {
                dist[v.idx()] = dist[u.idx()] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// One shortest path by hop count, ties broken toward smaller node ids
/// (deterministic). Returns `None` if unreachable.
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Path> {
    shortest_path_by(g, src, dst, |_| 1.0).map(|(_, p)| p)
}

/// Hop count of the shortest path, if reachable.
pub fn hop_distance(g: &Graph, src: NodeId, dst: NodeId) -> Option<usize> {
    let d = hop_distances(g, src)[dst.idx()];
    (d != usize::MAX).then_some(d)
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on (cost, node id): reverse the natural order.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra with a custom non-negative link length. Links with
/// non-finite length are treated as removed — this is how Yen's algorithm
/// and the MCF solver mask links. Returns `(total length, path)`.
///
/// Tie-breaking: among equal-length relaxations the predecessor with the
/// smaller node id wins, so results are deterministic.
pub fn shortest_path_by<F>(g: &Graph, src: NodeId, dst: NodeId, length: F) -> Option<(f64, Path)>
where
    F: Fn(LinkId) -> f64,
{
    shortest_path_masked(g, src, dst, length, |_| true)
}

/// Like [`shortest_path_by`] but additionally masking nodes: `node_ok(n)`
/// must return `true` for a node to be *entered* (src is always allowed).
pub fn shortest_path_masked<F, M>(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    length: F,
    node_ok: M,
) -> Option<(f64, Path)>
where
    F: Fn(LinkId) -> f64,
    M: Fn(NodeId) -> bool,
{
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src.idx()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: src,
    });
    while let Some(HeapEntry { cost, node: u }) = heap.pop() {
        if done[u.idx()] {
            continue;
        }
        done[u.idx()] = true;
        if u == dst {
            break;
        }
        if u != src && !g.node(u).kind.is_transit() {
            continue; // never forward through a server
        }
        for &(v, l) in g.neighbors(u) {
            if !node_ok(v) && v != dst {
                continue;
            }
            let w = length(l);
            if !w.is_finite() {
                continue;
            }
            debug_assert!(w >= 0.0, "negative link length");
            let cand = cost + w;
            let better = cand < dist[v.idx()]
                || (cand == dist[v.idx()] && prev[v.idx()].is_some_and(|(p, _)| u < p));
            if better && !done[v.idx()] {
                dist[v.idx()] = cand;
                prev[v.idx()] = Some((u, l));
                heap.push(HeapEntry {
                    cost: cand,
                    node: v,
                });
            }
        }
    }
    if !dist[dst.idx()].is_finite() {
        return None;
    }
    // Reconstruct.
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let (p, l) = prev[cur.idx()]?;
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some((dist[dst.idx()], Path { nodes, links }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    /// Diamond: s - a - t and s - b - c - t; shortest is via a.
    fn diamond() -> (Graph, [NodeId; 5]) {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::GenericSwitch, "s");
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let c = g.add_node(NodeKind::GenericSwitch, "c");
        let t = g.add_node(NodeKind::GenericSwitch, "t");
        g.add_duplex_link(s, a, 10.0);
        g.add_duplex_link(a, t, 10.0);
        g.add_duplex_link(s, b, 10.0);
        g.add_duplex_link(b, c, 10.0);
        g.add_duplex_link(c, t, 10.0);
        (g, [s, a, b, c, t])
    }

    #[test]
    fn bfs_distances() {
        let (g, [s, a, b, c, t]) = diamond();
        let d = hop_distances(&g, s);
        assert_eq!(d[s.idx()], 0);
        assert_eq!(d[a.idx()], 1);
        assert_eq!(d[b.idx()], 1);
        assert_eq!(d[c.idx()], 2);
        assert_eq!(d[t.idx()], 2);
    }

    #[test]
    fn shortest_takes_short_branch() {
        let (g, [s, a, _, _, t]) = diamond();
        let p = shortest_path(&g, s, t).unwrap();
        assert_eq!(p.nodes, vec![s, a, t]);
    }

    #[test]
    fn weighted_can_prefer_long_branch() {
        let (g, [s, _, b, c, t]) = diamond();
        // Make the a-branch expensive.
        let (_, p) = shortest_path_by(&g, s, t, |l| {
            let info = g.link(l);
            if info.src == NodeId(1) || info.dst == NodeId(1) {
                100.0
            } else {
                1.0
            }
        })
        .unwrap();
        assert_eq!(p.nodes, vec![s, b, c, t]);
    }

    #[test]
    fn masked_links_are_removed() {
        let (g, [s, a, b, c, t]) = diamond();
        let blocked = g.find_link(a, t).unwrap();
        let (_, p) =
            shortest_path_by(&g, s, t, |l| if l == blocked { f64::INFINITY } else { 1.0 }).unwrap();
        assert_eq!(p.nodes, vec![s, b, c, t]);
    }

    #[test]
    fn masked_nodes_are_removed() {
        let (g, [s, a, b, c, t]) = diamond();
        let (_, p) = shortest_path_masked(&g, s, t, |_| 1.0, |n| n != a).unwrap();
        assert_eq!(p.nodes, vec![s, b, c, t]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        assert!(shortest_path(&g, a, b).is_none());
        assert_eq!(hop_distance(&g, a, b), None);
    }

    #[test]
    fn servers_are_not_transit() {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s");
        let m = g.add_node(NodeKind::Server, "middle");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, m, 10.0);
        g.add_duplex_link(m, t, 10.0);
        // The only route transits server `m`; must be rejected.
        assert!(shortest_path(&g, s, t).is_none());
    }

    #[test]
    fn deterministic_tie_break() {
        // Two equal-length branches; the smaller-id intermediate must win.
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::GenericSwitch, "s");
        let x = g.add_node(NodeKind::GenericSwitch, "x");
        let y = g.add_node(NodeKind::GenericSwitch, "y");
        let t = g.add_node(NodeKind::GenericSwitch, "t");
        g.add_duplex_link(s, y, 10.0); // inserted first but larger id
        g.add_duplex_link(s, x, 10.0);
        g.add_duplex_link(y, t, 10.0);
        g.add_duplex_link(x, t, 10.0);
        let p = shortest_path(&g, s, t).unwrap();
        assert_eq!(p.nodes, vec![s, x, t]);
    }
}
