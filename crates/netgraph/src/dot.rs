//! Graphviz DOT export for visual inspection of built topologies.
//!
//! Node shapes/colors encode the layer (server / edge / agg / core /
//! generic), and duplex cables are rendered once with their aggregate
//! capacity as the label. The output renders usefully with both `dot`
//! (hierarchies) and `sfdp` (random graphs).

use crate::graph::{Graph, NodeKind};
use std::fmt::Write;

/// Renders the graph as a DOT document.
pub fn to_dot(g: &Graph, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{}\" {{", title.replace('"', "'"));
    let _ = writeln!(out, "  layout=dot; overlap=false; splines=true;");
    for n in g.node_ids() {
        let info = g.node(n);
        let (shape, color) = match info.kind {
            NodeKind::Server => ("ellipse", "gray80"),
            NodeKind::EdgeSwitch => ("box", "lightblue"),
            NodeKind::AggSwitch => ("box", "palegreen"),
            NodeKind::CoreSwitch => ("box", "lightsalmon"),
            NodeKind::GenericSwitch => ("box", "khaki"),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={shape}, style=filled, fillcolor={color}];",
            n.0,
            info.label.replace('"', "'")
        );
    }
    for l in g.link_ids() {
        let info = g.link(l);
        // Render each duplex cable once (the direction with the smaller
        // id); lone directed links render with an arrowhead-ish style.
        let render = match info.reverse {
            Some(r) => r.0 > l.0,
            None => true,
        };
        if render {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{}G\"];",
                info.src.0, info.dst.0, info.capacity_gbps
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_every_node_and_cable_once() {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s0");
        let e = g.add_node(NodeKind::EdgeSwitch, "e0");
        let c = g.add_node(NodeKind::CoreSwitch, "c0");
        g.add_duplex_link(s, e, 10.0);
        g.add_duplex_link(e, c, 40.0);
        let dot = to_dot(&g, "test");
        assert!(dot.starts_with("graph \"test\""));
        for label in ["s0", "e0", "c0"] {
            assert!(dot.contains(label));
        }
        // Two cables, each rendered once.
        assert_eq!(dot.matches(" -- ").count(), 2);
        assert!(dot.contains("40G"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "we\"ird");
        let b = g.add_node(NodeKind::GenericSwitch, "ok");
        g.add_duplex_link(a, b, 1.0);
        let dot = to_dot(&g, "t\"itle");
        assert!(!dot.contains("we\"ird"));
        assert!(dot.contains("we'ird"));
    }
}
