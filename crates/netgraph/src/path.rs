//! Path representation shared by all routing and simulation layers.

use crate::graph::{Graph, LinkId, NodeId};
use serde::{Deserialize, Serialize};

/// A simple (loop-free) path through the network.
///
/// Invariant: `links.len() == nodes.len() - 1`, `links[i]` connects
/// `nodes[i]` to `nodes[i + 1]`, and no node repeats. Construct via
/// [`Path::from_nodes`] (which validates against a graph) or trust the
/// output of the algorithms in this crate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    /// Visited nodes, endpoints included.
    pub nodes: Vec<NodeId>,
    /// Directed links between consecutive nodes.
    pub links: Vec<LinkId>,
}

impl Path {
    /// Builds a path from a node sequence, resolving links in `g`.
    ///
    /// Returns `None` if any consecutive pair is not connected or the node
    /// sequence repeats a node.
    pub fn from_nodes(g: &Graph, nodes: &[NodeId]) -> Option<Path> {
        if nodes.is_empty() {
            return None;
        }
        let mut seen = std::collections::HashSet::with_capacity(nodes.len());
        for &n in nodes {
            if !seen.insert(n) {
                return None;
            }
        }
        let mut links = Vec::with_capacity(nodes.len().saturating_sub(1));
        for w in nodes.windows(2) {
            links.push(g.find_link(w[0], w[1])?);
        }
        Some(Path {
            nodes: nodes.to_vec(),
            links,
        })
    }

    /// Number of hops (links).
    #[inline]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// True for a single-node path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// First node.
    pub fn src(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    pub fn dst(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// The minimum link capacity along the path, in Gbps.
    pub fn bottleneck_gbps(&self, g: &Graph) -> f64 {
        self.links
            .iter()
            .map(|&l| g.link(l).capacity_gbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Number of *switches* traversed (excludes server endpoints).
    /// The paper's §4.2.2 claims flat-tree paths traverse < 3 switches on
    /// average; this is the quantity that claim refers to.
    pub fn switch_hops(&self, g: &Graph) -> usize {
        self.nodes
            .iter()
            .filter(|&&n| g.node(n).kind.is_switch())
            .count()
    }

    /// Validates the structural invariant against a graph; used in tests
    /// and debug assertions.
    pub fn validate(&self, g: &Graph) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err("empty node list".into());
        }
        if self.links.len() + 1 != self.nodes.len() {
            return Err(format!(
                "length mismatch: {} nodes vs {} links",
                self.nodes.len(),
                self.links.len()
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for &n in &self.nodes {
            if !seen.insert(n) {
                return Err(format!("node {n:?} repeats"));
            }
        }
        for (i, &l) in self.links.iter().enumerate() {
            let info = g.link(l);
            if info.src != self.nodes[i] || info.dst != self.nodes[i + 1] {
                return Err(format!("link {l:?} does not connect hop {i}"));
            }
        }
        // Transit nodes must be switches.
        for &n in &self.nodes[1..self.nodes.len().saturating_sub(1)] {
            if !g.node(n).kind.is_transit() {
                return Err(format!("path transits non-switch {n:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    fn line() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s");
        let a = g.add_node(NodeKind::EdgeSwitch, "a");
        let b = g.add_node(NodeKind::CoreSwitch, "b");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, a, 10.0);
        g.add_duplex_link(a, b, 40.0);
        g.add_duplex_link(b, t, 10.0);
        (g, vec![s, a, b, t])
    }

    #[test]
    fn from_nodes_resolves_links() {
        let (g, ns) = line();
        let p = Path::from_nodes(&g, &ns).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.src(), ns[0]);
        assert_eq!(p.dst(), ns[3]);
        p.validate(&g).unwrap();
    }

    #[test]
    fn from_nodes_rejects_disconnected() {
        let (g, ns) = line();
        assert!(Path::from_nodes(&g, &[ns[0], ns[2]]).is_none());
    }

    #[test]
    fn from_nodes_rejects_repeats() {
        let (g, ns) = line();
        assert!(Path::from_nodes(&g, &[ns[0], ns[1], ns[0]]).is_none());
    }

    #[test]
    fn bottleneck_is_min_capacity() {
        let (g, ns) = line();
        let p = Path::from_nodes(&g, &ns).unwrap();
        assert_eq!(p.bottleneck_gbps(&g), 10.0);
    }

    #[test]
    fn switch_hops_excludes_servers() {
        let (g, ns) = line();
        let p = Path::from_nodes(&g, &ns).unwrap();
        assert_eq!(p.switch_hops(&g), 2);
    }

    #[test]
    fn validate_catches_server_transit() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::EdgeSwitch, "a");
        let s = g.add_node(NodeKind::Server, "s");
        let b = g.add_node(NodeKind::EdgeSwitch, "b");
        g.add_duplex_link(a, s, 10.0);
        g.add_duplex_link(s, b, 10.0);
        // Hand-build to bypass from_nodes checks on kinds (it allows this,
        // validate must catch it).
        let p = Path::from_nodes(&g, &[a, s, b]).unwrap();
        assert!(p.validate(&g).is_err());
    }
}
