//! Yen's k-shortest loopless paths (Yen, *Management Science* 1971).
//!
//! The paper routes flat-tree global/local modes with k-shortest-path
//! routing (§4, citing \[50\]); `routing` builds its per-pair path tables on
//! top of this module. Paths are simple (loop-free), returned sorted by
//! length and then lexicographically by node sequence, so the output is
//! fully deterministic.

use crate::dijkstra::shortest_path_masked;
use crate::graph::{Graph, LinkId, NodeId};
use crate::path::Path;
use std::collections::HashSet;

/// k shortest loopless paths by hop count.
pub fn k_shortest_paths(g: &Graph, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    k_shortest_paths_by(g, src, dst, k, |_| 1.0)
}

/// k shortest loopless paths under a custom non-negative link length.
///
/// Returns fewer than `k` paths when the graph does not contain that many
/// simple paths. `src == dst` yields the empty set.
pub fn k_shortest_paths_by<F>(g: &Graph, src: NodeId, dst: NodeId, k: usize, length: F) -> Vec<Path>
where
    F: Fn(LinkId) -> f64,
{
    yen_core(g, src, dst, k, length, None)
}

/// [`k_shortest_paths`] plus the run's **footprint**: every link used by
/// any path the algorithm examined — the selected paths *and* every
/// candidate spur path generated along the way — sorted by id, deduped.
///
/// The footprint is the exact reuse certificate for route caches: if no
/// footprint link is removed from the graph, re-running Yen on the
/// pruned graph returns bit-identical paths, because every spur search
/// of the original run found a path that still exists (Dijkstra returns
/// the same path when its result survives pruning, so every candidate
/// pool — and therefore every selection — is reproduced unchanged).
/// If a removed link only avoids the *selected* paths, an equal-cost
/// candidate replacement can still win a tie-break and change the
/// output, so caches must key on the full footprint, not the selection.
pub fn k_shortest_paths_with_footprint(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
) -> (Vec<Path>, Vec<LinkId>) {
    let mut footprint = Vec::new();
    let paths = yen_core(g, src, dst, k, |_| 1.0, Some(&mut footprint));
    footprint.sort_unstable_by_key(|l| l.idx());
    footprint.dedup();
    (paths, footprint)
}

fn yen_core<F>(
    g: &Graph,
    src: NodeId,
    dst: NodeId,
    k: usize,
    length: F,
    mut footprint: Option<&mut Vec<LinkId>>,
) -> Vec<Path>
where
    F: Fn(LinkId) -> f64,
{
    if k == 0 || src == dst {
        return Vec::new();
    }
    let mut selected: Vec<(f64, Path)> = Vec::new();
    let Some(first) = shortest_path_masked(g, src, dst, &length, |_| true) else {
        return Vec::new();
    };
    if let Some(fp) = footprint.as_deref_mut() {
        fp.extend_from_slice(&first.1.links);
    }
    selected.push(first);

    // Candidate pool; deduplicated by node sequence.
    let mut candidates: Vec<(f64, Path)> = Vec::new();
    let mut candidate_keys: HashSet<Vec<NodeId>> = HashSet::new();

    while selected.len() < k {
        let (_, last) = selected.last().expect("nonempty").clone();
        // Spur from every node of the previously selected path.
        for i in 0..last.nodes.len() - 1 {
            let spur = last.nodes[i];
            let root_nodes = &last.nodes[..=i];
            let root_links = &last.links[..i];
            let root_cost: f64 = root_links.iter().map(|&l| length(l)).sum();

            // Mask: the next link of every *selected* path sharing this
            // root (candidates stay routable — masking them too would
            // wrongly suppress paths that are never selected), plus all
            // root nodes except the spur node.
            let mut removed_links: HashSet<LinkId> = HashSet::new();
            for (_, p) in &selected {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    removed_links.insert(p.links[i]);
                }
            }
            let removed_nodes: HashSet<NodeId> = root_nodes[..i].iter().copied().collect();

            let spur_path = shortest_path_masked(
                g,
                spur,
                dst,
                |l| {
                    if removed_links.contains(&l) {
                        f64::INFINITY
                    } else {
                        length(l)
                    }
                },
                |n| !removed_nodes.contains(&n),
            );
            let Some((spur_cost, spur_path)) = spur_path else {
                continue;
            };
            // Stitch root + spur.
            let mut nodes = root_nodes.to_vec();
            nodes.extend_from_slice(&spur_path.nodes[1..]);
            let mut links = root_links.to_vec();
            links.extend_from_slice(&spur_path.links);
            let total = Path { nodes, links };
            debug_assert!(total.validate(g).is_ok(), "Yen stitched an invalid path");
            if let Some(fp) = footprint.as_deref_mut() {
                fp.extend_from_slice(&total.links);
            }
            if candidate_keys.insert(total.nodes.clone()) {
                candidates.push((root_cost + spur_cost, total));
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Extract the best candidate: min (cost, node sequence).
        let best_idx = candidates
            .iter()
            .enumerate()
            .min_by(|(_, (ca, pa)), (_, (cb, pb))| {
                ca.partial_cmp(cb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| pa.nodes.cmp(&pb.nodes))
            })
            .map(|(idx, _)| idx)
            .expect("nonempty");
        let best = candidates.swap_remove(best_idx);
        candidate_keys.remove(&best.1.nodes);
        selected.push(best);
    }

    // Final deterministic ordering.
    selected.sort_by(|(ca, pa), (cb, pb)| {
        ca.partial_cmp(cb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| pa.nodes.cmp(&pb.nodes))
    });
    let paths: Vec<Path> = selected.into_iter().map(|(_, p)| p).collect();
    #[cfg(feature = "strict-invariants")]
    for p in &paths {
        debug_assert!(
            p.validate(g).is_ok(),
            "yen produced an invalid path: {:?}",
            p.validate(g)
        );
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    /// Classic Yen example graph (directed interpretation of the wiki
    /// example would need weights; we use a small mesh instead).
    fn mesh() -> (Graph, [NodeId; 6]) {
        let mut g = Graph::new();
        let c = g.add_node(NodeKind::GenericSwitch, "c");
        let d = g.add_node(NodeKind::GenericSwitch, "d");
        let e = g.add_node(NodeKind::GenericSwitch, "e");
        let f = g.add_node(NodeKind::GenericSwitch, "f");
        let gg = g.add_node(NodeKind::GenericSwitch, "g");
        let h = g.add_node(NodeKind::GenericSwitch, "h");
        for (a, b) in [
            (c, d),
            (c, e),
            (d, f),
            (e, d),
            (e, f),
            (f, h),
            (f, gg),
            (gg, h),
            (e, gg),
        ] {
            g.add_duplex_link(a, b, 10.0);
        }
        (g, [c, d, e, f, gg, h])
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let (g, [c, .., h]) = mesh();
        let ps = k_shortest_paths(&g, c, h, 1);
        let sp = crate::dijkstra::shortest_path(&g, c, h).unwrap();
        assert_eq!(ps[0], sp);
    }

    #[test]
    fn paths_are_sorted_simple_and_distinct() {
        let (g, [c, .., h]) = mesh();
        let ps = k_shortest_paths(&g, c, h, 10);
        assert!(ps.len() >= 3);
        for w in ps.windows(2) {
            assert!(w[0].len() <= w[1].len(), "not sorted by length");
            assert_ne!(w[0].nodes, w[1].nodes, "duplicate path");
        }
        for p in &ps {
            p.validate(&g).unwrap();
            assert_eq!(p.src(), c);
            assert_eq!(p.dst(), h);
        }
    }

    #[test]
    fn k_zero_and_same_endpoint() {
        let (g, [c, .., h]) = mesh();
        assert!(k_shortest_paths(&g, c, h, 0).is_empty());
        assert!(k_shortest_paths(&g, c, c, 5).is_empty());
    }

    #[test]
    fn exhausts_when_fewer_paths_exist() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        g.add_duplex_link(a, b, 1.0);
        let ps = k_shortest_paths(&g, a, b, 8);
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn diamond_has_two_disjoint_paths() {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::GenericSwitch, "s");
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let t = g.add_node(NodeKind::GenericSwitch, "t");
        g.add_duplex_link(s, a, 1.0);
        g.add_duplex_link(s, b, 1.0);
        g.add_duplex_link(a, t, 1.0);
        g.add_duplex_link(b, t, 1.0);
        let ps = k_shortest_paths(&g, s, t, 4);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].nodes, vec![s, a, t]);
        assert_eq!(ps[1].nodes, vec![s, b, t]);
    }

    #[test]
    fn respects_custom_lengths() {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::GenericSwitch, "s");
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let t = g.add_node(NodeKind::GenericSwitch, "t");
        let (sa, _) = g.add_duplex_link(s, a, 1.0);
        g.add_duplex_link(s, b, 1.0);
        g.add_duplex_link(a, t, 1.0);
        g.add_duplex_link(b, t, 1.0);
        // Penalize the s→a link so the b branch sorts first.
        let ps = k_shortest_paths_by(&g, s, t, 2, |l| if l == sa { 5.0 } else { 1.0 });
        assert_eq!(ps[0].nodes, vec![s, b, t]);
        assert_eq!(ps[1].nodes, vec![s, a, t]);
    }
}
