//! Path interning: deduplicated storage of [`Path`]s behind cheap
//! copyable [`PathId`] handles.
//!
//! The simulation layers reroute and reallocate constantly over a small,
//! recurring set of paths (k-shortest paths per pair, ECMP members).
//! Cloning a `Path` — two heap vectors — per connection per event
//! dominated the old event loop. Interning each distinct path once in a
//! [`PathArena`] turns every later mention into a 4-byte id: connections
//! hold `Vec<PathId>`, and allocation reads link lists straight out of
//! the arena without copying.

use crate::graph::{LinkId, NodeId};
use crate::path::Path;
use std::collections::HashMap;

/// Handle to an interned [`Path`] in a [`PathArena`].
///
/// Ids are dense indices in first-interning order, so they are stable for
/// the arena's lifetime and usable as `Vec` indices via [`PathId::idx`].
/// A `PathId` is only meaningful together with the arena that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathId(u32);

impl PathId {
    /// The index as `usize`, for direct `Vec` access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Append-only, deduplicating store of [`Path`]s.
///
/// Interning the same path twice returns the same [`PathId`]; ids are
/// assigned densely in first-interning order, so identical interning
/// sequences produce identical ids on every platform.
#[derive(Debug, Clone, Default)]
pub struct PathArena {
    paths: Vec<Path>,
    index: HashMap<Path, PathId>,
}

impl PathArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a path, returning the existing id if an equal path was
    /// interned before.
    pub fn intern(&mut self, path: Path) -> PathId {
        if let Some(&id) = self.index.get(&path) {
            return id;
        }
        let id = PathId(self.paths.len() as u32);
        self.index.insert(path.clone(), id);
        self.paths.push(path);
        id
    }

    /// Interns every path in a slice, preserving order.
    pub fn intern_all(&mut self, paths: &[Path]) -> Vec<PathId> {
        paths.iter().map(|p| self.intern(p.clone())).collect()
    }

    /// The interned path.
    #[inline]
    pub fn get(&self, id: PathId) -> &Path {
        &self.paths[id.idx()]
    }

    /// Directed links of the interned path (the hot accessor: allocation
    /// only ever needs the link list).
    #[inline]
    pub fn links(&self, id: PathId) -> &[LinkId] {
        &self.paths[id.idx()].links
    }

    /// Nodes of the interned path, endpoints included.
    #[inline]
    pub fn nodes(&self, id: PathId) -> &[NodeId] {
        &self.paths[id.idx()].nodes
    }

    /// Number of distinct paths interned.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// All interned paths with their ids, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &Path)> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, p)| (PathId(i as u32), p))
    }
}

impl std::ops::Index<PathId> for PathArena {
    type Output = Path;

    fn index(&self, id: PathId) -> &Path {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, NodeKind};

    fn two_paths() -> (Path, Path) {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s");
        let a = g.add_node(NodeKind::EdgeSwitch, "a");
        let b = g.add_node(NodeKind::EdgeSwitch, "b");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, a, 10.0);
        g.add_duplex_link(a, b, 10.0);
        g.add_duplex_link(b, t, 10.0);
        g.add_duplex_link(a, t, 10.0);
        (
            Path::from_nodes(&g, &[s, a, b, t]).unwrap(),
            Path::from_nodes(&g, &[s, a, t]).unwrap(),
        )
    }

    #[test]
    fn interning_deduplicates() {
        let (p1, p2) = two_paths();
        let mut arena = PathArena::new();
        let a = arena.intern(p1.clone());
        let b = arena.intern(p2.clone());
        let a2 = arena.intern(p1.clone());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), &p1);
        assert_eq!(arena[b], p2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let (p1, p2) = two_paths();
        let mut arena = PathArena::new();
        let ids = arena.intern_all(&[p1.clone(), p2.clone(), p1.clone()]);
        assert_eq!(ids[0].idx(), 0);
        assert_eq!(ids[1].idx(), 1);
        assert_eq!(ids[0], ids[2]);
        let collected: Vec<_> = arena.iter().map(|(id, _)| id).collect();
        assert_eq!(collected, vec![ids[0], ids[1]]);
    }

    #[test]
    fn accessors_match_path_contents() {
        let (p1, _) = two_paths();
        let mut arena = PathArena::new();
        let id = arena.intern(p1.clone());
        assert_eq!(arena.links(id), p1.links.as_slice());
        assert_eq!(arena.nodes(id), p1.nodes.as_slice());
    }
}
