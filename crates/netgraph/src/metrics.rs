//! Topology-level metrics: average shortest path length, diameter,
//! per-kind degree statistics.
//!
//! §3.4 of the paper profiles the flat-tree `(m, n)` server split by
//! minimizing the **average path length over all server pairs** — that is
//! [`avg_server_path_length`]. §4.2.2 sizes the source-routing header by the
//! **switch-level diameter** — that is [`switch_diameter`].

use crate::dijkstra::hop_distances;
use crate::graph::{Graph, NodeId, NodeKind};

/// Average hop distance over all ordered server pairs (reachable pairs
/// only). Returns `None` when there are fewer than two servers or no pair
/// is reachable.
pub fn avg_server_path_length(g: &Graph) -> Option<f64> {
    let servers = g.servers();
    if servers.len() < 2 {
        return None;
    }
    let mut total = 0usize;
    let mut pairs = 0usize;
    for &s in &servers {
        let d = hop_distances(g, s);
        for &t in &servers {
            if t != s && d[t.idx()] != usize::MAX {
                total += d[t.idx()];
                pairs += 1;
            }
        }
    }
    (pairs > 0).then(|| total as f64 / pairs as f64)
}

/// Like [`avg_server_path_length`] but BFS-ing from at most
/// `max_sources` evenly spaced source servers — an unbiased structural
/// sample for large networks (profiling sweeps over Table 2-sized
/// topologies would otherwise cost minutes per candidate).
pub fn avg_server_path_length_sampled(g: &Graph, max_sources: usize) -> Option<f64> {
    let servers = g.servers();
    if servers.len() < 2 || max_sources == 0 {
        return None;
    }
    let stride = (servers.len() / max_sources.min(servers.len())).max(1);
    let mut total = 0usize;
    let mut pairs = 0usize;
    for &s in servers.iter().step_by(stride) {
        let d = hop_distances(g, s);
        for &t in &servers {
            if t != s && d[t.idx()] != usize::MAX {
                total += d[t.idx()];
                pairs += 1;
            }
        }
    }
    (pairs > 0).then(|| total as f64 / pairs as f64)
}

/// Average hop distance over all ordered switch pairs.
pub fn avg_switch_path_length(g: &Graph) -> Option<f64> {
    let sw = g.switches();
    if sw.len() < 2 {
        return None;
    }
    let mut total = 0usize;
    let mut pairs = 0usize;
    for &s in &sw {
        let d = hop_distances(g, s);
        for &t in &sw {
            if t != s && d[t.idx()] != usize::MAX {
                total += d[t.idx()];
                pairs += 1;
            }
        }
    }
    (pairs > 0).then(|| total as f64 / pairs as f64)
}

/// Longest shortest path between any two switches (hop count), ignoring
/// unreachable pairs. `None` when there are fewer than two switches.
pub fn switch_diameter(g: &Graph) -> Option<usize> {
    let sw = g.switches();
    if sw.len() < 2 {
        return None;
    }
    let mut best = None;
    for &s in &sw {
        let d = hop_distances(g, s);
        for &t in &sw {
            if t != s && d[t.idx()] != usize::MAX {
                best = Some(best.map_or(d[t.idx()], |b: usize| b.max(d[t.idx()])));
            }
        }
    }
    best
}

/// Whether every server can reach every other server.
pub fn all_servers_connected(g: &Graph) -> bool {
    let servers = g.servers();
    if servers.len() < 2 {
        return true;
    }
    let d = hop_distances(g, servers[0]);
    servers.iter().all(|&t| d[t.idx()] != usize::MAX)
}

/// `(min, max, mean)` out-degree of nodes of `kind`.
pub fn degree_stats(g: &Graph, kind: NodeKind) -> Option<(usize, usize, f64)> {
    let nodes: Vec<NodeId> = g.nodes_of_kind(kind);
    if nodes.is_empty() {
        return None;
    }
    let degs: Vec<usize> = nodes.iter().map(|&n| g.degree(n)).collect();
    let min = *degs.iter().min().unwrap();
    let max = *degs.iter().max().unwrap();
    let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
    Some((min, max, mean))
}

/// Number of servers attached (directly, one hop) to each node of `kind`,
/// ascending by node id. Used to check Property 1 of §3.2 (servers are
/// distributed uniformly across the core switches).
pub fn attached_server_counts(g: &Graph, kind: NodeKind) -> Vec<(NodeId, usize)> {
    g.nodes_of_kind(kind)
        .into_iter()
        .map(|n| {
            let c = g
                .neighbors(n)
                .iter()
                .filter(|&&(v, _)| g.node(v).kind == NodeKind::Server)
                .count();
            (n, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star of 3 servers on one switch plus a far server behind 2 switches.
    fn sample() -> Graph {
        let mut g = Graph::new();
        let sw0 = g.add_node(NodeKind::EdgeSwitch, "sw0");
        let sw1 = g.add_node(NodeKind::EdgeSwitch, "sw1");
        let sw2 = g.add_node(NodeKind::CoreSwitch, "sw2");
        g.add_duplex_link(sw0, sw2, 10.0);
        g.add_duplex_link(sw2, sw1, 10.0);
        for i in 0..3 {
            let s = g.add_node(NodeKind::Server, format!("s{i}"));
            g.add_duplex_link(s, sw0, 10.0);
        }
        let far = g.add_node(NodeKind::Server, "far");
        g.add_duplex_link(far, sw1, 10.0);
        g
    }

    #[test]
    fn avg_server_path_length_counts_all_pairs() {
        let g = sample();
        // 3 near servers pairwise at distance 2 (6 ordered pairs),
        // near<->far at distance 4 (6 ordered pairs).
        let apl = avg_server_path_length(&g).unwrap();
        assert!((apl - (6.0 * 2.0 + 6.0 * 4.0) / 12.0).abs() < 1e-12);
    }

    #[test]
    fn diameter_is_switch_level() {
        let g = sample();
        assert_eq!(switch_diameter(&g), Some(2)); // sw0 -> sw2 -> sw1
    }

    #[test]
    fn connectivity_detects_partition() {
        let mut g = sample();
        assert!(all_servers_connected(&g));
        let lonely = g.add_node(NodeKind::Server, "lonely");
        let island = g.add_node(NodeKind::EdgeSwitch, "island");
        g.add_duplex_link(lonely, island, 10.0);
        assert!(!all_servers_connected(&g));
    }

    #[test]
    fn degree_and_attachment_stats() {
        let g = sample();
        let (min, max, mean) = degree_stats(&g, NodeKind::EdgeSwitch).unwrap();
        assert_eq!(min, 2); // sw1: sw2 + far
        assert_eq!(max, 4); // sw0: sw2 + 3 servers
        assert!((mean - 3.0).abs() < 1e-12);
        let counts = attached_server_counts(&g, NodeKind::EdgeSwitch);
        assert_eq!(
            counts.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
            vec![3, 1]
        );
    }

    #[test]
    fn empty_cases() {
        let g = Graph::new();
        assert!(avg_server_path_length(&g).is_none());
        assert!(switch_diameter(&g).is_none());
        assert!(all_servers_connected(&g));
        assert!(degree_stats(&g, NodeKind::CoreSwitch).is_none());
    }
}
