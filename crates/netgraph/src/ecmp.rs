//! Equal-cost multi-path (ECMP) support: enumeration of all shortest paths
//! and deterministic per-flow hash selection.
//!
//! The paper's Clos baseline (§5.2) runs ECMP + TCP: "the next hop at each
//! switch is determined pseudo-randomly by header field hashing, so each
//! TCP flow traverses only one of the equal cost shortest paths". We model
//! this by enumerating the equal-cost shortest-path set between two nodes
//! and picking one with a deterministic FNV-1a hash of the flow 5-tuple
//! surrogate `(src, dst, flow_id)`.

use crate::dijkstra::hop_distances;
use crate::graph::{Graph, NodeId};
use crate::path::Path;

/// Upper bound on paths enumerated per pair, to keep worst cases bounded on
/// very path-rich graphs. Clos networks stay far below this.
pub const MAX_ECMP_PATHS: usize = 512;

/// Enumerates all shortest (by hops) paths from `src` to `dst`, in
/// lexicographic node order, capped at [`MAX_ECMP_PATHS`].
pub fn equal_cost_paths(g: &Graph, src: NodeId, dst: NodeId) -> Vec<Path> {
    // Distances *to* dst: run BFS backwards. Our graphs are built from
    // duplex links, so forward BFS from dst over reverse arcs equals BFS on
    // the same adjacency; we exploit symmetry but verify via link lookup
    // when reconstructing.
    let dist_from_src = hop_distances(g, src);
    let dist_to_dst = hop_distances(g, dst);
    let total = dist_from_src[dst.idx()];
    if total == usize::MAX {
        return Vec::new();
    }
    // DFS along the shortest-path DAG: edge (u,v) is on a shortest path iff
    // dist_src[u] + 1 + dist_dst[v] == total.
    let mut out = Vec::new();
    let mut stack_nodes = vec![src];
    dfs(
        g,
        src,
        dst,
        total,
        &dist_from_src,
        &dist_to_dst,
        &mut stack_nodes,
        &mut out,
    );
    out.sort_by(|a, b| a.nodes.cmp(&b.nodes));
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Graph,
    u: NodeId,
    dst: NodeId,
    total: usize,
    dsrc: &[usize],
    ddst: &[usize],
    stack: &mut Vec<NodeId>,
    out: &mut Vec<Path>,
) {
    if out.len() >= MAX_ECMP_PATHS {
        return;
    }
    if u == dst {
        if let Some(p) = Path::from_nodes(g, stack) {
            out.push(p);
        }
        return;
    }
    if u != stack[0] && !g.node(u).kind.is_transit() {
        return;
    }
    // Deterministic order: sort neighbor candidates by id.
    let mut nexts: Vec<NodeId> = g
        .neighbors(u)
        .iter()
        .filter(|&&(v, _)| {
            dsrc[u.idx()] != usize::MAX
                && ddst[v.idx()] != usize::MAX
                && dsrc[u.idx()] + 1 + ddst[v.idx()] == total
        })
        .map(|&(v, _)| v)
        .collect();
    nexts.sort();
    nexts.dedup();
    for v in nexts {
        stack.push(v);
        dfs(g, v, dst, total, dsrc, ddst, stack, out);
        stack.pop();
    }
}

/// FNV-1a hash of a flow identity; stands in for the 5-tuple header hash a
/// real switch ASIC computes.
pub fn flow_hash(src: NodeId, dst: NodeId, flow_id: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in src
        .0
        .to_le_bytes()
        .iter()
        .chain(dst.0.to_le_bytes().iter())
        .chain(flow_id.to_le_bytes().iter())
    {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The single path an ECMP network assigns to flow `flow_id`, or `None` if
/// `dst` is unreachable.
pub fn ecmp_path(g: &Graph, src: NodeId, dst: NodeId, flow_id: u64) -> Option<Path> {
    let paths = equal_cost_paths(g, src, dst);
    if paths.is_empty() {
        return None;
    }
    let i = (flow_hash(src, dst, flow_id) % paths.len() as u64) as usize;
    Some(paths[i].clone())
}

/// Selects from a precomputed equal-cost set (avoids re-enumeration when
/// the caller caches [`equal_cost_paths`]).
pub fn select_by_hash(paths: &[Path], src: NodeId, dst: NodeId, flow_id: u64) -> Option<&Path> {
    if paths.is_empty() {
        return None;
    }
    let i = (flow_hash(src, dst, flow_id) % paths.len() as u64) as usize;
    paths.get(i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    /// Two-level Clos slice: s -- e0 -- {a0,a1} -- e1 -- t.
    fn slice() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s");
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let a0 = g.add_node(NodeKind::AggSwitch, "a0");
        let a1 = g.add_node(NodeKind::AggSwitch, "a1");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, e0, 10.0);
        g.add_duplex_link(e0, a0, 10.0);
        g.add_duplex_link(e0, a1, 10.0);
        g.add_duplex_link(a0, e1, 10.0);
        g.add_duplex_link(a1, e1, 10.0);
        g.add_duplex_link(e1, t, 10.0);
        (g, s, t)
    }

    #[test]
    fn enumerates_both_equal_cost_paths() {
        let (g, s, t) = slice();
        let ps = equal_cost_paths(&g, s, t);
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert_eq!(p.len(), 4);
            p.validate(&g).unwrap();
        }
        assert_ne!(ps[0].nodes, ps[1].nodes);
    }

    #[test]
    fn hash_selection_is_deterministic_and_spreads() {
        let (g, s, t) = slice();
        let a = ecmp_path(&g, s, t, 1).unwrap();
        let b = ecmp_path(&g, s, t, 1).unwrap();
        assert_eq!(a, b);
        // Over many flow ids both paths should be used.
        let mut used = std::collections::HashSet::new();
        for fid in 0..32 {
            used.insert(ecmp_path(&g, s, t, fid).unwrap().nodes);
        }
        assert_eq!(used.len(), 2);
    }

    #[test]
    fn unreachable_yields_empty() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::Server, "a");
        let b = g.add_node(NodeKind::Server, "b");
        assert!(equal_cost_paths(&g, a, b).is_empty());
        assert!(ecmp_path(&g, a, b, 0).is_none());
    }

    #[test]
    fn select_by_hash_matches_ecmp_path() {
        let (g, s, t) = slice();
        let ps = equal_cost_paths(&g, s, t);
        for fid in 0..8 {
            let direct = ecmp_path(&g, s, t, fid).unwrap();
            let cached = select_by_hash(&ps, s, t, fid).unwrap();
            assert_eq!(&direct, cached);
        }
    }
}
