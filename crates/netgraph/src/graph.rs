//! The core graph type: dense, index-based, deterministic.

use serde::{Deserialize, Serialize};

/// Identifier of a node (server or switch). Dense index assigned by [`Graph::add_node`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a *directed* link (one direction of a full-duplex cable).
/// Dense index assigned by [`Graph::add_directed_link`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The index as `usize`, for direct `Vec` access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The index as `usize`, for direct `Vec` access.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Role of a node in the data center.
///
/// The distinction matters for routing: traffic must never transit a
/// [`NodeKind::Server`], and several flat-tree invariants are stated per
/// switch layer (e.g. Property 1 of §3.2 is about core switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A host with a single NIC. Only valid as a path endpoint.
    Server,
    /// Top-of-rack / edge switch.
    EdgeSwitch,
    /// Aggregation switch inside a pod.
    AggSwitch,
    /// Core switch connecting pods.
    CoreSwitch,
    /// A switch with no layer assignment (random-graph nodes).
    GenericSwitch,
}

impl NodeKind {
    /// Whether packets may be forwarded *through* this node.
    #[inline]
    pub fn is_transit(self) -> bool {
        !matches!(self, NodeKind::Server)
    }

    /// Whether this node is any kind of switch.
    #[inline]
    pub fn is_switch(self) -> bool {
        self.is_transit()
    }
}

/// Static node metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Role of the node.
    pub kind: NodeKind,
    /// Human-readable label, e.g. `"pod2/edge3"`. Used in error messages and
    /// experiment output only; never in algorithms.
    pub label: String,
}

/// Static link metadata for one direction of a cable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkInfo {
    /// Transmitting endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Capacity in Gbps.
    pub capacity_gbps: f64,
    /// The reverse direction of the same cable, if added via
    /// [`Graph::add_duplex_link`].
    pub reverse: Option<LinkId>,
}

/// A directed multigraph with full-duplex convenience constructors.
///
/// All structures are append-only: removing hardware is modeled by the
/// higher layers as *link state* (see `flowsim`'s failure injection), not by
/// mutating the graph, so that ids stay stable across a topology's lifetime.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkInfo>,
    /// Outgoing adjacency: `out[n]` lists `(neighbor, link)` pairs in
    /// insertion order.
    out: Vec<Vec<(NodeId, LinkId)>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(NodeInfo {
            kind,
            label: label.into(),
        });
        self.out.push(Vec::new());
        id
    }

    /// Adds a single directed link and returns its id.
    pub fn add_directed_link(&mut self, src: NodeId, dst: NodeId, capacity_gbps: f64) -> LinkId {
        assert!(src.idx() < self.nodes.len(), "src out of range");
        assert!(dst.idx() < self.nodes.len(), "dst out of range");
        assert!(src != dst, "self-loops are not meaningful in a network");
        assert!(capacity_gbps > 0.0, "capacity must be positive");
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkInfo {
            src,
            dst,
            capacity_gbps,
            reverse: None,
        });
        self.out[src.idx()].push((dst, id));
        id
    }

    /// Adds a full-duplex cable between `a` and `b` (two directed links of
    /// equal capacity that reference each other). Returns `(a→b, b→a)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_gbps: f64,
    ) -> (LinkId, LinkId) {
        let ab = self.add_directed_link(a, b, capacity_gbps);
        let ba = self.add_directed_link(b, a, capacity_gbps);
        self.links[ab.idx()].reverse = Some(ba);
        self.links[ba.idx()].reverse = Some(ab);
        (ab, ba)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of *directed* links (a duplex cable counts twice).
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node metadata.
    #[inline]
    pub fn node(&self, n: NodeId) -> &NodeInfo {
        &self.nodes[n.idx()]
    }

    /// Link metadata.
    #[inline]
    pub fn link(&self, l: LinkId) -> &LinkInfo {
        &self.links[l.idx()]
    }

    /// Outgoing `(neighbor, link)` pairs of `n` in insertion order.
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.out[n.idx()]
    }

    /// Out-degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.out[n.idx()].len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Iterator over all directed link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// All node ids of a given kind, ascending.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.node(n).kind == kind)
            .collect()
    }

    /// All server node ids, ascending.
    pub fn servers(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::Server)
    }

    /// All switch node ids (every non-server kind), ascending.
    pub fn switches(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.node(n).kind.is_switch())
            .collect()
    }

    /// The switch a server is attached to.
    ///
    /// Returns `None` for non-servers or detached servers. A server in any
    /// valid topology has exactly one uplink (§4.1: "servers have one uplink
    /// only"); this is asserted in debug builds.
    pub fn server_uplink_switch(&self, server: NodeId) -> Option<NodeId> {
        if self.node(server).kind != NodeKind::Server {
            return None;
        }
        let nbrs = self.neighbors(server);
        debug_assert!(nbrs.len() <= 1, "server {server:?} has multiple uplinks");
        nbrs.first().map(|&(sw, _)| sw)
    }

    /// Finds the directed link from `src` to `dst`, if any (first match).
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.out[src.idx()]
            .iter()
            .find(|&&(n, _)| n == dst)
            .map(|&(_, l)| l)
    }

    /// Per-link capacities in Gbps, indexed by `LinkId::idx()`.
    ///
    /// This is the canonical capacity vector every allocation and
    /// simulation layer starts from; build it once per graph instead of
    /// re-collecting link metadata at each call site.
    pub fn capacities(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.capacity_gbps).collect()
    }

    /// Total one-directional capacity in Gbps of all links from `kinds.0`
    /// nodes to `kinds.1` nodes. Useful for oversubscription accounting.
    pub fn capacity_between(&self, from: NodeKind, to: NodeKind) -> f64 {
        self.links
            .iter()
            .filter(|l| self.node(l.src).kind == from && self.node(l.dst).kind == to)
            .map(|l| l.capacity_gbps)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s");
        let e = g.add_node(NodeKind::EdgeSwitch, "e");
        let c = g.add_node(NodeKind::CoreSwitch, "c");
        g.add_duplex_link(s, e, 10.0);
        g.add_duplex_link(e, c, 40.0);
        (g, s, e, c)
    }

    #[test]
    fn duplex_links_reference_each_other() {
        let (g, s, e, _) = tiny();
        let ab = g.find_link(s, e).unwrap();
        let ba = g.find_link(e, s).unwrap();
        assert_eq!(g.link(ab).reverse, Some(ba));
        assert_eq!(g.link(ba).reverse, Some(ab));
        assert_eq!(g.link(ab).capacity_gbps, 10.0);
    }

    #[test]
    fn adjacency_is_in_insertion_order() {
        let (g, _, e, c) = tiny();
        let nbrs: Vec<NodeId> = g.neighbors(e).iter().map(|&(n, _)| n).collect();
        assert_eq!(nbrs, vec![NodeId(0), c]);
    }

    #[test]
    fn server_uplink_lookup() {
        let (g, s, e, c) = tiny();
        assert_eq!(g.server_uplink_switch(s), Some(e));
        assert_eq!(g.server_uplink_switch(c), None);
    }

    #[test]
    fn kinds_and_filters() {
        let (g, s, e, c) = tiny();
        assert_eq!(g.servers(), vec![s]);
        assert_eq!(g.switches(), vec![e, c]);
        assert!(!NodeKind::Server.is_transit());
        assert!(NodeKind::GenericSwitch.is_transit());
    }

    #[test]
    fn capacity_between_kinds() {
        let (g, _, _, _) = tiny();
        assert_eq!(
            g.capacity_between(NodeKind::EdgeSwitch, NodeKind::CoreSwitch),
            40.0
        );
        assert_eq!(
            g.capacity_between(NodeKind::Server, NodeKind::EdgeSwitch),
            10.0
        );
        assert_eq!(
            g.capacity_between(NodeKind::Server, NodeKind::CoreSwitch),
            0.0
        );
    }

    #[test]
    fn capacities_indexed_by_link_id() {
        let (g, s, e, c) = tiny();
        let caps = g.capacities();
        assert_eq!(caps.len(), g.link_count());
        assert_eq!(caps[g.find_link(s, e).unwrap().idx()], 10.0);
        assert_eq!(caps[g.find_link(e, c).unwrap().idx()], 40.0);
        assert_eq!(caps[g.find_link(c, e).unwrap().idx()], 40.0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        g.add_directed_link(a, a, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        g.add_directed_link(a, b, 0.0);
    }
}
