//! Deterministic greedy clustering of links by signature distance.

use crate::signature::LinkSignature;
use netgraph::LinkId;

/// One cluster: the representative population index and its members.
#[derive(Debug, Clone)]
pub struct ClusterInfo {
    /// Index (into the population list) of the representative — always
    /// the first, lowest-link-id member.
    pub rep: usize,
    /// All member population indices, ascending; `members[0] == rep`.
    pub members: Vec<usize>,
}

/// The clustering of a population list.
#[derive(Debug, Clone)]
pub struct Clusters {
    /// Clusters in creation (= first-member) order.
    pub clusters: Vec<ClusterInfo>,
    /// `assign[i]` = index into `clusters` for population `i`.
    pub assign: Vec<usize>,
}

impl Clusters {
    /// Representative population index for population `i`.
    pub fn rep_of(&self, i: usize) -> usize {
        self.clusters[self.assign[i]].rep
    }
}

/// Greedy input-ordered clustering: walk populations in link-id order
/// (the order [`crate::populations`] produces); each joins the first
/// existing cluster whose **representative** is within `threshold`
/// signature distance, else founds a new cluster with itself as
/// representative.
///
/// Comparing against the representative (not the nearest member) keeps
/// the guarantee the proptests pin: every member is within `threshold`
/// of its cluster's representative. `threshold = 0.0` clusters only
/// bucket-identical links; `enabled = false` makes every link a
/// singleton (the exhaustive, clustering-free pipeline).
pub fn cluster(sigs: &[LinkSignature], threshold: f64, enabled: bool) -> Clusters {
    let mut clusters: Vec<ClusterInfo> = Vec::new();
    let mut assign = Vec::with_capacity(sigs.len());
    for (i, sig) in sigs.iter().enumerate() {
        let joined = enabled
            .then(|| {
                clusters
                    .iter()
                    .position(|c| sigs[c.rep].distance(sig) <= threshold)
            })
            .flatten();
        match joined {
            Some(c) => {
                clusters[c].members.push(i);
                assign.push(c);
            }
            None => {
                assign.push(clusters.len());
                clusters.push(ClusterInfo {
                    rep: i,
                    members: vec![i],
                });
            }
        }
    }
    Clusters { clusters, assign }
}

/// Human-facing compression summary: `(loaded links, clusters)`.
pub fn compression(clusters: &Clusters) -> (usize, usize) {
    (clusters.assign.len(), clusters.clusters.len())
}

/// The representative's link id of each cluster, for reporting.
pub fn rep_links(clusters: &Clusters, links: &[LinkId]) -> Vec<LinkId> {
    clusters.clusters.iter().map(|c| links[c.rep]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{LinkPop, PopFlow};
    use crate::signature::signatures;
    use netgraph::{Graph, NodeKind};

    fn parallel_links(n: usize) -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::EdgeSwitch, "a");
        let b = g.add_node(NodeKind::EdgeSwitch, "b");
        for _ in 0..n {
            g.add_directed_link(a, b, 10.0);
        }
        g
    }

    fn pops(specs: &[&[(f64, f64)]]) -> (Graph, Vec<LinkPop>) {
        let g = parallel_links(specs.len());
        let pops = specs
            .iter()
            .enumerate()
            .map(|(l, flows)| LinkPop {
                link: LinkId(l as u32),
                flows: flows
                    .iter()
                    .enumerate()
                    .map(|(i, &(bytes, start))| PopFlow {
                        idx: i,
                        bytes,
                        start,
                        access_gbps: 10.0,
                    })
                    .collect(),
            })
            .collect();
        (g, pops)
    }

    #[test]
    fn identical_links_collapse_to_one_cluster() {
        let flows: &[(f64, f64)] = &[(1e6, 0.0), (4e6, 0.1)];
        let (g, pops) = pops(&[flows, flows, flows, flows]);
        let sigs = signatures(&g, &pops);
        let c = cluster(&sigs, 0.0, true);
        assert_eq!(c.clusters.len(), 1);
        assert_eq!(c.clusters[0].rep, 0);
        assert_eq!(c.clusters[0].members, vec![0, 1, 2, 3]);
        assert_eq!(c.rep_of(3), 0);
    }

    #[test]
    fn disabled_clustering_makes_singletons() {
        let flows: &[(f64, f64)] = &[(1e6, 0.0)];
        let (g, pops) = pops(&[flows, flows, flows]);
        let sigs = signatures(&g, &pops);
        let c = cluster(&sigs, 0.0, false);
        assert_eq!(c.clusters.len(), 3);
        for (i, info) in c.clusters.iter().enumerate() {
            assert_eq!(info.rep, i);
            assert_eq!(info.members, vec![i]);
        }
    }

    #[test]
    fn members_stay_within_threshold_of_representative() {
        let (g, pops) = pops(&[
            &[(1e6, 0.0), (1e6, 0.0)],
            &[(1e6, 0.0), (64e6, 0.0)], // distance 0.5 from the first
            &[(1e6, 0.0), (1e6, 0.0)],
        ]);
        let sigs = signatures(&g, &pops);
        let c = cluster(&sigs, 0.25, true);
        assert_eq!(c.clusters.len(), 2, "0.5 > 0.25 keeps link 1 apart");
        for info in &c.clusters {
            for &m in &info.members {
                assert!(sigs[info.rep].distance(&sigs[m]) <= 0.25);
            }
        }
        // A looser threshold merges everything.
        let c = cluster(&sigs, 0.5, true);
        assert_eq!(c.clusters.len(), 1);
    }
}
