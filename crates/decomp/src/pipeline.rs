//! The decomposition pipeline: populate → sign → cluster → simulate
//! representatives → aggregate.

use crate::cluster::{cluster, Clusters};
use crate::error::DecompError;
use crate::signature::signatures;
use flowsim::{
    EcmpProvider, FailedLinks, FlowRecord, FlowSpec, PathProvider, SimConfig, SimError, SimResult,
    Transport,
};
use netgraph::{Graph, LinkId, NodeKind, PathArena};

/// Gbps → bytes/second (the engine's own conversion).
const GBPS_TO_BPS: f64 = 1e9 / 8.0;

/// One flow as a link sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopFlow {
    /// Index into the input flow list.
    pub idx: usize,
    /// Flow size in bytes.
    pub bytes: f64,
    /// Arrival time in seconds.
    pub start: f64,
    /// Minimum capacity (Gbps) over the *rest* of the flow's path —
    /// the access rate the link-local subnetwork grants this flow.
    pub access_gbps: f64,
}

/// The flow population of one loaded directed link.
#[derive(Debug, Clone)]
pub struct LinkPop {
    /// The link.
    pub link: LinkId,
    /// Crossing flows, in input order.
    pub flows: Vec<PopFlow>,
}

/// Decomposition options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompConfig {
    /// Signature distance threshold for clustering: 0 clusters only
    /// bucket-identical links.
    pub threshold: f64,
    /// `false` disables clustering entirely — every loaded link is its
    /// own singleton cluster and gets its own exact link-local
    /// simulation (the validation-mode pipeline).
    pub clustering: bool,
}

impl Default for DecompConfig {
    fn default() -> Self {
        Self {
            threshold: 0.0,
            clustering: true,
        }
    }
}

/// Tallies of one decomposition run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecompStats {
    /// Input flows.
    pub flows: usize,
    /// Flows the provider could not route (recorded unfinished).
    pub unroutable: usize,
    /// Directed links crossed by at least one flow.
    pub loaded_links: usize,
    /// Clusters formed (= link-local simulations run).
    pub clusters: usize,
    /// Total flows across the representative simulations — the work
    /// the exact engine actually performed.
    pub sim_flows: usize,
}

/// A decomposed run: the aggregated result plus tallies.
#[derive(Debug, Clone)]
pub struct DecompOutcome {
    /// Per-flow records in input order, `finish = start + estimated
    /// FCT`; series is empty and `end_time` is the latest estimated
    /// finish. The type matches the exact engine's so every
    /// [`SimResult`] consumer works unchanged.
    pub result: SimResult,
    /// Run tallies.
    pub stats: DecompStats,
}

fn validate(flows: &[FlowSpec]) -> Result<(), DecompError> {
    for f in flows {
        if !f.start.is_finite() {
            return Err(SimError::NonFiniteStart { flow: f.id }.into());
        }
        if !(f.bytes.is_finite() && f.bytes > 0.0) {
            return Err(SimError::InvalidBytes {
                flow: f.id,
                bytes: f.bytes,
            }
            .into());
        }
        if f.src == f.dst {
            return Err(SimError::SelfFlow {
                flow: f.id,
                node: f.src,
            }
            .into());
        }
    }
    Ok(())
}

/// Each flow's routed path as a directed link sequence (`None` =
/// unroutable), indexed by the flow's position in the input slice.
pub type RoutedPaths = Vec<Option<Vec<LinkId>>>;

/// Routes every flow once (no failures) and buckets it onto each
/// directed link of its path.
///
/// Returns the loaded-link populations in ascending link-id order plus
/// each flow's routed path (`None` = unroutable). The provider must
/// return single-path connections ([`Transport::TcpEcmp`]-style);
/// multi-path routing is a typed error.
pub fn populations<P: PathProvider + ?Sized>(
    g: &Graph,
    flows: &[FlowSpec],
    provider: &mut P,
) -> Result<(Vec<LinkPop>, RoutedPaths), DecompError> {
    validate(flows)?;
    let mut arena = PathArena::new();
    let failed = FailedLinks::new(g.link_count());
    let mut per_link: Vec<Vec<PopFlow>> = vec![Vec::new(); g.link_count()];
    let mut paths: RoutedPaths = Vec::with_capacity(flows.len());
    for (idx, spec) in flows.iter().enumerate() {
        let Some(conn) = provider.route(g, &mut arena, &failed, spec) else {
            paths.push(None);
            continue;
        };
        if conn.path_ids.len() != 1 {
            return Err(DecompError::MultiPathRoute {
                flow: spec.id,
                paths: conn.path_ids.len(),
            });
        }
        let links: Vec<LinkId> = arena.links(conn.path_ids[0]).to_vec();
        for (i, &l) in links.iter().enumerate() {
            // Access capacity: the tightest constraint the rest of the
            // path imposes (the link itself excluded; a single-link
            // path keeps its own capacity).
            let mut access = f64::INFINITY;
            for (j, &o) in links.iter().enumerate() {
                if j != i {
                    access = access.min(g.link(o).capacity_gbps);
                }
            }
            if !access.is_finite() {
                access = g.link(l).capacity_gbps;
            }
            per_link[l.idx()].push(PopFlow {
                idx,
                bytes: spec.bytes,
                start: spec.start,
                access_gbps: access,
            });
        }
        paths.push(Some(links));
    }
    let pops = per_link
        .into_iter()
        .enumerate()
        .filter(|(_, flows)| !flows.is_empty())
        .map(|(l, flows)| LinkPop {
            link: LinkId(l as u32),
            flows,
        })
        .collect();
    Ok((pops, paths))
}

/// Simulates one link's population exactly on the extracted link-local
/// subnetwork: the link itself (capacity `cap_gbps`) between two
/// switches, with a dedicated access leg per flow at that flow's
/// access capacity. Returns each flow's link-local FCT in population
/// order (`None` = never completed, e.g. a zero-capacity link).
pub fn simulate_link_local(cap_gbps: f64, pop: &LinkPop) -> Result<Vec<Option<f64>>, DecompError> {
    let mut g = Graph::new();
    let a = g.add_node(NodeKind::EdgeSwitch, "a");
    let b = g.add_node(NodeKind::EdgeSwitch, "b");
    g.add_directed_link(a, b, cap_gbps);
    let specs: Vec<FlowSpec> = pop
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let s = g.add_node(NodeKind::Server, format!("s{i}"));
            let t = g.add_node(NodeKind::Server, format!("t{i}"));
            g.add_directed_link(s, a, f.access_gbps);
            g.add_directed_link(b, t, f.access_gbps);
            FlowSpec {
                id: i as u64,
                src: s,
                dst: t,
                bytes: f.bytes,
                start: f.start,
            }
        })
        .collect();
    let cfg = SimConfig {
        transport: Transport::TcpEcmp,
        link_failures: Vec::new(),
        record_series: false,
    };
    let res = flowsim::try_simulate(&g, &specs, &cfg)?;
    Ok(res.records.iter().map(FlowRecord::fct).collect())
}

/// A flow's ideal (uncontended) FCT at a link: bytes over the tighter
/// of link capacity and access capacity.
fn ideal_fct(f: &PopFlow, cap_gbps: f64) -> f64 {
    f.bytes / (cap_gbps.min(f.access_gbps) * GBPS_TO_BPS)
}

/// Population order by `(bytes, start, input index)` — the rank space
/// member links are matched to their representative in.
fn rank_order(pop: &LinkPop) -> Vec<usize> {
    let mut order: Vec<usize> = (0..pop.flows.len()).collect();
    order.sort_by(|&x, &y| {
        let (a, b) = (&pop.flows[x], &pop.flows[y]);
        a.bytes
            .total_cmp(&b.bytes)
            .then(a.start.total_cmp(&b.start))
            .then(a.idx.cmp(&b.idx))
    });
    order
}

/// Runs the full decomposition with the default ECMP provider (exactly
/// the paths [`Transport::TcpEcmp`] would use).
pub fn decompose(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &DecompConfig,
) -> Result<DecompOutcome, DecompError> {
    decompose_with_provider(g, flows, cfg, &mut EcmpProvider::new())
}

/// [`decompose`] with a caller-supplied (deterministic, single-path)
/// routing provider.
pub fn decompose_with_provider<P: PathProvider + ?Sized>(
    g: &Graph,
    flows: &[FlowSpec],
    cfg: &DecompConfig,
    provider: &mut P,
) -> Result<DecompOutcome, DecompError> {
    if !(cfg.threshold.is_finite() && cfg.threshold >= 0.0) {
        return Err(DecompError::InvalidThreshold(cfg.threshold));
    }
    let (pops, paths) = populations(g, flows, provider)?;
    let sigs = signatures(g, &pops);
    let clusters: Clusters = cluster(&sigs, cfg.threshold, cfg.clustering);

    // One exact simulation per representative, in cluster order.
    let mut rep_fcts: Vec<Option<Vec<Option<f64>>>> = vec![None; pops.len()];
    let mut sim_flows = 0usize;
    for info in &clusters.clusters {
        let pop = &pops[info.rep];
        sim_flows += pop.flows.len();
        let cap = g.link(pop.link).capacity_gbps;
        rep_fcts[info.rep] = Some(simulate_link_local(cap, pop)?);
    }

    // Per-flow end-to-end estimate: max over the path's per-link
    // estimates; a member link adopts its representative's FCTs by
    // size/start rank, scaled by the ideal-FCT ratio.
    let mut est = vec![0.0f64; flows.len()];
    let mut dead = vec![false; flows.len()];
    for (pi, pop) in pops.iter().enumerate() {
        let rep = clusters.rep_of(pi);
        let Some(fcts) = rep_fcts[rep].as_ref() else {
            // Unreachable by construction: every cluster simulated its
            // representative above. Treat defensively as dead.
            for f in &pop.flows {
                dead[f.idx] = true;
            }
            continue;
        };
        let cap = g.link(pop.link).capacity_gbps;
        if pi == rep {
            for (f, fct) in pop.flows.iter().zip(fcts) {
                match fct {
                    Some(v) if v.is_finite() => est[f.idx] = est[f.idx].max(*v),
                    _ => dead[f.idx] = true,
                }
            }
        } else {
            let rep_pop = &pops[rep];
            let rep_cap = g.link(rep_pop.link).capacity_gbps;
            let member_order = rank_order(pop);
            let rep_order = rank_order(rep_pop);
            for (&mi, &ri) in member_order.iter().zip(&rep_order) {
                let f = &pop.flows[mi];
                let twin = &rep_pop.flows[ri];
                match fcts[ri] {
                    Some(v) => {
                        let scaled = v / ideal_fct(twin, rep_cap) * ideal_fct(f, cap);
                        if scaled.is_finite() {
                            est[f.idx] = est[f.idx].max(scaled);
                        } else {
                            dead[f.idx] = true;
                        }
                    }
                    None => dead[f.idx] = true,
                }
            }
        }
    }

    let mut unroutable = 0usize;
    let mut end_time = 0.0f64;
    let records: Vec<FlowRecord> = flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let finish = match &paths[i] {
                None => {
                    unroutable += 1;
                    None
                }
                Some(_) if dead[i] => None,
                Some(_) => {
                    let t = f.start + est[i];
                    end_time = end_time.max(t);
                    Some(t)
                }
            };
            FlowRecord {
                id: f.id,
                start: f.start,
                finish,
                bytes: f.bytes,
            }
        })
        .collect();

    Ok(DecompOutcome {
        result: SimResult {
            records,
            series: Vec::new(),
            end_time,
        },
        stats: DecompStats {
            flows: flows.len(),
            unroutable,
            loaded_links: pops.len(),
            clusters: clusters.clusters.len(),
            sim_flows,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeId;

    /// Dumbbell: `n` servers per rack, dedicated uplinks, one shared
    /// core cable — the canonical first-order-closed topology.
    fn dumbbell(n: usize) -> (Graph, Vec<NodeId>, Vec<NodeId>) {
        let mut g = Graph::new();
        let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
        g.add_duplex_link(e0, e1, 10.0);
        let mut left = Vec::new();
        let mut right = Vec::new();
        for i in 0..n {
            let s = g.add_node(NodeKind::Server, format!("l{i}"));
            g.add_duplex_link(s, e0, 10.0);
            left.push(s);
            let t = g.add_node(NodeKind::Server, format!("r{i}"));
            g.add_duplex_link(t, e1, 10.0);
            right.push(t);
        }
        (g, left, right)
    }

    fn cross_flows(left: &[NodeId], right: &[NodeId], bytes: f64) -> Vec<FlowSpec> {
        left.iter()
            .zip(right)
            .enumerate()
            .map(|(i, (&s, &t))| FlowSpec {
                id: i as u64,
                src: s,
                dst: t,
                bytes,
                start: 0.0,
            })
            .collect()
    }

    #[test]
    fn single_flow_matches_exact_engine() {
        let (g, l, r) = dumbbell(1);
        let flows = cross_flows(&l, &r, 1.25e9);
        let out = decompose(&g, &flows, &DecompConfig::default()).expect("valid");
        let fct = out.result.records[0].fct().expect("completes");
        assert!((fct - 1.0).abs() < 1e-9, "fct = {fct}");
        assert_eq!(out.stats.unroutable, 0);
        assert_eq!(out.stats.flows, 1);
        // Path has 3 links; all loaded.
        assert_eq!(out.stats.loaded_links, 3);
    }

    #[test]
    fn shared_bottleneck_matches_exact_engine() {
        let (g, l, r) = dumbbell(4);
        let flows = cross_flows(&l, &r, 0.625e9);
        let cfg = SimConfig {
            transport: Transport::TcpEcmp,
            link_failures: Vec::new(),
            record_series: false,
        };
        let exact = flowsim::simulate(&g, &flows, &cfg);
        for clustering in [false, true] {
            let out = decompose(
                &g,
                &flows,
                &DecompConfig {
                    threshold: 0.0,
                    clustering,
                },
            )
            .expect("valid");
            for (a, b) in out.result.records.iter().zip(&exact.records) {
                let (fa, fb) = (a.fct().expect("done"), b.fct().expect("done"));
                assert!(
                    (fa - fb).abs() < 1e-9,
                    "clustering={clustering}: {fa} vs {fb}"
                );
            }
        }
    }

    #[test]
    fn clustering_collapses_symmetric_uplinks() {
        let (g, l, r) = dumbbell(8);
        let flows = cross_flows(&l, &r, 1e8);
        let out = decompose(&g, &flows, &DecompConfig::default()).expect("valid");
        // 8 uplinks + 8 downlinks + 1 core direction loaded; the 16
        // identical access links collapse into clusters.
        assert_eq!(out.stats.loaded_links, 17);
        assert!(
            out.stats.clusters < out.stats.loaded_links,
            "{} clusters",
            out.stats.clusters
        );
        assert!(out.stats.sim_flows < 8 * 3);
    }

    #[test]
    fn unroutable_flows_are_recorded_unfinished() {
        let mut g = Graph::new();
        let e = g.add_node(NodeKind::EdgeSwitch, "e");
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, e, 10.0);
        // t is attached but unreachable from s (no link toward t).
        g.add_directed_link(t, e, 10.0);
        let flows = vec![FlowSpec {
            id: 9,
            src: s,
            dst: t,
            bytes: 1e6,
            start: 0.0,
        }];
        let out = decompose(&g, &flows, &DecompConfig::default()).expect("valid");
        assert_eq!(out.result.records[0].finish, None);
        assert_eq!(out.stats.unroutable, 1);
    }

    #[test]
    fn rejects_bad_inputs_with_typed_errors() {
        let (g, l, r) = dumbbell(1);
        let mut bad = cross_flows(&l, &r, 1e6);
        bad[0].bytes = 0.0;
        assert!(matches!(
            decompose(&g, &bad, &DecompConfig::default()),
            Err(DecompError::Sim(SimError::InvalidBytes { .. }))
        ));
        let flows = cross_flows(&l, &r, 1e6);
        let nan_threshold = DecompConfig {
            threshold: f64::NAN,
            clustering: true,
        };
        assert!(matches!(
            decompose(&g, &flows, &nan_threshold),
            Err(DecompError::InvalidThreshold(_))
        ));
        // Two disjoint core paths so MPTCP actually opens 2 subflows.
        let mut g2 = Graph::new();
        let s = g2.add_node(NodeKind::Server, "s");
        let t = g2.add_node(NodeKind::Server, "t");
        let e0 = g2.add_node(NodeKind::EdgeSwitch, "e0");
        let e1 = g2.add_node(NodeKind::EdgeSwitch, "e1");
        let c0 = g2.add_node(NodeKind::CoreSwitch, "c0");
        let c1 = g2.add_node(NodeKind::CoreSwitch, "c1");
        g2.add_duplex_link(s, e0, 10.0);
        g2.add_duplex_link(t, e1, 10.0);
        for c in [c0, c1] {
            g2.add_duplex_link(e0, c, 10.0);
            g2.add_duplex_link(c, e1, 10.0);
        }
        let two = vec![FlowSpec {
            id: 0,
            src: s,
            dst: t,
            bytes: 1e6,
            start: 0.0,
        }];
        let mut mptcp = flowsim::MptcpProvider::new(2, true);
        let multi = decompose_with_provider(&g2, &two, &DecompConfig::default(), &mut mptcp);
        assert!(matches!(multi, Err(DecompError::MultiPathRoute { .. })));
    }

    #[test]
    fn two_runs_are_bit_identical() {
        let (g, l, r) = dumbbell(6);
        let mut flows = cross_flows(&l, &r, 2.5e7);
        for (i, f) in flows.iter_mut().enumerate() {
            f.start = i as f64 * 1e-3;
            f.bytes *= 1.0 + i as f64 * 0.1;
        }
        let a = decompose(&g, &flows, &DecompConfig::default()).expect("valid");
        let b = decompose(&g, &flows, &DecompConfig::default()).expect("valid");
        assert_eq!(a.result.records, b.result.records);
        assert_eq!(a.result.end_time.to_bits(), b.result.end_time.to_bits());
        assert_eq!(a.stats, b.stats);
    }
}
