//! Per-link flow signatures and the distance that drives clustering.
//!
//! A signature captures what a link-local simulation depends on: how
//! many flows cross the link, the link's capacity, where the link sits
//! in the topology (endpoint node kinds — a server uplink, an
//! edge→agg hop, an agg→core hop all cluster separately), and the
//! *shape* of the crossing population — flow sizes and start times
//! bucketed at exactly [`obs::Histogram`] resolution (16 sub-buckets
//! per power of two, <= 6.25% relative width).
//!
//! Two links at distance 0 have the same flow count, capacity,
//! position, and bucket-identical size/start populations, so their
//! link-local simulations agree to within one histogram bucket per
//! flow — that is the clustering contract the proptests pin.

use crate::pipeline::LinkPop;
use netgraph::{Graph, NodeKind};
use obs::Histogram;

/// Sorted sparse bucket counts: `(bucket index, samples in bucket)`.
type Buckets = Vec<(usize, u64)>;

/// The deterministic flow-signature of one loaded directed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSignature {
    /// Number of flows crossing the link.
    pub count: u64,
    /// Link capacity, compared bit-exactly.
    pub capacity_bits: u64,
    /// Endpoint node kinds `(src, dst)` — the link's level/mode
    /// position. Links at different levels never cluster.
    pub ends: (NodeKind, NodeKind),
    /// Flow sizes (bytes) at histogram bucket resolution.
    pub size_buckets: Buckets,
    /// Flow start times (seconds) at histogram bucket resolution.
    pub start_buckets: Buckets,
}

fn bucketize(values: impl Iterator<Item = f64>) -> Buckets {
    let mut out: Buckets = Vec::new();
    for v in values {
        let b = Histogram::bucket_index(v);
        // Populations are small and bucket indices arrive near-sorted;
        // a sorted-vec insert keeps the representation canonical
        // without hash-map iteration.
        match out.binary_search_by_key(&b, |&(i, _)| i) {
            Ok(pos) => out[pos].1 += 1,
            Err(pos) => out.insert(pos, (b, 1)),
        }
    }
    out
}

/// L1 distance between two sorted sparse bucket vectors, normalized by
/// the total mass so the result is in `[0, 1]` (0 = identical buckets,
/// 1 = disjoint).
fn bucket_l1(a: &Buckets, b: &Buckets, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut diff = 0u64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(ia, ca)), Some(&(ib, cb))) if ia == ib => {
                diff += ca.abs_diff(cb);
                i += 1;
                j += 1;
            }
            (Some(&(ia, ca)), Some(&(ib, _))) if ia < ib => {
                diff += ca;
                i += 1;
            }
            (Some(_), Some(&(_, cb))) => {
                diff += cb;
                j += 1;
            }
            (Some(&(_, ca)), None) => {
                diff += ca;
                i += 1;
            }
            (None, Some(&(_, cb))) => {
                diff += cb;
                j += 1;
            }
            (None, None) => break,
        }
    }
    diff as f64 / (2 * total) as f64
}

impl LinkSignature {
    /// Builds the signature of one populated link.
    pub fn of(g: &Graph, pop: &LinkPop) -> Self {
        let info = g.link(pop.link);
        Self {
            count: pop.flows.len() as u64,
            capacity_bits: info.capacity_gbps.to_bits(),
            ends: (g.node(info.src).kind, g.node(info.dst).kind),
            size_buckets: bucketize(pop.flows.iter().map(|f| f.bytes)),
            start_buckets: bucketize(pop.flows.iter().map(|f| f.start)),
        }
    }

    /// Distance to another signature.
    ///
    /// Infinite when the flow count, capacity, or topology position
    /// differ (such links never cluster — the representative's
    /// simulation could not stand in). Otherwise the **maximum** of the
    /// normalized size-bucket and start-bucket L1 distances, in
    /// `[0, 1]`: 0 means bucket-identical populations.
    pub fn distance(&self, other: &Self) -> f64 {
        if self.count != other.count
            || self.capacity_bits != other.capacity_bits
            || self.ends != other.ends
        {
            return f64::INFINITY;
        }
        let sizes = bucket_l1(&self.size_buckets, &other.size_buckets, self.count);
        let starts = bucket_l1(&self.start_buckets, &other.start_buckets, self.count);
        sizes.max(starts)
    }
}

/// Signatures for every population, in population order.
pub fn signatures(g: &Graph, pops: &[LinkPop]) -> Vec<LinkSignature> {
    pops.iter().map(|p| LinkSignature::of(g, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PopFlow;
    use netgraph::LinkId;

    fn pop(link: u32, flows: &[(f64, f64)]) -> LinkPop {
        LinkPop {
            link: LinkId(link),
            flows: flows
                .iter()
                .enumerate()
                .map(|(i, &(bytes, start))| PopFlow {
                    idx: i,
                    bytes,
                    start,
                    access_gbps: 10.0,
                })
                .collect(),
        }
    }

    fn graph_two_parallel() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::EdgeSwitch, "a");
        let b = g.add_node(NodeKind::EdgeSwitch, "b");
        g.add_directed_link(a, b, 10.0); // LinkId(0)
        g.add_directed_link(a, b, 10.0); // LinkId(1)
        g.add_directed_link(a, b, 40.0); // LinkId(2): different capacity
        g
    }

    #[test]
    fn identical_populations_are_at_distance_zero() {
        let g = graph_two_parallel();
        let flows = [(1e6, 0.0), (2e6, 0.5)];
        let sa = LinkSignature::of(&g, &pop(0, &flows));
        let sb = LinkSignature::of(&g, &pop(1, &flows));
        assert_eq!(sa.distance(&sb), 0.0);
        assert_eq!(sa.distance(&sa), 0.0);
    }

    #[test]
    fn count_capacity_and_position_gate_clustering() {
        let g = graph_two_parallel();
        let sa = LinkSignature::of(&g, &pop(0, &[(1e6, 0.0)]));
        // Different count.
        let sb = LinkSignature::of(&g, &pop(1, &[(1e6, 0.0), (1e6, 0.0)]));
        assert_eq!(sa.distance(&sb), f64::INFINITY);
        // Different capacity.
        let sc = LinkSignature::of(&g, &pop(2, &[(1e6, 0.0)]));
        assert_eq!(sa.distance(&sc), f64::INFINITY);
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let g = graph_two_parallel();
        let sa = LinkSignature::of(&g, &pop(0, &[(1e6, 0.0), (1e6, 0.0)]));
        let sb = LinkSignature::of(&g, &pop(1, &[(1e6, 0.0), (64e6, 0.0)]));
        let d = sa.distance(&sb);
        assert!(d > 0.0 && d <= 1.0, "{d}");
        assert_eq!(d.to_bits(), sb.distance(&sa).to_bits());
        // Half the population moved buckets: L1 mass 2 of 4 halves.
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bucket_resolution_matches_obs_histogram() {
        // Two sizes inside one histogram bucket are indistinguishable;
        // sizes a bucket apart are not.
        let g = graph_two_parallel();
        let base = 1e6;
        let same_bucket = base * 1.001; // < 6.25% apart
        let sa = LinkSignature::of(&g, &pop(0, &[(base, 0.0)]));
        let sb = LinkSignature::of(&g, &pop(1, &[(same_bucket, 0.0)]));
        assert_eq!(
            Histogram::bucket_index(base),
            Histogram::bucket_index(same_bucket)
        );
        assert_eq!(sa.distance(&sb), 0.0);
        let sc = LinkSignature::of(&g, &pop(1, &[(base * 2.0, 0.0)]));
        assert!(sa.distance(&sc) > 0.0);
    }
}
