//! FCT-distribution distances used to validate the approximation.

/// Quantile of a **sorted ascending** sample at `q` in `[0, 1)` (lower
/// order statistic — no interpolation, so the value is always a real
/// sample).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let i = ((q * sorted.len() as f64) as usize).min(sorted.len() - 1);
    sorted[i]
}

/// Wasserstein-1 distance between two empirical distributions given as
/// **sorted ascending** samples, evaluated on a shared quantile grid of
/// `max(|a|, |b|)` points. For equal-length inputs this is exactly the
/// mean absolute difference of order statistics. Returns 0 when both
/// are empty and infinity when exactly one is.
pub fn w1(a: &[f64], b: &[f64]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        (false, false) => {}
    }
    let n = a.len().max(b.len());
    let mut sum = 0.0;
    for j in 0..n {
        let q = (j as f64 + 0.5) / n as f64;
        sum += (quantile(a, q) - quantile(b, q)).abs();
    }
    sum / n as f64
}

/// Maximum relative quantile error between two **sorted ascending**
/// samples on the same grid as [`w1`]: `max_q |A(q) - B(q)| / B(q)`,
/// with `b` as the reference. Quantiles of `b` below `eps` are compared
/// absolutely against `eps` to keep tiny FCTs from exploding the ratio.
/// Returns 0 when both are empty and infinity when exactly one is.
pub fn max_quantile_rel(a: &[f64], b: &[f64], eps: f64) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        (false, false) => {}
    }
    let n = a.len().max(b.len());
    let mut worst = 0.0f64;
    for j in 0..n {
        let q = (j as f64 + 0.5) / n as f64;
        let (qa, qb) = (quantile(a, q), quantile(b, q));
        let rel = (qa - qb).abs() / qb.abs().max(eps);
        worst = worst.max(rel);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_are_at_zero() {
        let v = [0.5, 1.0, 2.0, 4.0];
        assert_eq!(w1(&v, &v), 0.0);
        assert_eq!(max_quantile_rel(&v, &v, 1e-9), 0.0);
    }

    #[test]
    fn constant_shift_is_the_shift() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [1.5, 2.5, 3.5, 4.5];
        assert!((w1(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unequal_lengths_use_the_finer_grid() {
        let a = [1.0, 1.0, 1.0, 1.0];
        let b = [1.0, 1.0];
        assert_eq!(w1(&a, &b), 0.0);
        let c = [2.0];
        assert!((w1(&a, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empties_are_pinned() {
        assert_eq!(w1(&[], &[]), 0.0);
        assert_eq!(w1(&[1.0], &[]), f64::INFINITY);
        assert_eq!(max_quantile_rel(&[], &[1.0], 1e-9), f64::INFINITY);
    }

    #[test]
    fn max_quantile_guards_tiny_references() {
        let a = [1e-12];
        let b = [2e-12];
        // Absolute comparison against eps, not a 2x relative blowup.
        assert!(max_quantile_rel(&a, &b, 1e-9) < 1e-2);
    }
}
