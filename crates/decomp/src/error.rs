//! Typed errors of the decomposition pipeline.

use flowsim::SimError;

/// Everything that can go wrong while decomposing a workload.
#[derive(Debug)]
pub enum DecompError {
    /// The workload failed the same validation the exact engine runs
    /// (non-finite start, non-positive bytes, self-flow).
    Sim(SimError),
    /// The routing provider returned a multi-path connection; the
    /// decomposition is defined for single-path transports only.
    MultiPathRoute {
        /// The offending flow's id.
        flow: u64,
        /// How many subflow paths the provider returned.
        paths: usize,
    },
    /// The clustering threshold was not a finite, non-negative number.
    InvalidThreshold(f64),
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sim(e) => write!(f, "invalid workload: {e}"),
            Self::MultiPathRoute { flow, paths } => write!(
                f,
                "flow {flow} routed over {paths} paths; decomposition needs single-path transport"
            ),
            Self::InvalidThreshold(t) => {
                write!(f, "clustering threshold must be finite and >= 0, got {t}")
            }
        }
    }
}

impl std::error::Error for DecompError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for DecompError {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}
