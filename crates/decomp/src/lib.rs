//! Parsimon-style decomposed simulation: per-link flow populations,
//! link clustering by flow signature, one exact simulation per cluster
//! representative, and FCT aggregation back to the full topology.
//!
//! The exact engine (`flowsim`) re-solves a *global* max-min allocation
//! at every event, which caps the topologies the repo can evaluate at a
//! few thousand servers. This crate trades second-order congestion
//! coupling for locality, after Parsimon (NSDI '23):
//!
//! 1. **Decompose** ([`populations`]): route every flow once (any
//!    single-path [`flowsim::PathProvider`]; the default is the same
//!    ECMP provider `Transport::TcpEcmp` wires) and bucket flows onto
//!    each directed link their path crosses.
//! 2. **Sign** ([`signatures`]): per loaded link, a deterministic
//!    [`LinkSignature`] — flow count, link capacity, endpoint node
//!    kinds (the link's mode/level position), and size / start-time
//!    histograms at [`obs::Histogram`] bucket resolution.
//! 3. **Cluster** ([`cluster()`]): greedy, input-ordered grouping of
//!    links whose signature distance stays within a threshold; the
//!    representative is the first (lowest-id) link of each cluster.
//!    Flat-tree's uniform modes make links highly symmetric, so
//!    thousands of links collapse to a handful of clusters.
//! 4. **Simulate** ([`simulate_link_local`]): only each representative,
//!    with the exact engine, on an extracted link-local subnetwork —
//!    the link itself plus one access leg per crossing flow whose
//!    capacity is the minimum capacity of the rest of that flow's path.
//! 5. **Aggregate** ([`decompose`]): a member link adopts its
//!    representative's per-flow link FCTs by size/start rank matching,
//!    scaled by ideal-FCT ratio; a flow's end-to-end FCT estimate is
//!    the **max** of its per-link estimates.
//!
//! # Error bound
//!
//! Each link-local simulation captures all contention *on that link*
//! but none between two flows that only meet elsewhere, so per-link
//! FCTs are lower bounds and the max is an optimistic estimate. When
//! the workload is **first-order closed** — every pair of flows that
//! ever share a link also share one common bottleneck link, and no
//! flow's rate is ever limited below its access capacity anywhere else
//! — the bottleneck's link-local simulation replays the global
//! schedule exactly and the estimate is *exact* (pinned by the
//! singleton-cluster gates in `tests/`). General workloads carry a
//! W1 / max-quantile distribution error measured by [`w1`] /
//! [`max_quantile_rel`]; the documented bound on mid-size fat-trees —
//! W1 within 10% of the exact mean FCT, every quantile within 55%
//! relative — is asserted in `tests/validation.rs` (a k=16 permutation
//! measures 3.3% and 50%).
//!
//! # Determinism
//!
//! Every stage is input-ordered: flows are processed in spec order,
//! links in id order, clusters in creation order, and rank matching
//! breaks ties by input index. No wall clock, no hashing-dependent
//! iteration, no RNG — two runs over the same inputs are byte-identical.

pub mod cluster;
pub mod distance;
pub mod error;
pub mod pipeline;
pub mod signature;

pub use cluster::{cluster, ClusterInfo, Clusters};
pub use distance::{max_quantile_rel, w1};
pub use error::DecompError;
pub use pipeline::{
    decompose, decompose_with_provider, populations, simulate_link_local, DecompConfig,
    DecompOutcome, DecompStats, LinkPop, PopFlow, RoutedPaths,
};
pub use signature::{signatures, LinkSignature};
