//! Validation of the decomposed pipeline against the exact engine.
//!
//! Two regimes, mirroring the crate docs:
//!
//! * **First-order closed** workloads (every pair of interacting flows
//!   shares a common bottleneck and nothing else binds): the
//!   decomposition is *exact*, gated at 1e-9 relative — these are the
//!   `singleton_exact_*` tests CI runs as the singleton==exact gate.
//! * **General** workloads (ECMP collisions introduce second-order
//!   contention the link-local view cannot see): gated by an explicit
//!   FCT-distribution distance bound — W1 within 10% of the exact mean
//!   FCT and every quantile within 55% relative, on a k=16 fat-tree
//!   permutation (measured: 3.3% and 50% — the tail error is a flow
//!   crossing two successive bottlenecks, the known lower-bound case).
//!   The bounds are the documented contract, not a tautology: re-run
//!   with `--nocapture` to see the measured values.

use decomp::{decompose, w1, DecompConfig};
use flowsim::{FlowSpec, SimConfig, SimResult, Transport};
use topology::{fat_tree, DcNetwork};

fn specs(net: &DcNetwork, pairs: &[(usize, usize)], bytes: f64) -> Vec<FlowSpec> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| FlowSpec {
            id: i as u64,
            src: net.servers[s],
            dst: net.servers[d],
            bytes,
            start: 0.0,
        })
        .collect()
}

fn exact(net: &DcNetwork, flows: &[FlowSpec]) -> SimResult {
    let cfg = SimConfig {
        transport: Transport::TcpEcmp,
        link_failures: Vec::new(),
        record_series: false,
    };
    flowsim::simulate(&net.graph, flows, &cfg)
}

fn sorted_fcts(r: &SimResult) -> Vec<f64> {
    let mut v: Vec<f64> = r.records.iter().filter_map(|rec| rec.fct()).collect();
    v.sort_by(f64::total_cmp);
    v
}

/// Incast into one server of a k=4 fat-tree: all eight cross-pod
/// senders share the destination's access link as their common
/// bottleneck (1.25 Gbps fair share), and every other hop grants at
/// least 2.5 Gbps — first-order closed, so the decomposition must
/// reproduce the exact engine bit-for-bit modulo float noise, with and
/// without clustering.
#[test]
fn singleton_exact_incast() {
    let net = fat_tree(4).build().net;
    let pairs: Vec<(usize, usize)> = (8..16).map(|s| (s, 0)).collect();
    let flows = specs(&net, &pairs, 1.25e8);
    let exact = exact(&net, &flows);
    for clustering in [false, true] {
        let cfg = DecompConfig {
            threshold: 0.0,
            clustering,
        };
        let out = decompose(&net.graph, &flows, &cfg).expect("valid workload");
        assert_eq!(out.stats.unroutable, 0);
        for (a, b) in out.result.records.iter().zip(&exact.records) {
            let fa = a.fct().expect("decomposed flow completes");
            let fb = b.fct().expect("exact flow completes");
            assert!(
                (fa - fb).abs() / fb <= 1e-9,
                "clustering={clustering} flow {}: decomposed {fa} vs exact {fb}",
                a.id
            );
        }
        if clustering {
            assert!(
                out.stats.clusters < out.stats.loaded_links,
                "symmetric incast legs should cluster: {} of {}",
                out.stats.clusters,
                out.stats.loaded_links
            );
        }
    }
}

/// Rack-local permutation: each flow owns both of its links outright,
/// so every cluster is a singleton population shape and the exact
/// engine is reproduced at machine precision.
#[test]
fn singleton_exact_rack_local() {
    let net = fat_tree(4).build().net;
    // Servers 0/1 share a rack in the k=4 build (2 per edge).
    let pairs = vec![(0, 1), (1, 0), (2, 3), (3, 2)];
    let flows = specs(&net, &pairs, 2.5e8);
    let exact = exact(&net, &flows);
    let out = decompose(&net.graph, &flows, &DecompConfig::default()).expect("valid workload");
    for (a, b) in out.result.records.iter().zip(&exact.records) {
        let fa = a.fct().expect("decomposed flow completes");
        let fb = b.fct().expect("exact flow completes");
        assert!((fa - fb).abs() / fb <= 1e-9, "{fa} vs {fb}");
    }
}

/// The documented general-workload bound on a mid-size topology: k=16
/// fat-tree (1024 servers), seeded permutation. ECMP hash collisions
/// give real second-order contention, so this pins the approximation
/// quality, not exactness.
#[test]
fn k16_permutation_within_documented_bound() {
    let net = fat_tree(16).build().net;
    let pairs = traffic::patterns::permutation(net.num_servers(), 7);
    let flows = specs(&net, &pairs, 1e7);
    let exact = exact(&net, &flows);
    let out = decompose(&net.graph, &flows, &DecompConfig::default()).expect("valid workload");

    let ef = sorted_fcts(&exact);
    let df = sorted_fcts(&out.result);
    assert_eq!(ef.len(), flows.len(), "exact run completes every flow");
    assert_eq!(df.len(), flows.len(), "decomposed run completes every flow");

    let mean = ef.iter().sum::<f64>() / ef.len() as f64;
    let dist = w1(&df, &ef);
    println!(
        "k16 permutation: W1 = {dist:.3e}, exact mean = {mean:.3e}, ratio = {:.4}",
        dist / mean
    );
    assert!(
        dist <= 0.10 * mean,
        "W1 {dist:.3e} exceeds 10% of exact mean FCT {mean:.3e}"
    );

    let worst = decomp::max_quantile_rel(&df, &ef, 1e-9);
    println!("k16 permutation: max quantile rel err = {worst:.4}");
    assert!(worst <= 0.55, "max quantile error {worst:.4} exceeds 55%");

    // The decomposition must be dramatically cheaper than exact: far
    // fewer simulated flows than the sum of per-link populations.
    assert!(
        out.stats.clusters * 20 < out.stats.loaded_links,
        "k=16 permutation should compress >20x: {} clusters over {} links",
        out.stats.clusters,
        out.stats.loaded_links
    );
}

/// Two decomposed runs of the same seeded workload are byte-identical
/// — stats, record order, and every finish time bit-for-bit.
#[test]
fn decomposed_run_is_deterministic() {
    let net = fat_tree(8).build().net;
    let pairs = traffic::patterns::permutation(net.num_servers(), 11);
    let flows = specs(&net, &pairs, 4e6);
    let a = decompose(&net.graph, &flows, &DecompConfig::default()).expect("valid workload");
    let b = decompose(&net.graph, &flows, &DecompConfig::default()).expect("valid workload");
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.result.records.len(), b.result.records.len());
    for (x, y) in a.result.records.iter().zip(&b.result.records) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.start.to_bits(), y.start.to_bits());
        assert_eq!(
            x.finish.map(f64::to_bits),
            y.finish.map(f64::to_bits),
            "flow {}",
            x.id
        );
    }
}
