//! Property tests for clustering soundness and the decomposition's
//! accuracy contract.

use decomp::{cluster, decompose, signatures, DecompConfig, LinkPop, PopFlow};
use flowsim::{FlowSpec, SimConfig, Transport};
use netgraph::{Graph, LinkId, NodeId, NodeKind};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// `n` parallel 10G links between two switches, each carrying a random
/// population drawn from `seed`.
fn random_pops(n_links: usize, seed: u64) -> (Graph, Vec<LinkPop>) {
    let mut g = Graph::new();
    let a = g.add_node(NodeKind::EdgeSwitch, "a");
    let b = g.add_node(NodeKind::EdgeSwitch, "b");
    for _ in 0..n_links {
        g.add_directed_link(a, b, 10.0);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pops = (0..n_links)
        .map(|l| {
            let n_flows = rng.gen_range(1..6);
            LinkPop {
                link: LinkId(l as u32),
                flows: (0..n_flows)
                    .map(|i| PopFlow {
                        idx: i,
                        bytes: rng.gen_range(1e4..1e9),
                        start: rng.gen_range(0.0..1.0),
                        access_gbps: 10.0,
                    })
                    .collect(),
            }
        })
        .collect();
    (g, pops)
}

/// Dumbbell with one dedicated 10G access link per server on each side
/// and a single shared 10G core link: the canonical first-order-closed
/// topology, where the decomposition must be exact.
fn dumbbell(n: usize) -> (Graph, Vec<NodeId>, Vec<NodeId>) {
    let mut g = Graph::new();
    let e0 = g.add_node(NodeKind::EdgeSwitch, "e0");
    let e1 = g.add_node(NodeKind::EdgeSwitch, "e1");
    g.add_duplex_link(e0, e1, 10.0);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..n {
        let s = g.add_node(NodeKind::Server, format!("l{i}"));
        g.add_duplex_link(s, e0, 10.0);
        left.push(s);
        let t = g.add_node(NodeKind::Server, format!("r{i}"));
        g.add_duplex_link(t, e1, 10.0);
        right.push(t);
    }
    (g, left, right)
}

fn exact_cfg() -> SimConfig {
    SimConfig {
        transport: Transport::TcpEcmp,
        link_failures: Vec::new(),
        record_series: false,
    }
}

fn sorted_fcts(r: &flowsim::SimResult) -> Vec<f64> {
    let mut v: Vec<f64> = r.records.iter().filter_map(|rec| rec.fct()).collect();
    v.sort_by(f64::total_cmp);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Clustering soundness: every member is within the threshold of
    /// its cluster's representative, the representative is the first
    /// member, and the assignment partitions the population list.
    #[test]
    fn members_stay_within_threshold_of_representative(
        n_links in 1usize..24,
        seed in any::<u64>(),
        threshold in 0.0f64..1.0,
    ) {
        let (g, pops) = random_pops(n_links, seed);
        let sigs = signatures(&g, &pops);
        let c = cluster(&sigs, threshold, true);
        prop_assert_eq!(c.assign.len(), n_links);
        let mut seen = vec![false; n_links];
        for (ci, info) in c.clusters.iter().enumerate() {
            prop_assert_eq!(info.members[0], info.rep);
            for &m in &info.members {
                prop_assert!(!seen[m], "population {} in two clusters", m);
                seen[m] = true;
                prop_assert_eq!(c.assign[m], ci);
                let d = sigs[info.rep].distance(&sigs[m]);
                prop_assert!(
                    d <= threshold,
                    "member {} at distance {} > threshold {}", m, d, threshold
                );
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "some population unassigned");
        // Disabled clustering always yields singletons.
        let single = cluster(&sigs, threshold, false);
        prop_assert_eq!(single.clusters.len(), n_links);
    }

    /// First-order-closed exactness: on a dumbbell (single shared
    /// bottleneck, dedicated access legs) every cluster representative
    /// replays the global schedule, so random sizes and staggered
    /// starts still reproduce the exact engine to float precision —
    /// with clustering on and off.
    #[test]
    fn singleton_exact_on_shared_bottleneck(
        n_flows in 1usize..8,
        seed in any::<u64>(),
        clustering in prop::bool::ANY,
    ) {
        let (g, left, right) = dumbbell(n_flows);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|i| FlowSpec {
                id: i as u64,
                src: left[i],
                dst: right[i],
                bytes: rng.gen_range(1e5..5e8),
                start: rng.gen_range(0.0..0.2),
            })
            .collect();
        let exact = flowsim::simulate(&g, &flows, &exact_cfg());
        let cfg = DecompConfig { threshold: 0.0, clustering };
        let out = decompose(&g, &flows, &cfg).expect("valid workload");
        for (a, b) in out.result.records.iter().zip(&exact.records) {
            let fa = a.fct();
            let fb = b.fct();
            prop_assert!(fa.is_some() && fb.is_some(), "flow {} unfinished", a.id);
            let (fa, fb) = (fa.unwrap_or(0.0), fb.unwrap_or(0.0));
            prop_assert!(
                (fa - fb).abs() / fb <= 1e-6,
                "flow {}: decomposed {} vs exact {}", a.id, fa, fb
            );
        }
    }

    /// General-workload accuracy contract: on a k=4 fat-tree with
    /// random simultaneous flows, the decomposed FCT distribution stays
    /// within W1 <= 50% of the exact mean FCT (the documented worst
    /// case; symmetric workloads measure far lower — see
    /// `tests/validation.rs`), and every flow completes.
    #[test]
    fn decomposed_distribution_within_documented_bound(
        n_flows in 2usize..20,
        seed in any::<u64>(),
    ) {
        let net = topology::fat_tree(4).build().net;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n_servers = net.servers.len();
        let flows: Vec<FlowSpec> = (0..n_flows)
            .map(|i| {
                let s = rng.gen_range(0..n_servers);
                let mut d = rng.gen_range(0..n_servers);
                while d == s {
                    d = rng.gen_range(0..n_servers);
                }
                FlowSpec {
                    id: i as u64,
                    src: net.servers[s],
                    dst: net.servers[d],
                    bytes: rng.gen_range(1e5..1e8),
                    start: 0.0,
                }
            })
            .collect();
        let exact = flowsim::simulate(&net.graph, &flows, &exact_cfg());
        let out = decompose(&net.graph, &flows, &DecompConfig::default())
            .expect("valid workload");
        let ef = sorted_fcts(&exact);
        let df = sorted_fcts(&out.result);
        prop_assert_eq!(ef.len(), n_flows);
        prop_assert_eq!(df.len(), n_flows);
        let mean = ef.iter().sum::<f64>() / ef.len() as f64;
        let dist = decomp::w1(&df, &ef);
        prop_assert!(
            dist <= 0.5 * mean,
            "W1 {} exceeds 50% of exact mean FCT {}", dist, mean
        );
    }
}
