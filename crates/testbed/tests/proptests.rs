//! Property tests for the testbed experiments.

use flat_tree::PodMode;
use proptest::prelude::*;
use testbed::iperf::{counterpart_pairs, steady_state_gbps_with_k};
use testbed::TestbedRig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The counterpart pattern is symmetric: (a, b) appears iff (b, a)
    /// does, and every server sends exactly pods-1 flows.
    #[test]
    fn counterpart_symmetry(pods in 2usize..6, per_pod in 1usize..8) {
        let pairs = counterpart_pairs(pods, per_pod);
        let set: std::collections::HashSet<(usize, usize)> =
            pairs.iter().copied().collect();
        prop_assert_eq!(set.len(), pairs.len());
        for &(a, b) in &pairs {
            prop_assert!(set.contains(&(b, a)));
        }
        for s in 0..pods * per_pod {
            let out = pairs.iter().filter(|&&(a, _)| a == s).count();
            prop_assert_eq!(out, pods - 1);
        }
    }

    /// For any k, the testbed's total iPerf throughput is positive and
    /// bounded by the servers' aggregate NIC rate.
    #[test]
    fn steady_state_bounded(k in 1usize..10) {
        let rig = TestbedRig::new();
        for mode in [PodMode::Clos, PodMode::Local, PodMode::Global] {
            let t = steady_state_gbps_with_k(&rig, mode, k);
            prop_assert!(t > 0.0);
            prop_assert!(t <= 240.0 + 1e-6, "{mode:?} k={k}: {t}"); // 24 x 10G
        }
    }
}
