//! The Figure 11 applications: Spark broadcast and Hadoop shuffle.
//!
//! "Most data center applications are computation-oriented … whether the
//! bandwidth increase can be translated into acceleration of data center
//! applications is yet another question." (§5.4). We model the two jobs
//! at task level and drive their flows through the fluid simulator:
//!
//! * **Spark broadcast (Word2Vec)**: the master torrent-broadcasts the
//!   model to 23 workers; each doubling round is a batch of simultaneous
//!   flows, the round ends when its slowest flow finishes.
//! * **Hadoop shuffle (Tez Sort)**: all 23 slaves map; a subset reduce;
//!   the shuffle is a single batch of mapper→reducer flows and the phase
//!   ends at the batch makespan.
//!
//! End-to-end *data read time* adds a fixed serialization +
//! deserialization overhead per transfer, which is why application-level
//! gains are smaller than raw bandwidth gains — exactly the paper's
//! point.

use crate::rig::TestbedRig;
use flat_tree::PodMode;
use flowsim::{simulate, FlowSpec, SimConfig, Transport};
use serde::{Deserialize, Serialize};
use traffic::apps::{shuffle_pairs, torrent_broadcast_rounds};

/// Application-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppParams {
    /// Bytes moved per transfer (the broadcast model / one shuffle
    /// partition).
    pub bytes_per_transfer: f64,
    /// Fixed serialization + deserialization overhead per transfer (s).
    pub serdes_overhead_s: f64,
    /// Number of reducers in the shuffle.
    pub reducers: usize,
}

impl AppParams {
    /// Defaults sized to the testbed jobs (hundreds of MB per transfer,
    /// ~1 s serdes overhead; Figure 11's read durations are 3–5 s).
    pub fn default_testbed() -> Self {
        Self {
            bytes_per_transfer: 2.5e9,
            serdes_overhead_s: 1.0,
            reducers: 8,
        }
    }
}

/// Measured application performance under one mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppReport {
    /// Mode evaluated.
    pub mode: PodMode,
    /// Average end-to-end data read time per transfer, incl. serdes (s).
    pub read_time_s: f64,
    /// Communication-phase duration (s).
    pub phase_s: f64,
}

fn transport(rig: &TestbedRig) -> Transport {
    Transport::Mptcp {
        k: rig.k,
        coupled: true,
    }
}

/// Runs the Spark torrent broadcast on a mode: master = server 0,
/// workers = servers 1..24.
pub fn spark_broadcast(rig: &TestbedRig, mode: PodMode, params: &AppParams) -> AppReport {
    let inst = rig.instance(mode);
    let servers = &inst.net.servers;
    let workers: Vec<usize> = (1..servers.len()).collect();
    let rounds = torrent_broadcast_rounds(0, &workers);
    let cfg = SimConfig {
        transport: transport(rig),
        ..SimConfig::default()
    };
    let mut phase = 0.0f64;
    let mut read_times = Vec::new();
    for round in rounds {
        let flows: Vec<FlowSpec> = round
            .iter()
            .enumerate()
            .map(|(i, &(s, d))| FlowSpec {
                id: i as u64,
                src: servers[s],
                dst: servers[d],
                bytes: params.bytes_per_transfer,
                start: 0.0,
            })
            .collect();
        let res = simulate(&inst.net.graph, &flows, &cfg);
        let round_time = res
            .records
            .iter()
            .map(|r| r.fct().expect("testbed flows finish"))
            .fold(0.0f64, f64::max)
            + params.serdes_overhead_s;
        phase += round_time;
        read_times.extend(
            res.records
                .iter()
                .map(|r| r.fct().unwrap() + params.serdes_overhead_s),
        );
    }
    AppReport {
        mode,
        read_time_s: read_times.iter().sum::<f64>() / read_times.len() as f64,
        phase_s: phase,
    }
}

/// Runs the Hadoop/Tez shuffle on a mode: all slaves (servers 1..24) map,
/// the first `reducers` slaves reduce.
pub fn hadoop_shuffle(rig: &TestbedRig, mode: PodMode, params: &AppParams) -> AppReport {
    let inst = rig.instance(mode);
    let servers = &inst.net.servers;
    let mappers: Vec<usize> = (1..servers.len()).collect();
    let reducers: Vec<usize> = mappers.iter().copied().take(params.reducers).collect();
    let pairs = shuffle_pairs(&mappers, &reducers);
    // Per-pair partition size: total shuffled volume fixed, split across
    // reducers so the job size does not depend on the reducer count.
    let bytes = params.bytes_per_transfer / params.reducers as f64;
    let flows: Vec<FlowSpec> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| FlowSpec {
            id: i as u64,
            src: servers[s],
            dst: servers[d],
            bytes,
            start: 0.0,
        })
        .collect();
    let cfg = SimConfig {
        transport: transport(rig),
        ..SimConfig::default()
    };
    let res = simulate(&inst.net.graph, &flows, &cfg);
    let fcts: Vec<f64> = res
        .records
        .iter()
        .map(|r| r.fct().expect("testbed flows finish"))
        .collect();
    AppReport {
        mode,
        read_time_s: fcts.iter().sum::<f64>() / fcts.len() as f64 + params.serdes_overhead_s,
        phase_s: fcts.iter().copied().fold(0.0f64, f64::max) + params.serdes_overhead_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_global_beats_clos() {
        let rig = TestbedRig::new();
        let p = AppParams::default_testbed();
        let clos = spark_broadcast(&rig, PodMode::Clos, &p);
        let global = spark_broadcast(&rig, PodMode::Global, &p);
        assert!(
            global.phase_s <= clos.phase_s,
            "global {} vs clos {}",
            global.phase_s,
            clos.phase_s
        );
        assert!(global.read_time_s <= clos.read_time_s + 1e-9);
        assert!(global.read_time_s > p.serdes_overhead_s);
    }

    #[test]
    fn shuffle_global_beats_clos() {
        let rig = TestbedRig::new();
        let p = AppParams::default_testbed();
        let clos = hadoop_shuffle(&rig, PodMode::Clos, &p);
        let global = hadoop_shuffle(&rig, PodMode::Global, &p);
        assert!(
            global.phase_s < clos.phase_s,
            "global {} vs clos {}",
            global.phase_s,
            clos.phase_s
        );
        assert!(global.read_time_s < clos.read_time_s);
    }

    #[test]
    fn local_lands_between_or_near() {
        // "The global mode only slightly outperforms the local mode" at
        // this small scale.
        let rig = TestbedRig::new();
        let p = AppParams::default_testbed();
        let clos = hadoop_shuffle(&rig, PodMode::Clos, &p);
        let local = hadoop_shuffle(&rig, PodMode::Local, &p);
        let global = hadoop_shuffle(&rig, PodMode::Global, &p);
        assert!(global.phase_s <= local.phase_s + 1e-9);
        assert!(local.phase_s <= clos.phase_s * 1.2);
    }

    #[test]
    fn serdes_overhead_dampens_relative_gain() {
        // The application-level improvement must be smaller than the raw
        // bandwidth improvement — the paper's §5.4 observation.
        let rig = TestbedRig::new();
        let mut p = AppParams::default_testbed();
        let clos = hadoop_shuffle(&rig, PodMode::Clos, &p);
        let global = hadoop_shuffle(&rig, PodMode::Global, &p);
        let gain_with_overhead = clos.read_time_s / global.read_time_s;
        p.serdes_overhead_s = 0.0;
        let clos0 = hadoop_shuffle(&rig, PodMode::Clos, &p);
        let global0 = hadoop_shuffle(&rig, PodMode::Global, &p);
        let raw_gain = clos0.read_time_s / global0.read_time_s;
        assert!(gain_with_overhead < raw_gain);
    }
}
