//! The Figure 10 experiment: live topology conversion under iPerf load.
//!
//! "On every server, we send iPerf traffic to the 3 servers with the same
//! index in the other 3 Pods. This traffic pattern enables the
//! measurement of the core bandwidth in the network. iPerf is set to
//! update the flow throughput every 0.5 second. Throughout the 5-minute
//! experiment, we change the network topology to different flat-tree
//! modes."
//!
//! The iPerf flows are long-lived, so each topology segment has a single
//! steady-state max-min allocation; what varies over time is the
//! conversion outage (OCS reconfiguration + rule swap, from the
//! `control` crate's Table 3 model) and TCP's ramp back to steady state,
//! modeled as an exponential approach with time constant `ramp_tau_s`.

use crate::rig::TestbedRig;
use flat_tree::{ModeAssignment, PodMode};
use flowsim::alloc::{connection_rates, ConnPaths};
use routing::RouteTable;
use serde::{Deserialize, Serialize};

/// One mode segment of the experiment timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Segment start time (s).
    pub start_s: f64,
    /// Mode active during the segment.
    pub mode: PodMode,
}

/// Parameters of the iPerf experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IperfParams {
    /// Mode timeline; must start at t = 0.
    pub segments: Vec<Segment>,
    /// Total experiment duration (s).
    pub duration_s: f64,
    /// Sampling interval (iPerf's 0.5 s).
    pub sample_interval_s: f64,
    /// TCP ramp time constant after a conversion (s).
    pub ramp_tau_s: f64,
}

impl IperfParams {
    /// The paper's 5-minute timeline: Clos → global → local → clos →
    /// global, 60 s each.
    pub fn paper_timeline() -> Self {
        Self {
            segments: vec![
                Segment {
                    start_s: 0.0,
                    mode: PodMode::Clos,
                },
                Segment {
                    start_s: 60.0,
                    mode: PodMode::Global,
                },
                Segment {
                    start_s: 120.0,
                    mode: PodMode::Local,
                },
                Segment {
                    start_s: 180.0,
                    mode: PodMode::Clos,
                },
                Segment {
                    start_s: 240.0,
                    mode: PodMode::Global,
                },
            ],
            duration_s: 300.0,
            sample_interval_s: 0.5,
            ramp_tau_s: 0.4,
        }
    }
}

/// Result of the experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IperfResult {
    /// `(time, total bidirectional core bandwidth in Gbps)` samples.
    pub samples: Vec<(f64, f64)>,
    /// Steady-state total throughput per mode (Gbps).
    pub steady_gbps: Vec<(PodMode, f64)>,
    /// Conversion delay (ms) charged at each segment boundary.
    pub conversion_ms: Vec<(PodMode, f64)>,
    /// Seconds from each conversion start until throughput first reaches
    /// 95 % of the segment's steady state.
    pub adapt_s: Vec<(PodMode, f64)>,
}

/// The counterpart traffic pattern: `(src index, dst index)` pairs over
/// the testbed's 24 servers.
pub fn counterpart_pairs(num_pods: usize, per_pod: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    for p in 0..num_pods {
        for q in 0..num_pods {
            if p == q {
                continue;
            }
            for s in 0..per_pod {
                pairs.push((p * per_pod + s, q * per_pod + s));
            }
        }
    }
    pairs
}

/// Steady-state total iPerf throughput (Gbps) of a mode on the rig,
/// using the mode's profiled k (see [`best_k`]).
pub fn steady_state_gbps(rig: &TestbedRig, mode: PodMode) -> f64 {
    steady_state_gbps_with_k(rig, mode, best_k(rig, mode))
}

/// The k (number of concurrent paths) that maximizes this mode's
/// steady-state throughput, from {2, 4, 8}. §4.2.1: "the number of
/// concurrent paths, or k, can be different under each mode, because
/// each topology may have optimum transmission performance with a
/// different k" — the paper's own Figure 5 example assigns k = 16/8/4
/// to global/local/Clos.
pub fn best_k(rig: &TestbedRig, mode: PodMode) -> usize {
    [2usize, 4, 8]
        .into_iter()
        .max_by(|&a, &b| {
            steady_state_gbps_with_k(rig, mode, a)
                .total_cmp(&steady_state_gbps_with_k(rig, mode, b))
        })
        .expect("nonempty")
}

/// Steady-state total iPerf throughput (Gbps) for an explicit k.
pub fn steady_state_gbps_with_k(rig: &TestbedRig, mode: PodMode, k: usize) -> f64 {
    let inst = rig.instance(mode);
    let g = &inst.net.graph;
    let per_pod = inst.net.pod_servers[0].len();
    let pairs = counterpart_pairs(inst.net.num_pods(), per_pod);
    let mut rt = RouteTable::new(k);
    let conns: Vec<ConnPaths> = pairs
        .iter()
        .map(|&(s, d)| {
            let paths = rt.server_paths(g, inst.net.servers[s], inst.net.servers[d]);
            let w = 1.0 / paths.len().max(1) as f64;
            ConnPaths {
                paths,
                subflow_weight: w,
            }
        })
        .collect();
    let caps: Vec<f64> = g.link_ids().map(|l| g.link(l).capacity_gbps).collect();
    connection_rates(&caps, &conns).iter().sum()
}

/// Runs the full Figure 10 timeline.
pub fn run(rig: &TestbedRig, params: &IperfParams) -> IperfResult {
    assert!(!params.segments.is_empty());
    assert_eq!(params.segments[0].start_s, 0.0, "timeline starts at 0");
    let pods = rig.controller.flat_tree().pods();

    // Steady states and conversion delays per boundary.
    let mut steady = Vec::new();
    let mut conv_ms = Vec::new();
    for seg in &params.segments {
        steady.push(steady_state_gbps(rig, seg.mode));
        let report = rig
            .controller
            .convert(&ModeAssignment::uniform(pods, seg.mode));
        conv_ms.push(report.total_sequential_ms());
    }

    // Sample the bandwidth curve.
    let mut samples = Vec::new();
    let mut adapt = vec![f64::NAN; params.segments.len()];
    let mut t = 0.0;
    while t <= params.duration_s + 1e-9 {
        let si = params
            .segments
            .iter()
            .rposition(|s| s.start_s <= t + 1e-12)
            .expect("timeline covers t=0");
        let seg = &params.segments[si];
        let outage_s = if si == 0 { 0.0 } else { conv_ms[si] / 1e3 };
        let since = t - seg.start_s;
        let value = if since < outage_s {
            0.0
        } else {
            let ramp = if si == 0 {
                1.0
            } else {
                1.0 - (-(since - outage_s) / params.ramp_tau_s).exp()
            };
            steady[si] * ramp
        };
        if value >= 0.95 * steady[si] && adapt[si].is_nan() {
            adapt[si] = since;
        }
        samples.push((t, value));
        t += params.sample_interval_s;
    }

    IperfResult {
        samples,
        steady_gbps: params
            .segments
            .iter()
            .zip(&steady)
            .map(|(s, &v)| (s.mode, v))
            .collect(),
        conversion_ms: params
            .segments
            .iter()
            .zip(&conv_ms)
            .map(|(s, &v)| (s.mode, v))
            .collect(),
        adapt_s: params
            .segments
            .iter()
            .zip(&adapt)
            .map(|(s, &v)| (s.mode, v))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counterpart_pattern_shape() {
        let pairs = counterpart_pairs(4, 6);
        assert_eq!(pairs.len(), 24 * 3);
        // Same within-pod index, different pod.
        for &(s, d) in &pairs {
            assert_eq!(s % 6, d % 6);
            assert_ne!(s / 6, d / 6);
        }
    }

    #[test]
    fn global_mode_raises_core_bandwidth() {
        // The paper's headline: +27.6% core bandwidth from converting
        // Clos to global; local ≈ Clos. We assert the ordering and a
        // nontrivial gain.
        let rig = TestbedRig::new();
        let clos = steady_state_gbps(&rig, PodMode::Clos);
        let local = steady_state_gbps(&rig, PodMode::Local);
        let global = steady_state_gbps(&rig, PodMode::Global);
        assert!(global > clos * 1.10, "global {global} vs clos {clos}");
        assert!(
            (local - clos).abs() / clos < 0.25,
            "local {local} vs clos {clos}"
        );
        // Clos steady state is bounded by its 160G core.
        assert!(clos <= 160.0 + 1e-6);
    }

    #[test]
    fn timeline_produces_outage_and_ramp() {
        let rig = TestbedRig::new();
        let mut p = IperfParams::paper_timeline();
        p.duration_s = 130.0;
        let res = run(&rig, &p);
        assert_eq!(res.samples.len(), 261);
        // Sample right after the 60 s boundary is in outage (0 Gbps).
        let at_60_5 = res
            .samples
            .iter()
            .find(|&&(t, _)| (t - 60.5).abs() < 1e-9)
            .unwrap()
            .1;
        let steady_global = res.steady_gbps[1].1;
        assert!(at_60_5 < steady_global, "should still be ramping at 60.5s");
        // Adaptation completes within the paper's 2-2.5 s window.
        let adapt = res.adapt_s[1].1;
        assert!(adapt > 0.5 && adapt <= 3.0, "adapt time {adapt}");
        // Late in the segment we are at steady state.
        let at_100 = res
            .samples
            .iter()
            .find(|&&(t, _)| (t - 100.0).abs() < 1e-9)
            .unwrap()
            .1;
        assert!((at_100 - steady_global).abs() / steady_global < 0.01);
    }
}
