//! The Figure 2 / §5.3 testbed network.

use control::{Controller, DelayModel};
use flat_tree::{FlatTree, FlatTreeInstance, FlatTreeParams, ModeAssignment, PodMode};
use topology::ClosParams;

/// Flat-tree parameters of the 20-switch / 24-server testbed:
/// 4 pods × (2 edge + 2 agg) + 4 cores, 3 servers per edge, `m = n = 1`.
pub fn testbed_params() -> FlatTreeParams {
    let clos = ClosParams {
        pods: 4,
        edges_per_pod: 2,
        aggs_per_pod: 2,
        servers_per_edge: 3,
        edge_uplinks: 2,
        agg_uplinks: 2,
        num_cores: 4,
        link_gbps: 10.0,
    };
    FlatTreeParams::new(clos, 1, 1)
}

/// The testbed: a flat-tree plus its controller and cached per-mode
/// instances. `k = 4` concurrent paths, "as it yields the best
/// performance in the simulation of this network" (§5.3).
pub struct TestbedRig {
    /// The controller managing the network (starts in Clos mode).
    pub controller: Controller,
    /// k for k-shortest-path routing.
    pub k: usize,
}

impl TestbedRig {
    /// Builds the rig.
    pub fn new() -> Self {
        let ft = FlatTree::new(testbed_params()).expect("testbed params are valid");
        Self {
            controller: Controller::new(ft, 4, DelayModel::testbed()),
            k: 4,
        }
    }

    /// The instance for a uniform mode.
    pub fn instance(&self, mode: PodMode) -> FlatTreeInstance {
        let pods = self.controller.flat_tree().pods();
        self.controller
            .artifacts(&ModeAssignment::uniform(pods, mode))
            .instance
    }
}

impl Default for TestbedRig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{metrics, NodeKind};

    #[test]
    fn matches_the_paper_inventory() {
        let p = testbed_params();
        p.validate().unwrap();
        // 20 switches: 4 pods x 4 + 4 cores; 24 servers.
        assert_eq!(
            p.clos.pods * (p.clos.edges_per_pod + p.clos.aggs_per_pod) + p.clos.num_cores,
            20
        );
        assert_eq!(p.clos.total_servers(), 24);
        // 1.5:1 oversubscription (§5.3).
        assert!((p.clos.edge_oversubscription() - 1.5).abs() < 1e-12);
        // 8 converter switches per... 4 pods x 2 edges x (1+1) = 16 OCS
        // partitions.
        assert_eq!(p.total_converters(), 16);
    }

    #[test]
    fn clos_core_capacity_is_160g() {
        // §5.3: "the Clos network has 24 x 10Gbps / 1.5 = 160Gbps total
        // [core] bandwidth".
        let rig = TestbedRig::new();
        let inst = rig.instance(PodMode::Clos);
        let g = &inst.net.graph;
        let agg_core = g.capacity_between(NodeKind::AggSwitch, NodeKind::CoreSwitch);
        assert!((agg_core - 160.0).abs() < 1e-9, "got {agg_core}");
    }

    #[test]
    fn all_modes_instantiate_and_validate() {
        let rig = TestbedRig::new();
        for mode in [PodMode::Clos, PodMode::Local, PodMode::Global] {
            let inst = rig.instance(mode);
            inst.net.validate().unwrap();
            assert_eq!(inst.net.num_servers(), 24);
        }
    }

    #[test]
    fn global_mode_moves_servers_to_cores() {
        let rig = TestbedRig::new();
        let inst = rig.instance(PodMode::Global);
        let on_core: usize = metrics::attached_server_counts(&inst.net.graph, NodeKind::CoreSwitch)
            .iter()
            .map(|&(_, c)| c)
            .sum();
        assert_eq!(on_core, 8); // 4 pods x 2 edges x m=1
    }
}
