//! The paper's hardware testbed, reproduced in simulation (§5.3, §5.4).
//!
//! The physical rig was: 5 × 48-port packet switches partitioned into
//! 4 pods of (2 edge + 2 aggregation) switches plus 4 core switches, one
//! 192-port 3D-MEMS optical circuit switch hosting the converter-switch
//! partitions, and 24 servers — i.e. exactly the Figure 2 example network
//! with `m = n = 1`, 3 servers per edge switch and 1.5:1 oversubscription.
//! [`rig::testbed_params`] builds that network from the generic flat-tree
//! builder; nothing here is hand-wired.
//!
//! * [`iperf`] — the Figure 10 experiment: every server sends iPerf
//!   traffic to its counterparts in the other three pods; the topology is
//!   converted live (Clos → global → local …) and the bidirectional core
//!   bandwidth is sampled every 0.5 s, including the conversion outage
//!   and the TCP ramp-back (2–2.5 s adaptation).
//! * [`apps`] — the Figure 11 applications: Spark Word2Vec torrent
//!   broadcast and Hadoop/Tez Sort shuffle, as round-structured flow sets
//!   played through the fluid simulator with serialization overheads.

pub mod apps;
pub mod iperf;
pub mod rig;

pub use rig::{testbed_params, TestbedRig};
