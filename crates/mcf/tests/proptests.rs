//! Property tests for the MCF approximations.

use mcf::maxmin::{max_min, verify_max_min, weighted_max_min, Entity};
use mcf::AllocWorkspace;
use mcf::{concurrent::max_concurrent_flow, Commodity};
use netgraph::{Graph, NodeId, NodeKind};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_net(switches: usize, servers: usize, extra: usize, seed: u64) -> (Graph, Vec<NodeId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    let sw: Vec<NodeId> = (0..switches)
        .map(|i| g.add_node(NodeKind::GenericSwitch, format!("sw{i}")))
        .collect();
    for i in 1..switches {
        let p = rng.gen_range(0..i);
        g.add_duplex_link(sw[i], sw[p], 10.0);
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..switches);
        let b = rng.gen_range(0..switches);
        if a != b && g.find_link(sw[a], sw[b]).is_none() {
            g.add_duplex_link(sw[a], sw[b], 10.0);
        }
    }
    let servers: Vec<NodeId> = (0..servers)
        .map(|i| {
            let s = g.add_node(NodeKind::Server, format!("s{i}"));
            g.add_duplex_link(s, sw[i % switches], 10.0);
            s
        })
        .collect();
    (g, servers)
}

/// Verbatim copy of the progressive-filling loop as it existed before
/// the workspace refactor — the oracle the reusable
/// [`AllocWorkspace`] must match bit-for-bit.
fn reference_weighted_max_min(capacity: &[f64], entities: &[Entity]) -> Vec<f64> {
    for e in entities {
        assert!(!e.links.is_empty(), "entity with empty path");
        assert!(e.weight > 0.0, "entity weight must be positive");
    }
    let mut rates = vec![0.0; entities.len()];
    if entities.is_empty() {
        return rates;
    }
    let mut rem_cap = capacity.to_vec();
    let mut act_w = vec![0.0f64; capacity.len()];
    let mut users: Vec<Vec<usize>> = vec![Vec::new(); capacity.len()];
    for (i, e) in entities.iter().enumerate() {
        for &l in &e.links {
            act_w[l] += e.weight;
            users[l].push(i);
        }
    }
    let mut frozen = vec![false; entities.len()];
    let mut remaining = entities.len();
    let mut live_links: Vec<usize> = (0..capacity.len()).filter(|&l| act_w[l] > 1e-12).collect();
    while remaining > 0 {
        let mut min_share = f64::INFINITY;
        for &l in &live_links {
            if act_w[l] > 1e-12 {
                let share = rem_cap[l].max(0.0) / act_w[l];
                if share < min_share {
                    min_share = share;
                }
            }
        }
        if !min_share.is_finite() {
            break;
        }
        let threshold = min_share * (1.0 + 1e-12) + 1e-15;
        let mut victims: Vec<usize> = Vec::new();
        for &l in &live_links {
            if act_w[l] > 1e-12 && rem_cap[l].max(0.0) / act_w[l] <= threshold {
                for &i in &users[l] {
                    if !frozen[i] {
                        frozen[i] = true;
                        victims.push(i);
                    }
                }
            }
        }
        for i in victims {
            let rate = entities[i].weight * min_share;
            rates[i] = rate;
            remaining -= 1;
            for &l in &entities[i].links {
                rem_cap[l] -= rate;
                act_w[l] -= entities[i].weight;
            }
        }
        live_links.retain(|&l| act_w[l] > 1e-12);
    }
    rates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The reusable workspace allocator reproduces the pre-refactor
    /// filling loop bit-for-bit on random entity sets — including when
    /// the same workspace is reused across differently-shaped rounds.
    #[test]
    fn workspace_matches_reference_bitwise(
        links in 1usize..12,
        rounds in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ws = AllocWorkspace::new();
        for _ in 0..rounds {
            let ents = rng.gen_range(1..20usize);
            let caps: Vec<f64> = (0..links).map(|_| rng.gen_range(1.0..20.0)).collect();
            let entities: Vec<Entity> = (0..ents)
                .map(|_| {
                    let n = rng.gen_range(1..=links);
                    let mut ls: Vec<usize> = (0..links).collect();
                    for i in 0..n {
                        let j = rng.gen_range(i..links);
                        ls.swap(i, j);
                    }
                    ls.truncate(n);
                    Entity { weight: rng.gen_range(0.5..4.0), links: ls }
                })
                .collect();
            let want = reference_weighted_max_min(&caps, &entities);
            // The public wrapper must match too.
            let via_wrapper = weighted_max_min(&caps, &entities);
            ws.clear();
            for e in &entities {
                ws.push_entity(e.weight, e.links.iter().copied());
            }
            let got = ws.allocate(&caps);
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
            for (g, w) in via_wrapper.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    /// Max-min allocations over random entity sets are always feasible and
    /// bottleneck-justified.
    #[test]
    fn water_filling_invariants(
        links in 1usize..12,
        ents in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let caps: Vec<f64> = (0..links).map(|_| rng.gen_range(1.0..20.0)).collect();
        let entities: Vec<Entity> = (0..ents)
            .map(|_| {
                let n = rng.gen_range(1..=links);
                let mut ls: Vec<usize> = (0..links).collect();
                for i in 0..n {
                    let j = rng.gen_range(i..links);
                    ls.swap(i, j);
                }
                ls.truncate(n);
                Entity { weight: rng.gen_range(0.5..4.0), links: ls }
            })
            .collect();
        let rates = weighted_max_min(&caps, &entities);
        prop_assert!(verify_max_min(&caps, &entities, &rates).is_ok());
        prop_assert!(rates.iter().all(|&r| r >= 0.0));
    }

    /// On a single shared link, max-min equals the exact fair share.
    #[test]
    fn fair_share_exact(n in 1usize..30, cap in 1.0f64..100.0) {
        let paths: Vec<Vec<usize>> = (0..n).map(|_| vec![0]).collect();
        let rates = max_min(&[cap], &paths);
        for r in rates {
            prop_assert!((r - cap / n as f64).abs() < 1e-9);
        }
    }

    /// Garg–Könemann on random networks: λ is positive, rates respect
    /// λ·demand, and λ never exceeds the obvious NIC bound.
    #[test]
    fn gk_sane_on_random_networks(
        switches in 3usize..10,
        extra in 0usize..10,
        pairs in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (g, servers) = random_net(switches, 2 * pairs, extra, seed);
        let coms: Vec<Commodity> = (0..pairs)
            .map(|i| Commodity::unit(servers[2 * i], servers[2 * i + 1]))
            .collect();
        let r = max_concurrent_flow(&g, &coms, 0.15);
        prop_assert!(r.lambda > 0.0);
        prop_assert!(r.lambda <= 10.0 + 1e-6, "NIC rate bounds λ, got {}", r.lambda);
        for (rate, c) in r.rates.iter().zip(&coms) {
            prop_assert!(rate / c.demand >= r.lambda - 1e-9);
        }
    }
}

/// Random arrival/departure/reroute/capacity-change sequences: after
/// every epoch the incremental allocator's rates must be bit-identical
/// to a from-scratch `weighted_max_min` over the equivalent entity list.
mod incremental_epochs {
    use super::*;
    use mcf::IncrementalAllocator;

    /// Mirror of the allocator's group state kept by the test: the
    /// flattened entity list a from-scratch build would see.
    #[derive(Clone)]
    struct Group {
        weight: f64,
        subflows: Vec<Vec<usize>>,
    }

    fn flatten(groups: &[Group]) -> Vec<Entity> {
        let mut out = Vec::new();
        for g in groups {
            for p in &g.subflows {
                out.push(Entity {
                    weight: g.weight,
                    links: p.clone(),
                });
            }
        }
        out
    }

    fn random_group(rng: &mut ChaCha8Rng, links: usize) -> Group {
        let nsub = rng.gen_range(1..=4usize);
        let subflows = (0..nsub)
            .map(|_| {
                let n = rng.gen_range(1..=links.min(5));
                let mut ls: Vec<usize> = (0..links).collect();
                for i in 0..n {
                    let j = rng.gen_range(i..links);
                    ls.swap(i, j);
                }
                ls.truncate(n);
                ls
            })
            .collect();
        Group {
            weight: rng.gen_range(0.1..4.0),
            subflows,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn incremental_matches_from_scratch_bitwise(
            links in 2usize..14,
            epochs in 2usize..24,
            seed in any::<u64>(),
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut caps: Vec<f64> = (0..links).map(|_| rng.gen_range(1.0..20.0)).collect();
            let mut alloc = IncrementalAllocator::new();
            let mut mirror: Vec<Group> = Vec::new();
            for _ in 0..epochs {
                // One structural edit per epoch, like the engine's
                // arrival / departure / park / reroute / failure edges.
                match rng.gen_range(0..6u32) {
                    0 | 1 => {
                        let g = random_group(&mut rng, links);
                        alloc.push_group(g.weight, g.subflows.iter().map(|p| p.iter().copied()));
                        mirror.push(g);
                    }
                    2 => {
                        if !mirror.is_empty() {
                            let i = rng.gen_range(0..mirror.len());
                            alloc.swap_remove_group(i);
                            mirror.swap_remove(i);
                        }
                    }
                    3 => {
                        if !mirror.is_empty() {
                            let i = rng.gen_range(0..mirror.len());
                            alloc.remove_group_ordered(i);
                            mirror.remove(i);
                        }
                    }
                    4 => {
                        if !mirror.is_empty() {
                            let i = rng.gen_range(0..mirror.len());
                            let g = random_group(&mut rng, links);
                            alloc.replace_group(
                                i,
                                g.weight,
                                g.subflows.iter().map(|p| p.iter().copied()),
                            );
                            mirror[i] = g;
                        }
                    }
                    _ => {
                        // Capacity edge: fail (0.0) or resize one link.
                        let l = rng.gen_range(0..links);
                        caps[l] = if rng.gen_bool(0.3) {
                            0.0
                        } else {
                            rng.gen_range(1.0..20.0)
                        };
                    }
                }
                let want = weighted_max_min(&caps, &flatten(&mirror));
                alloc.allocate(&caps);
                let mut wi = 0usize;
                for gi in 0..alloc.num_groups() {
                    let gid = alloc.group_at(gi);
                    let mut sum = 0.0f64;
                    for &r in alloc.group_rates(gid) {
                        prop_assert_eq!(
                            r.to_bits(), want[wi].to_bits(),
                            "entity {} diverged after {} groups", wi, mirror.len()
                        );
                        sum += r;
                        wi += 1;
                    }
                    prop_assert_eq!(sum.to_bits(), alloc.group_rate_sum(gid).to_bits());
                }
                prop_assert_eq!(wi, want.len());
            }
        }
    }
}
