//! Property tests for the MCF approximations.

use mcf::maxmin::{max_min, verify_max_min, weighted_max_min, Entity};
use mcf::{concurrent::max_concurrent_flow, Commodity};
use netgraph::{Graph, NodeId, NodeKind};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_net(switches: usize, servers: usize, extra: usize, seed: u64) -> (Graph, Vec<NodeId>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut g = Graph::new();
    let sw: Vec<NodeId> = (0..switches)
        .map(|i| g.add_node(NodeKind::GenericSwitch, format!("sw{i}")))
        .collect();
    for i in 1..switches {
        let p = rng.gen_range(0..i);
        g.add_duplex_link(sw[i], sw[p], 10.0);
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..switches);
        let b = rng.gen_range(0..switches);
        if a != b && g.find_link(sw[a], sw[b]).is_none() {
            g.add_duplex_link(sw[a], sw[b], 10.0);
        }
    }
    let servers: Vec<NodeId> = (0..servers)
        .map(|i| {
            let s = g.add_node(NodeKind::Server, format!("s{i}"));
            g.add_duplex_link(s, sw[i % switches], 10.0);
            s
        })
        .collect();
    (g, servers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Max-min allocations over random entity sets are always feasible and
    /// bottleneck-justified.
    #[test]
    fn water_filling_invariants(
        links in 1usize..12,
        ents in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let caps: Vec<f64> = (0..links).map(|_| rng.gen_range(1.0..20.0)).collect();
        let entities: Vec<Entity> = (0..ents)
            .map(|_| {
                let n = rng.gen_range(1..=links);
                let mut ls: Vec<usize> = (0..links).collect();
                for i in 0..n {
                    let j = rng.gen_range(i..links);
                    ls.swap(i, j);
                }
                ls.truncate(n);
                Entity { weight: rng.gen_range(0.5..4.0), links: ls }
            })
            .collect();
        let rates = weighted_max_min(&caps, &entities);
        prop_assert!(verify_max_min(&caps, &entities, &rates).is_ok());
        prop_assert!(rates.iter().all(|&r| r >= 0.0));
    }

    /// On a single shared link, max-min equals the exact fair share.
    #[test]
    fn fair_share_exact(n in 1usize..30, cap in 1.0f64..100.0) {
        let paths: Vec<Vec<usize>> = (0..n).map(|_| vec![0]).collect();
        let rates = max_min(&[cap], &paths);
        for r in rates {
            prop_assert!((r - cap / n as f64).abs() < 1e-9);
        }
    }

    /// Garg–Könemann on random networks: λ is positive, rates respect
    /// λ·demand, and λ never exceeds the obvious NIC bound.
    #[test]
    fn gk_sane_on_random_networks(
        switches in 3usize..10,
        extra in 0usize..10,
        pairs in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (g, servers) = random_net(switches, 2 * pairs, extra, seed);
        let coms: Vec<Commodity> = (0..pairs)
            .map(|i| Commodity::unit(servers[2 * i], servers[2 * i + 1]))
            .collect();
        let r = max_concurrent_flow(&g, &coms, 0.15);
        prop_assert!(r.lambda > 0.0);
        prop_assert!(r.lambda <= 10.0 + 1e-6, "NIC rate bounds λ, got {}", r.lambda);
        for (rate, c) in r.rates.iter().zip(&coms) {
            prop_assert!(rate / c.demand >= r.lambda - 1e-9);
        }
    }
}
