//! Reusable allocation workspace for progressive-filling max-min.
//!
//! [`maxmin::weighted_max_min`](crate::maxmin::weighted_max_min) builds
//! five scratch vectors per call; inside the fluid simulator's event loop
//! that is one allocation burst *per event*. [`AllocWorkspace`] keeps all
//! scratch across calls and stores entities in CSR form (one flat link
//! pool instead of a `Vec` per entity), so a steady-state simulation
//! reallocates with zero heap traffic.
//!
//! The filling loop performs the exact floating-point operations of
//! `weighted_max_min` in the exact order, so the two produce bit-identical
//! rates for the same input (pinned by tests and a property test).

use std::fmt;

/// Why an entity was rejected by [`AllocWorkspace::try_push_entity`] (or
/// a group by
/// [`IncrementalAllocator::try_push_group`](crate::incremental::IncrementalAllocator::try_push_group)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AllocError {
    /// The entity crosses no links; a real flow always occupies at least
    /// its two NIC links.
    EmptyPath,
    /// The fairness weight is zero, negative, or not finite.
    NonPositiveWeight {
        /// The rejected weight.
        weight: f64,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyPath => write!(f, "entity with empty path"),
            Self::NonPositiveWeight { weight } => {
                write!(f, "entity weight must be positive (got {weight})")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Caller-owned scratch for repeated max-min allocations.
///
/// Usage per round: [`clear`](Self::clear), one
/// [`push_entity`](Self::push_entity) per rate receiver (in a fixed,
/// deterministic order — entity order affects tie-breaking exactly as it
/// does in `weighted_max_min`), then [`allocate`](Self::allocate).
#[derive(Debug, Clone, Default)]
pub struct AllocWorkspace {
    // Entities, CSR layout: entity i has weight ent_weight[i] and links
    // ent_links[ent_off[i] .. ent_off[i + 1]].
    ent_weight: Vec<f64>,
    ent_off: Vec<u32>,
    ent_links: Vec<u32>,
    // Filling-loop scratch, retained across calls.
    rem_cap: Vec<f64>,
    act_w: Vec<f64>,
    users: Vec<Vec<u32>>,
    frozen: Vec<bool>,
    live_links: Vec<usize>,
    victims: Vec<u32>,
    rates: Vec<f64>,
    // Filling rounds of the most recent allocate() call (observability).
    last_rounds: u32,
}

impl AllocWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all entities, keeping scratch capacity.
    pub fn clear(&mut self) {
        self.ent_weight.clear();
        self.ent_off.clear();
        self.ent_links.clear();
    }

    /// Adds one rate receiver crossing the given link indices.
    ///
    /// Panics on an empty link set or non-positive weight, matching
    /// `weighted_max_min`'s input contract. Fallible callers (anything
    /// fed from external input) should use
    /// [`try_push_entity`](Self::try_push_entity) instead.
    pub fn push_entity(&mut self, weight: f64, links: impl IntoIterator<Item = usize>) {
        if let Err(e) = self.try_push_entity(weight, links) {
            panic!("{e}");
        }
    }

    /// Adds one rate receiver, rejecting an empty link set or
    /// non-positive weight with a typed error instead of panicking. On
    /// error the workspace is unchanged.
    pub fn try_push_entity(
        &mut self,
        weight: f64,
        links: impl IntoIterator<Item = usize>,
    ) -> Result<(), AllocError> {
        if weight.is_nan() || weight <= 0.0 {
            return Err(AllocError::NonPositiveWeight { weight });
        }
        if self.ent_off.is_empty() {
            self.ent_off.push(0);
        }
        let before = self.ent_links.len();
        self.ent_links.extend(links.into_iter().map(|l| l as u32));
        if self.ent_links.len() == before {
            return Err(AllocError::EmptyPath);
        }
        self.ent_weight.push(weight);
        self.ent_off
            .push(u32::try_from(self.ent_links.len()).expect("offsets fit u32"));
        Ok(())
    }

    /// Number of entities pushed since the last [`clear`](Self::clear).
    pub fn num_entities(&self) -> usize {
        self.ent_weight.len()
    }

    /// Computes the weighted max-min fair rate of every pushed entity.
    ///
    /// Returns one rate per entity, in push order; the slice is valid
    /// until the next call. Bit-identical to
    /// [`weighted_max_min`](crate::maxmin::weighted_max_min) on the
    /// equivalent input.
    pub fn allocate(&mut self, capacity: &[f64]) -> &[f64] {
        let n = self.ent_weight.len();
        self.last_rounds = 0;
        self.rates.clear();
        self.rates.resize(n, 0.0);
        if n == 0 {
            return &self.rates;
        }
        debug_assert!(
            self.ent_links
                .iter()
                .all(|&l| (l as usize) < capacity.len()),
            "entity link index out of capacity range"
        );

        self.rem_cap.clear();
        self.rem_cap.extend_from_slice(capacity);
        self.act_w.clear();
        self.act_w.resize(capacity.len(), 0.0);
        if self.users.len() < capacity.len() {
            self.users.resize_with(capacity.len(), Vec::new);
        }
        for u in &mut self.users[..capacity.len()] {
            u.clear();
        }
        for i in 0..n {
            let w = self.ent_weight[i];
            for idx in self.ent_off[i]..self.ent_off[i + 1] {
                let l = self.ent_links[idx as usize] as usize;
                self.act_w[l] += w;
                self.users[l].push(i as u32);
            }
        }
        self.frozen.clear();
        self.frozen.resize(n, false);
        let mut remaining = n;
        self.live_links.clear();
        self.live_links
            .extend((0..capacity.len()).filter(|&l| self.act_w[l] > 1e-12));

        while remaining > 0 {
            self.last_rounds += 1;
            // Most contended share among live links.
            let mut min_share = f64::INFINITY;
            for &l in &self.live_links {
                if self.act_w[l] > 1e-12 {
                    let share = self.rem_cap[l].max(0.0) / self.act_w[l];
                    if share < min_share {
                        min_share = share;
                    }
                }
            }
            if !min_share.is_finite() {
                break; // no active links left (shouldn't happen with users)
            }
            // Freeze every active entity crossing *any* link at the
            // minimum share (simultaneous bottlenecks resolve in one
            // round — crucial for the symmetric NIC-bound case).
            let threshold = min_share * (1.0 + 1e-12) + 1e-15;
            self.victims.clear();
            for &l in &self.live_links {
                if self.act_w[l] > 1e-12 && self.rem_cap[l].max(0.0) / self.act_w[l] <= threshold {
                    for &i in &self.users[l] {
                        if !self.frozen[i as usize] {
                            self.frozen[i as usize] = true;
                            self.victims.push(i);
                        }
                    }
                }
            }
            debug_assert!(!self.victims.is_empty());
            for v in 0..self.victims.len() {
                let i = self.victims[v] as usize;
                let w = self.ent_weight[i];
                let rate = w * min_share;
                self.rates[i] = rate;
                remaining -= 1;
                for idx in self.ent_off[i]..self.ent_off[i + 1] {
                    let l = self.ent_links[idx as usize] as usize;
                    self.rem_cap[l] -= rate;
                    self.act_w[l] -= w;
                }
            }
            let act_w = &self.act_w;
            self.live_links.retain(|&l| act_w[l] > 1e-12);
        }
        &self.rates
    }

    /// Rates from the most recent [`allocate`](Self::allocate) call.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Progressive-filling rounds the most recent
    /// [`allocate`](Self::allocate) call took to converge (0 before any
    /// call or for an empty entity set) — the allocator-iteration
    /// counter surfaced by the engine's `Alloc` trace events.
    pub fn last_rounds(&self) -> u32 {
        self.last_rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxmin::{weighted_max_min, Entity};

    fn via_workspace(capacity: &[f64], entities: &[Entity]) -> Vec<f64> {
        let mut ws = AllocWorkspace::new();
        for e in entities {
            ws.push_entity(e.weight, e.links.iter().copied());
        }
        ws.allocate(capacity).to_vec()
    }

    #[test]
    fn matches_weighted_max_min_bitwise() {
        let cases: Vec<(Vec<f64>, Vec<Entity>)> = vec![
            (
                vec![10.0],
                vec![
                    Entity {
                        weight: 1.0,
                        links: vec![0],
                    },
                    Entity {
                        weight: 1.0,
                        links: vec![0],
                    },
                ],
            ),
            (
                vec![10.0, 10.0],
                vec![
                    Entity {
                        weight: 1.0,
                        links: vec![0, 1],
                    },
                    Entity {
                        weight: 1.0,
                        links: vec![0],
                    },
                    Entity {
                        weight: 1.0,
                        links: vec![1],
                    },
                ],
            ),
            (
                vec![4.0, 10.0, 7.3],
                vec![
                    Entity {
                        weight: 2.5,
                        links: vec![0, 1],
                    },
                    Entity {
                        weight: 1.0,
                        links: vec![0, 2],
                    },
                    Entity {
                        weight: 0.5,
                        links: vec![1, 2],
                    },
                    Entity {
                        weight: 1.0,
                        links: vec![2],
                    },
                ],
            ),
        ];
        for (cap, ents) in cases {
            let a = weighted_max_min(&cap, &ents);
            let b = via_workspace(&cap, &ents);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "rates must be bit-identical");
            }
        }
    }

    #[test]
    fn reuse_across_calls_is_clean() {
        let mut ws = AllocWorkspace::new();
        ws.push_entity(1.0, [0usize, 1]);
        ws.push_entity(1.0, [0usize]);
        let first = ws.allocate(&[10.0, 10.0]).to_vec();
        assert_eq!(first.len(), 2);
        // Second round: different shape and capacity vector length.
        ws.clear();
        ws.push_entity(3.0, [0usize]);
        ws.push_entity(1.0, [0usize]);
        let second = ws.allocate(&[8.0]).to_vec();
        assert!((second[0] - 6.0).abs() < 1e-9);
        assert!((second[1] - 2.0).abs() < 1e-9);
        // Third round: back to the first shape, rates must match round one.
        ws.clear();
        ws.push_entity(1.0, [0usize, 1]);
        ws.push_entity(1.0, [0usize]);
        let third = ws.allocate(&[10.0, 10.0]).to_vec();
        assert_eq!(first, third);
    }

    #[test]
    fn empty_workspace_allocates_nothing() {
        let mut ws = AllocWorkspace::new();
        assert!(ws.allocate(&[5.0]).is_empty());
        assert_eq!(ws.num_entities(), 0);
        assert_eq!(ws.last_rounds(), 0);
    }

    #[test]
    fn rounds_counter_tracks_filling_iterations() {
        let mut ws = AllocWorkspace::new();
        assert_eq!(ws.last_rounds(), 0);
        // Two entities on one shared link: a single filling round.
        ws.push_entity(1.0, [0usize]);
        ws.push_entity(1.0, [0usize]);
        ws.allocate(&[10.0]);
        assert_eq!(ws.last_rounds(), 1);
        // Asymmetric two-link chain: the 4.0 link freezes first, then
        // the leftover entity fills the 10.0 link — two rounds.
        ws.clear();
        ws.push_entity(1.0, [0usize, 1]);
        ws.push_entity(1.0, [1usize]);
        ws.allocate(&[4.0, 10.0]);
        assert_eq!(ws.last_rounds(), 2);
    }

    #[test]
    #[should_panic(expected = "empty path")]
    fn rejects_empty_links() {
        let mut ws = AllocWorkspace::new();
        ws.push_entity(1.0, std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn rejects_bad_weight() {
        let mut ws = AllocWorkspace::new();
        ws.push_entity(0.0, [0usize]);
    }
}
