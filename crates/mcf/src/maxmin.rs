//! Weighted max-min fair allocation over fixed paths
//! (progressive filling / water filling).
//!
//! Entities are abstract "rate receivers" that each occupy a set of links
//! with a weight. For plain TCP an entity is a flow on its single path
//! with weight 1; for MPTCP each subflow is an entity (weight 1 for the
//! uncoupled model, `1/k` for a coupled model that emulates LIA's
//! bottleneck fairness).
//!
//! The algorithm repeatedly finds the most contended link (smallest
//! remaining capacity per unit of active weight), freezes every active
//! entity crossing it at `weight * fair_share`, and subtracts the
//! capacity they consume. This is the textbook max-min allocation and is
//! exact (not an approximation).

/// One rate receiver: a weight and the link indices it traverses.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Relative weight at each bottleneck (usually 1.0).
    pub weight: f64,
    /// Indices into the capacity vector, e.g. `LinkId::idx()` values.
    /// Must be non-empty.
    pub links: Vec<usize>,
}

/// Computes the weighted max-min fair rate for each entity.
///
/// `capacity[l]` is the capacity of link `l`. Entities with an empty link
/// set are rejected (a flow always traverses at least its two NIC links).
///
/// Complexity: O(rounds × Σ|links|), rounds ≤ number of distinct
/// bottlenecks ≤ number of links.
pub fn weighted_max_min(capacity: &[f64], entities: &[Entity]) -> Vec<f64> {
    // Thin wrapper over the reusable workspace; the filling loop lives in
    // `workspace::AllocWorkspace::allocate` and produces bit-identical
    // rates. Callers in a hot loop should own an `AllocWorkspace` instead.
    let mut ws = crate::workspace::AllocWorkspace::new();
    for e in entities {
        ws.push_entity(e.weight, e.links.iter().copied());
    }
    ws.allocate(capacity).to_vec()
}

/// Convenience: unweighted max-min over paths given as link-index lists.
pub fn max_min(capacity: &[f64], paths: &[Vec<usize>]) -> Vec<f64> {
    let entities: Vec<Entity> = paths
        .iter()
        .map(|p| Entity {
            weight: 1.0,
            links: p.clone(),
        })
        .collect();
    weighted_max_min(capacity, &entities)
}

/// Verifies that an allocation is feasible (no link above capacity, with
/// tolerance) and max-min justified (every entity crosses at least one
/// saturated link). Used by tests and debug assertions.
pub fn verify_max_min(capacity: &[f64], entities: &[Entity], rates: &[f64]) -> Result<(), String> {
    let mut load = vec![0.0; capacity.len()];
    for (e, &r) in entities.iter().zip(rates) {
        for &l in &e.links {
            load[l] += r;
        }
    }
    for (l, (&ld, &cap)) in load.iter().zip(capacity).enumerate() {
        if ld > cap * (1.0 + 1e-9) + 1e-9 {
            return Err(format!("link {l} overloaded: {ld} > {cap}"));
        }
    }
    for (i, e) in entities.iter().enumerate() {
        let bottlenecked = e
            .links
            .iter()
            .any(|&l| load[l] >= capacity[l] * (1.0 - 1e-6) - 1e-9);
        if !bottlenecked && rates[i] > 0.0 {
            return Err(format!("entity {i} is not bottlenecked anywhere"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_shared_equally() {
        let rates = max_min(&[10.0], &[vec![0], vec![0]]);
        assert!((rates[0] - 5.0).abs() < 1e-9);
        assert!((rates[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn classic_parking_lot() {
        // Links A(10) and B(10); flow 0 uses A+B, flow 1 uses A, flow 2
        // uses B. Max-min: everyone gets 5.
        let rates = max_min(&[10.0, 10.0], &[vec![0, 1], vec![0], vec![1]]);
        for r in rates {
            assert!((r - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unbottlenecked_flow_takes_spare() {
        // Flow 0 on tight link (2), flow 1 alone on wide link (10).
        let rates = max_min(&[2.0, 10.0], &[vec![0], vec![1]]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn weights_shift_shares() {
        let entities = vec![
            Entity {
                weight: 3.0,
                links: vec![0],
            },
            Entity {
                weight: 1.0,
                links: vec![0],
            },
        ];
        let rates = weighted_max_min(&[8.0], &entities);
        assert!((rates[0] - 6.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
        verify_max_min(&[8.0], &entities, &rates).unwrap();
    }

    #[test]
    fn multi_bottleneck_cascade() {
        // Flow 0: links 0,1. Flow 1: link 0. Flow 2: link 1.
        // cap0 = 4 (tight), cap1 = 10.
        // Round 1: link 0 share 2 -> flows 0,1 frozen at 2.
        // Round 2: link 1 has 8 left for flow 2 -> 8.
        let rates = max_min(&[4.0, 10.0], &[vec![0, 1], vec![0], vec![1]]);
        assert!((rates[0] - 2.0).abs() < 1e-9);
        assert!((rates[1] - 2.0).abs() < 1e-9);
        assert!((rates[2] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_fine_and_verifier_catches_overload() {
        assert!(max_min(&[1.0], &[]).is_empty());
        let entities = vec![Entity {
            weight: 1.0,
            links: vec![0],
        }];
        assert!(verify_max_min(&[1.0], &entities, &[2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "empty path")]
    fn rejects_empty_paths() {
        max_min(&[1.0], &[vec![]]);
    }
}
