//! Garg–Könemann max-concurrent multi-commodity flow ("LP minimum").
//!
//! Maximizes λ such that every commodity `i` can route `λ · demand_i`
//! simultaneously. With equal demands this is exactly the paper's "LP
//! minimum" objective: the maximized minimum flow throughput, with ideal
//! load balancing (§5.1).
//!
//! Implementation: the multiplicative-weights FPTAS of Garg & Könemann
//! (FOCS 1998, as simplified by Fleischer). Link lengths start at
//! `δ / capacity` and are multiplied by `(1 + ε·f/c)` per augmentation;
//! commodities route along length-shortest paths until the total "budget"
//! `D = Σ l_e c_e` reaches 1. Rather than trusting the theoretical scaling
//! constant, we rescale the accumulated flow by the *measured* worst link
//! overload, which makes the returned allocation exactly feasible and the
//! reported λ a certified achievable value.

use crate::Commodity;
use netgraph::dijkstra::shortest_path_by;
use netgraph::Graph;
use serde::{Deserialize, Serialize};

/// Result of a max-concurrent flow computation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrentFlow {
    /// The concurrent ratio: every commodity can sustain
    /// `lambda * demand` simultaneously.
    pub lambda: f64,
    /// Feasible per-commodity rates (Gbps) after rescaling. Each rate is
    /// ≥ `lambda * demand` (some commodities may carry more).
    pub rates: Vec<f64>,
    /// Augmentation count, for performance diagnostics.
    pub augmentations: usize,
}

impl ConcurrentFlow {
    /// The "LP minimum" per-flow throughput: exactly `lambda * demand_i`.
    /// The paper's LP-minimum "stops allocating residual bandwidth after
    /// it has successfully maximized the minimum flow throughput", so all
    /// flows sit at this value (Figure 7's flat LP-min distribution).
    pub fn lp_min_rates(&self, commodities: &[Commodity]) -> Vec<f64> {
        commodities.iter().map(|c| self.lambda * c.demand).collect()
    }
}

/// Runs Garg–Könemann with accuracy parameter `epsilon` (0 < ε < 1;
/// 0.1 is a good default — a few percent from optimal at moderate cost).
///
/// Panics if a commodity is unroutable (disconnected endpoints).
pub fn max_concurrent_flow(g: &Graph, commodities: &[Commodity], epsilon: f64) -> ConcurrentFlow {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    assert!(!commodities.is_empty(), "no commodities");
    let num_links = g.link_count();
    let caps: Vec<f64> = g.link_ids().map(|l| g.link(l).capacity_gbps).collect();

    // δ per Fleischer: (1+ε) / ((1+ε) L)^(1/ε), L = #links bounds path len.
    let l_bound = num_links.max(2) as f64;
    let delta = (1.0 + epsilon) / ((1.0 + epsilon) * l_bound).powf(1.0 / epsilon);
    let mut length: Vec<f64> = caps.iter().map(|&c| delta / c).collect();
    let mut budget: f64 = length.iter().zip(&caps).map(|(l, c)| l * c).sum();

    let mut link_flow = vec![0.0f64; num_links];
    let mut raw = vec![0.0f64; commodities.len()];
    let mut augmentations = 0usize;

    'outer: loop {
        for (i, com) in commodities.iter().enumerate() {
            let mut remaining = com.demand;
            while remaining > 1e-12 {
                if budget >= 1.0 {
                    break 'outer;
                }
                let (_, path) = shortest_path_by(g, com.src, com.dst, |l| length[l.idx()])
                    .unwrap_or_else(|| {
                        panic!("commodity {:?} -> {:?} unroutable", com.src, com.dst)
                    });
                // Send up to the bottleneck capacity or remaining demand.
                let bottleneck = path
                    .links
                    .iter()
                    .map(|&l| caps[l.idx()])
                    .fold(f64::INFINITY, f64::min);
                let f = remaining.min(bottleneck);
                for &l in &path.links {
                    let li = l.idx();
                    link_flow[li] += f;
                    let old = length[li];
                    length[li] = old * (1.0 + epsilon * f / caps[li]);
                    budget += (length[li] - old) * caps[li];
                }
                raw[i] += f;
                remaining -= f;
                augmentations += 1;
            }
        }
    }

    // Rescale by the measured worst overload so the flow is feasible.
    let overload = link_flow
        .iter()
        .zip(&caps)
        .map(|(f, c)| f / c)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let rates: Vec<f64> = raw.iter().map(|r| r / overload).collect();
    let lambda = rates
        .iter()
        .zip(commodities)
        .map(|(r, c)| r / c.demand)
        .fold(f64::INFINITY, f64::min);
    ConcurrentFlow {
        lambda,
        rates,
        augmentations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeKind;

    /// s0,s1 -> shared 10G link -> t0,t1.
    fn shared_bottleneck() -> (Graph, Vec<Commodity>) {
        let mut g = Graph::new();
        let sw0 = g.add_node(NodeKind::GenericSwitch, "sw0");
        let sw1 = g.add_node(NodeKind::GenericSwitch, "sw1");
        g.add_duplex_link(sw0, sw1, 10.0);
        let mut coms = Vec::new();
        for i in 0..2 {
            let s = g.add_node(NodeKind::Server, format!("s{i}"));
            let t = g.add_node(NodeKind::Server, format!("t{i}"));
            g.add_duplex_link(s, sw0, 10.0);
            g.add_duplex_link(t, sw1, 10.0);
            coms.push(Commodity::unit(s, t));
        }
        (g, coms)
    }

    #[test]
    fn two_flows_split_a_bottleneck() {
        let (g, coms) = shared_bottleneck();
        let r = max_concurrent_flow(&g, &coms, 0.05);
        // Optimal: each flow gets 5 Gbps; λ = 5 (demand 1).
        assert!(r.lambda > 4.5 && r.lambda <= 5.0 + 1e-9, "λ = {}", r.lambda);
    }

    #[test]
    fn two_disjoint_paths_double_throughput() {
        // One commodity, two parallel 10G two-hop paths: optimal 20 minus
        // NIC cap... no NIC here, endpoints are servers with 40G uplinks.
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let x = g.add_node(NodeKind::GenericSwitch, "x");
        let y = g.add_node(NodeKind::GenericSwitch, "y");
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, a, 40.0);
        g.add_duplex_link(a, x, 10.0);
        g.add_duplex_link(a, y, 10.0);
        g.add_duplex_link(x, b, 10.0);
        g.add_duplex_link(y, b, 10.0);
        g.add_duplex_link(b, t, 40.0);
        let coms = vec![Commodity::unit(s, t)];
        let r = max_concurrent_flow(&g, &coms, 0.05);
        assert!(
            r.lambda > 18.0 && r.lambda <= 20.0 + 1e-9,
            "λ = {}",
            r.lambda
        );
    }

    #[test]
    fn rates_are_feasible() {
        let (g, coms) = shared_bottleneck();
        let r = max_concurrent_flow(&g, &coms, 0.1);
        // Recheck feasibility by replaying flows is internal; here check
        // λ consistency.
        for (rate, c) in r.rates.iter().zip(&coms) {
            assert!(rate / c.demand >= r.lambda - 1e-9);
        }
        let lp_min = r.lp_min_rates(&coms);
        assert!(lp_min.iter().all(|&x| (x - r.lambda).abs() < 1e-12));
    }

    #[test]
    fn tighter_epsilon_is_at_least_as_good() {
        let (g, coms) = shared_bottleneck();
        let loose = max_concurrent_flow(&g, &coms, 0.3);
        let tight = max_concurrent_flow(&g, &coms, 0.03);
        assert!(tight.lambda >= loose.lambda * 0.95);
        assert!(tight.augmentations >= loose.augmentations);
    }

    #[test]
    #[should_panic(expected = "unroutable")]
    fn unroutable_panics() {
        let mut g = Graph::new();
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        let sw = g.add_node(NodeKind::GenericSwitch, "sw");
        g.add_duplex_link(s, sw, 10.0);
        // t is detached.
        max_concurrent_flow(&g, &[Commodity::unit(s, t)], 0.1);
    }
}
