//! Incremental weighted max-min allocation with dirty-set propagation.
//!
//! [`AllocWorkspace`](crate::AllocWorkspace) re-derives everything from
//! scratch on every call: it rebuilds the per-link user lists and active
//! weights (O(Σ|links|)) and then scans *every* live link in *every*
//! filling round (O(rounds × links)). Inside the fluid simulator that
//! cost is paid per event even though one event changes a handful of
//! entities.
//!
//! [`IncrementalAllocator`] keeps the allocation state **across**
//! calls and reconciles only what changed:
//!
//! * **Persistent incidence state.** Entities are grouped (one group per
//!   connection, one entity per subflow) and stored flat: per-entity
//!   weight, rate, freeze stamp and link lists live in dense parallel
//!   arrays indexed by a stable entity id, with a slab of per-group
//!   facades on top for the editing API. Per-link user lists, base
//!   active weights and base shares persist across epochs. An arrival/
//!   departure/reroute marks exactly the links it touches **dirty**; at
//!   the next [`allocate`](IncrementalAllocator::allocate) only dirty
//!   links re-fold their weight sums — in entity order, so the
//!   floating-point fold is bit-identical to a from-scratch build.
//! * **Bucket/far filling.** The progressive-filling loop keeps a small
//!   *bucket* of links whose exact shares straddle the current water
//!   level (scanned every round) and a *far* tier that is never scanned,
//!   each far link carrying a certified lower bound on its share.
//!   Skipping a far link is justified by a monotonicity theorem, not a
//!   tolerance: a link that was not in this round's freeze window loses
//!   a victim of weight `w` frozen at level `L` below its own share `S`,
//!   so its new share `(S·act − w·L) / (act − w)` is strictly *above*
//!   `S` — shares of non-window links only rise within an epoch. A share
//!   observed once (at epoch start, at demotion, or at a sweep), deflated
//!   by one part in 10¹² to absorb round-off drift, therefore stays a
//!   valid lower bound with no per-touch maintenance at all. A far link
//!   is promoted back into the bucket the moment its bound can no longer
//!   prove it is above the freeze threshold, so the round-by-round
//!   minimum share, freeze set, freeze *order*, and subtraction order —
//!   and therefore every output bit — match
//!   [`weighted_max_min`](crate::maxmin::weighted_max_min) exactly.
//!
//! Bit-identity is pinned by the property tests in
//! `tests/proptests.rs`, which replay random arrival/departure/reroute/
//! capacity-change sequences against a from-scratch reference at every
//! epoch.
//!
//! What this deliberately does **not** do is reuse frozen *rates* across
//! epochs without proof: the freeze threshold window (`1 + 1e-12`
//! relative slack) couples links whose shares tie, so two components
//! that look independent can exchange members of a freeze round. Rates
//! are recomputed every epoch; the savings come from not rebuilding
//! state and not scanning links that provably cannot matter yet.

use crate::workspace::AllocError;

/// Stable handle for a pushed group (one connection's subflow set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupId(u32);

/// Observability counters for the most recent
/// [`allocate`](IncrementalAllocator::allocate) call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AllocStats {
    /// Filling rounds the epoch took.
    pub rounds: u32,
    /// Links whose base state was re-folded because a structural edit
    /// (arrival / departure / reroute) or capacity change touched them.
    pub dirty_links: u32,
    /// Entities crossing at least one dirty link — the dirty set the
    /// epoch actually had to reconsider.
    pub dirty_entities: u32,
    /// Entities whose allocated rate came out bit-identical to the
    /// previous epoch's rate (reused state, recomputed cheaply).
    pub reused_rates: u32,
    /// Link scans performed by the two-tier loop.
    pub link_scans: u64,
    /// Link scans a from-scratch filling loop would have performed
    /// (`rounds × live links`); the gap is the work the near/far split
    /// saved.
    pub link_scans_naive: u64,
}

const DEAD_W: f64 = 1e-12;
/// Deflation applied to an observed share before it is stored as a far
/// bound, so accumulated round-off in later share updates (≲1e-14
/// relative over a realistic epoch) can never push the true share below
/// the stored bound. 1e-12 leaves two orders of magnitude of margin
/// while staying below the freeze-window slack, so a link provably above
/// the bound is also provably outside the freeze window.
const BOUND_DEFLATE: f64 = 1.0 - 1e-12;
/// Width of the bucket and of each promotion sweep, as a multiple of the
/// water level. Larger values scan more links per round but sweep the
/// far tier less often; the value only shapes performance — bit-identity
/// holds for any spread ≥ 1.
const TIER_SPREAD: f64 = 2.0;

/// Packed (group, entity) reference stored in per-link user lists. The
/// hot loops read only the low half (the dense entity id); edits read
/// the high half (the owning group).
#[inline]
fn pack(gid: u32, eid: u32) -> u64 {
    ((gid as u64) << 32) | eid as u64
}
#[inline]
fn unpack(e: u64) -> (u32, u32) {
    ((e >> 32) as u32, e as u32)
}

/// Group facade over the flat entity arrays: a contiguous block of
/// `nsub` entity ids starting at `ent_base`, and a region of
/// `links_flat`. Blocks are retained when a slot is freed and reused
/// when the next occupant fits, so steady-state churn (the common case:
/// a departed connection's slot taken by an arrival of the same shape)
/// allocates nothing and keeps the hot footprint compact.
#[derive(Debug, Clone, Copy, Default)]
struct GroupSlot {
    /// Subflows currently held (entities `ent_base .. ent_base + nsub`).
    nsub: u32,
    /// First entity id of this group's block.
    ent_base: u32,
    /// Entities reserved at `ent_base` (≥ `nsub`).
    ent_cap: u32,
    /// Start of this group's region in `links_flat`.
    links_off: u32,
    /// Links currently used in the region.
    links_used: u32,
    /// Links reserved at `links_off` (≥ `links_used`).
    links_cap: u32,
}

/// Link tier within the current epoch.
const TIER_OUT: u8 = 0; // no active weight (or frozen out mid-epoch)
const TIER_BUCKET: u8 = 1;
const TIER_FAR: u8 = 2;

/// Epoch-local hot state of one link: remaining capacity and active
/// weight share a 16-byte record so the subtraction loop's
/// read-modify-write touches one cache line and never straddles two.
#[derive(Debug, Clone, Copy, Default)]
struct LinkHot {
    rem: f64,
    act: f64,
}

/// Tier bits of the per-link `flags` byte ([`TIER_OUT`] /
/// [`TIER_BUCKET`] / [`TIER_FAR`]).
const FLAG_TIER: u8 = 0b11;
/// Flag bit: already enqueued for the post-round refresh.
const FLAG_TMARK: u8 = 0b100;

/// Incremental max-min allocator: persistent link/entity state plus a
/// two-tier filling loop, bit-identical to
/// [`weighted_max_min`](crate::maxmin::weighted_max_min) over the
/// equivalent entity list.
///
/// Entities are pushed in **groups** with a shared weight (a connection
/// and its subflows). The allocation-relevant entity order is group
/// position order (then subflow index); the editing API mirrors the
/// containers hot callers actually keep — append, `swap_remove`,
/// ordered remove — so the caller's vector of connections and the
/// allocator's group order never diverge.
#[derive(Debug, Clone, Default)]
pub struct IncrementalAllocator {
    slots: Vec<GroupSlot>,
    /// Group weight, dense by group id.
    weights: Vec<f64>,
    free: Vec<u32>,
    /// Position → group id (allocation order).
    order: Vec<u32>,
    /// Group id → position (`u32::MAX` when free).
    pos: Vec<u32>,
    n_entities: usize,

    // Flat per-entity state, parallel arrays indexed by entity id, so
    // the freeze/subtract pass streams dense memory instead of chasing
    // per-group heap allocations.
    /// Entity weight (the owning group's weight, duplicated for
    /// indirection-free reads in the hot loop).
    ent_w: Vec<f64>,
    /// Freeze stamp: frozen this epoch iff equal to the allocator's
    /// epoch counter. Stamps avoid a per-epoch reset pass.
    ent_frozen: Vec<u64>,
    /// Rate from the most recent epoch.
    ent_rate: Vec<f64>,
    /// Start of the entity's link list in `links_flat`.
    ent_off: Vec<u32>,
    /// Length of the entity's link list.
    ent_len: Vec<u32>,
    /// Link-list arena; each group owns one region (subflow lists
    /// back-to-back).
    links_flat: Vec<u32>,
    /// Build buffers for incoming groups: links concatenated, and
    /// per-subflow offsets into them (n+1 entries). Validated here
    /// before any allocator state is touched.
    scratch_links: Vec<u32>,
    scratch_off: Vec<u32>,

    // Per-link persistent state, grown on demand.
    /// Packed entity refs in entity order (sorted by (position, k)).
    users: Vec<Vec<u64>>,
    /// Left-fold of user weights in entity order (exactly the fold a
    /// from-scratch build computes).
    act_w_base: Vec<f64>,
    /// `max(cap, 0) / act_w_base` under the most recent capacities.
    init_share: Vec<f64>,
    /// Bit pattern of the capacity each `init_share` was computed under.
    cap_bits: Vec<u64>,
    /// Links whose base weight is above [`DEAD_W`], maintained by
    /// [`refold_dirty`](Self::refold_dirty) so epochs never touch the
    /// (mostly idle) full link range.
    live_links: Vec<u32>,
    /// Dense index into `live_links` (`u32::MAX` when not live).
    live_pos: Vec<u32>,
    dirty: Vec<u32>,
    dirty_mark: Vec<bool>,
    /// Scratch for deduplicating per-call link visits in edits.
    visit_mark: Vec<bool>,

    // Epoch scratch, kept allocated.
    /// Monotone epoch counter matched against `ent_frozen`.
    epoch: u64,
    hot: Vec<LinkHot>,
    /// Per-link tier + touched mark, packed in one byte so the subtract
    /// loop reads a single side array. Meaningful only for links the
    /// current epoch's partition visited (all live ones).
    flags: Vec<u8>,
    bucket_links: Vec<u32>,
    bucket_share: Vec<f64>,
    /// Dense index of each bucket link (`bucket_pos[l]` valid iff
    /// `tier[l] == TIER_BUCKET`).
    bucket_pos: Vec<u32>,
    far_links: Vec<u32>,
    /// Certified lower bound on each far link's share, parallel to
    /// `far_links`.
    far_bound: Vec<f64>,
    touched: Vec<u32>,
    win_links: Vec<u32>,

    stats: AllocStats,
}

impl IncrementalAllocator {
    /// Creates an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of groups currently held.
    pub fn num_groups(&self) -> usize {
        self.order.len()
    }

    /// Number of entities (subflows) currently held.
    pub fn num_entities(&self) -> usize {
        self.n_entities
    }

    /// Counters for the most recent [`allocate`](Self::allocate) call.
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// The group id at allocation position `i`.
    pub fn group_at(&self, i: usize) -> GroupId {
        GroupId(self.order[i])
    }

    /// Per-subflow rates of a group from the most recent epoch.
    pub fn group_rates(&self, g: GroupId) -> &[f64] {
        let s = self.slots[g.0 as usize];
        &self.ent_rate[s.ent_base as usize..(s.ent_base + s.nsub) as usize]
    }

    /// Sum of a group's subflow rates, folded in subflow order — the
    /// same partial sums a flat `rates × owner` fold produces for a
    /// contiguous group.
    pub fn group_rate_sum(&self, g: GroupId) -> f64 {
        self.group_rates(g).iter().sum()
    }

    #[cfg(test)]
    fn sub_links(&self, g: GroupId, k: u32) -> &[u32] {
        let eid = (self.slots[g.0 as usize].ent_base + k) as usize;
        let lo = self.ent_off[eid] as usize;
        &self.links_flat[lo..lo + self.ent_len[eid] as usize]
    }

    fn ensure_links(&mut self, l: usize) {
        if l >= self.users.len() {
            let n = l + 1;
            self.users.resize_with(n, Vec::new);
            self.act_w_base.resize(n, 0.0);
            self.init_share.resize(n, 0.0);
            self.cap_bits.resize(n, f64::NAN.to_bits());
            self.live_pos.resize(n, u32::MAX);
            self.dirty_mark.resize(n, false);
            self.visit_mark.resize(n, false);
        }
    }

    #[inline]
    fn mark_dirty(&mut self, l: u32) {
        if !self.dirty_mark[l as usize] {
            self.dirty_mark[l as usize] = true;
            self.dirty.push(l);
        }
    }

    /// Validates and buffers an incoming group's subflow paths into the
    /// scratch arrays without touching allocator state.
    fn buffer_subflows<I, P>(&mut self, subflows: I) -> Result<(), AllocError>
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = usize>,
    {
        self.scratch_links.clear();
        self.scratch_off.clear();
        self.scratch_off.push(0);
        for path in subflows {
            let before = self.scratch_links.len();
            self.scratch_links
                .extend(path.into_iter().map(|l| l as u32));
            if self.scratch_links.len() == before {
                return Err(AllocError::EmptyPath);
            }
            self.scratch_off
                .push(u32::try_from(self.scratch_links.len()).expect("offsets fit u32"));
        }
        if self.scratch_off.len() < 2 {
            return Err(AllocError::EmptyPath);
        }
        Ok(())
    }

    /// Installs the buffered subflows into `gid`'s slot, reusing its
    /// retained entity block and link region when they fit and claiming
    /// fresh space at the arena ends otherwise.
    fn place_buffered(&mut self, gid: u32) {
        let gi = gid as usize;
        let nsub = self.scratch_off.len() - 1;
        let total = self.scratch_links.len();
        let weight = self.weights[gi];
        let mut s = self.slots[gi];
        if (s.ent_cap as usize) < nsub {
            s.ent_base = u32::try_from(self.ent_w.len()).expect("entity base fits u32");
            s.ent_cap = nsub as u32;
            let n = self.ent_w.len() + nsub;
            self.ent_w.resize(n, 0.0);
            self.ent_frozen.resize(n, 0);
            self.ent_rate.resize(n, 0.0);
            self.ent_off.resize(n, 0);
            self.ent_len.resize(n, 0);
        }
        if (s.links_cap as usize) < total {
            s.links_off = u32::try_from(self.links_flat.len()).expect("link offset fits u32");
            s.links_cap = total as u32;
            self.links_flat.resize(self.links_flat.len() + total, 0);
        }
        s.nsub = nsub as u32;
        s.links_used = total as u32;
        let lo = s.links_off as usize;
        self.links_flat[lo..lo + total].copy_from_slice(&self.scratch_links);
        for k in 0..nsub {
            let eid = s.ent_base as usize + k;
            self.ent_w[eid] = weight;
            self.ent_frozen[eid] = 0;
            self.ent_rate[eid] = 0.0;
            self.ent_off[eid] = (lo + self.scratch_off[k] as usize) as u32;
            self.ent_len[eid] = self.scratch_off[k + 1] - self.scratch_off[k];
        }
        self.slots[gi] = s;
    }

    /// Appends a group at the end of the allocation order. Panics on an
    /// empty subflow set, an empty subflow path, or a non-positive
    /// weight; see [`try_push_group`](Self::try_push_group).
    pub fn push_group<I, P>(&mut self, weight: f64, subflows: I) -> GroupId
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = usize>,
    {
        match self.try_push_group(weight, subflows) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Appends a group, rejecting bad input with a typed error. On error
    /// the allocator is unchanged.
    pub fn try_push_group<I, P>(&mut self, weight: f64, subflows: I) -> Result<GroupId, AllocError>
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = usize>,
    {
        if weight.is_nan() || weight <= 0.0 {
            return Err(AllocError::NonPositiveWeight { weight });
        }
        // Buffer first: a rejected group must leave no trace, and after
        // this point nothing can fail.
        self.buffer_subflows(subflows)?;
        let gid = match self.free.pop() {
            Some(g) => g,
            None => {
                self.slots.push(GroupSlot::default());
                self.weights.push(0.0);
                self.pos.push(u32::MAX);
                u32::try_from(self.slots.len() - 1).expect("group ids fit u32")
            }
        };
        self.weights[gid as usize] = weight;
        self.place_buffered(gid);
        self.pos[gid as usize] = u32::try_from(self.order.len()).expect("positions fit u32");
        self.order.push(gid);
        // New group holds the maximum position, so plain appends keep
        // every user list sorted by (position, subflow).
        let s = self.slots[gid as usize];
        for eid in s.ent_base..s.ent_base + s.nsub {
            let lo = self.ent_off[eid as usize] as usize;
            let hi = lo + self.ent_len[eid as usize] as usize;
            for idx in lo..hi {
                let l = self.links_flat[idx] as usize;
                self.ensure_links(l);
                self.users[l].push(pack(gid, eid));
                self.mark_dirty(l as u32);
            }
        }
        self.n_entities += s.nsub as usize;
        Ok(GroupId(gid))
    }

    /// Deletes every user-list entry of `gid`, marking its links dirty.
    fn detach_group(&mut self, gid: u32) {
        let s = self.slots[gid as usize];
        let lo = s.links_off as usize;
        let hi = lo + s.links_used as usize;
        for idx in lo..hi {
            let l = self.links_flat[idx];
            let li = l as usize;
            if !self.visit_mark[li] {
                self.visit_mark[li] = true;
                self.users[li].retain(|&e| (e >> 32) as u32 != gid);
                self.mark_dirty(l);
            }
        }
        for idx in lo..hi {
            self.visit_mark[self.links_flat[idx] as usize] = false;
        }
    }

    /// Re-inserts `gid`'s user-list entries at its current position,
    /// assuming they are absent. Lists stay sorted by (position, k).
    fn attach_group(&mut self, gid: u32) {
        let p = self.pos[gid as usize];
        let s = self.slots[gid as usize];
        for k in 0..s.nsub {
            let eid = s.ent_base + k;
            let lo = self.ent_off[eid as usize] as usize;
            let hi = lo + self.ent_len[eid as usize] as usize;
            for idx in lo..hi {
                let l = self.links_flat[idx] as usize;
                self.ensure_links(l);
                // First entry strictly after (p, k) in (position, k)
                // order; duplicates of (gid, k) on the same link cannot
                // exist (a path visits a link once).
                let at = {
                    let pos = &self.pos;
                    let slots = &self.slots;
                    self.users[l]
                        .iter()
                        .position(|&e| {
                            let (og, oe) = unpack(e);
                            let ok = oe - slots[og as usize].ent_base;
                            (pos[og as usize], ok) > (p, k)
                        })
                        .unwrap_or(self.users[l].len())
                };
                self.users[l].insert(at, pack(gid, eid));
                self.mark_dirty(l as u32);
            }
        }
    }

    /// Removes the group at position `i`, moving the last group into its
    /// place — the mirror of `Vec::swap_remove` on the caller's side.
    pub fn swap_remove_group(&mut self, i: usize) {
        let rid = self.order[i];
        let last = self.order.len() - 1;
        let mid = self.order[last];
        self.detach_group(rid);
        self.order.swap_remove(i);
        if mid != rid {
            // The moved group's position changes, so its entries must be
            // re-placed (and its links re-folded: the fold order of every
            // list it appears in changed).
            self.detach_group(mid);
            self.pos[mid as usize] = i as u32;
            self.attach_group(mid);
        }
        self.free_slot(rid);
    }

    /// Removes the group at position `i`, shifting later groups down —
    /// the mirror of `Vec::remove`. Relative order (and therefore every
    /// other link's weight fold) is unchanged, so only the removed
    /// group's links go dirty.
    pub fn remove_group_ordered(&mut self, i: usize) {
        let rid = self.order[i];
        self.detach_group(rid);
        self.order.remove(i);
        for p in i..self.order.len() {
            self.pos[self.order[p] as usize] = p as u32;
        }
        self.free_slot(rid);
    }

    /// Replaces the paths (and weight) of the group at position `i`,
    /// keeping its position — the reroute edge. Panics on bad input like
    /// [`push_group`](Self::push_group).
    pub fn replace_group<I, P>(&mut self, i: usize, weight: f64, subflows: I)
    where
        I: IntoIterator<Item = P>,
        P: IntoIterator<Item = usize>,
    {
        assert!(weight > 0.0, "entity weight must be positive");
        let gid = self.order[i];
        self.detach_group(gid);
        self.n_entities -= self.slots[gid as usize].nsub as usize;
        if self.buffer_subflows(subflows).is_err() {
            panic!("entity with empty path");
        }
        self.weights[gid as usize] = weight;
        self.place_buffered(gid);
        self.n_entities += self.slots[gid as usize].nsub as usize;
        self.attach_group(gid);
    }

    /// Drops every group, keeping scratch capacity and marking all
    /// previously-occupied links dirty — the full-invalidation escape
    /// hatch for callers whose population changed in ways the edit API
    /// does not track (e.g. a batch of reroutes and removals at once).
    pub fn clear(&mut self) {
        let order = std::mem::take(&mut self.order);
        for &gid in &order {
            let s = self.slots[gid as usize];
            let lo = s.links_off as usize;
            for idx in lo..lo + s.links_used as usize {
                let l = self.links_flat[idx];
                if !self.users[l as usize].is_empty() {
                    self.users[l as usize].clear();
                    self.mark_dirty(l);
                }
            }
            self.free_slot(gid);
        }
        self.order = order;
        self.order.clear();
        debug_assert_eq!(self.n_entities, 0);
    }

    fn free_slot(&mut self, gid: u32) {
        let slot = &mut self.slots[gid as usize];
        self.n_entities -= slot.nsub as usize;
        // The entity block and link region stay reserved for the slot's
        // next occupant.
        slot.nsub = 0;
        slot.links_used = 0;
        self.pos[gid as usize] = u32::MAX;
        self.free.push(gid);
    }

    /// Re-folds the base weight of every dirty link from its user list.
    ///
    /// The fold runs in entity order — the exact sequence of `+=`
    /// operations a from-scratch build performs for that link — so the
    /// result is bit-identical to rebuilding. (Subtracting a departed
    /// weight instead would not be: floating-point addition is not
    /// associative enough to undo a fold term.)
    fn refold_dirty(&mut self, capacity: &[f64]) {
        self.stats.dirty_links = u32::try_from(self.dirty.len()).expect("dirty count fits u32");
        let mut dirty_entities = 0u32;
        let dirty = std::mem::take(&mut self.dirty);
        for &l in &dirty {
            let li = l as usize;
            self.dirty_mark[li] = false;
            let mut w = 0.0f64;
            for &e in &self.users[li] {
                w += self.ent_w[e as u32 as usize];
            }
            dirty_entities += u32::try_from(self.users[li].len()).expect("user count fits u32");
            self.act_w_base[li] = w;
            let cap = capacity.get(li).copied().unwrap_or(0.0);
            self.cap_bits[li] = cap.to_bits();
            self.init_share[li] = if w > DEAD_W {
                cap.max(0.0) / w
            } else {
                f64::INFINITY
            };
            // Maintain the persistent live list so allocate() never has
            // to walk the full link range.
            let was_live = self.live_pos[li] != u32::MAX;
            let now_live = w > DEAD_W;
            if now_live && !was_live {
                self.live_pos[li] =
                    u32::try_from(self.live_links.len()).expect("live count fits u32");
                self.live_links.push(l);
            } else if !now_live && was_live {
                let d = self.live_pos[li] as usize;
                self.live_links.swap_remove(d);
                if d < self.live_links.len() {
                    self.live_pos[self.live_links[d] as usize] = d as u32;
                }
                self.live_pos[li] = u32::MAX;
            }
        }
        self.dirty = dirty;
        self.dirty.clear();
        self.stats.dirty_entities = dirty_entities;
    }

    /// Computes the weighted max-min fair rate of every held entity,
    /// bit-identical to a from-scratch
    /// [`weighted_max_min`](crate::maxmin::weighted_max_min) over the
    /// equivalent entity list (groups in position order, subflows in
    /// order within each group).
    ///
    /// Rates are read back per group via
    /// [`group_rates`](Self::group_rates) /
    /// [`group_rate_sum`](Self::group_rate_sum); they stay valid until
    /// the next structural edit or `allocate` call.
    pub fn allocate(&mut self, capacity: &[f64]) {
        self.stats = AllocStats::default();
        self.epoch += 1;
        let epoch = self.epoch;
        self.ensure_links(capacity.len().saturating_sub(1));
        self.refold_dirty(capacity);
        let nlinks = self.users.len();

        let mut remaining = self.n_entities;
        if remaining == 0 {
            return;
        }

        // Stale tiers and marks on previously-used entries are harmless:
        // every read goes through a live link, and the partition below
        // re-seeds the flags of every live link.
        self.hot.resize(nlinks, LinkHot::default());
        self.flags.resize(nlinks, 0);
        self.bucket_pos.resize(nlinks, 0);

        // First pass over the live list: fold capacity changes into the
        // cached epoch-start shares (a failed or recovered link is just
        // a capacity edit) and find the starting water level.
        let mut min_init = f64::INFINITY;
        for li in 0..self.live_links.len() {
            let l = self.live_links[li] as usize;
            let cap = capacity.get(l).copied().unwrap_or(0.0);
            if cap.to_bits() != self.cap_bits[l] {
                self.cap_bits[l] = cap.to_bits();
                self.init_share[l] = cap.max(0.0) / self.act_w_base[l];
            }
            if self.init_share[l] < min_init {
                min_init = self.init_share[l];
            }
        }

        // Second pass: seed the hot state and partition. Links within
        // TIER_SPREAD of the water level go to the bucket (exact shares,
        // scanned every round); the rest go far, their epoch-start share
        // — deflated — serving as the certified bound.
        self.bucket_links.clear();
        self.bucket_share.clear();
        self.far_links.clear();
        self.far_bound.clear();
        let h0 = if min_init.is_finite() {
            min_init * TIER_SPREAD
        } else {
            f64::INFINITY
        };
        let mut far_floor = f64::INFINITY;
        for li in 0..self.live_links.len() {
            let l = self.live_links[li] as usize;
            self.hot[l] = LinkHot {
                rem: f64::from_bits(self.cap_bits[l]),
                act: self.act_w_base[l],
            };
            let s = self.init_share[l];
            if s <= h0 {
                self.flags[l] = TIER_BUCKET;
                self.bucket_pos[l] =
                    u32::try_from(self.bucket_links.len()).expect("bucket fits u32");
                self.bucket_links.push(l as u32);
                self.bucket_share.push(s);
            } else {
                self.flags[l] = TIER_FAR;
                self.far_links.push(l as u32);
                let b = s * BOUND_DEFLATE;
                self.far_bound.push(b);
                if b < far_floor {
                    far_floor = b;
                }
            }
        }
        let live_at_start = self.live_links.len() as u64;

        self.touched.clear();

        let mut rounds = 0u32;
        let mut scans = 0u64;
        let mut reused_total = 0u32;
        while remaining > 0 {
            rounds += 1;
            // Candidate water level over the bucket. Far links are all
            // provably above it (their certified bounds sit above the
            // threshold), so the bucket minimum is the global minimum.
            let mut min_share = f64::INFINITY;
            for &s in &self.bucket_share {
                min_share = min_share.min(s);
            }
            scans += self.bucket_share.len() as u64;
            let mut threshold = min_share * (1.0 + 1e-12) + 1e-15;
            // Sweep-promote far links whose certified bound can no
            // longer prove they are above the threshold. Each sweep
            // evaluates everything within TIER_SPREAD of the water
            // level: candidates truly near it join the bucket, stale
            // bounds are re-certified at today's (higher) share, so the
            // floor rises ~TIER_SPREAD per sweep and sweeps stay rare.
            // Promotion can lower the water level, so re-check until
            // the floor clears the threshold.
            loop {
                if (min_share.is_finite() && threshold < far_floor) || self.far_links.is_empty() {
                    break;
                }
                let target = if min_share.is_finite() {
                    threshold * TIER_SPREAD
                } else {
                    far_floor * TIER_SPREAD
                };
                scans += self.far_links.len() as u64;
                let mut new_floor = f64::INFINITY;
                let mut kept = 0usize;
                for fi in 0..self.far_links.len() {
                    let l = self.far_links[fi] as usize;
                    let b = self.far_bound[fi];
                    if b <= target {
                        let h = self.hot[l];
                        if h.act > DEAD_W {
                            let share = h.rem.max(0.0) / h.act;
                            if share <= target {
                                self.flags[l] = TIER_BUCKET;
                                self.bucket_pos[l] = u32::try_from(self.bucket_links.len())
                                    .expect("bucket fits u32");
                                self.bucket_links.push(l as u32);
                                self.bucket_share.push(share);
                                if share < min_share {
                                    min_share = share;
                                }
                            } else {
                                let nb = share * BOUND_DEFLATE;
                                self.far_links[kept] = l as u32;
                                self.far_bound[kept] = nb;
                                kept += 1;
                                if nb < new_floor {
                                    new_floor = nb;
                                }
                            }
                        } else {
                            // Every user froze via other links; drop it.
                            self.flags[l] = TIER_OUT;
                        }
                    } else {
                        self.far_links[kept] = l as u32;
                        self.far_bound[kept] = b;
                        kept += 1;
                        if b < new_floor {
                            new_floor = b;
                        }
                    }
                }
                self.far_links.truncate(kept);
                self.far_bound.truncate(kept);
                far_floor = new_floor;
                threshold = min_share * (1.0 + 1e-12) + 1e-15;
            }
            if !min_share.is_finite() {
                break; // nothing live carries weight; leftover rates stay 0
            }

            // Freeze window: bucket links at the water level, ascending
            // link index, then users in entity order — the reference
            // loop's exact victim sequence.
            self.win_links.clear();
            for (i, &s) in self.bucket_share.iter().enumerate() {
                if s <= threshold {
                    self.win_links.push(self.bucket_links[i]);
                }
            }
            if self.win_links.len() > 1 {
                self.win_links.sort_unstable();
            }

            // Fused freeze-and-subtract: discovery order over the
            // window's user lists IS victim order, so subtracting inline
            // performs the exact floating-point sequence of the
            // reference's collect-then-subtract (victim order, link
            // order within each entity). Every operand is a dense array
            // indexed by entity id — no pointer chasing per victim.
            let mut frozen_now = 0usize;
            {
                let users = &self.users;
                let ent_frozen = &mut self.ent_frozen;
                let ent_w = &self.ent_w;
                let ent_rate = &mut self.ent_rate;
                let ent_off = &self.ent_off;
                let ent_len = &self.ent_len;
                let links_flat = &self.links_flat;
                let hot = &mut self.hot;
                let flags = &mut self.flags;
                let touched = &mut self.touched;
                for &wl in &self.win_links {
                    for &e in &users[wl as usize] {
                        let eid = e as u32 as usize;
                        if ent_frozen[eid] == epoch {
                            continue;
                        }
                        ent_frozen[eid] = epoch;
                        frozen_now += 1;
                        let w = ent_w[eid];
                        let rate = w * min_share;
                        if ent_rate[eid].to_bits() == rate.to_bits() {
                            reused_total += 1;
                        }
                        ent_rate[eid] = rate;
                        let lo = ent_off[eid] as usize;
                        let hi = lo + ent_len[eid] as usize;
                        for &l in &links_flat[lo..hi] {
                            let li = l as usize;
                            let h = &mut hot[li];
                            h.rem -= rate;
                            h.act -= w;
                            // Only bucket links need the post-round
                            // refresh; a touched far link's certified
                            // bound stays valid (shares only rise), so
                            // it never enters the queue at all.
                            if flags[li] == TIER_BUCKET {
                                flags[li] |= FLAG_TMARK;
                                touched.push(l);
                            }
                        }
                    }
                }
            }
            debug_assert!(frozen_now > 0);
            remaining -= frozen_now;

            // Refresh touched bucket links once, from their final
            // post-round values (identical bits to a per-scan recompute,
            // since the operands are identical). Touched *far* links
            // need nothing: a non-window link's share only rises, so
            // its stored bound stays valid. Bucket links whose share
            // climbed out of the bucket demote, the observed share
            // becoming their certified bound.
            let demote_h = threshold * TIER_SPREAD;
            for ti in 0..self.touched.len() {
                let l = self.touched[ti] as usize;
                self.flags[l] &= !FLAG_TMARK;
                debug_assert_eq!(self.flags[l] & FLAG_TIER, TIER_BUCKET);
                let h = self.hot[l];
                let drop_at = if h.act > DEAD_W {
                    let share = h.rem.max(0.0) / h.act;
                    if share > demote_h {
                        self.flags[l] = TIER_FAR;
                        self.far_links.push(l as u32);
                        let b = share * BOUND_DEFLATE;
                        self.far_bound.push(b);
                        if b < far_floor {
                            far_floor = b;
                        }
                        Some(self.bucket_pos[l] as usize)
                    } else {
                        self.bucket_share[self.bucket_pos[l] as usize] = share;
                        None
                    }
                } else {
                    // Dead: every user froze this round; drop it.
                    self.flags[l] = TIER_OUT;
                    Some(self.bucket_pos[l] as usize)
                };
                if let Some(d) = drop_at {
                    self.bucket_links.swap_remove(d);
                    self.bucket_share.swap_remove(d);
                    if d < self.bucket_links.len() {
                        self.bucket_pos[self.bucket_links[d] as usize] = d as u32;
                    }
                }
            }
            self.touched.clear();
        }
        self.stats.rounds = rounds;
        self.stats.reused_rates = reused_total;
        self.stats.link_scans = scans;
        self.stats.link_scans_naive = rounds as u64 * live_at_start;
        // Entities never frozen (every link they cross died) read as 0,
        // like the reference's zero-initialized rate vector.
        if remaining > 0 {
            for &gid in &self.order {
                let s = self.slots[gid as usize];
                for eid in s.ent_base..s.ent_base + s.nsub {
                    if self.ent_frozen[eid as usize] != epoch {
                        self.ent_rate[eid as usize] = 0.0;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxmin::{weighted_max_min, Entity};

    /// Flattens the allocator's current groups into the equivalent
    /// from-scratch entity list (position order, subflows in order).
    fn flatten(a: &IncrementalAllocator) -> Vec<Entity> {
        let mut out = Vec::new();
        for i in 0..a.num_groups() {
            let g = a.group_at(i);
            let s = a.slots[g.0 as usize];
            for k in 0..s.nsub {
                out.push(Entity {
                    weight: a.weights[g.0 as usize],
                    links: a.sub_links(g, k).iter().map(|&l| l as usize).collect(),
                });
            }
        }
        out
    }

    fn assert_matches_reference(a: &mut IncrementalAllocator, caps: &[f64]) {
        let want = weighted_max_min(caps, &flatten(a));
        a.allocate(caps);
        let mut wi = 0usize;
        for i in 0..a.num_groups() {
            let g = a.group_at(i);
            for &r in a.group_rates(g) {
                assert_eq!(
                    r.to_bits(),
                    want[wi].to_bits(),
                    "entity {wi} diverged: {r} vs {}",
                    want[wi]
                );
                wi += 1;
            }
        }
        assert_eq!(wi, want.len());
    }

    #[test]
    fn push_allocate_matches_reference() {
        let mut a = IncrementalAllocator::new();
        let caps = vec![10.0, 4.0, 7.3, 10.0];
        a.push_group(1.0, [vec![0usize, 1], vec![0, 2]]);
        a.push_group(2.5, [vec![1usize, 3]]);
        a.push_group(0.5, [vec![2usize], vec![3]]);
        assert_matches_reference(&mut a, &caps);
        assert_eq!(a.num_groups(), 3);
        assert_eq!(a.num_entities(), 5);
    }

    #[test]
    fn edits_stay_bit_identical() {
        let mut a = IncrementalAllocator::new();
        let mut caps = vec![10.0, 10.0, 4.0, 7.0, 12.0];
        a.push_group(1.0, [vec![0usize, 2], vec![1, 3]]);
        a.push_group(1.0, [vec![2usize, 4]]);
        a.push_group(3.0, [vec![0usize], vec![4]]);
        assert_matches_reference(&mut a, &caps);
        // Departure via swap_remove (last group moves into slot 0).
        a.swap_remove_group(0);
        assert_matches_reference(&mut a, &caps);
        // Arrival.
        a.push_group(0.5, [vec![1usize, 2, 3]]);
        assert_matches_reference(&mut a, &caps);
        // Capacity change (link failure).
        caps[2] = 0.0;
        assert_matches_reference(&mut a, &caps);
        // Reroute: replace paths in place.
        a.replace_group(1, 0.5, [vec![0usize, 4], vec![3]]);
        assert_matches_reference(&mut a, &caps);
        // Ordered removal (park).
        a.remove_group_ordered(0);
        assert_matches_reference(&mut a, &caps);
        // Recovery.
        caps[2] = 4.0;
        assert_matches_reference(&mut a, &caps);
    }

    #[test]
    fn empty_allocator_is_a_noop() {
        let mut a = IncrementalAllocator::new();
        a.allocate(&[5.0, 5.0]);
        assert_eq!(a.num_entities(), 0);
        assert_eq!(a.stats().rounds, 0);
    }

    #[test]
    fn group_rate_sum_folds_in_subflow_order() {
        let mut a = IncrementalAllocator::new();
        let caps = vec![9.0];
        let g = a.push_group(1.0, [vec![0usize], vec![0], vec![0]]);
        a.allocate(&caps);
        let sum: f64 = a.group_rates(g).iter().sum();
        assert_eq!(a.group_rate_sum(g).to_bits(), sum.to_bits());
        assert!((sum - 9.0).abs() < 1e-9);
    }

    #[test]
    fn stats_report_dirty_and_reuse() {
        let mut a = IncrementalAllocator::new();
        let caps = vec![10.0, 10.0, 10.0];
        a.push_group(1.0, [vec![0usize, 1]]);
        a.push_group(1.0, [vec![2usize]]);
        a.allocate(&caps);
        assert!(a.stats().dirty_links >= 3);
        // Nothing changed: no dirty links, every rate bit-stable.
        a.allocate(&caps);
        assert_eq!(a.stats().dirty_links, 0);
        assert_eq!(a.stats().reused_rates, 2);
        assert!(a.stats().rounds >= 1);
    }

    #[test]
    fn rejects_bad_groups_with_typed_errors() {
        let mut a = IncrementalAllocator::new();
        assert_eq!(
            a.try_push_group(0.0, [vec![0usize]]),
            Err(AllocError::NonPositiveWeight { weight: 0.0 })
        );
        assert_eq!(
            a.try_push_group(1.0, [Vec::<usize>::new()]),
            Err(AllocError::EmptyPath)
        );
        assert_eq!(
            a.try_push_group(1.0, Vec::<Vec<usize>>::new()),
            Err(AllocError::EmptyPath)
        );
        // Failed pushes leave no trace.
        assert_eq!(a.num_groups(), 0);
        let g = a.push_group(1.0, [vec![0usize]]).0;
        assert_eq!(g, 0);
    }

    #[test]
    fn dead_link_leaves_unroutable_entity_at_zero() {
        let mut a = IncrementalAllocator::new();
        // Entity whose only link has zero capacity still freezes at
        // share zero (reference semantics); an entity whose link carries
        // no weight at all never freezes and reads zero.
        let caps = vec![0.0, 10.0];
        a.push_group(1.0, [vec![0usize]]);
        a.push_group(1.0, [vec![1usize]]);
        assert_matches_reference(&mut a, &caps);
    }

    #[test]
    fn slot_reuse_keeps_blocks_compact() {
        // Churn one slot through shapes that shrink, grow, and shrink
        // again; rates must stay correct and the reused block must not
        // leak stale state into the fold.
        let mut a = IncrementalAllocator::new();
        let caps = vec![8.0, 8.0, 8.0];
        a.push_group(1.0, [vec![0usize], vec![1], vec![2]]);
        assert_matches_reference(&mut a, &caps);
        a.swap_remove_group(0);
        // Smaller occupant in the reused slot.
        a.push_group(2.0, [vec![1usize]]);
        assert_matches_reference(&mut a, &caps);
        // Larger occupant forces a fresh block.
        a.replace_group(0, 2.0, [vec![0usize, 1], vec![1, 2], vec![0, 2], vec![0]]);
        assert_matches_reference(&mut a, &caps);
        a.clear();
        assert_eq!(a.num_entities(), 0);
        a.push_group(1.0, [vec![2usize]]);
        assert_matches_reference(&mut a, &caps);
    }
}
