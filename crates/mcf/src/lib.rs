//! Multi-commodity flow approximations — the paper's "LP" baselines.
//!
//! The paper evaluates routing efficiency against two linear programs
//! (§5.1): **LP minimum** maximizes the minimum flow throughput (ideal
//! load balancing) and **LP average** maximizes the average flow
//! throughput (best network utilization). Solving exact LPs needs an
//! external solver; this crate implements well-known combinatorial
//! approximations instead, which preserve the comparisons the paper makes:
//!
//! * [`concurrent::max_concurrent_flow`] — the Garg–Könemann (1998)
//!   multiplicative-weights algorithm for the *max-concurrent flow*
//!   problem. With equal demands, the concurrent ratio λ **is** the
//!   maximized minimum flow throughput. Our implementation rescales by
//!   the measured worst link overload, so the returned allocation is
//!   always exactly feasible and λ is a certified lower bound within
//!   (1 − O(ε)) of the optimum.
//! * [`greedy::max_total_flow`] — greedy shortest-residual-path packing
//!   with a per-flow cap (the NIC rate). Like the true LP-average
//!   solution, it drives utilization high by assigning some flows zero
//!   and others their full NIC rate (§5.1, Figure 7 discussion).
//! * [`maxmin::weighted_max_min`] — exact progressive-filling max-min
//!   fairness over *fixed* path sets; this is the allocation model the
//!   fluid simulator uses for TCP/MPTCP, shared here so LP baselines and
//!   the simulator agree on primitives.

//!
//! The max-min filling loop is implemented once in
//! [`workspace::AllocWorkspace`], a caller-owned scratch that hot loops
//! (the fluid simulator) reuse across allocations;
//! [`maxmin::weighted_max_min`] is a thin convenience wrapper over it.
//! [`incremental::IncrementalAllocator`] layers persistent state and
//! dirty-set reconciliation on top for callers whose entity population
//! changes a little at a time — bit-identical output, incremental cost.

pub mod concurrent;
pub mod greedy;
pub mod incremental;
pub mod maxmin;
pub mod workspace;

pub use incremental::{AllocStats, GroupId, IncrementalAllocator};
pub use workspace::{AllocError, AllocWorkspace};

use netgraph::NodeId;
use serde::{Deserialize, Serialize};

/// One demand between two servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Commodity {
    /// Source server.
    pub src: NodeId,
    /// Destination server.
    pub dst: NodeId,
    /// Demand in Gbps (for throughput studies, the NIC rate).
    pub demand: f64,
}

impl Commodity {
    /// Unit-demand commodity (demand = 1 Gbps); the usual choice when only
    /// relative throughput matters.
    pub fn unit(src: NodeId, dst: NodeId) -> Self {
        Self {
            src,
            dst,
            demand: 1.0,
        }
    }
}
