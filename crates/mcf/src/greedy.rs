//! Greedy max-total-throughput allocation ("LP average").
//!
//! The paper's second LP maximizes the *average* (equivalently, total)
//! flow throughput, which "assigns some zero throughputs and some high or
//! even full throughputs to maximize the network utilization" (§5.1).
//! The exact LP is a max-flow packing; we approximate it greedily:
//! commodities repeatedly grab shortest residual paths, cheapest first,
//! each capped at its demand (the NIC rate). Short flows therefore fill
//! up first and long or unlucky flows are starved — reproducing the
//! qualitative LP-average behaviour the paper reports in Figure 7.

use crate::Commodity;
use netgraph::dijkstra::shortest_path_by;
use netgraph::Graph;

/// Per-commodity rates of the greedy max-total allocation.
///
/// Deterministic: commodities are served in ascending order of their
/// static shortest-path length (ties by index) — short flows pack first,
/// maximizing utilization like the true LP-average solution. Each
/// commodity then augments along shortest *residual* paths until its
/// demand cap or path exhaustion.
pub fn max_total_flow(g: &Graph, commodities: &[Commodity]) -> Vec<f64> {
    let caps: Vec<f64> = g.link_ids().map(|l| g.link(l).capacity_gbps).collect();
    let mut residual = caps.clone();
    let mut rates = vec![0.0f64; commodities.len()];

    // Static order: shortest path length ascending, then index.
    let mut order: Vec<(usize, usize)> = commodities
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let len =
                shortest_path_by(g, c.src, c.dst, |_| 1.0).map_or(usize::MAX, |(_, p)| p.len());
            (len, i)
        })
        .collect();
    order.sort();

    for (_, i) in order {
        let com = &commodities[i];
        let mut remaining = com.demand;
        while remaining > 1e-9 {
            let found = shortest_path_by(g, com.src, com.dst, |l| {
                if residual[l.idx()] > 1e-9 {
                    1.0
                } else {
                    f64::INFINITY
                }
            });
            let Some((_, path)) = found else { break };
            let bottleneck = path
                .links
                .iter()
                .map(|&l| residual[l.idx()])
                .fold(f64::INFINITY, f64::min);
            let f = remaining.min(bottleneck);
            debug_assert!(f > 0.0);
            for &l in &path.links {
                residual[l.idx()] -= f;
            }
            rates[i] += f;
            remaining -= f;
        }
    }
    rates
}

/// Average of `rates` (0 for an empty slice).
pub fn mean(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        0.0
    } else {
        rates.iter().sum::<f64>() / rates.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{Graph, NodeKind};

    #[test]
    fn starves_the_long_flow_for_total_throughput() {
        // Two 10G links in a line; flow A spans both, flows B and C take
        // one each. Max-total: B = C = 10, A = 0. (Max-min would give 5s.)
        let mut g = Graph::new();
        let sw = [
            g.add_node(NodeKind::GenericSwitch, "x"),
            g.add_node(NodeKind::GenericSwitch, "y"),
            g.add_node(NodeKind::GenericSwitch, "z"),
        ];
        g.add_duplex_link(sw[0], sw[1], 10.0);
        g.add_duplex_link(sw[1], sw[2], 10.0);
        let server = |at: usize, name: &str, g: &mut Graph| {
            let s = g.add_node(NodeKind::Server, name);
            g.add_duplex_link(s, sw[at], 100.0);
            s
        };
        let a0 = server(0, "a0", &mut g);
        let a1 = server(2, "a1", &mut g);
        let b0 = server(0, "b0", &mut g);
        let b1 = server(1, "b1", &mut g);
        let c0 = server(1, "c0", &mut g);
        let c1 = server(2, "c1", &mut g);
        let coms = vec![
            Commodity {
                src: a0,
                dst: a1,
                demand: 100.0,
            },
            Commodity {
                src: b0,
                dst: b1,
                demand: 100.0,
            },
            Commodity {
                src: c0,
                dst: c1,
                demand: 100.0,
            },
        ];
        let rates = max_total_flow(&g, &coms);
        assert!(rates[1] >= 10.0 - 1e-9);
        assert!(rates[2] >= 10.0 - 1e-9);
        assert!(
            rates[0] <= 1e-9,
            "long flow should be starved, got {}",
            rates[0]
        );
        assert!((mean(&rates) - 20.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn respects_demand_cap() {
        let mut g = Graph::new();
        let x = g.add_node(NodeKind::GenericSwitch, "x");
        let y = g.add_node(NodeKind::GenericSwitch, "y");
        g.add_duplex_link(x, y, 40.0);
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, x, 40.0);
        g.add_duplex_link(t, y, 40.0);
        let coms = vec![Commodity {
            src: s,
            dst: t,
            demand: 10.0,
        }];
        let rates = max_total_flow(&g, &coms);
        assert!((rates[0] - 10.0).abs() < 1e-9, "capped at NIC demand");
    }

    #[test]
    fn uses_multiple_paths_when_needed() {
        // Demand 20 over two disjoint 10G paths.
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::GenericSwitch, "a");
        let b = g.add_node(NodeKind::GenericSwitch, "b");
        let x = g.add_node(NodeKind::GenericSwitch, "x");
        let y = g.add_node(NodeKind::GenericSwitch, "y");
        let s = g.add_node(NodeKind::Server, "s");
        let t = g.add_node(NodeKind::Server, "t");
        g.add_duplex_link(s, a, 40.0);
        g.add_duplex_link(a, x, 10.0);
        g.add_duplex_link(a, y, 10.0);
        g.add_duplex_link(x, b, 10.0);
        g.add_duplex_link(y, b, 10.0);
        g.add_duplex_link(b, t, 40.0);
        let coms = vec![Commodity {
            src: s,
            dst: t,
            demand: 20.0,
        }];
        let rates = max_total_flow(&g, &coms);
        assert!((rates[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn feasibility_never_violated() {
        let (g, coms) = {
            let mut g = Graph::new();
            let sw0 = g.add_node(NodeKind::GenericSwitch, "sw0");
            let sw1 = g.add_node(NodeKind::GenericSwitch, "sw1");
            g.add_duplex_link(sw0, sw1, 10.0);
            let mut coms = Vec::new();
            for i in 0..4 {
                let s = g.add_node(NodeKind::Server, format!("s{i}"));
                let t = g.add_node(NodeKind::Server, format!("t{i}"));
                g.add_duplex_link(s, sw0, 10.0);
                g.add_duplex_link(t, sw1, 10.0);
                coms.push(Commodity {
                    src: s,
                    dst: t,
                    demand: 10.0,
                });
            }
            (g, coms)
        };
        let rates = max_total_flow(&g, &coms);
        let total: f64 = rates.iter().sum();
        assert!(total <= 10.0 + 1e-6, "bottleneck is 10G, total {total}");
        // Greedy max-total on identical flows: first-come takes all.
        assert!(rates.iter().any(|&r| r > 9.0));
    }
}
