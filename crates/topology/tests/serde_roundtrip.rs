//! Built networks serialize/deserialize losslessly (JSON), so topologies
//! can be saved, shared, and reloaded by downstream tools.

use topology::{ClosParams, DcNetwork, RandomGraphParams, TwoStageParams};

fn roundtrip(net: &DcNetwork) {
    let json = serde_json::to_string(net).expect("serialize");
    let back: DcNetwork = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.name, net.name);
    assert_eq!(back.servers, net.servers);
    assert_eq!(back.pod_servers, net.pod_servers);
    assert_eq!(back.graph.node_count(), net.graph.node_count());
    assert_eq!(back.graph.link_count(), net.graph.link_count());
    for l in net.graph.link_ids() {
        let a = net.graph.link(l);
        let b = back.graph.link(l);
        assert_eq!(
            (a.src, a.dst, a.capacity_gbps),
            (b.src, b.dst, b.capacity_gbps)
        );
    }
    back.validate().expect("reloaded network is valid");
}

#[test]
fn clos_roundtrips() {
    roundtrip(&ClosParams::mini().build().net);
}

#[test]
fn random_graph_roundtrips() {
    roundtrip(&RandomGraphParams::regular(12, 8, 24, 3).build());
}

#[test]
fn two_stage_roundtrips() {
    roundtrip(
        &TwoStageParams {
            clos: ClosParams::mini(),
            seed: 4,
        }
        .build(),
    );
}

#[test]
fn params_roundtrip_too() {
    let p = ClosParams::topo4();
    let json = serde_json::to_string(&p).unwrap();
    let back: ClosParams = serde_json::from_str(&json).unwrap();
    assert_eq!(p, back);
}
