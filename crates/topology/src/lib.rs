//! Data center topology builders for the flat-tree reproduction.
//!
//! The paper compares four fixed topology families built from the *same
//! device set* (§2.1, §5.2):
//!
//! * [`clos`] — generic multi-rooted Clos trees, parameterized exactly like
//!   Table 2 (topo-1 … topo-6), with [`fat_tree`]`(k)` as the classic
//!   special case used in Table 1;
//! * [`random_graph`] — Jellyfish-style uniform random graphs with servers
//!   spread uniformly across all switches;
//! * [`two_stage`] — two-stage ("regional") random graphs: a random graph
//!   inside each pod plus a random super-graph of pods and core switches.
//!
//! All builders return a [`DcNetwork`], the shared shape every higher layer
//! (traffic generation, routing, simulation) consumes. All randomness is
//! seeded `ChaCha8`; identical parameters and seed produce identical
//! networks byte-for-byte.

pub mod clos;
pub mod network;
pub mod random_graph;
pub mod two_stage;

pub use clos::{fat_tree, ClosNetwork, ClosParams};
pub use network::DcNetwork;
pub use random_graph::RandomGraphParams;
pub use two_stage::TwoStageParams;
