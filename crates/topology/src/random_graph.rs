//! Jellyfish-style random graph networks (\[41\] in the paper).
//!
//! "Servers are distributed uniformly across all switches in the random
//! graph" (§2.1). Construction follows the incremental Jellyfish recipe:
//! every switch exposes a port budget; servers claim ports round-robin;
//! the remaining ports ("stubs") are paired uniformly at random subject to
//! *simple-graph* constraints (no self-loops, no duplicate cables), with
//! the standard edge-swap fix-up when the process gets stuck. At most one
//! stub can remain unmatched (odd total), which is left unused exactly as
//! a real deployment would leave a port dark.

use crate::clos::ClosParams;
use crate::network::DcNetwork;
use netgraph::{Graph, NodeId, NodeKind};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Parameters of a random graph network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomGraphParams {
    /// Port budget per switch (length = number of switches).
    pub switch_ports: Vec<usize>,
    /// Total number of servers, spread round-robin over switches.
    pub num_servers: usize,
    /// Capacity of one physical link in Gbps.
    pub link_gbps: f64,
    /// RNG seed; the build is a pure function of params + seed.
    pub seed: u64,
}

impl RandomGraphParams {
    /// A regular random graph: `n` switches of `ports` ports each.
    pub fn regular(n: usize, ports: usize, num_servers: usize, seed: u64) -> Self {
        Self {
            switch_ports: vec![ports; n],
            num_servers,
            link_gbps: 10.0,
            seed,
        }
    }

    /// The device-equivalent random graph of a Clos network (§2.1: "use
    /// the same devices to form random graph networks"): one entry per
    /// edge/aggregation/core switch with its full Clos port count, and the
    /// same server population.
    pub fn from_clos(p: &ClosParams, seed: u64) -> Self {
        let mut ports = Vec::new();
        let es_ports = p.servers_per_edge + p.edge_uplinks;
        let as_ports = p.edges_per_pod * p.edge_uplinks / p.aggs_per_pod + p.agg_uplinks;
        let cs_ports = p.pods * p.aggs_per_pod * p.agg_uplinks / p.num_cores;
        for _ in 0..p.pods * p.edges_per_pod {
            ports.push(es_ports);
        }
        for _ in 0..p.pods * p.aggs_per_pod {
            ports.push(as_ports);
        }
        for _ in 0..p.num_cores {
            ports.push(cs_ports);
        }
        Self {
            switch_ports: ports,
            num_servers: p.total_servers(),
            link_gbps: p.link_gbps,
            seed,
        }
    }

    /// Builds the network.
    ///
    /// Random matchings can, with small probability (tiny instances,
    /// unlucky seeds), leave the graph disconnected; like operational
    /// Jellyfish tooling we verify connectivity and deterministically
    /// retry with derived seeds. Identical params + seed always produce
    /// the identical network.
    pub fn build(&self) -> DcNetwork {
        for attempt in 0..64u64 {
            let net = self.build_once(
                self.seed
                    .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            if net.validate().is_ok() {
                return net;
            }
        }
        panic!("random graph disconnected after 64 attempts; params too degenerate");
    }

    fn build_once(&self, seed: u64) -> DcNetwork {
        let n = self.switch_ports.len();
        assert!(n >= 2, "need at least two switches");
        let total_ports: usize = self.switch_ports.iter().sum();
        assert!(
            self.num_servers <= total_ports,
            "not enough ports for servers"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        // Server placement: round-robin, but every switch keeps a reserve
        // of network ports (half its budget, relaxed only if servers would
        // not fit otherwise) — a switch drowned in servers would fall off
        // the fabric.
        let mut free = self.switch_ports.clone();
        let quota = proportional_quota(&self.switch_ports, self.num_servers);
        let mut placed = vec![0usize; n];
        let mut server_home = Vec::with_capacity(self.num_servers);
        let mut i = 0;
        for _ in 0..self.num_servers {
            let mut hops = 0;
            while placed[i] >= quota[i] {
                i = (i + 1) % n;
                hops += 1;
                assert!(hops <= n, "ran out of ports while placing servers");
            }
            server_home.push(i);
            placed[i] += 1;
            free[i] -= 1;
            i = (i + 1) % n;
        }

        let links = random_matching(&mut free, &mut rng);

        // Materialize.
        let mut g = Graph::new();
        let switches: Vec<NodeId> = (0..n)
            .map(|s| g.add_node(NodeKind::GenericSwitch, format!("rsw{s}")))
            .collect();
        let mut servers = Vec::with_capacity(self.num_servers);
        for (q, &home) in server_home.iter().enumerate() {
            let s = g.add_node(NodeKind::Server, format!("rsrv{q}"));
            g.add_duplex_link(s, switches[home], self.link_gbps);
            servers.push(s);
        }
        for (a, b) in links {
            g.add_duplex_link(switches[a], switches[b], self.link_gbps);
        }
        DcNetwork {
            name: "random-graph".into(),
            graph: g,
            servers,
            pod_servers: Vec::new(),
            edges: Vec::new(),
            aggs: Vec::new(),
            cores: Vec::new(),
        }
    }
}

/// Per-switch quota for distributing `count` consumers proportionally to
/// the available port budget (largest-remainder rounding), capping each
/// switch at `avail - 1` so it keeps at least one network port. The cap
/// is relaxed to `avail` only if the total would not fit otherwise.
///
/// Proportional (rather than strictly uniform) spreading is what keeps a
/// heterogeneous device set balanced: every switch devotes the same
/// *fraction* of its ports to servers, so small switches are not drowned.
pub(crate) fn proportional_quota(avail: &[usize], count: usize) -> Vec<usize> {
    let total: usize = avail.iter().sum();
    assert!(total >= count, "not enough ports: {total} < {count}");
    let cap: Vec<usize> = if total - avail.len() >= count {
        avail.iter().map(|&a| a.saturating_sub(1)).collect()
    } else {
        avail.to_vec()
    };
    // Largest-remainder apportionment under caps.
    let mut quota: Vec<usize> = Vec::with_capacity(avail.len());
    let mut rems: Vec<(f64, usize)> = Vec::with_capacity(avail.len());
    let mut assigned = 0usize;
    for (i, &a) in avail.iter().enumerate() {
        let exact = a as f64 * count as f64 / total as f64;
        let base = (exact.floor() as usize).min(cap[i]);
        quota.push(base);
        assigned += base;
        rems.push((exact - base as f64, i));
    }
    rems.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut i = 0;
    while assigned < count {
        let idx = rems[i % rems.len()].1;
        if quota[idx] < cap[idx] {
            quota[idx] += 1;
            assigned += 1;
        }
        i += 1;
        assert!(i < rems.len() * (count + 2), "quota assignment stuck");
    }
    quota
}

/// Pairs free ports uniformly at random into a *simple* graph over switch
/// indices, applying Jellyfish edge swaps when stuck. Consumes `free`.
pub(crate) fn random_matching(free: &mut [usize], rng: &mut ChaCha8Rng) -> Vec<(usize, usize)> {
    let n = free.len();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    let mut links: Vec<(usize, usize)> = Vec::new();

    'outer: loop {
        let candidates: Vec<usize> = (0..n).filter(|&s| free[s] > 0).collect();
        let free_total: usize = candidates.iter().map(|&s| free[s]).sum();
        if free_total <= 1 {
            break;
        }
        // Try random pairs first.
        for _ in 0..50 {
            let a = *candidates.choose(rng).expect("nonempty");
            let b = *candidates.choose(rng).expect("nonempty");
            if a != b && !adj[a].contains(&b) {
                adj[a].insert(b);
                adj[b].insert(a);
                free[a] -= 1;
                free[b] -= 1;
                links.push((a, b));
                continue 'outer;
            }
        }
        // Stuck: either only one switch has free ports, or all candidate
        // pairs already exist. Do the Jellyfish swap: take a switch u with
        // free ports, remove a random link (x, y) with x,y ∉ adj(u)∪{u},
        // and add (u, x), (u, y).
        let u = match candidates.iter().copied().find(|&s| free[s] >= 2) {
            Some(u) => u,
            // A single leftover stub cannot be fixed; leave it dark.
            None if candidates.len() == 1 => break,
            None => candidates[rng.gen_range(0..candidates.len())],
        };
        let mut swap_done = false;
        let mut order: Vec<usize> = (0..links.len()).collect();
        order.shuffle(rng);
        for li in order {
            let (x, y) = links[li];
            if x == u || y == u || adj[u].contains(&x) || adj[u].contains(&y) {
                continue;
            }
            if free[u] >= 2 {
                // Replace (x,y) with (u,x) and (u,y).
                adj[x].remove(&y);
                adj[y].remove(&x);
                links.swap_remove(li);
                for w in [x, y] {
                    adj[u].insert(w);
                    adj[w].insert(u);
                    links.push((u, w));
                }
                free[u] -= 2;
                swap_done = true;
                break;
            }
            // free[u] == 1: rewire one end only; y gets a free port back
            // and the loop continues.
            adj[x].remove(&y);
            adj[y].remove(&x);
            links.swap_remove(li);
            adj[u].insert(x);
            adj[x].insert(u);
            links.push((u, x));
            free[u] -= 1;
            free[y] += 1;
            swap_done = true;
            break;
        }
        if !swap_done {
            break; // degenerate instance (e.g. clique saturated); leave dark
        }
    }
    links
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::metrics;

    #[test]
    fn regular_graph_has_regular_degree() {
        let net = RandomGraphParams::regular(20, 8, 40, 7).build();
        net.validate().unwrap();
        // Each switch: 2 servers + 6 network links (all ports used, even
        // total), so switch degree is exactly 8.
        let (min, max, _) = metrics::degree_stats(&net.graph, NodeKind::GenericSwitch).unwrap();
        assert_eq!((min, max), (8, 8));
    }

    #[test]
    fn servers_spread_uniformly() {
        let net = RandomGraphParams::regular(10, 10, 40, 3).build();
        let counts = metrics::attached_server_counts(&net.graph, NodeKind::GenericSwitch);
        assert!(counts.iter().all(|&(_, c)| c == 4));
    }

    #[test]
    fn graph_is_simple() {
        let net = RandomGraphParams::regular(16, 6, 16, 11).build();
        let g = &net.graph;
        let mut seen = std::collections::HashSet::new();
        for l in g.link_ids() {
            let info = g.link(l);
            if g.node(info.src).kind.is_switch() && g.node(info.dst).kind.is_switch() {
                assert!(info.src != info.dst);
                assert!(
                    seen.insert((info.src, info.dst)),
                    "duplicate cable {:?}->{:?}",
                    info.src,
                    info.dst
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let a = RandomGraphParams::regular(12, 6, 24, 5).build();
        let b = RandomGraphParams::regular(12, 6, 24, 5).build();
        let c = RandomGraphParams::regular(12, 6, 24, 6).build();
        let edges = |n: &DcNetwork| {
            n.graph
                .link_ids()
                .map(|l| (n.graph.link(l).src, n.graph.link(l).dst))
                .collect::<Vec<_>>()
        };
        assert_eq!(edges(&a), edges(&b));
        assert_ne!(edges(&a), edges(&c));
    }

    #[test]
    fn from_clos_preserves_device_budget() {
        let p = ClosParams::mini();
        let rg = RandomGraphParams::from_clos(&p, 1);
        assert_eq!(rg.switch_ports.len(), 16 + 16 + 16); // ES + AS + CS
        assert_eq!(rg.num_servers, p.total_servers());
        let total_ports: usize = rg.switch_ports.iter().sum();
        // Same cable budget as the Clos build (each cable = 2 ports):
        // ES: 4 srv + 4 up = 8; AS: 4 down + 4 up = 8; CS: 4 ports.
        assert_eq!(total_ports, 16 * 8 + 16 * 8 + 16 * 4);
        let net = rg.build();
        net.validate().unwrap();
    }

    #[test]
    fn random_graph_shortens_paths_vs_clos() {
        // The motivating claim of §1: a device-equivalent random graph has
        // shorter average server-pair paths than the Clos it replaces.
        let p = ClosParams::mini();
        let clos = p.build();
        let rg = RandomGraphParams::from_clos(&p, 42).build();
        let apl_clos = metrics::avg_server_path_length(&clos.net.graph).unwrap();
        let apl_rg = metrics::avg_server_path_length(&rg.graph).unwrap();
        assert!(
            apl_rg < apl_clos,
            "random graph APL {apl_rg} should beat Clos APL {apl_clos}"
        );
    }
}
