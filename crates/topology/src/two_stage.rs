//! Two-stage ("regional") random graphs (§2.1, \[41\]).
//!
//! "The two-stage random graph network first forms a random graph in each
//! Pod and takes the Pods as super nodes to form another layer of random
//! graph together with core switches. … servers in each Pod are distributed
//! uniformly across switches in the Pod, and core switches take no
//! servers."
//!
//! Built from the same device set as a [`ClosParams`] network:
//!
//! * stage 1: inside each pod, servers claim ports round-robin over the
//!   pod's edge+aggregation switches; `a*h` ports per pod are reserved as
//!   *external stubs* (the pod's contribution to the super graph, matching
//!   the Clos pod's core-facing port budget); all remaining ports form a
//!   simple random graph within the pod;
//! * stage 2: external stubs of all pods and all core-switch ports are
//!   paired uniformly at random, forbidding same-pod pairs. Repeated pairs
//!   between the same physical switches aggregate into link capacity.

use crate::clos::ClosParams;
use crate::network::DcNetwork;
use crate::random_graph::random_matching;
use netgraph::{Graph, NodeId, NodeKind};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of a two-stage random graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoStageParams {
    /// The Clos network whose devices (and pod partition) are reused.
    pub clos: ClosParams,
    /// RNG seed.
    pub seed: u64,
}

impl TwoStageParams {
    /// Builds the network.
    ///
    /// Like [`crate::RandomGraphParams::build`], verifies connectivity
    /// and deterministically retries with derived seeds (unlucky stub
    /// pairings can strand a switch on tiny instances).
    pub fn build(&self) -> DcNetwork {
        for attempt in 0..64u64 {
            let net = self.build_once(
                self.seed
                    .wrapping_add(attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            );
            if net.validate().is_ok() {
                return net;
            }
        }
        panic!("two-stage random graph disconnected after 64 attempts");
    }

    fn build_once(&self, seed: u64) -> DcNetwork {
        let p = &self.clos;
        p.validate().expect("invalid ClosParams");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);

        let es_ports = p.servers_per_edge + p.edge_uplinks;
        let as_ports = p.edges_per_pod * p.edge_uplinks / p.aggs_per_pod + p.agg_uplinks;
        let cs_ports = p.pods * p.aggs_per_pod * p.agg_uplinks / p.num_cores;
        let external_per_pod = p.aggs_per_pod * p.agg_uplinks;
        let switches_per_pod = p.edges_per_pod + p.aggs_per_pod;
        let servers_per_pod = p.edges_per_pod * p.servers_per_edge;

        let mut g = Graph::new();
        let cores: Vec<NodeId> = (0..p.num_cores)
            .map(|c| g.add_node(NodeKind::CoreSwitch, format!("core{c}")))
            .collect();

        let mut pod_servers: Vec<Vec<NodeId>> = Vec::with_capacity(p.pods);
        let mut edges = Vec::new();
        let mut aggs = Vec::new();
        // Super-graph stubs: (physical switch, group id). Pods get groups
        // 0..pods; core c gets its own group pods + c.
        let mut stubs: Vec<(NodeId, usize)> = Vec::new();

        for pod in 0..p.pods {
            let mut pod_switches: Vec<NodeId> = Vec::with_capacity(switches_per_pod);
            let mut free: Vec<usize> = Vec::with_capacity(switches_per_pod);
            for j in 0..p.edges_per_pod {
                let n = g.add_node(NodeKind::EdgeSwitch, format!("pod{pod}/rsw-e{j}"));
                pod_switches.push(n);
                free.push(es_ports);
                edges.push(n);
            }
            for i in 0..p.aggs_per_pod {
                let n = g.add_node(NodeKind::AggSwitch, format!("pod{pod}/rsw-a{i}"));
                pod_switches.push(n);
                free.push(as_ports);
                aggs.push(n);
            }
            // External stubs first (round-robin, keeping one port), then
            // servers proportionally to the remaining budget: every
            // switch keeps the same fraction of ports for the pod fabric,
            // so small switches are not drowned in servers.
            let mut stub_count = vec![0usize; switches_per_pod];
            {
                let mut i = 0usize;
                for _ in 0..external_per_pod {
                    let mut hops = 0;
                    while free[i] <= 1 {
                        i = (i + 1) % switches_per_pod;
                        hops += 1;
                        assert!(hops <= switches_per_pod, "pod out of ports for stubs");
                    }
                    stubs.push((pod_switches[i], pod));
                    stub_count[i] += 1;
                    free[i] -= 1;
                    i = (i + 1) % switches_per_pod;
                }
            }
            let quota = crate::random_graph::proportional_quota(&free, servers_per_pod);
            let mut placed = vec![0usize; switches_per_pod];
            let mut servers = Vec::with_capacity(servers_per_pod);
            let mut i = 0usize;
            for q in 0..servers_per_pod {
                let mut hops = 0;
                while placed[i] >= quota[i] || free[i] == 0 {
                    i = (i + 1) % switches_per_pod;
                    hops += 1;
                    assert!(hops <= switches_per_pod, "pod out of ports for servers");
                }
                let s = g.add_node(NodeKind::Server, format!("pod{pod}/rsrv{q}"));
                g.add_duplex_link(s, pod_switches[i], p.link_gbps);
                servers.push(s);
                placed[i] += 1;
                free[i] -= 1;
                i = (i + 1) % switches_per_pod;
            }
            // Stage 1: intra-pod random graph over the remaining ports.
            let intra = random_matching(&mut free, &mut rng);
            for (x, y) in intra {
                g.add_duplex_link(pod_switches[x], pod_switches[y], p.link_gbps);
            }
            pod_servers.push(servers);
        }
        for (c, &core) in cores.iter().enumerate() {
            for _ in 0..cs_ports {
                stubs.push((core, p.pods + c));
            }
        }

        // Stage 2: random pairing of stubs across groups.
        let mut mult: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
        stubs.shuffle(&mut rng);
        while stubs.len() >= 2 {
            let (a_sw, a_grp) = stubs.pop().expect("len checked");
            // Random partner from a different group; fall back to scan.
            let mut partner = None;
            for _ in 0..20 {
                let i = rng.gen_range(0..stubs.len());
                if stubs[i].1 != a_grp {
                    partner = Some(i);
                    break;
                }
            }
            let partner = partner.or_else(|| stubs.iter().position(|&(_, grp)| grp != a_grp));
            let Some(i) = partner else {
                break; // only same-group stubs remain; leave them dark
            };
            let (b_sw, _) = stubs.swap_remove(i);
            let key = if a_sw <= b_sw {
                (a_sw, b_sw)
            } else {
                (b_sw, a_sw)
            };
            *mult.entry(key).or_insert(0) += 1;
        }
        for ((x, y), m) in mult {
            g.add_duplex_link(x, y, p.link_gbps * m as f64);
        }

        let servers: Vec<NodeId> = pod_servers.iter().flatten().copied().collect();
        DcNetwork {
            name: "two-stage-random-graph".into(),
            graph: g,
            servers,
            pod_servers,
            edges,
            aggs,
            cores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::metrics;

    fn mini() -> DcNetwork {
        TwoStageParams {
            clos: ClosParams::mini(),
            seed: 9,
        }
        .build()
    }

    #[test]
    fn builds_and_validates() {
        let net = mini();
        net.validate().unwrap();
        assert_eq!(net.num_servers(), 64);
        assert_eq!(net.num_pods(), 4);
        assert_eq!(net.cores.len(), 16);
    }

    #[test]
    fn cores_take_no_servers() {
        let net = mini();
        let counts = metrics::attached_server_counts(&net.graph, NodeKind::CoreSwitch);
        assert!(counts.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn servers_uniform_within_pods() {
        let net = mini();
        // 16 servers per pod over 8 switches -> exactly 2 each.
        for kind in [NodeKind::EdgeSwitch, NodeKind::AggSwitch] {
            let counts = metrics::attached_server_counts(&net.graph, kind);
            assert!(
                counts.iter().all(|&(_, c)| c == 2),
                "nonuniform server spread: {counts:?}"
            );
        }
    }

    #[test]
    fn intra_pod_traffic_stays_local_length() {
        // Servers in the same pod should be close (pod is an RG of 8
        // switches), strictly closer on average than cross-pod pairs.
        let net = mini();
        let g = &net.graph;
        let same_pod: Vec<_> = net.pod_servers[0].clone();
        let d_same = netgraph::dijkstra::hop_distance(g, same_pod[0], same_pod[5]).unwrap();
        let cross = net.pod_servers[2][0];
        let d_cross = netgraph::dijkstra::hop_distance(g, same_pod[0], cross).unwrap();
        assert!(d_same <= d_cross + 1, "intra-pod should not be farther");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mini();
        let b = mini();
        let edges = |n: &DcNetwork| {
            n.graph
                .link_ids()
                .map(|l| {
                    let i = n.graph.link(l);
                    (i.src, i.dst, i.capacity_gbps.to_bits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(edges(&a), edges(&b));
    }

    #[test]
    fn external_budget_matches_clos() {
        // Total stage-2 capacity equals the Clos pod-core capacity budget:
        // pods * a * h cables (a few may stay dark on odd leftovers).
        let net = mini();
        let g = &net.graph;
        let p = ClosParams::mini();
        let mut stage2 = 0.0;
        for l in g.link_ids() {
            let i = g.link(l);
            // Count each duplex cable once (forward direction only).
            if i.reverse.is_some_and(|r| r.0 > l.0) {
                let sk = g.node(i.src).kind;
                let dk = g.node(i.dst).kind;
                let core_end = sk == NodeKind::CoreSwitch || dk == NodeKind::CoreSwitch;
                let label_src = &g.node(i.src).label;
                let label_dst = &g.node(i.dst).label;
                let cross_pod = label_src.split('/').next() != label_dst.split('/').next();
                if core_end || (sk.is_switch() && dk.is_switch() && cross_pod) {
                    stage2 += i.capacity_gbps;
                }
            }
        }
        let budget = (p.pods * p.aggs_per_pod * p.agg_uplinks) as f64 * p.link_gbps;
        assert!(stage2 <= budget);
        assert!(stage2 >= budget * 0.9, "stage2 {stage2} vs budget {budget}");
    }
}
