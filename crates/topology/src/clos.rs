//! Generic Clos (multi-rooted tree) networks, parameterized as in Table 2
//! of the paper, plus the classic `fat_tree(k)` special case (Table 1).
//!
//! ## Parameter model
//!
//! A pod has `d = edges_per_pod` edge switches and `a = aggs_per_pod`
//! aggregation switches with `r = d / a` (the paper assumes `d` is a
//! multiple of `a`, §3.1). Every edge switch hosts `servers_per_edge`
//! servers and spreads `edge_uplinks` uplinks evenly over the pod's
//! aggregation switches; parallel (edge, agg) cables are modeled as a
//! single duplex link of aggregated capacity, which is equivalent for
//! fluid-flow simulation. Every aggregation switch has `agg_uplinks = h`
//! core-facing ports.
//!
//! Pod–core wiring follows Figure 4a: aggregation switch `i` of *every*
//! pod connects its `h` uplinks to core switches `C[(i*h + t) mod C]`,
//! `t = 0..h`. The number of cores `C` must divide the per-pod core link
//! count `a * h` so that the wrap-around lands evenly.
//!
//! ## Table 2 note
//!
//! The machine-extracted Table 2 row for topo-6 prints the aggregation
//! switch as `(32,16)` which contradicts its own `OR = 2` column (and the
//! core port budget). The self-consistent reading — used here — is
//! `AS 64 × (16 up, 32 down)`, i.e. "replace topo-5's aggregation and core
//! switches with half as many, twice as large" exactly as the prose says.

use crate::network::DcNetwork;
use netgraph::{Graph, NodeId, NodeKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of a generic Clos network (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosParams {
    /// Number of pods.
    pub pods: usize,
    /// Edge switches per pod (`d`).
    pub edges_per_pod: usize,
    /// Aggregation switches per pod (`a`); must divide `edges_per_pod`.
    pub aggs_per_pod: usize,
    /// Servers attached to each edge switch (edge downlinks).
    pub servers_per_edge: usize,
    /// Uplinks per edge switch; must be a multiple of `aggs_per_pod`.
    pub edge_uplinks: usize,
    /// Core-facing uplinks per aggregation switch (`h`).
    pub agg_uplinks: usize,
    /// Number of core switches (`C`); must divide `aggs_per_pod * agg_uplinks`.
    pub num_cores: usize,
    /// Capacity of one physical link, in Gbps (the paper uses 10 Gbps).
    pub link_gbps: f64,
}

impl ClosParams {
    /// `r = d / a` (§3.1).
    pub fn r(&self) -> usize {
        self.edges_per_pod / self.aggs_per_pod
    }

    /// Core connectors per edge-switch share, `h / r` (§3.2).
    pub fn h_over_r(&self) -> usize {
        self.agg_uplinks / self.r()
    }

    /// Total server count.
    pub fn total_servers(&self) -> usize {
        self.pods * self.edges_per_pod * self.servers_per_edge
    }

    /// Oversubscription ratio at the edge layer (downlinks / uplinks).
    pub fn edge_oversubscription(&self) -> f64 {
        self.servers_per_edge as f64 / self.edge_uplinks as f64
    }

    /// Oversubscription ratio at the aggregation layer.
    pub fn agg_oversubscription(&self) -> f64 {
        let downlinks = self.edges_per_pod * self.edge_uplinks / self.aggs_per_pod;
        downlinks as f64 / self.agg_uplinks as f64
    }

    /// Validates divisibility constraints; all builders call this.
    pub fn validate(&self) -> Result<(), String> {
        if self.pods == 0 || self.edges_per_pod == 0 || self.aggs_per_pod == 0 {
            return Err("pods, edges_per_pod, aggs_per_pod must be positive".into());
        }
        if !self.edges_per_pod.is_multiple_of(self.aggs_per_pod) {
            return Err("edges_per_pod must be a multiple of aggs_per_pod (§3.1)".into());
        }
        if self.edge_uplinks == 0 || !self.edge_uplinks.is_multiple_of(self.aggs_per_pod) {
            return Err("edge_uplinks must be a positive multiple of aggs_per_pod".into());
        }
        if self.agg_uplinks == 0 || !self.agg_uplinks.is_multiple_of(self.r()) {
            return Err("agg_uplinks must be a positive multiple of r = d/a (§3.2)".into());
        }
        if self.num_cores == 0
            || !(self.aggs_per_pod * self.agg_uplinks).is_multiple_of(self.num_cores)
        {
            return Err("num_cores must divide aggs_per_pod * agg_uplinks".into());
        }
        if self.servers_per_edge == 0 {
            return Err("servers_per_edge must be positive".into());
        }
        if self.link_gbps <= 0.0 || self.link_gbps.is_nan() {
            return Err("link_gbps must be positive".into());
        }
        Ok(())
    }

    /// topo-1 of Table 2: the baseline, 4:1 oversubscribed at the edge,
    /// 4096 servers.
    pub fn topo1() -> Self {
        Self {
            pods: 16,
            edges_per_pod: 8,
            aggs_per_pod: 8,
            servers_per_edge: 32,
            edge_uplinks: 8,
            agg_uplinks: 8,
            num_cores: 64,
            link_gbps: 10.0,
        }
    }

    /// topo-2: proportional down-scale of topo-1 (1728 servers).
    pub fn topo2() -> Self {
        Self {
            pods: 12,
            edges_per_pod: 6,
            aggs_per_pod: 6,
            servers_per_edge: 24,
            edge_uplinks: 6,
            agg_uplinks: 6,
            num_cores: 36,
            link_gbps: 10.0,
        }
    }

    /// topo-3: twice the edge oversubscription of topo-1 (8192 servers).
    pub fn topo3() -> Self {
        Self {
            servers_per_edge: 64,
            ..Self::topo1()
        }
    }

    /// topo-4: topo-1 with fewer, larger aggregation and core switches.
    pub fn topo4() -> Self {
        Self {
            pods: 8,
            edges_per_pod: 16,
            aggs_per_pod: 8,
            servers_per_edge: 32,
            edge_uplinks: 8,
            agg_uplinks: 16,
            num_cores: 32,
            link_gbps: 10.0,
        }
    }

    /// topo-5: half of topo-1's oversubscription moved to the aggregation
    /// layer (2:1 at edge, 2:1 at agg).
    pub fn topo5() -> Self {
        Self {
            edge_uplinks: 16,
            ..Self::topo1()
        }
    }

    /// topo-6: topo-5 with larger aggregation and core switches (see the
    /// module-level Table 2 note).
    pub fn topo6() -> Self {
        Self {
            pods: 16,
            edges_per_pod: 8,
            aggs_per_pod: 4,
            servers_per_edge: 32,
            edge_uplinks: 16,
            agg_uplinks: 16,
            num_cores: 32,
            link_gbps: 10.0,
        }
    }

    /// Table 2 row by 1-based index (1..=6).
    pub fn topo(i: usize) -> Self {
        match i {
            1 => Self::topo1(),
            2 => Self::topo2(),
            3 => Self::topo3(),
            4 => Self::topo4(),
            5 => Self::topo5(),
            6 => Self::topo6(),
            _ => panic!("Table 2 defines topo-1 .. topo-6, got topo-{i}"),
        }
    }

    /// A laptop-scale stand-in for topo-1 that preserves its *ratios*
    /// (uniform layers, 4:1 edge oversubscription): 4 pods, 64 servers.
    /// Experiment binaries accept `--full` to use the real Table 2 sizes.
    pub fn mini() -> Self {
        Self {
            pods: 4,
            edges_per_pod: 4,
            aggs_per_pod: 4,
            servers_per_edge: 4,
            edge_uplinks: 4,
            agg_uplinks: 4,
            num_cores: 16,
            link_gbps: 10.0,
        }
    }

    /// Builds the Clos network.
    pub fn build(&self) -> ClosNetwork {
        self.validate().expect("invalid ClosParams");
        let mut g = Graph::new();
        let cores: Vec<NodeId> = (0..self.num_cores)
            .map(|i| g.add_node(NodeKind::CoreSwitch, format!("core{i}")))
            .collect();

        let mut pod_edges = Vec::with_capacity(self.pods);
        let mut pod_aggs = Vec::with_capacity(self.pods);
        let mut pod_servers = Vec::with_capacity(self.pods);
        let mut edge_servers: Vec<Vec<NodeId>> = Vec::new();
        // Switch-switch cable multiplicities, aggregated into capacity.
        let mut mult: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();

        for p in 0..self.pods {
            let edges: Vec<NodeId> = (0..self.edges_per_pod)
                .map(|j| g.add_node(NodeKind::EdgeSwitch, format!("pod{p}/edge{j}")))
                .collect();
            let aggs: Vec<NodeId> = (0..self.aggs_per_pod)
                .map(|i| g.add_node(NodeKind::AggSwitch, format!("pod{p}/agg{i}")))
                .collect();
            let mut servers_in_pod = Vec::new();
            for (j, &e) in edges.iter().enumerate() {
                let mut on_edge = Vec::with_capacity(self.servers_per_edge);
                for q in 0..self.servers_per_edge {
                    let s = g.add_node(NodeKind::Server, format!("pod{p}/edge{j}/srv{q}"));
                    g.add_duplex_link(s, e, self.link_gbps);
                    servers_in_pod.push(s);
                    on_edge.push(s);
                }
                edge_servers.push(on_edge);
                // Edge -> agg: spread uplinks evenly.
                let per_pair = self.edge_uplinks / self.aggs_per_pod;
                for &a in &aggs {
                    *mult.entry((e, a)).or_insert(0) += per_pair;
                }
            }
            // Agg -> core: Figure 4a wiring, wrapped modulo num_cores.
            for (i, &a) in aggs.iter().enumerate() {
                for t in 0..self.agg_uplinks {
                    let c = cores[(i * self.agg_uplinks + t) % self.num_cores];
                    *mult.entry((a, c)).or_insert(0) += 1;
                }
            }
            pod_edges.push(edges);
            pod_aggs.push(aggs);
            pod_servers.push(servers_in_pod);
        }

        for ((x, y), m) in mult {
            g.add_duplex_link(x, y, self.link_gbps * m as f64);
        }

        let servers: Vec<NodeId> = pod_servers.iter().flatten().copied().collect();
        let net = DcNetwork {
            name: format!(
                "clos-p{}d{}a{}s{}",
                self.pods, self.edges_per_pod, self.aggs_per_pod, self.servers_per_edge
            ),
            servers,
            pod_servers,
            edges: pod_edges.iter().flatten().copied().collect(),
            aggs: pod_aggs.iter().flatten().copied().collect(),
            cores: cores.clone(),
            graph: g,
        };
        debug_assert!(net.validate().is_ok());
        ClosNetwork {
            params: *self,
            net,
            pod_edges,
            pod_aggs,
            edge_servers,
            cores,
        }
    }
}

/// A built Clos network with its pod structure exposed (the flat-tree
/// builder consumes this to place converter switches).
#[derive(Debug, Clone)]
pub struct ClosNetwork {
    /// The parameters this network was built from.
    pub params: ClosParams,
    /// The generic network view.
    pub net: DcNetwork,
    /// Edge switches per pod, `pod_edges[p][j] = E_j` of pod `p`.
    pub pod_edges: Vec<Vec<NodeId>>,
    /// Aggregation switches per pod, `pod_aggs[p][i] = A_i` of pod `p`.
    pub pod_aggs: Vec<Vec<NodeId>>,
    /// Servers per edge switch, in global edge order (pod-major).
    pub edge_servers: Vec<Vec<NodeId>>,
    /// Core switches, `cores[c]` = `C_c` of §3.2.
    pub cores: Vec<NodeId>,
}

/// The classic k-ary fat-tree (\[12\]) as a `ClosParams` instance:
/// `k` pods of `k/2` edge and `k/2` aggregation switches, `k/2` servers per
/// edge, `(k/2)^2` cores. `k` must be even.
pub fn fat_tree(k: usize) -> ClosParams {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree requires even k >= 2"
    );
    ClosParams {
        pods: k,
        edges_per_pod: k / 2,
        aggs_per_pod: k / 2,
        servers_per_edge: k / 2,
        edge_uplinks: k / 2,
        agg_uplinks: k / 2,
        num_cores: (k / 2) * (k / 2),
        link_gbps: 10.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::metrics;

    #[test]
    fn table2_rows_are_consistent() {
        // (row, #ES, #AS, #CS, OR_edge, OR_agg, servers)
        let expect = [
            (1, 128, 128, 64, 4.0, 1.0, 4096),
            (2, 72, 72, 36, 4.0, 1.0, 1728),
            (3, 128, 128, 64, 8.0, 1.0, 8192),
            (4, 128, 64, 32, 4.0, 1.0, 4096),
            (5, 128, 128, 64, 2.0, 2.0, 4096),
            (6, 128, 64, 32, 2.0, 2.0, 4096),
        ];
        for (i, es, asw, cs, ore, ora, srv) in expect {
            let p = ClosParams::topo(i);
            p.validate().unwrap();
            assert_eq!(p.pods * p.edges_per_pod, es, "topo-{i} ES");
            assert_eq!(p.pods * p.aggs_per_pod, asw, "topo-{i} AS");
            assert_eq!(p.num_cores, cs, "topo-{i} CS");
            assert_eq!(p.edge_oversubscription(), ore, "topo-{i} OR@ES");
            assert_eq!(p.agg_oversubscription(), ora, "topo-{i} OR@AS");
            assert_eq!(p.total_servers(), srv, "topo-{i} servers");
        }
    }

    #[test]
    fn mini_builds_and_validates() {
        let c = ClosParams::mini().build();
        c.net.validate().unwrap();
        assert_eq!(c.net.num_servers(), 64);
        assert_eq!(c.net.num_pods(), 4);
        assert_eq!(c.cores.len(), 16);
        assert_eq!(c.pod_edges[0].len(), 4);
        assert_eq!(c.edge_servers.len(), 16);
        assert!(c.edge_servers.iter().all(|v| v.len() == 4));
    }

    #[test]
    fn core_degree_is_uniform() {
        let c = ClosParams::mini().build();
        let (min, max, _) =
            metrics::degree_stats(&c.net.graph, netgraph::NodeKind::CoreSwitch).unwrap();
        assert_eq!(min, max, "every core must see the same number of cables");
        // Each core: one agg link per pod (a*h == C ⇒ one per pod).
        assert_eq!(min, 4);
    }

    #[test]
    fn edge_capacity_matches_oversubscription() {
        let p = ClosParams::mini();
        let c = p.build();
        let g = &c.net.graph;
        let e = c.pod_edges[0][0];
        let down: f64 = g
            .neighbors(e)
            .iter()
            .filter(|&&(v, _)| g.node(v).kind == netgraph::NodeKind::Server)
            .map(|&(_, l)| g.link(l).capacity_gbps)
            .sum();
        let up: f64 = g
            .neighbors(e)
            .iter()
            .filter(|&&(v, _)| g.node(v).kind == netgraph::NodeKind::AggSwitch)
            .map(|&(_, l)| g.link(l).capacity_gbps)
            .sum();
        assert_eq!(down / up, p.edge_oversubscription());
    }

    #[test]
    fn clos_paths_have_expected_lengths() {
        let c = ClosParams::mini().build();
        let g = &c.net.graph;
        // Same rack: 2 hops. Same pod, different rack: 4. Cross-pod: 6.
        let s0 = c.edge_servers[0][0];
        let s1 = c.edge_servers[0][1];
        let s2 = c.edge_servers[1][0];
        let s3 = c.edge_servers[4][0]; // pod 1
        assert_eq!(netgraph::dijkstra::hop_distance(g, s0, s1), Some(2));
        assert_eq!(netgraph::dijkstra::hop_distance(g, s0, s2), Some(4));
        assert_eq!(netgraph::dijkstra::hop_distance(g, s0, s3), Some(6));
    }

    #[test]
    fn fat_tree_shape() {
        let p = fat_tree(4);
        p.validate().unwrap();
        assert_eq!(p.total_servers(), 16);
        assert_eq!(p.num_cores, 4);
        let c = p.build();
        c.net.validate().unwrap();
        // Non-blocking: 1:1 at both layers.
        assert_eq!(p.edge_oversubscription(), 1.0);
        assert_eq!(p.agg_oversubscription(), 1.0);
    }

    #[test]
    fn parallel_uplinks_aggregate_capacity() {
        // topo-5 style: 16 uplinks over 8 aggs = 2 links per pair.
        let p = ClosParams {
            pods: 2,
            edges_per_pod: 2,
            aggs_per_pod: 2,
            servers_per_edge: 2,
            edge_uplinks: 4,
            agg_uplinks: 2,
            num_cores: 4,
            link_gbps: 10.0,
        };
        let c = p.build();
        let g = &c.net.graph;
        let l = g
            .find_link(c.pod_edges[0][0], c.pod_aggs[0][0])
            .expect("edge-agg link");
        assert_eq!(g.link(l).capacity_gbps, 20.0);
    }

    #[test]
    fn invalid_params_are_rejected() {
        let mut p = ClosParams::mini();
        p.aggs_per_pod = 3; // does not divide edges_per_pod = 4
        assert!(p.validate().is_err());
        let mut p = ClosParams::mini();
        p.num_cores = 5; // does not divide a*h = 16
        assert!(p.validate().is_err());
        let mut p = ClosParams::mini();
        p.edge_uplinks = 3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn deterministic_builds() {
        let a = ClosParams::mini().build();
        let b = ClosParams::mini().build();
        assert_eq!(a.net.servers, b.net.servers);
        assert_eq!(a.net.graph.link_count(), b.net.graph.link_count());
    }
}
