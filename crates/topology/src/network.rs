//! The common network shape consumed by traffic, routing and simulation.

use netgraph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A built data center network, regardless of family.
///
/// `servers` fixes the *global server order* — the paper's workloads are
/// defined over it ("we pack **consecutive servers** into clusters", §2.1;
/// "every server sends a single flow to **its counterpart in the next
/// Pod**", §5.1), so every builder must fill it deterministically:
/// pod-major, then rack-major, then port order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DcNetwork {
    /// Human-readable network name, e.g. `"topo-1"` or `"random-graph"`.
    pub name: String,
    /// The physical graph.
    pub graph: Graph,
    /// All servers in canonical order (see type docs).
    pub servers: Vec<NodeId>,
    /// Per-pod server lists (same node ids as `servers`). Empty for flat
    /// networks without a pod notion (plain random graph).
    pub pod_servers: Vec<Vec<NodeId>>,
    /// Edge switches in id order (empty for random graphs).
    pub edges: Vec<NodeId>,
    /// Aggregation switches in id order (empty for random graphs).
    pub aggs: Vec<NodeId>,
    /// Core switches in id order (empty for flat random graphs).
    pub cores: Vec<NodeId>,
}

impl DcNetwork {
    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of pods (0 when the network has no pod structure).
    pub fn num_pods(&self) -> usize {
        self.pod_servers.len()
    }

    /// Pod index of a server (by node id), if the network has pods.
    pub fn pod_of_server(&self, server: NodeId) -> Option<usize> {
        self.pod_servers.iter().position(|p| p.contains(&server))
    }

    /// The rack (ingress switch) of a server.
    pub fn rack_of_server(&self, server: NodeId) -> Option<NodeId> {
        self.graph.server_uplink_switch(server)
    }

    /// Index of `server` within the canonical order, panicking if foreign.
    pub fn server_index(&self, server: NodeId) -> usize {
        self.servers
            .iter()
            .position(|&s| s == server)
            .expect("server not part of this network")
    }

    /// Sanity checks shared by all builders; used by tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.servers.is_empty() {
            return Err("network has no servers".into());
        }
        for &s in &self.servers {
            if self.graph.server_uplink_switch(s).is_none() {
                return Err(format!("server {s:?} is detached"));
            }
        }
        let pod_total: usize = self.pod_servers.iter().map(|p| p.len()).sum();
        if !self.pod_servers.is_empty() && pod_total != self.servers.len() {
            return Err(format!(
                "pod server lists cover {pod_total} servers, network has {}",
                self.servers.len()
            ));
        }
        if !netgraph::metrics::all_servers_connected(&self.graph) {
            return Err("server set is not fully connected".into());
        }
        Ok(())
    }
}
