//! Table 1 — throughput of clustered all-to-all traffic on the
//! Clos/fat-tree vs random graph vs two-stage random graph, under
//! LP-optimal routing, as the cluster size sweeps from rack-local to
//! multi-pod.
//!
//! "We pack consecutive servers into clusters and create all-to-all
//! traffic in each cluster. We measure the throughput following \[41\]'s
//! methodology, which assumes optimal routing and allocates bandwidth to
//! flows using a linear programming solver." Each row is normalized
//! against the row's minimum.
//!
//! **Substitution note (documented in DESIGN.md/EXPERIMENTS.md):** the
//! paper builds a k = 16 fat-tree, which is non-blocking; under our
//! NIC-capped max-concurrent LP, clustered traffic on a non-blocking
//! fabric is NIC-bound on *every* architecture and the table degenerates
//! to ties. The architectural crossover Table 1 illustrates — tree wins
//! for rack-local clusters, two-stage RG for pod-scale, flat RG for
//! multi-pod — requires an oversubscribed fabric, so we run the same
//! methodology on the 4:1-oversubscribed **topo-1 device set** (the
//! paper's own representative network for §5.2) with cluster sizes
//! proportional to its rack/pod structure. Per-server out-degree is
//! subsampled (locality-preserving) to bound LP cost.

use super::common;
use crate::report::{f3, print_table};
use crate::Scale;
use mcf::concurrent::max_concurrent_flow;
use serde::{Deserialize, Serialize};
use topology::{RandomGraphParams, TwoStageParams};
use traffic::patterns::{clustered_all_to_all, sample_peers};

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Cluster size.
    pub cluster: usize,
    /// Clos (the convertible network's tree mode), normalized.
    pub clos: f64,
    /// Random graph, normalized.
    pub random_graph: f64,
    /// Two-stage random graph, normalized.
    pub two_stage: f64,
}

/// The mini device set for this table: 4 pods x (8 edge + 4 agg), 512
/// servers, 4:1 edge oversubscription. Table 1's crossover needs pods
/// large enough for a random pod fabric to express its advantage, so
/// this mini uses wider pods than the generic `mini_topo(1)`.
pub fn device_set(full: bool) -> topology::ClosParams {
    if full {
        common::topo(1, true)
    } else {
        topology::ClosParams {
            pods: 4,
            edges_per_pod: 8,
            aggs_per_pod: 4,
            servers_per_edge: 16,
            edge_uplinks: 4,
            agg_uplinks: 8,
            num_cores: 32,
            link_gbps: 10.0,
        }
    }
}

/// Runs the experiment: clusters of one rack, half a pod, and 1.5 pods.
pub fn run(scale: Scale) -> Vec<Row> {
    let clos_params = device_set(scale.full);
    let rack = clos_params.servers_per_edge;
    let pod = clos_params.edges_per_pod * rack;
    let clusters = vec![rack, pod / 2, pod + pod / 2];

    let clos_net = clos_params.build().net;
    let rg_net = RandomGraphParams::from_clos(&clos_params, scale.seed).build();
    let ts_net = TwoStageParams {
        clos: clos_params,
        seed: scale.seed,
    }
    .build();
    let n = clos_net.num_servers();

    let mut rows = Vec::new();
    for &c in &clusters {
        let pairs = sample_peers(clustered_all_to_all(n, c), 6, scale.seed);
        let mut lambdas = Vec::new();
        for net in [&clos_net, &rg_net, &ts_net] {
            let coms = common::commodities(net, &pairs, common::nic_gbps());
            let r = max_concurrent_flow(&net.graph, &coms, 0.15);
            lambdas.push(r.lambda * common::nic_gbps());
        }
        let min = lambdas.iter().copied().fold(f64::INFINITY, f64::min);
        rows.push(Row {
            cluster: c,
            clos: lambdas[0] / min,
            random_graph: lambdas[1] / min,
            two_stage: lambdas[2] / min,
        });
    }
    rows
}

/// Prints the rows as the paper's table.
pub fn print(rows: &[Row]) {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cluster.to_string(),
                f3(r.clos),
                f3(r.random_graph),
                f3(r.two_stage),
            ]
        })
        .collect();
    print_table(
        "Table 1: normalized throughput of clustered traffic",
        &[
            "Cluster Size",
            "Clos/fat-tree",
            "Random Graph",
            "Two-stage RG",
        ],
        &body,
    );
}
