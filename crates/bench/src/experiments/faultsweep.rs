//! Fault sweep — graceful degradation and conversion under failure
//! (extension; see EXPERIMENTS.md).
//!
//! Three questions the paper leaves open, answered on the fault plane:
//!
//! 1. **Data-plane degradation**: flap a growing fraction of cables
//!    (fail *and* recover, [`flowsim::faults::FaultPlan`]) during a
//!    permutation workload in each operation mode — Clos, Local, Global,
//!    Hybrid — and measure completion, flow-completion-time stretch, and
//!    mean goodput against the fault-free run. Every cell runs the
//!    invariant auditor; a violation fails the binary.
//! 2. **Stuck converters** (§3.6 failure mode): latch converter switches
//!    in their Clos configuration while the rest of the network runs
//!    global mode, via `flat_tree`'s `instantiate_with_overrides`, and
//!    measure the throughput cost.
//! 3. **Conversion under control-plane failure**: run the §5.3
//!    clos → global conversion on the testbed controller through the
//!    staged retry/rollback machine ([`control::resilient`]) across
//!    escalating fault levels, reporting outcome, retries, and the
//!    wall-clock inflation over the fault-free Table 3 arithmetic.
//!
//! All randomness is seeded: the same `--seed` reproduces the identical
//! fault schedules, simulations, and tables.

use super::common;
use crate::report::{f3, print_table};
use crate::sweep::sweep;
use crate::Scale;
use control::resilient::RetryPolicy;
use flat_tree::{ConverterConfig, FlatTree, ModeAssignment, PodMode};
use flowsim::faults::{ControlFaults, FaultPlan, StuckConfig};
use flowsim::{FailedLinks, SimConfig, Transport};
use netgraph::{dijkstra, Graph, LinkId, NodeId};
use serde::{Deserialize, Serialize};
use testbed::TestbedRig;

/// Cable-flap fractions swept (full grid).
pub const FRACTIONS: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
/// Cable-flap fractions in `--smoke` mode.
pub const SMOKE_FRACTIONS: [f64; 2] = [0.0, 0.10];

/// One (mode, fault fraction) degradation measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationPoint {
    /// Operation mode label.
    pub mode: String,
    /// Fraction of switch-switch cables that flap during the run.
    pub fault_fraction: f64,
    /// Fraction of flows that completed.
    pub completed: f64,
    /// Mean FCT over completed flows, normalized to the same mode's
    /// fault-free mean (1.0 = no stretch).
    pub fct_stretch: f64,
    /// Mean per-flow goodput (Gbps) over completed flows.
    pub mean_gbps: f64,
    /// Connections parked (lost every path) during the run.
    pub parked: usize,
    /// Parked connections revived by recovery events.
    pub revived: usize,
    /// Invariant-auditor violations (must be zero).
    pub audit_violations: usize,
    /// Minimum fraction of workload pairs connected after any fault
    /// event (per-mode connectivity check).
    pub min_connected: f64,
}

/// One stuck-converter measurement: global mode with converters latched
/// in the Clos configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StuckPoint {
    /// How many converters are stuck.
    pub stuck: usize,
    /// Mean per-flow goodput (Gbps).
    pub mean_gbps: f64,
    /// Normalized to the clean global-mode run.
    pub normalized: f64,
}

/// One conversion-under-failure measurement on the testbed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConversionPoint {
    /// Fault-level label.
    pub level: String,
    /// Terminal status of the staged conversion.
    pub status: String,
    /// Retries spent across all stages and shards.
    pub retries: u32,
    /// Wall-clock of the conversion (ms).
    pub total_ms: f64,
    /// The fault-free sequential total (Table 3 arithmetic, ms).
    pub nominal_ms: f64,
}

/// The whole experiment's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultSweep {
    /// Degradation grid: mode × fault fraction.
    pub degradation: Vec<DegradationPoint>,
    /// Stuck-converter rows (global mode, escalating stuck counts).
    pub stuck: Vec<StuckPoint>,
    /// Conversion-under-failure rows (testbed, escalating fault levels).
    pub conversion: Vec<ConversionPoint>,
}

/// One cell of the sweep grid, as a pure, serializable work descriptor:
/// everything a worker process needs — beyond the [`Scale`] — to
/// recompute the cell from scratch. The conversion-under-failure rows
/// are not cells; they are arithmetic-cheap and stay driver-side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CellSpec {
    /// Degradation grid cell: index into the mode grid (clos / local /
    /// global / hybrid) × flap fraction.
    Degradation {
        /// Mode index (0 = clos, 1 = local, 2 = global, 3 = hybrid).
        mode_idx: usize,
        /// Fraction of switch-switch cables that flap.
        fraction: f64,
    },
    /// Stuck-converter cell: global mode with `stuck` converters
    /// latched in their Clos configuration.
    Stuck {
        /// How many converters are stuck.
        stuck: usize,
    },
}

/// The raw result of one [`CellSpec`], before driver-side
/// normalization (FCT stretch and stuck goodput are normalized against
/// sibling cells only after the whole grid is merged).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CellOutput {
    /// A degradation cell; `fct_stretch` still holds the raw mean FCT.
    Degradation(DegradationPoint),
    /// A stuck-converter cell's raw goodput.
    Stuck {
        /// How many converters were stuck.
        stuck: usize,
        /// Mean per-flow goodput (Gbps).
        mean_gbps: f64,
    },
}

/// All duplex switch-switch cables (one direction per cable).
fn cables(g: &Graph) -> Vec<LinkId> {
    g.link_ids()
        .filter(|&l| {
            let info = g.link(l);
            g.node(info.src).kind.is_switch()
                && g.node(info.dst).kind.is_switch()
                && info.reverse.is_none_or(|r| r.0 > l.0)
        })
        .collect()
}

/// Replays the schedule through a [`FailedLinks`] set and, after every
/// distinct event time, measures the fraction of workload pairs that
/// still have a route; returns the minimum over the replay.
fn min_connectivity(
    g: &Graph,
    schedule: &flowsim::FaultSchedule,
    pairs: &[(NodeId, NodeId)],
) -> f64 {
    if schedule.is_empty() || pairs.is_empty() {
        return 1.0;
    }
    let mut failed = FailedLinks::new(g.link_count());
    let mut min_frac = 1.0f64;
    let events = &schedule.events;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].time;
        while i < events.len() && events[i].time == t {
            if events[i].up {
                failed.recover(events[i].link);
            } else {
                failed.fail(events[i].link);
            }
            i += 1;
        }
        let connected = pairs
            .iter()
            .filter(|&&(s, d)| {
                dijkstra::shortest_path_by(g, s, d, |l| {
                    if failed.is_down(l) {
                        f64::INFINITY
                    } else {
                        1.0
                    }
                })
                .is_some()
            })
            .count();
        min_frac = min_frac.min(connected as f64 / pairs.len() as f64);
    }
    min_frac
}

/// The mode grid: the three uniform modes plus a half-global hybrid.
fn mode_grid(ft: &FlatTree) -> Vec<(String, ModeAssignment)> {
    let pods = ft.pods();
    let hybrid: Vec<PodMode> = (0..pods)
        .map(|p| {
            if p < pods / 2 {
                PodMode::Global
            } else {
                PodMode::Clos
            }
        })
        .collect();
    vec![
        ("clos".into(), ModeAssignment::uniform(pods, PodMode::Clos)),
        (
            "local".into(),
            ModeAssignment::uniform(pods, PodMode::Local),
        ),
        (
            "global".into(),
            ModeAssignment::uniform(pods, PodMode::Global),
        ),
        ("hybrid".into(), ModeAssignment::hybrid(hybrid)),
    ]
}

/// The flat-tree under test: the 20-switch testbed in `--smoke`, the
/// mini/full topo-1 otherwise.
fn network(scale: Scale) -> FlatTree {
    if scale.smoke {
        FlatTree::new(testbed::testbed_params()).expect("testbed params are valid")
    } else {
        common::flat_tree_over(common::topo(1, scale.full))
    }
}

/// Flow size (bytes) and the flap timing of the degradation grid.
/// Flap window and flow size chosen so faults hit mid-transfer: flows
/// need ~0.5 s+ under contention, flaps land inside (0, 0.4) s and heal
/// within ~0.6 s.
const BYTES: f64 = 2.5e8;
const FLAP_WINDOW: (f64, f64) = (0.05, 0.4);
const MEAN_DOWN_S: f64 = 0.3;

fn sim_config() -> SimConfig {
    SimConfig {
        transport: Transport::Mptcp {
            k: 4,
            coupled: true,
        },
        ..SimConfig::default()
    }
}

/// The flap fractions at `scale`.
fn fractions(scale: Scale) -> &'static [f64] {
    if scale.smoke {
        &SMOKE_FRACTIONS
    } else {
        &FRACTIONS
    }
}

/// The full sweep grid at `scale`, in canonical (merge) order:
/// degradation cells mode-major, then stuck-converter cells. Every cell
/// is pure in `(scale, spec)`, so any executor — serial loop, thread
/// pool, worker processes — must produce the identical grid as long as
/// it returns one output per spec in this order.
pub fn cell_grid(scale: Scale) -> Vec<CellSpec> {
    let ft = network(scale);
    let modes = mode_grid(&ft).len();
    let mut grid: Vec<CellSpec> = (0..modes)
        .flat_map(|m| {
            fractions(scale)
                .iter()
                .map(move |&f| CellSpec::Degradation {
                    mode_idx: m,
                    fraction: f,
                })
        })
        .collect();
    // Stuck converters: global mode with 0, 1, and (full grids) a
    // quarter of the converters latched in the Clos configuration.
    let counts: Vec<usize> = if scale.smoke {
        vec![0, 1]
    } else {
        let pods = ft.pods();
        let global = ModeAssignment::uniform(pods, PodMode::Global);
        let total = ft.instantiate(&global).configs.len();
        vec![0, 1, total / 4]
    };
    grid.extend(counts.into_iter().map(|n| CellSpec::Stuck { stuck: n }));
    grid
}

/// Executes one cell from scratch: rebuilds the (deterministic)
/// network, instantiates the mode, compiles the fault plan, simulates,
/// audits. Wherever it runs — in-process thread or `ftd` worker — the
/// result is bit-identical, which is what makes the distributed merge
/// byte-identical to the serial sweep.
pub fn execute_cell(scale: Scale, spec: &CellSpec) -> CellOutput {
    match *spec {
        CellSpec::Degradation { mode_idx, fraction } => {
            CellOutput::Degradation(degradation_cell(scale, mode_idx, fraction))
        }
        CellSpec::Stuck { stuck } => {
            let (stuck, mean_gbps) = stuck_cell(scale, stuck);
            CellOutput::Stuck { stuck, mean_gbps }
        }
    }
}

/// One degradation cell. `fct_stretch` holds the raw mean FCT; the
/// caller normalizes it against the same mode's fault-free cell once
/// the grid is merged.
fn degradation_cell(scale: Scale, mode_idx: usize, fraction: f64) -> DegradationPoint {
    let ft = network(scale);
    let modes = mode_grid(&ft);
    let (name, assignment) = &modes[mode_idx];
    let inst = ft.instantiate(assignment);
    let cfg = sim_config();
    let g = &inst.net.graph;
    let pairs_idx = traffic::patterns::permutation(inst.net.num_servers(), scale.seed);
    let flows = common::flow_specs(&inst.net, &pairs_idx, BYTES);
    let pairs: Vec<(NodeId, NodeId)> = pairs_idx
        .iter()
        .map(|&(s, d)| (inst.net.servers[s], inst.net.servers[d]))
        .collect();
    let mut plan = FaultPlan::new(scale.seed ^ ((mode_idx as u64) << 17));
    plan.random_link_flaps(&cables(g), fraction, MEAN_DOWN_S, FLAP_WINDOW);
    let schedule = plan.compile(g).expect("plan matches its own graph");
    let out = flowsim::simulate_under_faults(g, &flows, &cfg, &schedule)
        .expect("workload is valid by construction");
    let fcts: Vec<f64> = out.result.records.iter().filter_map(|r| r.fct()).collect();
    let mean_fct = crate::report::mean(&fcts);
    let rates: Vec<f64> = out
        .result
        .records
        .iter()
        .filter_map(|r| r.avg_rate_gbps())
        .collect();
    DegradationPoint {
        mode: name.clone(),
        fault_fraction: fraction,
        completed: out.result.completed_fraction(),
        fct_stretch: mean_fct, // normalized against the 0% cell later
        mean_gbps: crate::report::mean(&rates),
        parked: out.audit.parked,
        revived: out.audit.revived,
        audit_violations: out.audit.violations(),
        min_connected: min_connectivity(g, &schedule, &pairs),
    }
}

/// One stuck-converter cell: raw `(stuck, mean goodput)`; normalized
/// against the 0-stuck cell once the grid is merged.
fn stuck_cell(scale: Scale, n: usize) -> (usize, f64) {
    let ft = network(scale);
    let global = ModeAssignment::uniform(ft.pods(), PodMode::Global);
    let cfg = sim_config();
    let mut plan = FaultPlan::new(scale.seed);
    for c in 0..n {
        plan.stuck_converter(c, StuckConfig::Default);
    }
    let overrides: Vec<(usize, ConverterConfig)> = plan
        .stuck_converters
        .iter()
        .map(|s| (s.converter, to_converter_config(s.config)))
        .collect();
    let inst = ft.instantiate_with_overrides(&global, &overrides);
    let pairs_idx = traffic::patterns::permutation(inst.net.num_servers(), scale.seed);
    let flows = common::flow_specs(&inst.net, &pairs_idx, BYTES);
    let res = flowsim::try_simulate(&inst.net.graph, &flows, &cfg).expect("workload is valid");
    let rates: Vec<f64> = res
        .records
        .iter()
        .filter_map(|r| r.avg_rate_gbps())
        .collect();
    (n, crate::report::mean(&rates))
}

/// Runs the full sweep with the in-process parallel driver.
pub fn run(scale: Scale) -> FaultSweep {
    run_with(scale, |specs| {
        sweep(specs, |_, spec| execute_cell(scale, spec))
    })
}

/// Runs the full sweep through a caller-supplied cell executor — the
/// in-process [`sweep`] driver ([`run`]) or the distributed dispatch
/// plane. The executor must return one [`CellOutput`] per spec, in
/// spec order; everything position-dependent (FCT normalization, stuck
/// goodput normalization) happens here, after the merge, so executors
/// only ever see independent cells.
pub fn run_with<E>(scale: Scale, exec: E) -> FaultSweep
where
    E: FnOnce(&[CellSpec]) -> Vec<CellOutput>,
{
    let specs = cell_grid(scale);
    let outputs = exec(&specs);
    assert_eq!(
        outputs.len(),
        specs.len(),
        "executor must return one output per cell"
    );

    let mut degradation: Vec<DegradationPoint> = Vec::new();
    let mut stuck_raw: Vec<(usize, f64)> = Vec::new();
    for out in outputs {
        match out {
            CellOutput::Degradation(p) => degradation.push(p),
            CellOutput::Stuck { stuck, mean_gbps } => stuck_raw.push((stuck, mean_gbps)),
        }
    }

    // Normalize FCT stretch per mode against that mode's fault-free mean.
    let mut mode_names: Vec<String> = Vec::new();
    for p in &degradation {
        if !mode_names.contains(&p.mode) {
            mode_names.push(p.mode.clone());
        }
    }
    for mode_name in &mode_names {
        let base = degradation
            .iter()
            .find(|p| &p.mode == mode_name && p.fault_fraction == 0.0)
            .map(|p| p.fct_stretch)
            .expect("fraction grid includes 0.0");
        for p in degradation.iter_mut().filter(|p| &p.mode == mode_name) {
            p.fct_stretch /= base;
        }
    }

    let clean = stuck_raw
        .first()
        .map(|&(_, g)| g)
        .expect("stuck grid includes 0");
    let stuck = stuck_raw
        .into_iter()
        .map(|(n, gbps)| StuckPoint {
            stuck: n,
            mean_gbps: gbps,
            normalized: gbps / clean,
        })
        .collect();

    // Conversion under control-plane failure, on the testbed controller.
    let levels: Vec<(&str, ControlFaults)> = vec![
        ("none", ControlFaults::none()),
        (
            "ocs-flaky",
            ControlFaults {
                seed: scale.seed ^ 43,
                ocs_fail_prob: 0.7,
                ocs_timeout_prob: 0.2,
                ..ControlFaults::none()
            },
        ),
        (
            "rules-flaky",
            ControlFaults {
                seed: scale.seed,
                rule_fail_prob: 0.05,
                ..ControlFaults::none()
            },
        ),
        (
            "crashy",
            ControlFaults {
                seed: scale.seed,
                rule_fail_prob: 0.02,
                shard_crash_prob: 0.25,
                shard_recover_ms: 250.0,
                ..ControlFaults::none()
            },
        ),
        (
            "hopeless",
            ControlFaults {
                seed: scale.seed,
                ocs_fail_prob: 1.0,
                ..ControlFaults::none()
            },
        ),
    ];
    let policy = RetryPolicy {
        shards: 2,
        ..RetryPolicy::default()
    };
    let conversion = levels
        .iter()
        .map(|(label, faults)| {
            // A fresh rig per level: every conversion starts from Clos.
            let rig = TestbedRig::new();
            let pods = rig.controller.flat_tree().pods();
            let to = ModeAssignment::uniform(pods, PodMode::Global);
            let out = rig
                .controller
                .convert_resilient(&to, &policy, faults)
                .expect("valid fault levels");
            ConversionPoint {
                level: label.to_string(),
                status: format!("{:?}", out.status).to_lowercase(),
                retries: out.total_retries,
                total_ms: out.total_ms,
                nominal_ms: out.report.total_sequential_ms(),
            }
        })
        .collect();

    FaultSweep {
        degradation,
        stuck,
        conversion,
    }
}

fn to_converter_config(c: StuckConfig) -> ConverterConfig {
    match c {
        StuckConfig::Default => ConverterConfig::Default,
        StuckConfig::Local => ConverterConfig::Local,
        StuckConfig::Side => ConverterConfig::Side,
        StuckConfig::Cross => ConverterConfig::Cross,
    }
}

/// Total auditor violations across the sweep (the binary's exit gate).
pub fn total_violations(s: &FaultSweep) -> usize {
    s.degradation.iter().map(|p| p.audit_violations).sum()
}

/// Prints the three tables.
pub fn print(s: &FaultSweep) {
    let body: Vec<Vec<String>> = s
        .degradation
        .iter()
        .map(|p| {
            vec![
                p.mode.clone(),
                format!("{:.0}%", p.fault_fraction * 100.0),
                format!("{:.1}%", p.completed * 100.0),
                f3(p.fct_stretch),
                f3(p.mean_gbps),
                p.parked.to_string(),
                p.revived.to_string(),
                format!("{:.1}%", p.min_connected * 100.0),
                p.audit_violations.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fault sweep: degradation under cable flaps (extension)",
        &[
            "mode",
            "flapped",
            "completed",
            "FCT stretch",
            "mean Gbps",
            "parked",
            "revived",
            "min conn",
            "violations",
        ],
        &body,
    );

    let body: Vec<Vec<String>> = s
        .stuck
        .iter()
        .map(|p| vec![p.stuck.to_string(), f3(p.mean_gbps), f3(p.normalized)])
        .collect();
    print_table(
        "Fault sweep: global mode with stuck converters (§3.6)",
        &["stuck", "mean Gbps", "normalized"],
        &body,
    );

    let body: Vec<Vec<String>> = s
        .conversion
        .iter()
        .map(|p| {
            vec![
                p.level.clone(),
                p.status.clone(),
                p.retries.to_string(),
                f3(p.total_ms),
                f3(p.nominal_ms),
                f3(p.total_ms / p.nominal_ms),
            ]
        })
        .collect();
    print_table(
        "Fault sweep: testbed clos→global conversion under control-plane faults",
        &[
            "level",
            "status",
            "retries",
            "total ms",
            "nominal ms",
            "inflation",
        ],
        &body,
    );
}
