//! Failure resilience — the §4.2.1 footnote's deferred evaluation.
//!
//! "It has been established that throughput degrades more gracefully in
//! random graph networks than in fat-tree under failure. Because
//! flat-tree approximates random graph networks, we expect flat-tree to
//! be resilient to failure as well, although more thorough evaluations
//! are left to future work."
//!
//! This experiment is that evaluation: kill a growing fraction of
//! switch-to-switch cables uniformly at random, re-route every
//! permutation pair over the surviving k-shortest paths, and measure the
//! mean per-flow throughput (normalized to the failure-free value) plus
//! the fraction of disconnected pairs. The (fraction, trial) cells run
//! on the [`crate::sweep`] driver's worker threads.

use super::common;
use crate::report::{f3, print_table};
use crate::sweep::sweep;
use crate::Scale;
use flat_tree::PodMode;
use flowsim::alloc::{connection_rates, ConnPaths};
use netgraph::{Graph, LinkId, NodeId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing::SharedRouteTable;
use serde::{Deserialize, Serialize};

/// Failure fractions swept.
pub const FRACTIONS: [f64; 6] = [0.0, 0.02, 0.05, 0.10, 0.15, 0.20];

/// One (network, failure fraction) measurement, averaged over
/// [`TRIALS`] independent failure draws.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Point {
    /// Network name.
    pub network: String,
    /// Fraction of switch-switch cables failed.
    pub failed_fraction: f64,
    /// Mean per-flow throughput in Gbps (absolute).
    pub mean_gbps: f64,
    /// Mean per-flow throughput normalized to the same network at 0%.
    pub normalized_throughput: f64,
    /// Fraction of server pairs left with no route.
    pub disconnected: f64,
}

/// Independent failure draws averaged per point.
pub const TRIALS: usize = 3;

/// All duplex switch-switch cables (one direction per cable).
fn cables(g: &Graph) -> Vec<LinkId> {
    g.link_ids()
        .filter(|&l| {
            let info = g.link(l);
            g.node(info.src).kind.is_switch()
                && g.node(info.dst).kind.is_switch()
                && info.reverse.is_none_or(|r| r.0 > l.0)
        })
        .collect()
}

/// Mean throughput and disconnection rate with a given failed-cable
/// set. Routes come from the shared precomputed table through a failure
/// **overlay**: only switch pairs whose cached paths cross a failed
/// link are re-run (masked), the rest splice unchanged — bit-identical
/// to a from-scratch masked Yen per server pair.
fn measure(
    g: &Graph,
    pairs: &[(NodeId, NodeId)],
    table: &SharedRouteTable,
    down: &[LinkId],
) -> (f64, f64) {
    let ov = table.overlay(g, down);
    let mut conns = Vec::new();
    let mut disconnected = 0usize;
    for &(s, d) in pairs {
        let paths = table
            .server_paths_with(g, &ov, s, d)
            .expect("pair covered by the shared table");
        if paths.is_empty() {
            disconnected += 1;
            continue;
        }
        let w = 1.0 / paths.len() as f64;
        conns.push(ConnPaths {
            paths,
            subflow_weight: w,
        });
    }
    let mut caps = g.capacities();
    for &l in down {
        caps[l.idx()] = 1e-9; // dead, but keep the allocator's invariants simple
    }
    let rates = connection_rates(&caps, &conns);
    let total: f64 = rates.iter().sum();
    // Disconnected pairs contribute zero throughput to the mean.
    let mean = total / pairs.len() as f64;
    (mean, disconnected as f64 / pairs.len() as f64)
}

/// Runs the sweep on flat-tree global mode vs Clos mode.
pub fn run(scale: Scale) -> Vec<Point> {
    let ft = common::flat_tree_over(common::topo(1, scale.full));
    let nets = vec![
        (
            "ft-global".to_string(),
            common::instance(&ft, PodMode::Global).net,
        ),
        (
            "ft-clos".to_string(),
            common::instance(&ft, PodMode::Clos).net,
        ),
    ];
    let k = 8;
    let mut out = Vec::new();
    for (name, net) in &nets {
        let g = &net.graph;
        let index_pairs = traffic::patterns::permutation(net.num_servers(), scale.seed);
        let pairs: Vec<(NodeId, NodeId)> = index_pairs
            .iter()
            .map(|&(s, d)| (net.servers[s], net.servers[d]))
            .collect();
        // One parallel-precomputed table per network; every (fraction,
        // trial) cell reads it through its own failure overlay.
        let table = common::shared_route_table(net, &index_pairs, k);
        let all_cables = cables(g);
        // Sweep (fraction, trial) cells on the shared parallel driver.
        let jobs: Vec<(f64, usize)> = FRACTIONS
            .iter()
            .flat_map(|&f| (0..TRIALS).map(move |t| (f, t)))
            .collect();
        let results: Vec<(f64, f64, f64)> = sweep(&jobs, |_, &(frac, trial)| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(scale.seed ^ (frac * 1e6) as u64 ^ (trial as u64) << 32);
            let mut chosen = all_cables.clone();
            chosen.shuffle(&mut rng);
            chosen.truncate((all_cables.len() as f64 * frac) as usize);
            let mut down = Vec::new();
            for l in chosen {
                down.push(l);
                if let Some(r) = g.link(l).reverse {
                    down.push(r);
                }
            }
            down.sort_unstable_by_key(|l| l.0);
            let (mean, disc) = measure(g, &pairs, &table, &down);
            (frac, mean, disc)
        });
        // Average trials per fraction.
        let mut per_frac: Vec<(f64, f64, f64)> = Vec::new();
        for &frac in &FRACTIONS {
            let hits: Vec<&(f64, f64, f64)> =
                results.iter().filter(|(f, _, _)| *f == frac).collect();
            let mean = hits.iter().map(|(_, m, _)| m).sum::<f64>() / hits.len() as f64;
            let disc = hits.iter().map(|(_, _, d)| d).sum::<f64>() / hits.len() as f64;
            per_frac.push((frac, mean, disc));
        }
        let baseline = per_frac[0].1;
        for (frac, mean, disc) in per_frac {
            out.push(Point {
                network: name.clone(),
                failed_fraction: frac,
                mean_gbps: mean,
                normalized_throughput: mean / baseline,
                disconnected: disc,
            });
        }
    }
    out
}

/// Prints the sweep.
pub fn print(points: &[Point]) {
    let body: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.network.clone(),
                format!("{:.0}%", p.failed_fraction * 100.0),
                f3(p.mean_gbps),
                f3(p.normalized_throughput),
                format!("{:.1}%", p.disconnected * 100.0),
            ]
        })
        .collect();
    print_table(
        "Resilience: throughput under random cable failures (extension)",
        &[
            "network",
            "failed",
            "mean Gbps",
            "normalized",
            "disconnected",
        ],
        &body,
    );
}
