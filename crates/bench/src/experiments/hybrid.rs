//! Hybrid mode as a product feature (§2.1, §3.5, §5.2): "the flat-tree
//! network is organized into functionally separate zones each having a
//! different topology. Clusters of different sizes can be placed into
//! suitable zones to optimize their performance."
//!
//! Two tenants share a 4-pod flat-tree: a rack-local "Hadoop" tenant in
//! pods 0-1 and a network-wide "analytics" tenant in pods 2-3. We measure
//! both tenants' mean FCT under uniform Clos, uniform global, and the
//! hybrid assignment [Clos, Clos, Global, Global]: the hybrid should give
//! *each* tenant (approximately) its best-mode performance at once.

use super::common;
use crate::report::{f3, print_table};
use crate::Scale;
use flat_tree::{FlatTreeInstance, ModeAssignment, PodMode};
use flowsim::{simulate, FlowSpec, SimConfig, Transport};
use serde::{Deserialize, Serialize};

/// Mean FCT (ms) of both tenants under one assignment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Assignment label.
    pub assignment: String,
    /// Rack-local tenant (pods 0-1) mean FCT in ms.
    pub rack_tenant_ms: f64,
    /// Network-wide tenant (pods 2-3) mean FCT in ms.
    pub wide_tenant_ms: f64,
}

fn tenant_flows(
    inst: &FlatTreeInstance,
    pods: std::ops::Range<usize>,
    rack_local: bool,
    rack_size: usize,
    bytes: f64,
) -> Vec<FlowSpec> {
    let mut servers = Vec::new();
    for p in pods {
        servers.extend(inst.net.pod_servers[p].iter().copied());
    }
    let n = servers.len();
    let mut flows = Vec::new();
    for (i, &src) in servers.iter().enumerate() {
        let dst = if rack_local {
            let base = i / rack_size * rack_size;
            servers[base + (i + 1 - base) % rack_size]
        } else {
            servers[(i + n / 2) % n]
        };
        if dst != src {
            flows.push(FlowSpec {
                id: i as u64,
                src,
                dst,
                bytes,
                start: 0.0,
            });
        }
    }
    flows
}

fn mean_fct_ms(inst: &FlatTreeInstance, flows: &[FlowSpec]) -> f64 {
    let res = simulate(
        &inst.net.graph,
        flows,
        &SimConfig {
            transport: Transport::Mptcp {
                k: 4,
                coupled: true,
            },
            ..SimConfig::default()
        },
    );
    res.mean_fct().expect("flows complete") * 1e3
}

/// Runs all three assignments.
pub fn run(scale: Scale) -> Vec<Row> {
    let clos = common::topo(1, scale.full);
    let rack_size = clos.servers_per_edge;
    let ft = common::flat_tree_over(clos);
    let pods = ft.pods();
    assert!(pods >= 4, "hybrid experiment needs >= 4 pods");
    let half = pods / 2;
    let assignments = vec![
        (
            "uniform-clos".to_string(),
            ModeAssignment::uniform(pods, PodMode::Clos),
        ),
        (
            "uniform-global".to_string(),
            ModeAssignment::uniform(pods, PodMode::Global),
        ),
        (
            "hybrid".to_string(),
            ModeAssignment::hybrid(
                (0..pods)
                    .map(|p| {
                        if p < half {
                            PodMode::Clos
                        } else {
                            PodMode::Global
                        }
                    })
                    .collect(),
            ),
        ),
    ];
    let bytes = 2e8;
    assignments
        .into_iter()
        .map(|(label, a)| {
            let inst = ft.instantiate(&a);
            let rack = tenant_flows(&inst, 0..half, true, rack_size, bytes);
            let wide = tenant_flows(&inst, half..pods, false, rack_size, bytes);
            Row {
                assignment: label,
                rack_tenant_ms: mean_fct_ms(&inst, &rack),
                wide_tenant_ms: mean_fct_ms(&inst, &wide),
            }
        })
        .collect()
}

/// Prints the comparison.
pub fn print(rows: &[Row]) {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.assignment.clone(),
                f3(r.rack_tenant_ms),
                f3(r.wide_tenant_ms),
            ]
        })
        .collect();
    print_table(
        "Hybrid zones: per-tenant mean FCT (ms) (extension)",
        &["assignment", "rack-local tenant", "network-wide tenant"],
        &body,
    );
}
