//! Figure 10 — bidirectional core bandwidth on the testbed under live
//! topology conversion, sampled every 0.5 s over the 5-minute timeline.

use crate::report::{f3, print_table};
use crate::Scale;
use serde::{Deserialize, Serialize};
use testbed::iperf::{run as run_iperf, IperfParams, IperfResult};
use testbed::TestbedRig;

/// The experiment's digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Digest {
    /// Full 0.5 s-sampled series `(t, Gbps)`.
    pub samples: Vec<(f64, f64)>,
    /// Steady-state Gbps per mode segment.
    pub steady: Vec<(String, f64)>,
    /// Core-bandwidth gain of global mode over Clos mode (the paper's
    /// +27.6 % headline).
    pub global_gain_pct: f64,
    /// Seconds to reach 95 % of steady state after each conversion.
    pub adapt_s: Vec<(String, f64)>,
}

/// Runs the paper timeline (scale-independent: the testbed is fixed).
pub fn run(_scale: Scale) -> Digest {
    let rig = TestbedRig::new();
    let params = IperfParams::paper_timeline();
    let res: IperfResult = run_iperf(&rig, &params);
    let steady: Vec<(String, f64)> = res
        .steady_gbps
        .iter()
        .map(|(m, v)| (format!("{m:?}").to_lowercase(), *v))
        .collect();
    let clos = steady
        .iter()
        .find(|(m, _)| m == "clos")
        .map(|&(_, v)| v)
        .expect("clos segment");
    let global = steady
        .iter()
        .find(|(m, _)| m == "global")
        .map(|&(_, v)| v)
        .expect("global segment");
    Digest {
        samples: res.samples,
        steady,
        global_gain_pct: (global / clos - 1.0) * 100.0,
        adapt_s: res
            .adapt_s
            .iter()
            .map(|(m, v)| (format!("{m:?}").to_lowercase(), *v))
            .collect(),
    }
}

/// Prints the digest: one row per 10 s of the series, plus summary.
pub fn print(d: &Digest) {
    let body: Vec<Vec<String>> = d
        .samples
        .iter()
        .filter(|(t, _)| ((t / 0.5).round() as usize).is_multiple_of(20))
        .map(|&(t, v)| vec![format!("{t:.0}"), f3(v)])
        .collect();
    print_table(
        "Figure 10: core bandwidth vs time",
        &["t (s)", "Gbps"],
        &body,
    );
    let rows: Vec<Vec<String>> = d
        .steady
        .iter()
        .zip(&d.adapt_s)
        .map(|((m, v), (_, a))| vec![m.clone(), f3(*v), f3(*a)])
        .collect();
    print_table(
        "Figure 10 summary (per segment)",
        &["mode", "steady Gbps", "adapt s"],
        &rows,
    );
    // ftlint::allow(FTL-R002): part of the golden stdout contract the experiment bins print
    println!(
        "\nglobal-mode core bandwidth gain over Clos: {:.1}% (paper: +27.6%)",
        d.global_gain_pct
    );
}
