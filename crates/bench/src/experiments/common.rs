//! Shared builders and allocation helpers for the experiments.

use flat_tree::{FlatTree, FlatTreeInstance, FlatTreeParams, ModeAssignment, PodMode};
use flowsim::alloc::{connection_rates, ConnPaths};
use mcf::Commodity;
use netgraph::NodeId;
use routing::{RouteTable, SharedRouteTable};
use std::sync::Arc;
use topology::{ClosParams, DcNetwork};

/// Mini-scale counterpart of a Table 2 topology: same layer structure and
/// oversubscription ratios, reduced counts. `--full` experiments use
/// `ClosParams::topo(i)` directly.
pub fn mini_topo(i: usize) -> ClosParams {
    match i {
        // topo-1: uniform layers, 4:1 at the edge. 256 servers.
        1 => ClosParams {
            pods: 4,
            edges_per_pod: 4,
            aggs_per_pod: 4,
            servers_per_edge: 16,
            edge_uplinks: 4,
            agg_uplinks: 4,
            num_cores: 16,
            link_gbps: 10.0,
        },
        // topo-2: a proportional down-scale of topo-1. 192 servers.
        2 => ClosParams {
            pods: 3,
            ..mini_topo(1)
        },
        // topo-3: twice topo-1's edge oversubscription. 512 servers.
        3 => ClosParams {
            servers_per_edge: 32,
            ..mini_topo(1)
        },
        // topo-4: fewer, larger aggregation/core switches. 256 servers.
        4 => ClosParams {
            pods: 2,
            edges_per_pod: 8,
            aggs_per_pod: 4,
            servers_per_edge: 16,
            edge_uplinks: 4,
            agg_uplinks: 8,
            num_cores: 8,
            link_gbps: 10.0,
        },
        // topo-5: 2:1 at edge and 2:1 at aggregation. 256 servers.
        5 => ClosParams {
            edge_uplinks: 8,
            ..mini_topo(1)
        },
        // topo-6: topo-5 with larger aggregation/core switches.
        6 => ClosParams {
            pods: 4,
            edges_per_pod: 4,
            aggs_per_pod: 2,
            servers_per_edge: 16,
            edge_uplinks: 8,
            agg_uplinks: 8,
            num_cores: 8,
            link_gbps: 10.0,
        },
        _ => panic!("topo-1..6"),
    }
}

/// The Clos parameters for an experiment, mini or full.
pub fn topo(i: usize, full: bool) -> ClosParams {
    if full {
        ClosParams::topo(i)
    } else {
        mini_topo(i)
    }
}

/// Builds the flat-tree over a Clos layout with the §3.4-profiled
/// `(m, n)` split: "vary m and n until they result in the shortest
/// average path length over all server pairs" in global mode.
pub fn flat_tree_over(clos: ClosParams) -> FlatTree {
    let (m, n) = flat_tree::profile::best_mn(&clos).expect("profilable layout");
    FlatTree::new(FlatTreeParams::new(clos, m, n)).expect("valid flat-tree params")
}

/// Instantiates a uniform mode.
pub fn instance(ft: &FlatTree, mode: PodMode) -> FlatTreeInstance {
    ft.instantiate(&ModeAssignment::uniform(ft.pods(), mode))
}

/// Steady-state per-connection MPTCP rates (Gbps) for a batch of
/// (src index, dst index) pairs. Coupled subflows over k-shortest paths.
pub fn mptcp_rates(net: &DcNetwork, pairs: &[(usize, usize)], k: usize) -> Vec<f64> {
    let g = &net.graph;
    let mut rt = RouteTable::new(k);
    let conns: Vec<ConnPaths> = pairs
        .iter()
        .map(|&(s, d)| {
            let paths = rt.server_paths(g, net.servers[s], net.servers[d]);
            assert!(!paths.is_empty(), "pair ({s},{d}) unroutable");
            let w = 1.0 / paths.len() as f64;
            ConnPaths {
                paths,
                subflow_weight: w,
            }
        })
        .collect();
    connection_rates(&g.capacities(), &conns)
}

/// The ingress/egress switch-pair route domain of a batch of server
/// index pairs (intra-rack pairs need no switch paths and are skipped).
pub fn switch_pairs(net: &DcNetwork, pairs: &[(usize, usize)]) -> Vec<(NodeId, NodeId)> {
    let g = &net.graph;
    pairs
        .iter()
        .filter_map(|&(s, d)| {
            let si = g.server_uplink_switch(net.servers[s])?;
            let di = g.server_uplink_switch(net.servers[d])?;
            (si != di).then_some((si, di))
        })
        .collect()
}

/// One parallel-precomputed route table covering a pair batch at `k`,
/// built once and shared (via `Arc`) by every cell that routes it —
/// instead of a private lazy [`RouteTable`] per cell.
pub fn shared_route_table(
    net: &DcNetwork,
    pairs: &[(usize, usize)],
    k: usize,
) -> Arc<SharedRouteTable> {
    Arc::new(SharedRouteTable::build_for_pairs(
        &net.graph,
        k,
        &switch_pairs(net, pairs),
    ))
}

/// [`mptcp_rates`] over a precomputed shared route table. The spliced
/// path sets are identical to the lazy per-cell table's, so the rates
/// are bit-for-bit the same; only the Yen runs are shared and parallel.
pub fn mptcp_rates_shared(
    net: &DcNetwork,
    pairs: &[(usize, usize)],
    table: &SharedRouteTable,
) -> Vec<f64> {
    let g = &net.graph;
    let conns: Vec<ConnPaths> = pairs
        .iter()
        .map(|&(s, d)| {
            let paths = table
                .server_paths(g, net.servers[s], net.servers[d])
                .expect("pair covered by the shared table");
            assert!(!paths.is_empty(), "pair ({s},{d}) unroutable");
            let w = 1.0 / paths.len() as f64;
            ConnPaths {
                paths,
                subflow_weight: w,
            }
        })
        .collect();
    connection_rates(&g.capacities(), &conns)
}

/// Index pairs → unit-demand commodities with NIC-rate demand.
pub fn commodities(net: &DcNetwork, pairs: &[(usize, usize)], demand: f64) -> Vec<Commodity> {
    pairs
        .iter()
        .map(|&(s, d)| Commodity {
            src: net.servers[s],
            dst: net.servers[d],
            demand,
        })
        .collect()
}

/// Index pairs → `flowsim` specs, simultaneous, equal bytes.
pub fn flow_specs(net: &DcNetwork, pairs: &[(usize, usize)], bytes: f64) -> Vec<flowsim::FlowSpec> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, d))| flowsim::FlowSpec {
            id: i as u64,
            src: net.servers[s],
            dst: net.servers[d],
            bytes,
            start: 0.0,
        })
        .collect()
}

/// NIC rate of every network in this repo (Gbps).
pub fn nic_gbps() -> f64 {
    10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minis_preserve_oversubscription_ratios() {
        for i in 1..=6 {
            let mini = mini_topo(i);
            let full = ClosParams::topo(i);
            mini.validate().unwrap();
            assert_eq!(
                mini.edge_oversubscription(),
                full.edge_oversubscription(),
                "topo-{i} edge OR"
            );
            assert_eq!(
                mini.agg_oversubscription(),
                full.agg_oversubscription(),
                "topo-{i} agg OR"
            );
        }
    }

    #[test]
    fn minis_support_flat_tree() {
        for i in 1..=6 {
            let ft = flat_tree_over(mini_topo(i));
            let inst = instance(&ft, PodMode::Global);
            inst.net.validate().unwrap();
        }
    }

    #[test]
    fn shared_rates_match_lazy_rates() {
        let ft = flat_tree_over(mini_topo(2));
        let inst = instance(&ft, PodMode::Global);
        let pairs = traffic::patterns::permutation(inst.net.num_servers(), 7);
        for k in [4usize, 8] {
            let table = shared_route_table(&inst.net, &pairs, k);
            assert_eq!(
                mptcp_rates_shared(&inst.net, &pairs, &table),
                mptcp_rates(&inst.net, &pairs, k),
                "k={k}"
            );
        }
    }

    #[test]
    fn mptcp_rates_respect_nic() {
        let ft = flat_tree_over(mini_topo(2));
        let inst = instance(&ft, PodMode::Global);
        let pairs = traffic::patterns::permutation(inst.net.num_servers(), 3);
        let rates = mptcp_rates(&inst.net, &pairs, 8);
        assert_eq!(rates.len(), pairs.len());
        assert!(rates.iter().all(|&r| r > 0.0 && r <= nic_gbps() + 1e-6));
    }
}
