//! Table 3 — conversion delay breakdown on the testbed, plus the §4.2
//! network-state analysis and §5.3 rule counts.

use crate::report::{f3, print_table};
use crate::Scale;
use control::ConversionReport;
use flat_tree::{ModeAssignment, PodMode};
use routing::rules::StateAnalysis;
use serde::{Deserialize, Serialize};
use testbed::TestbedRig;

/// Digest of the conversion measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Digest {
    /// One report per conversion target (global, local, clos), following
    /// the Figure 10 cycle Clos → global → local → clos.
    pub conversions: Vec<ConversionReport>,
    /// Max OpenFlow rules per switch per mode (paper: 242 / 180 / 76 for
    /// global / local / clos at k = 4 on the testbed).
    pub max_rules: Vec<(String, usize)>,
    /// State analysis at the paper's topo-1 scale.
    pub states: StateAnalysis,
}

/// Runs the conversion cycle on the testbed.
pub fn run(_scale: Scale) -> Digest {
    let rig = TestbedRig::new();
    let pods = rig.controller.flat_tree().pods();
    let mut conversions = Vec::new();
    for mode in [PodMode::Global, PodMode::Local, PodMode::Clos] {
        conversions.push(rig.controller.convert(&ModeAssignment::uniform(pods, mode)));
    }
    let max_rules = [PodMode::Global, PodMode::Local, PodMode::Clos]
        .into_iter()
        .map(|m| {
            let art = rig.controller.artifacts(&ModeAssignment::uniform(pods, m));
            (format!("{m:?}").to_lowercase(), art.rules.max_per_switch())
        })
        .collect();
    // §4.2's arithmetic at the paper's topo-1 scale: 4096 servers,
    // 320 switches, 128 ingress ToRs, k = 8, L ≈ 5, D = 4, 48 ports.
    let states = StateAnalysis::compute(4096, 320, 128, 8, 5.0, 4, 48);
    Digest {
        conversions,
        max_rules,
        states,
    }
}

/// Prints the digest.
pub fn print(d: &Digest) {
    let body: Vec<Vec<String>> = d
        .conversions
        .iter()
        .map(|c| {
            vec![
                c.to.clone(),
                f3(c.ocs_ms),
                f3(c.delete_ms),
                f3(c.add_ms),
                f3(c.total_sequential_ms()),
                c.crosspoints_changed.to_string(),
                c.rules_deleted.to_string(),
                c.rules_added.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 3: conversion delay (ms)",
        &[
            "to", "OCS", "delete", "add", "total", "xpoints", "#del", "#add",
        ],
        &body,
    );
    let rules: Vec<Vec<String>> = d
        .max_rules
        .iter()
        .map(|(m, n)| vec![m.clone(), n.to_string()])
        .collect();
    print_table(
        "Max OpenFlow rules per switch (paper: 242/180/76)",
        &["mode", "max rules"],
        &rules,
    );
    // ftlint::allow(FTL-R002): part of the golden stdout contract the experiment bins print
    println!(
        "\n§4.2 state analysis @ topo-1: naive {:.0}/switch -> switch-level {:.0}/switch \
         (x{:.0} reduction) -> source-routed {:.0}/ingress + {} static transit rules",
        d.states.naive_per_switch,
        d.states.switch_level_per_switch,
        d.states.aggregation_factor(),
        d.states.source_routed_per_ingress,
        d.states.transit_static
    );
}
