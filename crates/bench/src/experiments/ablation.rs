//! Design-choice ablations the paper points at its prior study for:
//! the §3.2 pod–core wiring patterns ("our previous paper contains
//! evaluation of these wiring patterns") and the §3.4 `(m, n)`
//! sensitivity ("the sensitivity test for this approach is in our prior
//! paper").

use super::common;
use crate::report::{f3, print_table};
use crate::Scale;
use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode, WiringPattern};
use netgraph::metrics::avg_server_path_length;
use serde::{Deserialize, Serialize};

/// One ablation candidate's metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Candidate {
    /// Which knob ("wiring" or "mn").
    pub knob: String,
    /// Candidate label (e.g. "Pattern1" or "(m=1,n=2)").
    pub label: String,
    /// Average server-pair path length in global mode.
    pub global_apl: f64,
    /// Mean permutation-traffic throughput (Gbps, 8-path MPTCP).
    pub permutation_gbps: f64,
}

fn measure(ft: &FlatTree, seed: u64) -> (f64, f64) {
    let inst = ft.instantiate(&ModeAssignment::uniform(ft.pods(), PodMode::Global));
    let apl = avg_server_path_length(&inst.net.graph).expect("nonempty");
    let pairs = traffic::patterns::permutation(inst.net.num_servers(), seed);
    let rates = common::mptcp_rates(&inst.net, &pairs, 8);
    (apl, crate::report::mean(&rates))
}

/// Runs both ablations on the topo-1 mini device set.
pub fn run(scale: Scale) -> Vec<Candidate> {
    let clos = common::topo(1, scale.full);
    let mut out = Vec::new();

    // Wiring pattern ablation, at an (m, n) where the patterns differ
    // (m = 2 shares a factor with h/r on this layout).
    for pattern in [WiringPattern::Pattern1, WiringPattern::Pattern2] {
        let mut params = FlatTreeParams::new(clos, 2, 1);
        params.wiring = pattern;
        let Ok(ft) = FlatTree::new(params) else {
            continue; // a pattern can be infeasible for this (m, n); skip
        };
        let (apl, thr) = measure(&ft, scale.seed);
        out.push(Candidate {
            knob: "wiring".into(),
            label: format!("{pattern:?}"),
            global_apl: apl,
            permutation_gbps: thr,
        });
    }

    // (m, n) sensitivity across the feasible grid.
    for point in flat_tree::profile::profile_mn(&clos) {
        let params = FlatTreeParams::new(clos, point.m, point.n);
        let Ok(ft) = FlatTree::new(params) else {
            continue;
        };
        let (apl, thr) = measure(&ft, scale.seed);
        out.push(Candidate {
            knob: "mn".into(),
            label: format!("(m={},n={})", point.m, point.n),
            global_apl: apl,
            permutation_gbps: thr,
        });
    }
    out
}

/// The §3.4 selection rule cross-checked against throughput: does the
/// APL-minimizing (m, n) land within `tolerance` of the
/// throughput-maximizing one? Returns (apl_best, throughput_best).
pub fn profiling_agreement(cands: &[Candidate]) -> (String, String) {
    let mn: Vec<&Candidate> = cands.iter().filter(|c| c.knob == "mn").collect();
    let apl_best = mn
        .iter()
        .min_by(|a, b| a.global_apl.total_cmp(&b.global_apl))
        .expect("nonempty");
    let thr_best = mn
        .iter()
        .max_by(|a, b| a.permutation_gbps.total_cmp(&b.permutation_gbps))
        .expect("nonempty");
    (apl_best.label.clone(), thr_best.label.clone())
}

/// Prints both ablations.
pub fn print(cands: &[Candidate]) {
    let body: Vec<Vec<String>> = cands
        .iter()
        .map(|c| {
            vec![
                c.knob.clone(),
                c.label.clone(),
                f3(c.global_apl),
                f3(c.permutation_gbps),
            ]
        })
        .collect();
    print_table(
        "Ablations: wiring pattern and (m, n) sensitivity (extension)",
        &["knob", "candidate", "global-mode APL", "permutation Gbps"],
        &body,
    );
    let (apl_best, thr_best) = profiling_agreement(cands);
    // ftlint::allow(FTL-R002): part of the golden stdout contract the experiment bins print
    println!(
        "\n§3.4 profiling picks {apl_best} by path length; \
         throughput prefers {thr_best}"
    );
}
