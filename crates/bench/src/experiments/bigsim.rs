//! Production-scale decomposed simulation — the scale target ROADMAP
//! sets for the convertible-architecture comparison.
//!
//! The exact fluid engine re-solves a global max-min allocation per
//! event, which tops out around a few thousand servers. `decomp`
//! (Parsimon-style link-cluster decomposition) trades second-order
//! congestion coupling for locality, so this experiment can run a k=32
//! fat-tree (8192 servers) and its flat-tree conversions — the paper's
//! "entire data center as one giant pod" regime — on one machine.
//!
//! Per network (fat-tree baseline plus uniform flat-tree modes) the
//! experiment decomposes a seeded permutation workload, reports the
//! FCT distribution summary, and shows the compression the clustering
//! achieved: loaded links vs clusters actually simulated. Stdout is
//! deterministic (no wall-clock anywhere); perfsnap owns the timing
//! story via the `bigsim_allmodes` workload.

use super::common;
use crate::report::{f3, print_table};
use crate::Scale;
use decomp::{decompose, DecompConfig};
use flat_tree::PodMode;
use serde::{Deserialize, Serialize};
use topology::{fat_tree, DcNetwork};

/// Fat-tree arity at each scale: smoke k=8 (128 servers), default k=16
/// (1024), full k=32 (8192 — the 100k-server architecture's pod scale).
pub fn arity(scale: Scale) -> usize {
    if scale.smoke {
        8
    } else if scale.full {
        32
    } else {
        16
    }
}

/// Flow size of the permutation workload (bytes). Large enough that
/// steady-state shares dominate, small enough to keep ideal FCTs around
/// ten milliseconds.
pub const FLOW_BYTES: f64 = 1e7;

/// One network's decomposed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Point {
    /// Network name (`fat-tree`, `flat-tree/clos`, ...).
    pub network: String,
    /// Servers in the topology.
    pub servers: usize,
    /// Flows in the permutation workload.
    pub flows: usize,
    /// Flows that completed (permutation on a healthy network: all).
    pub completed: usize,
    /// Directed links crossed by at least one flow.
    pub loaded_links: usize,
    /// Clusters formed = link-local exact simulations run.
    pub clusters: usize,
    /// Total flows across those simulations (the exact engine's work;
    /// compare against `flows` times path length for the saving).
    pub sim_flows: usize,
    /// Mean FCT (seconds).
    pub mean_fct: f64,
    /// Median FCT (seconds).
    pub p50_fct: f64,
    /// 99th-percentile FCT (seconds).
    pub p99_fct: f64,
    /// Worst FCT (seconds).
    pub max_fct: f64,
}

/// The experiment output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Output {
    /// Fat-tree arity `k` used.
    pub k: usize,
    /// Workload seed.
    pub seed: u64,
    /// One row per network, fat-tree first then flat-tree modes in
    /// declaration order.
    pub points: Vec<Point>,
}

fn measure(name: &str, net: &DcNetwork, seed: u64) -> Point {
    let pairs = traffic::patterns::permutation(net.num_servers(), seed);
    let flows = common::flow_specs(net, &pairs, FLOW_BYTES);
    let out = decompose(&net.graph, &flows, &DecompConfig::default())
        .expect("permutation workload is valid and single-path");
    let mut fcts: Vec<f64> = out
        .result
        .records
        .iter()
        .filter_map(flowsim::FlowRecord::fct)
        .collect();
    fcts.sort_by(f64::total_cmp);
    let (_, _, p50, _, max, mean) = crate::report::summary(&fcts);
    Point {
        network: name.to_string(),
        servers: net.num_servers(),
        flows: flows.len(),
        completed: fcts.len(),
        loaded_links: out.stats.loaded_links,
        clusters: out.stats.clusters,
        sim_flows: out.stats.sim_flows,
        mean_fct: mean,
        p50_fct: p50,
        p99_fct: crate::report::percentile(&fcts, 99.0),
        max_fct: max,
    }
}

/// Runs the experiment at `scale`.
pub fn run(scale: Scale) -> Output {
    let k = arity(scale);
    let clos = fat_tree(k);
    let mut points = vec![measure("fat-tree", &clos.build().net, scale.seed)];
    let ft = common::flat_tree_over(clos);
    for mode in [PodMode::Clos, PodMode::Local, PodMode::Global] {
        let inst = common::instance(&ft, mode);
        points.push(measure(
            &format!("flat-tree/{}", mode.tag()),
            &inst.net,
            scale.seed,
        ));
    }
    Output {
        k,
        seed: scale.seed,
        points,
    }
}

/// Prints the deterministic stdout table.
pub fn print(out: &Output) {
    let rows: Vec<Vec<String>> = out
        .points
        .iter()
        .map(|p| {
            vec![
                p.network.clone(),
                p.servers.to_string(),
                format!("{}/{}", p.completed, p.flows),
                p.loaded_links.to_string(),
                p.clusters.to_string(),
                p.sim_flows.to_string(),
                f3(p.mean_fct * 1e3),
                f3(p.p50_fct * 1e3),
                f3(p.p99_fct * 1e3),
                f3(p.max_fct * 1e3),
            ]
        })
        .collect();
    print_table(
        &format!(
            "bigsim: decomposed k={} permutation (seed {})",
            out.k, out.seed
        ),
        &[
            "network", "servers", "done", "links", "clusters", "simflows", "mean ms", "p50 ms",
            "p99 ms", "max ms",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_completes_every_flow_and_compresses() {
        let scale = Scale {
            smoke: true,
            ..Scale::default()
        };
        let out = run(scale);
        assert_eq!(out.k, 8);
        assert_eq!(out.points.len(), 4);
        for p in &out.points {
            assert_eq!(p.completed, p.flows, "{}", p.network);
            assert!(p.clusters < p.loaded_links, "{}", p.network);
            assert!(p.mean_fct > 0.0 && p.max_fct.is_finite(), "{}", p.network);
        }
    }

    #[test]
    fn smoke_run_is_deterministic() {
        let scale = Scale {
            smoke: true,
            ..Scale::default()
        };
        let a = serde_json::to_string(&run(scale)).expect("serializable");
        let b = serde_json::to_string(&run(scale)).expect("serializable");
        assert_eq!(a, b);
    }
}
