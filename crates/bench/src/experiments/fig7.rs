//! Figure 7 — the distribution of per-flow throughput on topo-1 in
//! global mode (8-path MPTCP vs LP average vs LP minimum), as box-plot
//! statistics per traffic pattern.

use super::common;
use super::fig6::traffics;
use crate::report::{f3, print_table, summary};
use crate::Scale;
use flat_tree::PodMode;
use mcf::concurrent::max_concurrent_flow;
use mcf::greedy::max_total_flow;
use serde::{Deserialize, Serialize};

/// Box statistics of one method under one traffic.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Box {
    /// Traffic name.
    pub traffic: String,
    /// Method name (MPTCP / LP avg / LP min).
    pub method: String,
    /// (min, p25, median, p75, max, mean) of per-flow Gbps.
    pub stats: (f64, f64, f64, f64, f64, f64),
}

/// Runs topo-1 global across the four traffics.
pub fn run(scale: Scale) -> Vec<Box> {
    let clos = common::topo(1, scale.full);
    let ft = common::flat_tree_over(clos);
    let inst = common::instance(&ft, PodMode::Global);
    let net = &inst.net;
    let mut boxes = Vec::new();
    for (tname, pairs) in traffics(net.num_servers(), net.num_pods(), scale.seed) {
        let coms = common::commodities(net, &pairs, common::nic_gbps());
        let mptcp = common::mptcp_rates(net, &pairs, 8);
        let lp_avg = max_total_flow(&net.graph, &coms);
        let lp_min = max_concurrent_flow(&net.graph, &coms, 0.12);
        let lp_min_rates = lp_min.lp_min_rates(&coms);
        for (method, rates) in [
            ("MPTCP-8", &mptcp),
            ("LP avg", &lp_avg),
            ("LP min", &lp_min_rates),
        ] {
            boxes.push(Box {
                traffic: tname.clone(),
                method: method.into(),
                stats: summary(rates),
            });
        }
    }
    boxes
}

/// Checks the paper's two qualitative claims for a traffic's boxes:
/// MPTCP's mean is at least comparable to LP-min's (within 15% — our
/// fluid max-min over fixed k-shortest paths is slightly below the
/// optimal-routing LP on uniform traffic, and above it on skewed
/// traffic), and MPTCP's spread (max − min) is smaller than LP-avg's.
pub fn mptcp_balances(boxes: &[Box], traffic: &str) -> (bool, bool) {
    let get = |m: &str| {
        boxes
            .iter()
            .find(|b| b.traffic == traffic && b.method == m)
            .expect("box exists")
            .stats
    };
    let mptcp = get("MPTCP-8");
    let lp_avg = get("LP avg");
    let lp_min = get("LP min");
    let higher_mean_than_min = mptcp.5 >= lp_min.5 * 0.85;
    let smaller_spread_than_avg = (mptcp.4 - mptcp.0) <= (lp_avg.4 - lp_avg.0) + 1e-9;
    (higher_mean_than_min, smaller_spread_than_avg)
}

/// Prints the boxes.
pub fn print(boxes: &[Box]) {
    let body: Vec<Vec<String>> = boxes
        .iter()
        .map(|b| {
            let (min, p25, med, p75, max, mean) = b.stats;
            vec![
                b.traffic.clone(),
                b.method.clone(),
                f3(min),
                f3(p25),
                f3(med),
                f3(p75),
                f3(max),
                f3(mean),
            ]
        })
        .collect();
    print_table(
        "Figure 7: flow-throughput distribution, topo-1 global (Gbps)",
        &[
            "traffic", "method", "min", "p25", "median", "p75", "max", "mean",
        ],
        &body,
    );
}
