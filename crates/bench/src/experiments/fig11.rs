//! Figure 11 — Spark broadcast and Hadoop shuffle read/phase durations
//! per flat-tree mode on the testbed.

use crate::report::{f3, print_table};
use crate::Scale;
use flat_tree::PodMode;
use serde::{Deserialize, Serialize};
use testbed::apps::{hadoop_shuffle, spark_broadcast, AppParams, AppReport};
use testbed::TestbedRig;

/// Reports per application per mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Digest {
    /// Spark broadcast reports (global, local, clos).
    pub spark: Vec<AppReport>,
    /// Hadoop shuffle reports.
    pub hadoop: Vec<AppReport>,
}

/// Runs both applications in all three modes.
pub fn run(_scale: Scale) -> Digest {
    let rig = TestbedRig::new();
    let p = AppParams::default_testbed();
    let modes = [PodMode::Global, PodMode::Local, PodMode::Clos];
    Digest {
        spark: modes
            .iter()
            .map(|&m| spark_broadcast(&rig, m, &p))
            .collect(),
        hadoop: modes.iter().map(|&m| hadoop_shuffle(&rig, m, &p)).collect(),
    }
}

/// Prints the reports.
pub fn print(d: &Digest) {
    for (name, reports) in [("Spark broadcast", &d.spark), ("Hadoop shuffle", &d.hadoop)] {
        let body: Vec<Vec<String>> = reports
            .iter()
            .map(|r| {
                vec![
                    format!("{:?}", r.mode).to_lowercase(),
                    f3(r.read_time_s),
                    f3(r.phase_s),
                ]
            })
            .collect();
        print_table(
            &format!("Figure 11: {name}"),
            &["mode", "data read (s)", "phase duration (s)"],
            &body,
        );
    }
    let gain = |rs: &[AppReport]| {
        let clos = rs.iter().find(|r| r.mode == PodMode::Clos).unwrap();
        let global = rs.iter().find(|r| r.mode == PodMode::Global).unwrap();
        (
            (1.0 - global.read_time_s / clos.read_time_s) * 100.0,
            (1.0 - global.phase_s / clos.phase_s) * 100.0,
        )
    };
    let (sr, sp) = gain(&d.spark);
    let (hr, hp) = gain(&d.hadoop);
    // ftlint::allow(FTL-R002): part of the golden stdout contract the experiment bins print
    println!("\nSpark: global cuts read {sr:.1}%, phase {sp:.1}% (paper: 10%, 16%)");
    // ftlint::allow(FTL-R002): part of the golden stdout contract the experiment bins print
    println!("Hadoop: global cuts read {hr:.1}%, phase {hp:.1}% (paper: 10.5%, 8%)");
}
