//! Figure 6 — average flow throughput of MPTCP + k-shortest-path routing
//! (k ∈ {4, 8, 12}) against the LP baselines, normalized to LP minimum,
//! on four flat-tree configurations (topo-1 global, topo-1 local,
//! topo-2 global, topo-5 global) and the four synthetic traffics of §5.1.

use super::common;
use crate::report::{f3, print_table};
use crate::sweep::sweep;
use crate::Scale;
use flat_tree::{FlatTreeInstance, PodMode};
use mcf::concurrent::max_concurrent_flow;
use mcf::greedy::{max_total_flow, mean};
use routing::SharedRouteTable;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use topology::DcNetwork;
use traffic::patterns;

/// The four panels of Figure 6.
pub const PANELS: [(usize, PodMode); 4] = [
    (1, PodMode::Global),
    (1, PodMode::Local),
    (2, PodMode::Global),
    (5, PodMode::Global),
];

/// One (panel, traffic) measurement, all values normalized to LP-min.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Topology index (Table 2 row).
    pub topo: usize,
    /// Flat-tree mode.
    pub mode: String,
    /// Traffic pattern name (traffic-1..4).
    pub traffic: String,
    /// LP minimum (always 1.0 after normalization).
    pub lp_min: f64,
    /// LP average, normalized.
    pub lp_avg: f64,
    /// MPTCP with 4/8/12 paths, normalized.
    pub mptcp: [f64; 3],
}

/// The four §5.1 traffic patterns over a network of `n` servers grouped
/// into `pods` pods.
pub fn traffics(n: usize, pods: usize, seed: u64) -> Vec<(String, Vec<(usize, usize)>)> {
    let per_pod = n / pods;
    let hot = if n >= 200 { 100 } else { (n / 2).max(4) };
    let m2m = if n >= 40 { 20 } else { (n / 4).max(2) };
    vec![
        ("traffic-1".into(), patterns::permutation(n, seed)),
        ("traffic-2".into(), patterns::pod_stride(pods, per_pod)),
        ("traffic-3".into(), patterns::hot_spot(n, hot)),
        ("traffic-4".into(), patterns::clustered_all_to_all(n, m2m)),
    ]
}

/// One (panel, traffic) job for the sweep driver. The route tables are
/// per-(panel, k), built once and shared across the panel's four
/// traffic cells instead of a private lazy table per cell.
struct Job<'a> {
    topo: usize,
    mode: PodMode,
    net: &'a DcNetwork,
    tname: String,
    pairs: Vec<(usize, usize)>,
    tables: Arc<[Arc<SharedRouteTable>]>,
}

/// Runs all panels: the (panel, traffic) cells are independent, so they
/// go through [`sweep`] and come back in panel-major order.
pub fn run(scale: Scale) -> Vec<Cell> {
    let ks = [4usize, 8, 12];
    // Topology construction is cheap next to the LP/MPTCP cells; build
    // every panel's instance serially, then fan the cells out.
    let insts: Vec<(usize, PodMode, FlatTreeInstance)> = PANELS
        .iter()
        .map(|&(topo_idx, mode)| {
            let clos = common::topo(topo_idx, scale.full);
            let ft = common::flat_tree_over(clos);
            (topo_idx, mode, common::instance(&ft, mode))
        })
        .collect();
    let jobs: Vec<Job> = insts
        .iter()
        .flat_map(|(topo_idx, mode, inst)| {
            let net = &inst.net;
            let tr = traffics(net.num_servers(), net.num_pods(), scale.seed);
            // Precompute one route table per k over the union of this
            // panel's traffic pairs; all four cells share them.
            let union: Vec<(usize, usize)> =
                tr.iter().flat_map(|(_, p)| p.iter().copied()).collect();
            let tables: Arc<[Arc<SharedRouteTable>]> = ks
                .iter()
                .map(|&k| common::shared_route_table(net, &union, k))
                .collect();
            tr.into_iter().map(move |(tname, pairs)| Job {
                topo: *topo_idx,
                mode: *mode,
                net,
                tname,
                pairs,
                tables: tables.clone(),
            })
        })
        .collect();
    sweep(&jobs, |_, job| {
        let net = job.net;
        // LP baselines with NIC-rate demands.
        let coms = common::commodities(net, &job.pairs, common::nic_gbps());
        let lp_min = max_concurrent_flow(&net.graph, &coms, 0.12);
        let lp_min_avg = lp_min.lambda * common::nic_gbps();
        // The true LP-average optimum is >= both the greedy packing
        // value and the LP-min average (the LP-min solution is
        // feasible for the average objective), so report the better
        // of the two lower bounds.
        let lp_avg = mean(&max_total_flow(&net.graph, &coms)).max(lp_min_avg);
        let mut mptcp = [0.0f64; 3];
        for (i, table) in job.tables.iter().enumerate() {
            let rates = common::mptcp_rates_shared(net, &job.pairs, table);
            mptcp[i] = crate::report::mean(&rates) / lp_min_avg;
        }
        Cell {
            topo: job.topo,
            mode: format!("{:?}", job.mode).to_lowercase(),
            traffic: job.tname.clone(),
            lp_min: 1.0,
            lp_avg: lp_avg / lp_min_avg,
            mptcp,
        }
    })
}

/// Prints the cells as one table (panel-major).
pub fn print(cells: &[Cell]) {
    let body: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("topo-{} {}", c.topo, c.mode),
                c.traffic.clone(),
                f3(c.lp_min),
                f3(c.lp_avg),
                f3(c.mptcp[0]),
                f3(c.mptcp[1]),
                f3(c.mptcp[2]),
            ]
        })
        .collect();
    print_table(
        "Figure 6: avg flow throughput normalized to LP minimum",
        &[
            "topology", "traffic", "LP min", "LP avg", "MPTCP-4", "MPTCP-8", "MPTCP-12",
        ],
        &body,
    );
}
