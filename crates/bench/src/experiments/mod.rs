//! One module per table/figure of the paper, plus shared builders.

pub mod ablation;
pub mod bigsim;
pub mod common;
pub mod faultsweep;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod hybrid;
pub mod resilience;
pub mod table1;
pub mod table3;
