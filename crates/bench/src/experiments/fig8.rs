//! Figure 8 — CDFs of flow completion time for the four Facebook-like
//! traces on six networks: flat-tree global / local / Clos (k-shortest
//! paths + MPTCP) / Clos (ECMP + TCP), device-equivalent random graph,
//! and two-stage random graph.

use super::common;
use crate::report::{f3, percentile, print_table, sorted};
use crate::sweep::sweep;
use crate::Scale;
use flat_tree::PodMode;
use flowsim::provider::{EcmpProvider, MptcpProvider};
use flowsim::{simulate_with_provider, SimConfig, Transport};
use routing::SharedRouteTable;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use topology::{DcNetwork, RandomGraphParams, TwoStageParams};
use traffic::traces::TraceParams;
use traffic::Workload;

/// The six evaluated networks.
pub const NETWORKS: [&str; 6] = [
    "ft-global",
    "ft-local",
    "ft-clos-ksp",
    "ft-clos-ecmp",
    "random-graph",
    "two-stage-rg",
];

/// FCT statistics of one (trace, network) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Curve {
    /// Trace name.
    pub trace: String,
    /// Network name (see [`NETWORKS`]).
    pub network: String,
    /// FCT milliseconds at the 10/25/50/75/90/99th percentiles.
    pub fct_ms_percentiles: [f64; 6],
    /// Mean FCT in ms.
    pub mean_ms: f64,
    /// Fraction of flows completed.
    pub completed: f64,
}

/// Builds the six networks from one reference Clos layout.
pub fn networks(scale: Scale) -> Vec<(String, DcNetwork, Transport)> {
    let clos = common::topo(1, scale.full);
    let ft = common::flat_tree_over(clos);
    let k = 8;
    let mptcp = Transport::Mptcp { k, coupled: true };
    let mut out = Vec::new();
    out.push((
        "ft-global".to_string(),
        common::instance(&ft, PodMode::Global).net,
        mptcp,
    ));
    out.push((
        "ft-local".to_string(),
        common::instance(&ft, PodMode::Local).net,
        mptcp,
    ));
    let clos_net = common::instance(&ft, PodMode::Clos).net;
    out.push(("ft-clos-ksp".to_string(), clos_net.clone(), mptcp));
    out.push(("ft-clos-ecmp".to_string(), clos_net, Transport::TcpEcmp));
    out.push((
        "random-graph".to_string(),
        RandomGraphParams::from_clos(&clos, scale.seed).build(),
        mptcp,
    ));
    out.push((
        "two-stage-rg".to_string(),
        TwoStageParams {
            clos,
            seed: scale.seed,
        }
        .build(),
        mptcp,
    ));
    out
}

/// The four traces sized to the reference Clos layout.
pub fn trace_set(scale: Scale) -> Vec<Workload> {
    let clos = common::topo(1, scale.full);
    let n = clos.total_servers();
    let rack = clos.servers_per_edge;
    let pod = clos.edges_per_pod * clos.servers_per_edge;
    vec![
        TraceParams::hadoop1(n, rack, pod, scale.seed).generate(),
        TraceParams::hadoop2(n, rack, pod, scale.seed).generate(),
        TraceParams::web(n, rack, pod, scale.seed).generate(),
        TraceParams::cache(n, rack, pod, scale.seed).generate(),
    ]
}

/// Runs every (trace, network) pair: the cells — a full fluid
/// simulation each — are independent, so they go through [`sweep`] and
/// come back trace-major, matching the serial loop's order.
pub fn run(scale: Scale) -> Vec<Curve> {
    let nets = networks(scale);
    let traces = trace_set(scale);
    // Precompute one shared route table per MPTCP network over the
    // union of every trace's pairs; all four of a network's cells use
    // it instead of lazily re-running Yen per cell.
    let union: Vec<(usize, usize)> = traces
        .iter()
        .flat_map(|t| t.flows.iter().map(|f| (f.src, f.dst)))
        .collect();
    let tables: Vec<Option<Arc<SharedRouteTable>>> = nets
        .iter()
        .map(|(_, net, transport)| match *transport {
            Transport::Mptcp { k, .. } => Some(common::shared_route_table(net, &union, k)),
            Transport::TcpEcmp => None,
        })
        .collect();
    type Job<'a> = (
        &'a Workload,
        &'a (String, DcNetwork, Transport),
        &'a Option<Arc<SharedRouteTable>>,
    );
    let jobs: Vec<Job> = traces
        .iter()
        .flat_map(|trace| {
            nets.iter()
                .zip(tables.iter())
                .map(move |(n, t)| (trace, n, t))
        })
        .collect();
    sweep(&jobs, |_, &(trace, (name, net, transport), table)| {
        let flows: Vec<flowsim::FlowSpec> = trace
            .flows
            .iter()
            .map(|f| flowsim::FlowSpec {
                id: f.id,
                src: net.servers[f.src],
                dst: net.servers[f.dst],
                bytes: f.bytes,
                start: f.start,
            })
            .collect();
        let cfg = SimConfig {
            transport: *transport,
            ..SimConfig::default()
        };
        let res = match (*transport, table) {
            (Transport::Mptcp { coupled, .. }, Some(t)) => {
                let mut p = MptcpProvider::with_shared(t.clone(), coupled);
                simulate_with_provider(&net.graph, &flows, &cfg, &mut p)
            }
            (Transport::Mptcp { k, coupled }, None) => {
                let mut p = MptcpProvider::new(k, coupled);
                simulate_with_provider(&net.graph, &flows, &cfg, &mut p)
            }
            (Transport::TcpEcmp, _) => {
                simulate_with_provider(&net.graph, &flows, &cfg, &mut EcmpProvider::new())
            }
        };
        let fcts_ms: Vec<f64> = res.sorted_fcts().iter().map(|s| s * 1e3).collect();
        assert!(!fcts_ms.is_empty(), "no flow completed on {name}");
        let s = sorted(&fcts_ms);
        Curve {
            trace: trace.name.clone(),
            network: name.clone(),
            fct_ms_percentiles: [
                percentile(&s, 10.0),
                percentile(&s, 25.0),
                percentile(&s, 50.0),
                percentile(&s, 75.0),
                percentile(&s, 90.0),
                percentile(&s, 99.0),
            ],
            mean_ms: crate::report::mean(&s),
            completed: fcts_ms.len() as f64 / flows.len() as f64,
        }
    })
}

/// Prints the curves, trace-major.
pub fn print(curves: &[Curve]) {
    let body: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            let p = &c.fct_ms_percentiles;
            vec![
                c.trace.clone(),
                c.network.clone(),
                f3(p[0]),
                f3(p[2]),
                f3(p[4]),
                f3(p[5]),
                f3(c.mean_ms),
                format!("{:.0}%", c.completed * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 8: FCT CDFs (ms at percentiles)",
        &[
            "trace", "network", "p10", "p50", "p90", "p99", "mean", "done",
        ],
        &body,
    );
}
