//! Experiment harness regenerating every table and figure of the
//! flat-tree paper.
//!
//! Each experiment lives in [`experiments`] and is exposed three ways:
//!
//! 1. a binary (`cargo run -p ft-bench --release --bin fig8`) printing
//!    the same rows/series the paper reports (plus JSON with `--json`);
//! 2. a Criterion bench (`cargo bench -p ft-bench`) timing a scaled-down
//!    run of the same code path;
//! 3. a library function, reused by the integration tests.
//!
//! All experiments run at a laptop **mini scale** by default (exact
//! topology ratios, reduced counts) and accept `--full` for the paper's
//! Table 2 sizes. The mapping from mini to full parameters and the
//! measured-vs-paper numbers are recorded in `EXPERIMENTS.md`.

pub mod cli;
pub mod dispatch;
pub mod experiments;
pub mod recorder;
pub mod report;
pub mod scale;
pub mod sweep;

pub use cli::Cli;
pub use flowsim::faults;
pub use scale::Scale;
