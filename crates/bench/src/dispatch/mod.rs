//! The distributed sweep plane: lease cells to `ftd` worker processes,
//! survive their loss, merge deterministically.
//!
//! [`dispatch_cells`] shards a [`CellSpec`] grid across local worker
//! processes speaking the [`wire`] protocol over stdin/stdout pipes.
//! The driver is a single-threaded lease state machine (one reader
//! thread per worker feeds it events):
//!
//! * **Lease** — each ready worker holds at most one outstanding cell;
//!   cells are leased in grid order from a requeue-aware queue.
//! * **Deadline** — a lease that outlives [`DispatchConfig::deadline`]
//!   is abandoned: the cell is requeued (with the shared
//!   [`control::retry`] backoff schedule) and the worker earns a
//!   strike. A late result is still accepted if the cell is not done —
//!   request ids make stale responses unambiguous.
//! * **Death** — EOF or a wire error on a worker's pipe requeues its
//!   in-flight cell. Decode errors are unrecoverable by construction
//!   (a corrupt length-prefixed stream cannot be resynced), so the
//!   reader simply stops and the worker is gone.
//! * **Hedge** — when workers sit idle with nothing leasable queued,
//!   the oldest in-flight cell past
//!   [`DispatchConfig::speculate_after`] is speculatively re-leased to
//!   an idle worker. First result wins; the loser is a counted
//!   duplicate. This bounds the latency cost of a stalled worker by
//!   the hedge threshold instead of the full deadline.
//! * **Quarantine** — [`DispatchConfig::max_strikes`] strikes (or a
//!   protocol-version mismatch) and the driver SIGKILLs the worker and
//!   never leases to it again.
//! * **Degradation** — a cell that exhausts its per-cell attempt
//!   budget is executed inline by the driver; if every worker is gone,
//!   the whole remainder runs in-process. Both are surfaced in the
//!   [`DispatchSummary`], never a panic.
//!
//! **Determinism.** Results are merged by cell index into a
//! grid-ordered vector, each cell recorded exactly once
//! (first-result-wins; duplicates are counted and dropped). Because
//! every cell is a pure function of `(scale, spec)` and the wire
//! round-trips `f64` bit-exactly, the merged vector is byte-identical
//! to the in-process sweep for **any** worker count, death schedule, or
//! completion order — the chaos harness ([`chaos`]) and the dispatch
//! proptests pin this.

pub mod chaos;
pub mod wire;

use crate::experiments::faultsweep::{self, CellOutput, CellSpec, FaultSweep};
use crate::scale::Scale;
use crate::sweep::CellObserver;
use chaos::{ChaosAction, ChaosPlan};
use control::retry::Backoff;
use obs::{NoopSink, TraceEvent, TraceSink};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

/// How the driver runs a grid.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Worker processes to spawn (>= 1).
    pub workers: usize,
    /// Path to the `ftd` worker binary. Resolution order when `None`:
    /// the `FTD_WORKER` environment variable, then `ftd` next to the
    /// current executable. A binary that cannot be spawned degrades to
    /// in-process execution.
    pub worker_bin: Option<PathBuf>,
    /// Per-lease deadline; past it the cell is requeued and the worker
    /// earns a strike.
    pub deadline: Duration,
    /// Hedging threshold: when workers sit idle with nothing queued, an
    /// in-flight lease older than this is speculatively re-leased to an
    /// idle worker (first result wins, the loser is a counted
    /// duplicate). This bounds the latency cost of a stalled worker by
    /// `speculate_after` instead of the full `deadline`.
    pub speculate_after: Duration,
    /// Strikes (timeouts / failed cells) before a worker is
    /// quarantined.
    pub max_strikes: u32,
    /// The per-cell lease budget and requeue backoff, on the shared
    /// [`control::retry`] schedule: `max_attempts` is the lease cap
    /// (past it the driver runs the cell inline), and requeued cells
    /// wait `wait_before(attempt)` before re-leasing.
    pub retry: Backoff,
    /// Chaos-harness seed; `None` runs clean.
    pub chaos: Option<u64>,
}

impl DispatchConfig {
    /// Local pipes, 2-minute deadlines, 2 strikes, 4 lease attempts
    /// per cell with 25 ms base backoff capped at 1 s.
    pub fn local(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            worker_bin: None,
            deadline: Duration::from_secs(120),
            speculate_after: Duration::from_secs(5),
            max_strikes: 2,
            retry: Backoff::new(4, 25.0, 2.0).capped(1000.0),
            chaos: None,
        }
    }

    /// Same config with a chaos seed (no-op on `None`). Arming chaos
    /// also tightens the recovery clocks — 10 s deadlines, 1 s hedge
    /// threshold — so injected stalls cost about a second instead of a
    /// production deadline.
    pub fn with_chaos(mut self, seed: Option<u64>) -> Self {
        self.chaos = seed;
        if seed.is_some() {
            self.deadline = Duration::from_secs(10);
            self.speculate_after = Duration::from_secs(1);
        }
        self
    }
}

/// What happened on the plane: every counter the summary line, the
/// perfsnap dispatch block, and the audit assertions read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchSummary {
    /// Workers requested.
    pub workers: usize,
    /// Workers actually spawned (spawn failures are non-fatal).
    pub spawned: usize,
    /// Cells in the grid.
    pub cells: usize,
    /// Leases written (>= cells when anything was requeued).
    pub leases: u64,
    /// Speculative hedge leases issued against aged in-flight cells.
    pub speculations: u64,
    /// Cells that lost a lease and were requeued.
    pub requeues: u64,
    /// Leases abandoned at their deadline.
    pub timeouts: u64,
    /// Workers that died (EOF, kill, wire corruption).
    pub deaths: u64,
    /// Workers the driver quarantined (strikes or version skew).
    pub quarantines: u64,
    /// Duplicate/stale results dropped by the merge (first wins).
    pub duplicates: u64,
    /// Cells executed inline after exhausting their lease budget.
    pub degraded_cells: u64,
    /// Whether the driver fell back to in-process execution because
    /// every worker was gone.
    pub fallback_inprocess: bool,
    /// The chaos seed, if the harness was armed.
    pub chaos_seed: Option<u64>,
    /// Driver wall-clock (ms).
    pub wall_ms: f64,
}

impl std::fmt::Display for DispatchSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dispatch: {} cells on {}/{} workers, {} leases ({} hedged), \
             {} requeues ({} timeouts, {} deaths, {} quarantined), \
             {} duplicates dropped, {} degraded, fallback {}, {:.1} ms",
            self.cells,
            self.spawned,
            self.workers,
            self.leases,
            self.speculations,
            self.requeues,
            self.timeouts,
            self.deaths,
            self.quarantines,
            self.duplicates,
            self.degraded_cells,
            if self.fallback_inprocess { "yes" } else { "no" },
            self.wall_ms
        )?;
        if let Some(seed) = self.chaos_seed {
            write!(f, " [chaos seed {seed}]")?;
        }
        Ok(())
    }
}

/// The post-merge audit: every cell exactly once, nothing invented.
/// Violations are a driver bug, so they panic rather than degrade.
fn audit_merge(specs: &[CellSpec], results: &[Option<CellOutput>]) {
    assert_eq!(results.len(), specs.len(), "merge must cover the grid");
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_some(), "cell {i} missing from the merge");
    }
}

/// Events the per-worker reader threads feed the driver loop.
enum Event {
    Hello(usize, wire::Hello),
    Msg(usize, wire::Response),
    Down(usize, String),
}

enum WorkerState {
    /// Spawned, handshake not yet seen.
    Starting,
    /// Ready for a lease.
    Idle,
    /// One outstanding lease.
    Busy {
        req: u64,
        cell: usize,
        deadline: Instant,
    },
    /// Dead or quarantined; never leased again.
    Gone,
}

struct Worker {
    child: Child,
    stdin: Option<ChildStdin>,
    pid: u32,
    state: WorkerState,
    strikes: u32,
    /// Leases handed to this worker so far (the chaos-plan key).
    leases: u64,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Worker {
    fn live(&self) -> bool {
        !matches!(self.state, WorkerState::Gone)
    }
}

/// Resolves the worker binary path per [`DispatchConfig::worker_bin`].
fn worker_binary(cfg: &DispatchConfig) -> PathBuf {
    if let Some(p) = &cfg.worker_bin {
        return p.clone();
    }
    if let Some(p) = std::env::var_os("FTD_WORKER") {
        return PathBuf::from(p);
    }
    std::env::current_exe().map_or_else(|_| PathBuf::from("ftd"), |p| p.with_file_name("ftd"))
}

/// SIGSTOPs `pid` via the external `kill` tool (this workspace forbids
/// `unsafe`, so no direct syscall); failures are ignored — a stall that
/// did not land just means less chaos.
fn sigstop(pid: u32) {
    let _ = Command::new("kill")
        .arg("-STOP")
        .arg(pid.to_string())
        .status();
}

fn spawn_worker(bin: &PathBuf, idx: usize, tx: &Sender<Event>) -> Option<Worker> {
    let mut child = Command::new(bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .ok()?;
    let stdin = child.stdin.take()?;
    let stdout = child.stdout.take()?;
    let pid = child.id();
    let tx = tx.clone();
    let reader = std::thread::spawn(move || {
        let mut r = BufReader::new(stdout);
        match wire::read_frame::<_, wire::Hello>(&mut r) {
            Ok(Some(h)) => {
                if tx.send(Event::Hello(idx, h)).is_err() {
                    return;
                }
            }
            Ok(None) => {
                let _ = tx.send(Event::Down(idx, "eof before handshake".into()));
                return;
            }
            Err(e) => {
                let _ = tx.send(Event::Down(idx, format!("handshake: {e}")));
                return;
            }
        }
        loop {
            match wire::read_frame::<_, wire::Response>(&mut r) {
                Ok(Some(resp)) => {
                    if tx.send(Event::Msg(idx, resp)).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(Event::Down(idx, "eof".into()));
                    return;
                }
                Err(e) => {
                    let _ = tx.send(Event::Down(idx, e.to_string()));
                    return;
                }
            }
        }
    });
    Some(Worker {
        child,
        stdin: Some(stdin),
        pid,
        state: WorkerState::Starting,
        strikes: 0,
        leases: 0,
        reader: Some(reader),
    })
}

/// [`dispatch_cells_traced`] with tracing off.
pub fn dispatch_cells(
    scale: Scale,
    specs: &[CellSpec],
    cfg: &DispatchConfig,
) -> (Vec<CellOutput>, DispatchSummary) {
    dispatch_cells_traced(scale, specs, cfg, &mut NoopSink)
}

/// Runs `specs` on the distributed plane and returns the grid-ordered
/// outputs plus the run's [`DispatchSummary`]. The output vector is
/// byte-identical (after serialization) to
/// `sweep(specs, |_, s| execute_cell(scale, s))` no matter how many
/// workers survive. `sink` receives the dispatch timeline
/// (`WorkerUp`/`WorkerDown`/`Lease`/`LeaseDone`/`Requeue`/
/// `DispatchEnd`); merged cells are also reported to the process-wide
/// sweep observer so `--metrics` recordings and perfsnap cell counts
/// keep working unchanged.
pub fn dispatch_cells_traced<S: TraceSink>(
    scale: Scale,
    specs: &[CellSpec],
    cfg: &DispatchConfig,
    sink: &mut S,
) -> (Vec<CellOutput>, DispatchSummary) {
    let t0 = Instant::now();
    let observer = crate::sweep::current_observer();
    let plan = cfg.chaos.map(|seed| ChaosPlan::new(seed, cfg.workers));

    let mut summary = DispatchSummary {
        workers: cfg.workers,
        spawned: 0,
        cells: specs.len(),
        leases: 0,
        speculations: 0,
        requeues: 0,
        timeouts: 0,
        deaths: 0,
        quarantines: 0,
        duplicates: 0,
        degraded_cells: 0,
        fallback_inprocess: false,
        chaos_seed: cfg.chaos,
        wall_ms: 0.0,
    };

    let mut results: Vec<Option<CellOutput>> = vec![None; specs.len()];
    if specs.is_empty() {
        summary.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        return (Vec::new(), summary);
    }

    let (tx, rx): (Sender<Event>, Receiver<Event>) = mpsc::channel();
    let bin = worker_binary(cfg);
    let mut workers: Vec<Worker> = (0..cfg.workers)
        .filter_map(|i| spawn_worker(&bin, i, &tx))
        .collect();
    summary.spawned = workers.len();

    let mut queue: VecDeque<usize> = (0..specs.len()).collect();
    let mut queued: Vec<bool> = vec![true; specs.len()];
    let mut attempts: Vec<u32> = vec![0; specs.len()];
    let mut not_before: Vec<Instant> = vec![t0; specs.len()];
    let mut in_flight: HashMap<u64, usize> = HashMap::new();
    let mut next_req: u64 = 0;
    let mut done = 0usize;

    let run_inline = |cell: usize,
                      results: &mut Vec<Option<CellOutput>>,
                      done: &mut usize,
                      observer: &Option<CellObserver>| {
        let t = Instant::now();
        let out = faultsweep::execute_cell(scale, &specs[cell]);
        if let Some(obs) = observer {
            obs(cell, t.elapsed().as_secs_f64() * 1e3);
        }
        results[cell] = Some(out);
        *done += 1;
    };

    while done < specs.len() {
        // Graceful degradation: every worker gone → finish in-process.
        if workers.iter().all(|w| !w.live()) {
            summary.fallback_inprocess = true;
            for cell in 0..specs.len() {
                if results[cell].is_none() {
                    run_inline(cell, &mut results, &mut done, &observer);
                }
            }
            break;
        }

        // Lease ready cells to idle workers, driver-executing any cell
        // that has exhausted its lease budget.
        let now = Instant::now();
        let mut idle: Vec<usize> = workers
            .iter()
            .enumerate()
            .filter(|(_, w)| matches!(w.state, WorkerState::Idle))
            .map(|(i, _)| i)
            .collect();
        while !idle.is_empty() {
            // First queued cell that is past its backoff; with nothing
            // leasable queued, hedge an aged in-flight cell instead.
            let pos = queue
                .iter()
                .position(|&c| results[c].is_none() && not_before[c] <= now);
            let cell = match pos {
                Some(pos) => {
                    let cell = queue.remove(pos).expect("position came from the queue");
                    queued[cell] = false;
                    if attempts[cell] >= cfg.retry.max_attempts {
                        summary.degraded_cells += 1;
                        run_inline(cell, &mut results, &mut done, &observer);
                        continue;
                    }
                    cell
                }
                None => {
                    let Some(cell) =
                        hedge_candidate(now, &workers, &results, &queued, &attempts, cfg)
                    else {
                        break;
                    };
                    summary.speculations += 1;
                    cell
                }
            };
            let w = idle.pop().expect("loop guard");
            let req = next_req;
            next_req += 1;
            let action = plan.as_ref().and_then(|p| p.action(w, workers[w].leases));
            let directive = match action {
                Some(ChaosAction::Garbage { seed }) => {
                    Some(wire::ChaosDirective::Garbage { seed, len: 256 })
                }
                _ => None,
            };
            let params = wire::WorkerParams {
                req,
                cell,
                scale,
                spec: specs[cell].clone(),
                chaos: directive,
            };
            let wrote = workers[w]
                .stdin
                .as_mut()
                .map(|s| wire::write_frame(s, &wire::Request::Cell(params)));
            match wrote {
                Some(Ok(())) => {
                    attempts[cell] += 1;
                    workers[w].leases += 1;
                    summary.leases += 1;
                    in_flight.insert(req, cell);
                    workers[w].state = WorkerState::Busy {
                        req,
                        cell,
                        deadline: now + cfg.deadline,
                    };
                    if sink.enabled() {
                        sink.emit(TraceEvent::Lease {
                            worker: w,
                            cell,
                            req,
                        });
                    }
                    // Inflict the drawn chaos while the cell is in
                    // flight.
                    match action {
                        Some(ChaosAction::Kill) => {
                            let _ = workers[w].child.kill();
                        }
                        Some(ChaosAction::Stall) => sigstop(workers[w].pid),
                        _ => {}
                    }
                }
                _ => {
                    // The pipe is broken: the reader will report the
                    // death; just requeue the cell (front: it lost no
                    // attempt) and stop leasing to this worker.
                    queue.push_front(cell);
                    queued[cell] = true;
                }
            }
        }

        // Wait for the next event or the earliest deadline, backoff,
        // or hedge threshold.
        let now = Instant::now();
        let mut wake: Option<Instant> = None;
        let bump = |wake: &mut Option<Instant>, t: Instant| {
            *wake = Some(wake.map_or(t, |u| u.min(t)));
        };
        for w in &workers {
            if let WorkerState::Busy { deadline, .. } = w.state {
                bump(&mut wake, deadline);
            }
        }
        for &c in &queue {
            if results[c].is_none() {
                bump(&mut wake, not_before[c]);
            }
        }
        if workers.iter().any(|w| matches!(w.state, WorkerState::Idle)) {
            for (cell, leased_at) in youngest_leases(&workers, cfg) {
                if results[cell].is_none()
                    && !queued[cell]
                    && attempts[cell] < cfg.retry.max_attempts
                {
                    bump(&mut wake, leased_at + cfg.speculate_after);
                }
            }
        }
        let timeout = wake.map_or(Duration::from_millis(50), |t| {
            t.saturating_duration_since(now)
                .max(Duration::from_millis(1))
        });

        match rx.recv_timeout(timeout) {
            Ok(Event::Hello(w, hello)) => {
                if !workers[w].live() {
                    continue;
                }
                match wire::check_hello(&hello) {
                    Ok(()) => {
                        workers[w].state = WorkerState::Idle;
                        if sink.enabled() {
                            sink.emit(TraceEvent::WorkerUp {
                                worker: w,
                                pid: hello.pid,
                            });
                        }
                    }
                    Err(e) => {
                        quarantine(
                            &mut workers[w],
                            w,
                            &e.to_string(),
                            &mut in_flight,
                            &mut queue,
                            &mut queued,
                            &results,
                            &mut summary,
                            sink,
                        );
                    }
                }
            }
            Ok(Event::Msg(w, wire::Response::Cell(res))) => {
                // Free the worker if this answers its current lease.
                if matches!(workers[w].state, WorkerState::Busy { req, .. } if req == res.req) {
                    workers[w].state = WorkerState::Idle;
                }
                match in_flight.remove(&res.req) {
                    Some(cell) if results[cell].is_none() && cell == res.cell => {
                        if let Some(obs) = &observer {
                            obs(cell, res.wall_ms);
                        }
                        if sink.enabled() {
                            sink.emit(TraceEvent::LeaseDone {
                                worker: w,
                                cell,
                                req: res.req,
                                wall_ms: res.wall_ms,
                            });
                        }
                        results[cell] = Some(res.output);
                        done += 1;
                    }
                    _ => summary.duplicates += 1,
                }
            }
            Ok(Event::Msg(w, wire::Response::Failed { req, cell, message })) => {
                if matches!(workers[w].state, WorkerState::Busy { req: r, .. } if r == req) {
                    workers[w].state = WorkerState::Idle;
                }
                in_flight.remove(&req);
                requeue(
                    cell,
                    &format!("worker {w} failed: {message}"),
                    &cfg.retry,
                    &attempts,
                    &mut queue,
                    &mut queued,
                    &mut not_before,
                    &results,
                    &mut summary,
                    sink,
                );
                strike(
                    &mut workers[w],
                    w,
                    cfg,
                    "failed cell",
                    &mut in_flight,
                    &mut queue,
                    &mut queued,
                    &results,
                    &mut summary,
                    sink,
                );
            }
            Ok(Event::Down(w, reason)) => {
                if !workers[w].live() {
                    continue;
                }
                summary.deaths += 1;
                if let WorkerState::Busy { req, cell, .. } = workers[w].state {
                    in_flight.remove(&req);
                    requeue(
                        cell,
                        &format!("worker {w} down: {reason}"),
                        &cfg.retry,
                        &attempts,
                        &mut queue,
                        &mut queued,
                        &mut not_before,
                        &results,
                        &mut summary,
                        sink,
                    );
                }
                workers[w].state = WorkerState::Gone;
                let _ = workers[w].child.kill();
                if sink.enabled() {
                    sink.emit(TraceEvent::WorkerDown { worker: w, reason });
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                // Expire overdue leases.
                let now = Instant::now();
                for (w, worker) in workers.iter_mut().enumerate() {
                    let WorkerState::Busy {
                        req,
                        cell,
                        deadline,
                    } = worker.state
                    else {
                        continue;
                    };
                    if deadline > now {
                        continue;
                    }
                    summary.timeouts += 1;
                    // Abandon the lease but keep listening: a late
                    // result for `req` is still usable. The deadline is
                    // pushed so one stall doesn't fire every loop.
                    worker.state = WorkerState::Busy {
                        req,
                        cell,
                        deadline: now + cfg.deadline,
                    };
                    requeue(
                        cell,
                        &format!("lease timed out on worker {w}"),
                        &cfg.retry,
                        &attempts,
                        &mut queue,
                        &mut queued,
                        &mut not_before,
                        &results,
                        &mut summary,
                        sink,
                    );
                    strike(
                        worker,
                        w,
                        cfg,
                        "lease timeout",
                        &mut in_flight,
                        &mut queue,
                        &mut queued,
                        &results,
                        &mut summary,
                        sink,
                    );
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Every reader thread is gone; the all-dead branch at
                // the top of the loop will mop up.
                for w in &mut workers {
                    if w.live() {
                        w.state = WorkerState::Gone;
                        summary.deaths += 1;
                    }
                }
            }
        }
    }

    // Wind down: polite shutdown frame, then SIGKILL (also reaps
    // SIGSTOPped stragglers), then reap children and reader threads.
    for w in &mut workers {
        if let Some(stdin) = w.stdin.as_mut() {
            let _ = wire::write_frame(stdin, &wire::Request::Shutdown);
        }
        w.stdin = None;
        let _ = w.child.kill();
        let _ = w.child.wait();
    }
    drop(rx);
    for w in &mut workers {
        if let Some(h) = w.reader.take() {
            let _ = h.join();
        }
    }

    audit_merge(specs, &results);
    summary.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if sink.enabled() {
        sink.emit(TraceEvent::DispatchEnd {
            cells: summary.cells,
            leases: summary.leases,
            speculations: summary.speculations,
            requeues: summary.requeues,
            timeouts: summary.timeouts,
            deaths: summary.deaths,
            quarantines: summary.quarantines,
            duplicates: summary.duplicates,
            degraded_cells: summary.degraded_cells,
            fallback: summary.fallback_inprocess,
            wall_ms: summary.wall_ms,
        });
    }
    let merged = results
        .into_iter()
        .map(|r| r.expect("audited: every cell exactly once"))
        .collect();
    (merged, summary)
}

/// The youngest outstanding lease time per in-flight cell. Keyed on
/// the youngest lease so a just-hedged cell is not hedged again until
/// the hedge itself ages past the threshold.
fn youngest_leases(workers: &[Worker], cfg: &DispatchConfig) -> HashMap<usize, Instant> {
    let mut youngest: HashMap<usize, Instant> = HashMap::new();
    for w in workers {
        if let WorkerState::Busy { cell, deadline, .. } = w.state {
            // Leases are created with `deadline = leased_at + deadline`
            // (and timeouts push it the same way), so this recovers the
            // (re)lease time.
            let leased_at = deadline - cfg.deadline;
            youngest
                .entry(cell)
                .and_modify(|t| *t = (*t).max(leased_at))
                .or_insert(leased_at);
        }
    }
    youngest
}

/// Picks the cell for a speculative hedge lease: in flight, not done,
/// not queued, lease budget remaining, and every outstanding lease at
/// least `speculate_after` old — oldest such cell first.
fn hedge_candidate(
    now: Instant,
    workers: &[Worker],
    results: &[Option<CellOutput>],
    queued: &[bool],
    attempts: &[u32],
    cfg: &DispatchConfig,
) -> Option<usize> {
    youngest_leases(workers, cfg)
        .into_iter()
        .filter(|&(cell, leased_at)| {
            results[cell].is_none()
                && !queued[cell]
                && attempts[cell] < cfg.retry.max_attempts
                && now.saturating_duration_since(leased_at) >= cfg.speculate_after
        })
        .min_by_key(|&(cell, leased_at)| (leased_at, cell))
        .map(|(cell, _)| cell)
}

/// Puts a cell back on the queue with its backoff, unless it is
/// already done or already queued.
#[allow(clippy::too_many_arguments)]
fn requeue<S: TraceSink>(
    cell: usize,
    reason: &str,
    retry: &Backoff,
    attempts: &[u32],
    queue: &mut VecDeque<usize>,
    queued: &mut [bool],
    not_before: &mut [Instant],
    results: &[Option<CellOutput>],
    summary: &mut DispatchSummary,
    sink: &mut S,
) {
    if cell >= results.len() || results[cell].is_some() || queued[cell] {
        return;
    }
    let next_attempt = attempts[cell].saturating_add(1);
    let wait = retry.wait_before(next_attempt);
    not_before[cell] = Instant::now() + wait;
    queue.push_back(cell);
    queued[cell] = true;
    summary.requeues += 1;
    if sink.enabled() {
        sink.emit(TraceEvent::Requeue {
            cell,
            reason: reason.to_string(),
            backoff_ms: wait.as_secs_f64() * 1e3,
        });
    }
}

/// Adds a strike; at the cap the worker is quarantined.
#[allow(clippy::too_many_arguments)]
fn strike<S: TraceSink>(
    worker: &mut Worker,
    idx: usize,
    cfg: &DispatchConfig,
    why: &str,
    in_flight: &mut HashMap<u64, usize>,
    queue: &mut VecDeque<usize>,
    queued: &mut [bool],
    results: &[Option<CellOutput>],
    summary: &mut DispatchSummary,
    sink: &mut S,
) {
    if !worker.live() {
        return;
    }
    worker.strikes += 1;
    if worker.strikes >= cfg.max_strikes {
        quarantine(
            worker,
            idx,
            &format!("{} strikes (last: {why})", worker.strikes),
            in_flight,
            queue,
            queued,
            results,
            summary,
            sink,
        );
    }
}

/// Kills and permanently retires a worker. Its in-flight lease (if
/// any) was already requeued by the caller; the lease table entry is
/// dropped so a buffered late response is counted as stale.
#[allow(clippy::too_many_arguments)]
fn quarantine<S: TraceSink>(
    worker: &mut Worker,
    idx: usize,
    reason: &str,
    in_flight: &mut HashMap<u64, usize>,
    _queue: &mut VecDeque<usize>,
    _queued: &mut [bool],
    _results: &[Option<CellOutput>],
    summary: &mut DispatchSummary,
    sink: &mut S,
) {
    if !worker.live() {
        return;
    }
    if let WorkerState::Busy { req, .. } = worker.state {
        in_flight.remove(&req);
    }
    worker.state = WorkerState::Gone;
    let _ = worker.child.kill();
    summary.quarantines += 1;
    if sink.enabled() {
        sink.emit(TraceEvent::WorkerDown {
            worker: idx,
            reason: format!("quarantined: {reason}"),
        });
    }
}

/// Runs the full faultsweep experiment through the distributed plane:
/// [`faultsweep::run_with`] with [`dispatch_cells_traced`] as the
/// executor. The returned report is byte-identical (after
/// serialization) to [`faultsweep::run`].
pub fn run_faultsweep<S: TraceSink>(
    scale: Scale,
    cfg: &DispatchConfig,
    sink: &mut S,
) -> (FaultSweep, DispatchSummary) {
    let mut summary = None;
    let out = faultsweep::run_with(scale, |specs| {
        let (outputs, s) = dispatch_cells_traced(scale, specs, cfg, sink);
        summary = Some(s);
        outputs
    });
    (
        out,
        summary.expect("run_with calls the executor exactly once"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_workers_to_one() {
        assert_eq!(DispatchConfig::local(0).workers, 1);
        assert_eq!(DispatchConfig::local(4).workers, 4);
    }

    #[test]
    fn summary_line_is_informative() {
        let s = DispatchSummary {
            workers: 4,
            spawned: 4,
            cells: 10,
            leases: 12,
            speculations: 1,
            requeues: 2,
            timeouts: 1,
            deaths: 1,
            quarantines: 1,
            duplicates: 0,
            degraded_cells: 0,
            fallback_inprocess: false,
            chaos_seed: Some(7),
            wall_ms: 1234.5,
        };
        let line = s.to_string();
        for needle in [
            "10 cells",
            "4/4 workers",
            "12 leases",
            "2 requeues",
            "1 quarantined",
            "chaos seed 7",
        ] {
            assert!(line.contains(needle), "{line:?} must contain {needle:?}");
        }
    }

    #[test]
    fn empty_grid_short_circuits() {
        let cfg = DispatchConfig {
            // A binary that will never be spawned (empty grid returns
            // before spawning).
            worker_bin: Some(PathBuf::from("/nonexistent/ftd")),
            ..DispatchConfig::local(2)
        };
        let (out, summary) = dispatch_cells(Scale::default(), &[], &cfg);
        assert!(out.is_empty());
        assert_eq!(summary.cells, 0);
        assert_eq!(summary.leases, 0);
        assert!(!summary.fallback_inprocess);
    }
}
