//! The dispatch wire protocol: versioned, length-prefixed JSON frames.
//!
//! Every frame is a big-endian `u32` payload length followed by that
//! many bytes of JSON. A `ftd` worker speaks the protocol over its
//! stdin/stdout pipe (or a TCP connection): it sends one [`Hello`]
//! frame on startup, then answers each [`Request`] frame with one
//! [`Response`] frame until the driver sends [`Request::Shutdown`] or
//! closes the stream.
//!
//! Design constraints, in order:
//!
//! 1. **No unwraps on the I/O path** — every failure mode (short read,
//!    oversized frame, malformed JSON, version skew) is a typed
//!    [`WireError`] the driver maps to requeue/quarantine decisions.
//! 2. **Determinism** — payloads are the same serde types the
//!    in-process sweep computes, and the vendored JSON facade
//!    round-trips `f64` bit-exactly (shortest-repr serialize, `parse`
//!    deserialize), so a result that crossed the wire is
//!    indistinguishable from one computed locally.
//! 3. **Resync is impossible by construction** — a corrupt length
//!    prefix poisons everything after it, so the driver treats any
//!    decode error as fatal for that worker (quarantine) rather than
//!    attempting to hunt for the next frame boundary.

use crate::experiments::faultsweep::{CellOutput, CellSpec};
use crate::Scale;
use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};

/// Protocol version; bumped on any frame-format or schema change. The
/// driver refuses workers whose [`Hello`] disagrees.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on a frame payload (16 MiB). A length prefix above this
/// is treated as stream corruption, not an allocation request.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum WireError {
    /// The underlying read/write failed.
    Io(std::io::Error),
    /// A frame's payload was not the JSON we expected.
    Decode(String),
    /// A length prefix exceeded [`MAX_FRAME`] (almost certainly
    /// garbage bytes being read as a length).
    FrameTooLarge(u32),
    /// The stream ended inside a frame.
    UnexpectedEof,
    /// The peer went silent past the configured read deadline (a
    /// half-open TCP connection, not a clean close). Distinguished from
    /// [`WireError::Io`] so servers can free the slot and keep
    /// accepting instead of treating it as stream corruption.
    Timeout,
    /// The worker's protocol version differs from ours.
    VersionMismatch {
        /// Our [`PROTO_VERSION`].
        ours: u32,
        /// What the worker announced.
        theirs: u32,
    },
    /// The first frame was not a [`Hello`] (or never arrived).
    Handshake(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wire i/o: {e}"),
            Self::Decode(m) => write!(f, "wire decode: {m}"),
            Self::FrameTooLarge(n) => write!(f, "frame length {n} exceeds {MAX_FRAME}"),
            Self::UnexpectedEof => write!(f, "stream ended mid-frame"),
            Self::Timeout => write!(f, "peer silent past the read deadline"),
            Self::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, worker {theirs}")
            }
            Self::Handshake(m) => write!(f, "handshake: {m}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            ErrorKind::UnexpectedEof => Self::UnexpectedEof,
            // A read deadline fires as TimedOut on most platforms but
            // WouldBlock on some (set_read_timeout's contract names
            // both).
            ErrorKind::TimedOut | ErrorKind::WouldBlock => Self::Timeout,
            _ => Self::Io(e),
        }
    }
}

/// The worker's first frame: protocol version + its OS pid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// The worker's [`PROTO_VERSION`].
    pub proto: u32,
    /// The worker's OS process id (for logs and chaos stalls).
    pub pid: u32,
}

/// A chaos-harness directive riding inside a lease: the driver cannot
/// write onto the worker's *output* pipe, so garbage-on-the-wire is
/// injected by telling the worker to emit it itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosDirective {
    /// Write `len` seeded garbage bytes where a response frame should
    /// be, then exit(3).
    Garbage {
        /// Seed of the garbage byte stream.
        seed: u64,
        /// How many bytes of garbage.
        len: u32,
    },
}

/// One leased cell: the request id, the canonical cell index, and the
/// pure work descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerParams {
    /// Driver-unique request id; echoed in the [`CellResult`] so late
    /// or duplicate responses can be matched to their lease.
    pub req: u64,
    /// Index of the cell in the canonical grid (the merge key).
    pub cell: usize,
    /// The sweep's scale/seed options.
    pub scale: Scale,
    /// Which cell to compute.
    pub spec: CellSpec,
    /// Chaos injection, if this lease is a sacrificial one.
    pub chaos: Option<ChaosDirective>,
}

/// Driver → worker frames.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Compute one cell.
    Cell(WorkerParams),
    /// Exit cleanly (stream EOF means the same).
    Shutdown,
}

/// One computed cell on its way back to the driver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Echo of [`WorkerParams::req`].
    pub req: u64,
    /// Echo of [`WorkerParams::cell`].
    pub cell: usize,
    /// The cell's output, bit-identical to an in-process run.
    pub output: CellOutput,
    /// Worker-side wall-clock of the cell (ms).
    pub wall_ms: f64,
}

/// Worker → driver frames.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// The leased cell, computed.
    Cell(CellResult),
    /// The cell could not be computed (worker-side panic, caught); the
    /// driver requeues the cell and strikes the worker.
    Failed {
        /// Echo of [`WorkerParams::req`].
        req: u64,
        /// Echo of [`WorkerParams::cell`].
        cell: usize,
        /// Human-readable cause.
        message: String,
    },
}

/// Writes one frame: `u32` big-endian payload length, then the JSON
/// payload, then a flush (frames are the protocol's batching unit).
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, value: &T) -> Result<(), WireError> {
    let text = serde_json::to_string(value).map_err(|e| WireError::Decode(format!("{e:?}")))?;
    let bytes = text.as_bytes();
    let len = u32::try_from(bytes.len()).map_err(|_| WireError::FrameTooLarge(u32::MAX))?;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (EOF exactly at
/// a frame boundary); EOF anywhere else is [`WireError::UnexpectedEof`].
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < len_buf.len() {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(WireError::UnexpectedEof),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    let text =
        String::from_utf8(buf).map_err(|e| WireError::Decode(format!("non-utf8 payload: {e}")))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| WireError::Decode(format!("{e:?}")))
}

/// Validates a worker's [`Hello`] against our [`PROTO_VERSION`].
pub fn check_hello(hello: &Hello) -> Result<(), WireError> {
    if hello.proto == PROTO_VERSION {
        Ok(())
    } else {
        Err(WireError::VersionMismatch {
            ours: PROTO_VERSION,
            theirs: hello.proto,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let params = WorkerParams {
            req: 7,
            cell: 3,
            scale: Scale {
                smoke: true,
                ..Scale::default()
            },
            spec: CellSpec::Degradation {
                mode_idx: 2,
                fraction: 0.1,
            },
            chaos: None,
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &Hello { proto: 1, pid: 42 }).expect("write hello");
        write_frame(&mut buf, &Request::Cell(params.clone())).expect("write request");
        write_frame(&mut buf, &Request::Shutdown).expect("write shutdown");

        let mut r = Cursor::new(buf);
        let hello: Hello = read_frame(&mut r).expect("read").expect("frame");
        assert_eq!(hello, Hello { proto: 1, pid: 42 });
        let req: Request = read_frame(&mut r).expect("read").expect("frame");
        assert_eq!(req, Request::Cell(params));
        let req: Request = read_frame(&mut r).expect("read").expect("frame");
        assert_eq!(req, Request::Shutdown);
        let end: Option<Request> = read_frame(&mut r).expect("read");
        assert!(end.is_none(), "clean EOF at a frame boundary");
    }

    #[test]
    fn f64_payloads_roundtrip_bit_exactly() {
        // The determinism linchpin: the merge is byte-identical only if
        // every float survives the wire bit-for-bit.
        for &v in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            2.5e8,
            -0.0,
        ] {
            let spec = CellSpec::Degradation {
                mode_idx: 0,
                fraction: v,
            };
            let mut buf = Vec::new();
            write_frame(&mut buf, &spec).expect("write");
            let back: CellSpec = read_frame(&mut Cursor::new(buf))
                .expect("read")
                .expect("frame");
            match back {
                CellSpec::Degradation { fraction, .. } => {
                    assert_eq!(fraction.to_bits(), v.to_bits(), "{v}");
                }
                other => panic!("wrong variant: {other:?}"),
            }
        }
    }

    #[test]
    fn eof_mid_frame_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Shutdown).expect("write");
        // Truncate inside the payload.
        buf.truncate(buf.len() - 2);
        let got = read_frame::<_, Request>(&mut Cursor::new(buf));
        assert!(matches!(got, Err(WireError::UnexpectedEof)), "{got:?}");
        // Truncate inside the length prefix.
        let got = read_frame::<_, Request>(&mut Cursor::new(vec![0u8, 0]));
        assert!(matches!(got, Err(WireError::UnexpectedEof)), "{got:?}");
    }

    #[test]
    fn garbage_is_a_decode_or_length_error_never_a_panic() {
        // Garbage read as a length prefix: either an absurd length or a
        // payload that fails to parse — both typed, neither panics.
        let garbage = vec![0xFFu8; 64];
        let got = read_frame::<_, Response>(&mut Cursor::new(garbage));
        assert!(matches!(got, Err(WireError::FrameTooLarge(_))), "{got:?}");

        // A well-framed payload that is not JSON.
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"ole!!");
        let got = read_frame::<_, Response>(&mut Cursor::new(buf));
        assert!(matches!(got, Err(WireError::Decode(_))), "{got:?}");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        assert!(check_hello(&Hello {
            proto: PROTO_VERSION,
            pid: 1
        })
        .is_ok());
        let got = check_hello(&Hello {
            proto: PROTO_VERSION + 1,
            pid: 1,
        });
        assert!(
            matches!(got, Err(WireError::VersionMismatch { .. })),
            "{got:?}"
        );
    }

    #[test]
    fn oversized_frames_are_refused_on_write() {
        struct Sink;
        impl Write for Sink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // A request whose JSON exceeds MAX_FRAME.
        let big = Response::Failed {
            req: 0,
            cell: 0,
            message: "x".repeat(MAX_FRAME as usize + 8),
        };
        let got = write_frame(&mut Sink, &big);
        assert!(matches!(got, Err(WireError::FrameTooLarge(_))), "{got:?}");
    }
}
