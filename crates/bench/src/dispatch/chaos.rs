//! The chaos harness: seeded failures aimed at the sweep plane itself.
//!
//! In the spirit of the data-plane fault DSL ([`flowsim::faults`]), a
//! [`ChaosPlan`] is a deterministic function of its seed: each worker
//! draws a *fate* — die by SIGKILL, stall under SIGSTOP, or corrupt its
//! output stream — scheduled at one of its first few leases. The driver
//! consults the plan at lease time and inflicts the action after the
//! lease is written, so every injected failure lands while a cell is
//! in flight (the interesting window).
//!
//! The *schedule* is deterministic per seed; *which cell* a failure
//! interrupts depends on OS scheduling. That asymmetry is the point:
//! the dispatch plane must produce byte-identical output no matter
//! where the failures land, and the chaos proptests assert exactly
//! that.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What the harness does to a worker at one of its leases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// SIGKILL the worker right after the lease is written: the driver
    /// sees EOF mid-cell and must requeue.
    Kill,
    /// SIGSTOP the worker: the lease deadline must fire, the cell must
    /// be requeued, and repeat offenses must quarantine the worker.
    Stall,
    /// Tell the worker (via [`super::wire::ChaosDirective`]) to write
    /// seeded garbage instead of its response frame and exit(3): the
    /// driver sees a decode error and must quarantine.
    Garbage {
        /// Seed of the garbage bytes the worker will emit.
        seed: u64,
    },
}

impl ChaosAction {
    /// Stable label for summaries and trace events.
    pub fn label(self) -> &'static str {
        match self {
            Self::Kill => "kill",
            Self::Stall => "stall",
            Self::Garbage { .. } => "garbage",
        }
    }
}

/// A worker's drawn fate: an action inflicted at its `lease`-th lease
/// (0-based), or nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fate {
    lease: u64,
    action: ChaosAction,
}

/// The seeded chaos schedule for one dispatch run.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    seed: u64,
    fates: Vec<Option<Fate>>,
}

impl ChaosPlan {
    /// Draws the plan for `workers` workers. Each worker is afflicted
    /// with probability ~0.6, uniformly over the three actions, at one
    /// of its first two leases — so failures land mid-run, and runs
    /// where every worker dies (full in-process fallback) are possible
    /// and must still merge correctly.
    pub fn new(seed: u64, workers: usize) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x63_68_61_6f_73_5f_76_31);
        let fates = (0..workers)
            .map(|w| {
                if rng.gen_bool(0.6) {
                    let lease = u64::from(rng.gen_bool(0.5));
                    let action = match rng.gen_range(0..3u8) {
                        0 => ChaosAction::Kill,
                        1 => ChaosAction::Stall,
                        _ => ChaosAction::Garbage {
                            seed: seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                        },
                    };
                    Some(Fate { lease, action })
                } else {
                    None
                }
            })
            .collect();
        Self { seed, fates }
    }

    /// The plan's seed (for summaries).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The action to inflict when `worker` receives its `lease`-th
    /// lease (0-based), if any.
    pub fn action(&self, worker: usize, lease: u64) -> Option<ChaosAction> {
        self.fates
            .get(worker)
            .copied()
            .flatten()
            .filter(|f| f.lease == lease)
            .map(|f| f.action)
    }

    /// How many workers this plan afflicts (for tests choosing seeds).
    pub fn afflicted(&self) -> usize {
        self.fates.iter().flatten().count()
    }

    /// Whether any afflicted worker draws `label` as its action.
    pub fn has_action(&self, label: &str) -> bool {
        self.fates
            .iter()
            .flatten()
            .any(|f| f.action.label() == label)
    }
}

/// The seeded garbage bytes a [`ChaosAction::Garbage`] worker emits —
/// shared by the worker (to produce) and tests (to predict). Biased
/// toward high bytes so a garbage prefix parses as an absurd frame
/// length rather than a small plausible one.
pub fn garbage_bytes(seed: u64, len: u32) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0x80..=0xFFu8)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in 0..32u64 {
            let a = ChaosPlan::new(seed, 4);
            let b = ChaosPlan::new(seed, 4);
            for w in 0..4 {
                for lease in 0..4 {
                    assert_eq!(a.action(w, lease), b.action(w, lease));
                }
            }
        }
    }

    #[test]
    fn seeds_cover_every_action_and_quiet_plans_exist() {
        let mut kills = 0;
        let mut stalls = 0;
        let mut garbage = 0;
        let mut quiet = 0;
        for seed in 0..64u64 {
            let p = ChaosPlan::new(seed, 4);
            kills += usize::from(p.has_action("kill"));
            stalls += usize::from(p.has_action("stall"));
            garbage += usize::from(p.has_action("garbage"));
            quiet += usize::from(p.afflicted() == 0);
        }
        assert!(kills > 0, "some seed must kill");
        assert!(stalls > 0, "some seed must stall");
        assert!(garbage > 0, "some seed must corrupt the wire");
        assert!(quiet > 0, "some seed must leave every worker alone");
    }

    #[test]
    fn fate_fires_at_exactly_one_lease() {
        for seed in 0..16u64 {
            let p = ChaosPlan::new(seed, 8);
            for w in 0..8 {
                let hits: Vec<u64> = (0..8).filter(|&l| p.action(w, l).is_some()).collect();
                assert!(hits.len() <= 1, "seed {seed} worker {w}: {hits:?}");
                if let Some(&l) = hits.first() {
                    assert!(l < 2, "fates land within the first two leases");
                }
            }
        }
    }

    #[test]
    fn garbage_bytes_are_seeded_and_high() {
        let a = garbage_bytes(9, 64);
        assert_eq!(a, garbage_bytes(9, 64));
        assert_ne!(a, garbage_bytes(10, 64));
        assert!(a.iter().all(|&b| b >= 0x80));
        assert_eq!(a.len(), 64);
    }
}
