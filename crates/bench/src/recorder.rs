//! The `--metrics <out.jsonl>` recorder: streams sweep-progress trace
//! events to a file while an experiment runs.
//!
//! [`start`] opens the file and installs a [`crate::sweep`] observer
//! that appends one `SweepCell` event per finished cell (in completion
//! order — the cell index is the deterministic key, the order is not).
//! [`finish`] uninstalls the observer and appends a terminal
//! `SweepSummary` with wall-clock, throughput, and cell-latency
//! percentiles. Nothing here writes to stdout, so experiment output is
//! byte-identical with and without `--metrics`.

use crate::cli::Cli;
use crate::sweep;
use obs::{Histogram, JsonlSink, TraceEvent, TraceSink};
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Shared {
    sink: Mutex<JsonlSink<BufWriter<File>>>,
    cell_ms: Mutex<Vec<f64>>,
}

/// An active `--metrics` recording; created by [`start`], closed by
/// [`finish`]. Dropping it without `finish` leaves the file without its
/// summary line (the cell events are still flushed by the OS on exit).
pub struct MetricsRecorder {
    bin: String,
    shared: Arc<Shared>,
    t0: Instant,
}

/// Starts recording if the CLI asked for it (`--metrics <path>`).
/// Exits with status 1 on an I/O error creating the file.
pub fn start(bin: &str, cli: &Cli) -> Option<MetricsRecorder> {
    let path = cli.metrics.as_deref()?;
    match MetricsRecorder::create(bin, path) {
        Ok(rec) => Some(rec),
        Err(e) => {
            // ftlint::allow(FTL-R002): fatal metrics-file error reports to stderr on the bins' behalf, then exits 1
            eprintln!("{bin}: cannot open metrics file {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Finishes a recording started by [`start`] (no-op on `None`).
/// Exits with status 1 if the file could not be written.
pub fn finish(rec: Option<MetricsRecorder>) {
    if let Some(rec) = rec {
        let bin = rec.bin.clone();
        if let Err(e) = rec.close() {
            // ftlint::allow(FTL-R002): fatal metrics-file error reports to stderr on the bins' behalf, then exits 1
            eprintln!("{bin}: metrics write failed: {e}");
            std::process::exit(1);
        }
    }
}

impl MetricsRecorder {
    /// Opens `path` and installs the sweep observer.
    pub fn create(bin: &str, path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        let shared = Arc::new(Shared {
            sink: Mutex::new(JsonlSink::new(BufWriter::new(file))),
            cell_ms: Mutex::new(Vec::new()),
        });
        let obs = shared.clone();
        sweep::set_observer(Some(Arc::new(move |cell, wall_ms| {
            // ftlint::allow(FTL-R001): Mutex poisoning only follows a panic in another observer call, which propagates anyway
            obs.cell_ms.lock().expect("recorder lock").push(wall_ms);
            obs.sink
                .lock()
                // ftlint::allow(FTL-R001): Mutex poisoning only follows a panic in another observer call, which propagates anyway
                .expect("recorder lock")
                .emit(TraceEvent::SweepCell { cell, wall_ms });
        })));
        Ok(Self {
            bin: bin.to_string(),
            shared,
            t0: Instant::now(),
        })
    }

    /// Uninstalls the observer, appends the `SweepSummary`, and flushes.
    pub fn close(self) -> std::io::Result<()> {
        sweep::set_observer(None);
        let wall_ms = self.t0.elapsed().as_secs_f64() * 1e3;
        // ftlint::allow(FTL-R001): Mutex poisoning only follows a panic in another observer call, which propagates anyway
        let cell_ms = self.shared.cell_ms.lock().expect("recorder lock").clone();
        let mut h = Histogram::new();
        for &ms in &cell_ms {
            h.record(ms);
        }
        // ftlint::allow(FTL-R001): Mutex poisoning only follows a panic in another observer call, which propagates anyway
        let mut sink = self.shared.sink.lock().expect("recorder lock");
        sink.emit(TraceEvent::SweepSummary {
            bin: self.bin.clone(),
            cells: cell_ms.len(),
            wall_ms,
            cells_per_s: if wall_ms > 0.0 {
                cell_ms.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            },
            p50_ms: h.percentile(50.0),
            p99_ms: h.percentile(99.0),
            max_ms: h.max(),
        });
        if let Some(e) = sink.take_error() {
            return Err(e);
        }
        drop(sink);
        // The observer clone was just dropped with set_observer(None),
        // so this recorder holds the only reference.
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => {
                shared
                    .sink
                    .into_inner()
                    .expect("recorder lock")
                    .into_inner()?;
                Ok(())
            }
            // A racing observer callback still holds the Arc; the
            // BufWriter flushes when the last clone drops.
            Err(_) => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_cells_and_summary() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ftobs_rec_{}.jsonl", std::process::id()));
        let rec = MetricsRecorder::create("testbin", &path).expect("create");
        let items: Vec<u64> = (0..8).collect();
        let out = sweep::sweep_with_threads(&items, 2, |_, &x| x + 1);
        assert_eq!(out.len(), 8);
        rec.close().expect("close");
        let text = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 9, "8 cells + summary, got {}", lines.len());
        let cells = lines.iter().filter(|l| l.contains("\"SweepCell\"")).count();
        assert!(cells >= 8);
        let last = lines.last().expect("summary line");
        assert!(last.contains("\"SweepSummary\""), "{last}");
        assert!(last.contains("\"bin\":\"testbin\""), "{last}");
    }
}
