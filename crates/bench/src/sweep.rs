//! Parallel sweep driver for experiment cells.
//!
//! Every experiment in this crate is a sweep over a cell grid — topology
//! × traffic × transport (fig6, fig8), or failure fraction × trial
//! (resilience) — where each cell is an independent, deterministic
//! computation. [`sweep`] runs the cells on crossbeam scoped worker
//! threads pulling from a shared work queue (so unequal cell costs
//! balance), and collects results **in input order**: the output is
//! byte-for-byte the same as a serial loop over the cells, regardless of
//! thread count or scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A progress callback: `(cell index, cell wall-clock in ms)`, invoked
/// in completion order from whichever worker finished the cell.
pub type CellObserver = Arc<dyn Fn(usize, f64) + Send + Sync>;

/// The installed observer. Process-wide so experiment entry points need
/// no signature change; cells are only timed while one is installed.
static OBSERVER: RwLock<Option<CellObserver>> = RwLock::new(None);

/// Installs (or, with `None`, removes) the process-wide sweep observer.
/// The observer must be cheap and must tolerate concurrent invocation.
pub fn set_observer(observer: Option<CellObserver>) {
    // ftlint::allow(FTL-R001): RwLock poisoning only follows a panic under the lock, which propagates anyway
    *OBSERVER.write().expect("sweep observer lock") = observer;
}

/// The currently installed observer, if any. Shared with the dispatch
/// driver so distributed cells are reported exactly like in-process
/// ones.
pub(crate) fn current_observer() -> Option<CellObserver> {
    // ftlint::allow(FTL-R001): RwLock poisoning only follows a panic under the lock, which propagates anyway
    OBSERVER.read().expect("sweep observer lock").clone()
}

/// Runs `job` on every item using up to `threads` scoped worker threads
/// and returns the results in input order.
///
/// `job` receives `(index, &item)` and must be deterministic per cell;
/// cells must not depend on each other. Panics in a cell propagate.
///
/// **Contract:** any `threads` value is safe — `0` is clamped to one
/// worker (serial execution) rather than deadlocking or panicking, and
/// values above `items.len()` are clamped down; the results are
/// identical for every thread count.
pub fn sweep_with_threads<I, T, F>(items: &[I], threads: usize, job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    // Resolve the observer once per sweep; with none installed the job
    // runs untimed, exactly as before.
    let observer = current_observer();
    let job = |i: usize, it: &I| -> T {
        if let Some(obs) = &observer {
            let t0 = Instant::now();
            let out = job(i, it);
            obs(i, t0.elapsed().as_secs_f64() * 1e3);
            out
        } else {
            job(i, it)
        }
    };
    let workers = threads.clamp(1, items.len());
    if workers == 1 {
        return items.iter().enumerate().map(|(i, it)| job(i, it)).collect();
    }
    // Dynamic queue: workers grab the next unclaimed index, so long cells
    // don't serialize behind a static partition. Results carry their
    // index and are reassembled in input order afterwards.
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(items.len()));
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let collected = &collected;
                let job = &job;
                scope.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = job(i, &items[i]);
                    // ftlint::allow(FTL-R001): Mutex poisoning only follows a worker panic, which join() then propagates
                    collected.lock().expect("sweep collector").push((i, out));
                })
            })
            .collect();
        for h in handles {
            // ftlint::allow(FTL-R001): a worker panic must propagate to the caller; there is no partial sweep result
            h.join().expect("sweep worker panicked");
        }
    })
    .expect("sweep scope");
    let mut pairs = collected.into_inner().expect("sweep collector");
    pairs.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(pairs.len(), items.len());
    pairs.into_iter().map(|(_, t)| t).collect()
}

/// [`sweep_with_threads`] with one worker per available CPU.
pub fn sweep<I, T, F>(items: &[I], job: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    sweep_with_threads(items, threads, job)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_under_contention() {
        // Uneven cell costs: later items finish first on a real scheduler.
        let items: Vec<usize> = (0..64).collect();
        let out = sweep_with_threads(&items, 8, |i, &x| {
            // Busy-work inversely proportional to index.
            let spins = (64 - i) * 500;
            let mut acc = 0u64;
            for s in 0..spins {
                acc = acc.wrapping_add(s as u64);
            }
            std::hint::black_box(acc);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_exactly() {
        let items: Vec<u64> = (0..33).map(|i| i * 7 + 1).collect();
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| x + i as u64)
            .collect();
        for threads in [1, 2, 5, 64] {
            let par = sweep_with_threads(&items, threads, |i, &x| x + i as u64);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn zero_threads_clamps_to_serial() {
        // Regression: `threads == 0` was caller-beware; the contract is
        // now clamp-to-1, identical results, no hang.
        let items: Vec<u64> = (0..17).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(sweep_with_threads(&items, 0, |_, &x| x * x), serial);
        let empty: Vec<u64> = Vec::new();
        assert!(sweep_with_threads(&empty, 0, |_, &x| x).is_empty());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u8> = Vec::new();
        assert!(sweep(&empty, |_, &x| x).is_empty());
        assert_eq!(sweep(&[5u8], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn index_is_passed_through() {
        let items = ["a", "b", "c"];
        let out = sweep_with_threads(&items, 2, |i, &s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn observer_sees_every_cell_without_changing_results() {
        // The observer is process-global, so a concurrently running
        // sweep test may also report cells into it; assert containment
        // rather than exact equality.
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        set_observer(Some(Arc::new(move |cell, wall_ms| {
            assert!(wall_ms >= 0.0);
            sink.lock().expect("observer lock").push(cell);
        })));
        let items: Vec<usize> = (0..16).collect();
        let out = sweep_with_threads(&items, 4, |_, &x| x * 3);
        set_observer(None);
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        let cells = seen.lock().expect("observer lock").clone();
        for i in 0..items.len() {
            assert!(cells.contains(&i), "cell {i} must be reported");
        }
    }
}
