//! Strict CLI parsing shared by every experiment binary.
//!
//! Historically the bins panicked (exit 101) on a bad flag and the
//! hand-rolled parsers silently ignored unknown ones. [`Cli::parse`]
//! fixes both: unknown or malformed arguments print a usage message on
//! stderr and exit with status **2** (the conventional usage-error
//! code), and `--help` prints the same message on stdout and exits 0.

use crate::scale::Scale;
use std::path::PathBuf;

/// Parsed command line of an experiment binary: the common [`Scale`]
/// options plus the observability flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cli {
    /// Scale/seed/json options shared by every experiment.
    pub scale: Scale,
    /// `--metrics <out.jsonl>`: stream sweep-progress trace events
    /// (`SweepCell` / `SweepSummary`) to this file. Never touches
    /// stdout.
    pub metrics: Option<PathBuf>,
    /// `--workers <n>`: run the sweep grid on the distributed dispatch
    /// plane with `n` local `ftd` worker processes. Only bins that opt
    /// in via [`Cli::parse_dispatch`] accept it.
    pub workers: Option<usize>,
    /// `--chaos <seed>`: arm the dispatch chaos harness (seeded worker
    /// kills, stalls, garbage-on-the-wire). Requires `--workers`.
    pub chaos: Option<u64>,
}

/// The usage text for `bin`.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--full] [--smoke] [--seed <u64>] [--json] [--metrics <out.jsonl>]\n\
         \n\
         options:\n\
         \x20 --full                 run at the paper's full Table 2 sizes\n\
         \x20 --smoke                shrink to a seconds-long CI smoke run\n\
         \x20 --seed <u64>           RNG seed for workloads and random topologies\n\
         \x20 --json                 also emit results as JSON on stdout\n\
         \x20 --metrics <out.jsonl>  write sweep trace events (JSONL) to a file\n\
         \x20 --help                 print this message"
    )
}

/// The usage text for a dispatch-capable `bin`.
pub fn usage_dispatch(bin: &str) -> String {
    format!(
        "{}\n\
         \x20 --workers <n>          distribute the sweep over n ftd worker processes\n\
         \x20 --chaos <seed>         arm the seeded chaos harness (needs --workers)",
        usage(bin)
    )
}

impl Cli {
    /// Parses the process arguments; on a usage error prints the
    /// message and the usage text to stderr and exits with status 2.
    /// `--help` prints usage to stdout and exits 0.
    pub fn parse(bin: &str) -> Self {
        Self::parse_exiting(bin, false)
    }

    /// [`parse`](Self::parse) for bins that run on the distributed
    /// dispatch plane: additionally accepts `--workers <n>` and
    /// `--chaos <seed>`.
    pub fn parse_dispatch(bin: &str) -> Self {
        Self::parse_exiting(bin, true)
    }

    fn parse_exiting(bin: &str, dispatch: bool) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let usage_text = if dispatch {
            usage_dispatch(bin)
        } else {
            usage(bin)
        };
        if args.iter().any(|a| a == "--help" || a == "-h") {
            // ftlint::allow(FTL-R002): --help output is the shared bin-facing CLI surface; prints once, then exits 0
            println!("{usage_text}");
            std::process::exit(0);
        }
        let parsed = if dispatch {
            Self::parse_from_dispatch(&args)
        } else {
            Self::parse_from(&args)
        };
        match parsed {
            Ok(cli) => cli,
            Err(e) => {
                // ftlint::allow(FTL-R002): usage errors are the shared bin-facing CLI surface; prints to stderr, then exits 2
                eprintln!("{bin}: {e}\n{usage_text}");
                std::process::exit(2);
            }
        }
    }

    /// Pure parser over an argument slice (no process exit), for tests
    /// and for [`parse`](Self::parse). Rejects the dispatch-only flags
    /// so non-dispatch bins stay strict.
    pub fn parse_from(args: &[String]) -> Result<Self, String> {
        Self::parse_impl(args, false)
    }

    /// [`parse_from`](Self::parse_from) accepting `--workers`/`--chaos`.
    pub fn parse_from_dispatch(args: &[String]) -> Result<Self, String> {
        Self::parse_impl(args, true)
    }

    fn parse_impl(args: &[String], dispatch: bool) -> Result<Self, String> {
        let mut cli = Self::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => cli.scale.full = true,
                "--smoke" => cli.scale.smoke = true,
                "--json" => cli.scale.json = true,
                "--seed" => {
                    i += 1;
                    let v = args.get(i).ok_or("--seed needs a value")?;
                    cli.scale.seed = v
                        .parse()
                        .map_err(|_| format!("--seed needs a u64, got {v:?}"))?;
                }
                "--metrics" => {
                    i += 1;
                    let v = args.get(i).ok_or("--metrics needs a path")?;
                    cli.metrics = Some(PathBuf::from(v));
                }
                "--workers" if dispatch => {
                    i += 1;
                    let v = args.get(i).ok_or("--workers needs a count")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("--workers needs a count, got {v:?}"))?;
                    if n == 0 {
                        return Err("--workers must be >= 1".to_string());
                    }
                    cli.workers = Some(n);
                }
                "--chaos" if dispatch => {
                    i += 1;
                    let v = args.get(i).ok_or("--chaos needs a seed")?;
                    cli.chaos = Some(
                        v.parse()
                            .map_err(|_| format!("--chaos needs a u64 seed, got {v:?}"))?,
                    );
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
            i += 1;
        }
        if cli.chaos.is_some() && cli.workers.is_none() {
            return Err("--chaos requires --workers".to_string());
        }
        Ok(cli)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_all_known_flags() {
        let cli = Cli::parse_from(&strs(&[
            "--full",
            "--smoke",
            "--seed",
            "42",
            "--json",
            "--metrics",
            "/tmp/out.jsonl",
        ]))
        .expect("valid args");
        assert!(cli.scale.full && cli.scale.smoke && cli.scale.json);
        assert_eq!(cli.scale.seed, 42);
        assert_eq!(
            cli.metrics.as_deref(),
            Some(std::path::Path::new("/tmp/out.jsonl"))
        );
    }

    #[test]
    fn defaults_match_scale_defaults() {
        let cli = Cli::parse_from(&[]).expect("empty is valid");
        assert_eq!(cli.scale, Scale::default());
        assert_eq!(cli.metrics, None);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Cli::parse_from(&strs(&["--frull"])).is_err());
        assert!(Cli::parse_from(&strs(&["--seed"])).is_err());
        assert!(Cli::parse_from(&strs(&["--seed", "banana"])).is_err());
        assert!(Cli::parse_from(&strs(&["--metrics"])).is_err());
        assert!(Cli::parse_from(&strs(&["extra"])).is_err());
    }

    #[test]
    fn dispatch_flags_only_parse_in_dispatch_mode() {
        // Non-dispatch bins stay strict.
        assert!(Cli::parse_from(&strs(&["--workers", "3"])).is_err());
        assert!(Cli::parse_from(&strs(&["--chaos", "7"])).is_err());

        let cli = Cli::parse_from_dispatch(&strs(&["--smoke", "--workers", "3", "--chaos", "7"]))
            .expect("valid dispatch args");
        assert_eq!(cli.workers, Some(3));
        assert_eq!(cli.chaos, Some(7));
        assert!(cli.scale.smoke);

        // Validation: counts and dependencies.
        assert!(Cli::parse_from_dispatch(&strs(&["--workers", "0"])).is_err());
        assert!(Cli::parse_from_dispatch(&strs(&["--workers"])).is_err());
        assert!(Cli::parse_from_dispatch(&strs(&["--workers", "x"])).is_err());
        assert!(Cli::parse_from_dispatch(&strs(&["--chaos", "7"])).is_err());
        assert!(Cli::parse_from_dispatch(&strs(&["--chaos"])).is_err());
    }

    #[test]
    fn dispatch_usage_names_the_extra_flags() {
        let u = usage_dispatch("faultsweep");
        assert!(u.contains("--workers"));
        assert!(u.contains("--chaos"));
        // And still everything the base usage names.
        for flag in ["--full", "--smoke", "--seed", "--json", "--metrics"] {
            assert!(u.contains(flag), "usage must mention {flag}");
        }
    }

    #[test]
    fn usage_names_every_flag() {
        let u = usage("fig6");
        for flag in [
            "--full",
            "--smoke",
            "--seed",
            "--json",
            "--metrics",
            "--help",
        ] {
            assert!(u.contains(flag), "usage must mention {flag}");
        }
    }
}
