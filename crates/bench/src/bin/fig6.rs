//! Regenerates the paper's fig6 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig6;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = fig6::run(scale);
    fig6::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
