//! Regenerates the paper's fig6 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig6;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("fig6");
    let rec = recorder::start("fig6", &cli);
    let scale = cli.scale;
    let out = fig6::run(scale);
    fig6::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
