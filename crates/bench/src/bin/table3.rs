//! Regenerates the paper's table3 data. See EXPERIMENTS.md.

use ft_bench::experiments::table3;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("table3");
    let rec = recorder::start("table3", &cli);
    let scale = cli.scale;
    let out = table3::run(scale);
    table3::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
