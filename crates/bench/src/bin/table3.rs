//! Regenerates the paper's table3 data. See EXPERIMENTS.md.

use ft_bench::experiments::table3;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = table3::run(scale);
    table3::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
