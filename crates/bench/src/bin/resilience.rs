//! Extension experiment: resilience. See EXPERIMENTS.md.

use ft_bench::experiments::resilience;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("resilience");
    let rec = recorder::start("resilience", &cli);
    let scale = cli.scale;
    let out = resilience::run(scale);
    resilience::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
