//! Extension experiment: resilience. See EXPERIMENTS.md.

use ft_bench::experiments::resilience;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = resilience::run(scale);
    resilience::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
