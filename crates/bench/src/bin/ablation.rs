//! Extension experiment: ablation. See EXPERIMENTS.md.

use ft_bench::experiments::ablation;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = ablation::run(scale);
    ablation::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
