//! Extension experiment: ablation. See EXPERIMENTS.md.

use ft_bench::experiments::ablation;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("ablation");
    let rec = recorder::start("ablation", &cli);
    let scale = cli.scale;
    let out = ablation::run(scale);
    ablation::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
