//! Regenerates the paper's fig10 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig10;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = fig10::run(scale);
    fig10::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
