//! Regenerates the paper's fig10 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig10;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("fig10");
    let rec = recorder::start("fig10", &cli);
    let scale = cli.scale;
    let out = fig10::run(scale);
    fig10::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
