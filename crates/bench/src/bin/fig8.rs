//! Regenerates the paper's fig8 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig8;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = fig8::run(scale);
    fig8::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
