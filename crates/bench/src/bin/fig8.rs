//! Regenerates the paper's fig8 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig8;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("fig8");
    let rec = recorder::start("fig8", &cli);
    let scale = cli.scale;
    let out = fig8::run(scale);
    fig8::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
