//! Runs every table/figure experiment in sequence (the full evaluation).

use ft_bench::experiments::*;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("experiments");
    let rec = recorder::start("experiments", &cli);
    let scale = cli.scale;
    println!(
        "flat-tree evaluation — scale: {}",
        if scale.full {
            "FULL (Table 2 sizes)"
        } else {
            "mini"
        }
    );
    table1::print(&table1::run(scale));
    fig6::print(&fig6::run(scale));
    fig7::print(&fig7::run(scale));
    fig8::print(&fig8::run(scale));
    fig10::print(&fig10::run(scale));
    table3::print(&table3::run(scale));
    fig11::print(&fig11::run(scale));
    resilience::print(&resilience::run(scale));
    hybrid::print(&hybrid::run(scale));
    ablation::print(&ablation::run(scale));
    recorder::finish(rec);
}
