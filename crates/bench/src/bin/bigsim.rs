//! Extension experiment: decomposed production-scale simulation.
//! See EXPERIMENTS.md.

use ft_bench::experiments::bigsim;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("bigsim");
    let rec = recorder::start("bigsim", &cli);
    let scale = cli.scale;
    let out = bigsim::run(scale);
    bigsim::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
