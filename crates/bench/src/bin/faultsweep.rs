//! Extension experiment: fault sweep. See EXPERIMENTS.md.
//!
//! Exits non-zero if the simulation's invariant auditor reports any
//! violation, so CI catches engine regressions under faults.
//!
//! With `--workers <n>` the sweep grid runs on the distributed
//! dispatch plane (`ftd` worker processes); stdout is byte-identical
//! to the in-process run — the dispatch summary goes to stderr only.
//! `--chaos <seed>` arms the seeded chaos harness on top.

use ft_bench::dispatch::{self, DispatchConfig};
use ft_bench::experiments::faultsweep;
use ft_bench::{recorder, Cli};
use obs::NoopSink;

fn main() {
    let cli = Cli::parse_dispatch("faultsweep");
    let rec = recorder::start("faultsweep", &cli);
    let scale = cli.scale;
    let out = match cli.workers {
        Some(workers) => {
            let cfg = DispatchConfig::local(workers).with_chaos(cli.chaos);
            let (out, summary) = dispatch::run_faultsweep(scale, &cfg, &mut NoopSink);
            eprintln!("{summary}");
            out
        }
        None => faultsweep::run(scale),
    };
    faultsweep::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
    let violations = faultsweep::total_violations(&out);
    if violations > 0 {
        eprintln!("fault sweep: {violations} invariant violations");
        std::process::exit(1);
    }
}
