//! Extension experiment: fault sweep. See EXPERIMENTS.md.
//!
//! Exits non-zero if the simulation's invariant auditor reports any
//! violation, so CI catches engine regressions under faults.

use ft_bench::experiments::faultsweep;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("faultsweep");
    let rec = recorder::start("faultsweep", &cli);
    let scale = cli.scale;
    let out = faultsweep::run(scale);
    faultsweep::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
    let violations = faultsweep::total_violations(&out);
    if violations > 0 {
        eprintln!("fault sweep: {violations} invariant violations");
        std::process::exit(1);
    }
}
