//! Performance snapshot: times the simulation engine on the bench_simcore
//! workloads plus one sweep grid and writes `BENCH_sim.json`.
//!
//! Usage:
//!   cargo run -p ft-bench --release --bin perfsnap -- [--smoke] [--out \<path\>] [--check \<path\>]
//!
//! Each workload is run once with a counting sink (untimed) to establish
//! how many trace events the run generates, then several times with the
//! no-op sink for the wall-clock measurement, keeping the fastest run —
//! so the reported time is the un-traced hot path with scheduler noise
//! trimmed. MPTCP workloads are timed over a prebuilt shared route
//! table (the table build itself is the `route_precompute` entry), so
//! `sim_*` measures the engine + allocator, not routing. Those
//! workloads also carry an `alloc` block with the incremental
//! allocator's effort counters from an untimed telemetry pass, and the
//! same counters are printed as an `obs` metrics summary on stderr.
//!
//! `events_per_s` is the counted event total divided by the best
//! wall-clock, and `peak_rss_kb` is the process high-water mark
//! (`VmHWM`) sampled after the workload (0 on non-Linux hosts).
//! `--smoke` shrinks the flow rounds for CI. `--check <path>` compares
//! the fresh numbers against a committed snapshot and fails (exit 1) if
//! any shared workload's `events_per_s` drops below half the committed
//! value — the regression floor CI enforces.

use flat_tree::PodMode;
use flowsim::{
    try_simulate_traced, try_simulate_with_provider_traced, AllocTelemetry, FaultSchedule,
    LinkFailure, MptcpProvider, SimConfig, TraceEvent, TraceSink, Transport,
};
use ft_bench::dispatch::{self, DispatchConfig};
use ft_bench::experiments::{common, faultsweep};
use ft_bench::{sweep, Scale};
use netgraph::{Graph, LinkId};
use routing::SharedRouteTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use topology::DcNetwork;

const USAGE: &str = "usage: perfsnap [--smoke] [--out <path>] [--check <path>] [--help]";

/// Fraction of a committed workload's `events_per_s` a fresh run must
/// reach under `--check`. Generous because CI machines are slower and
/// noisier than the machine that wrote the committed snapshot.
const FLOOR_FRACTION: f64 = 0.5;

/// Counts every emitted event; used for the untimed instrumentation pass.
struct CountingSink(u64);

impl TraceSink for CountingSink {
    fn emit(&mut self, _ev: TraceEvent) {
        self.0 += 1;
    }
}

/// How a workload obtains routes: the lazy per-arrival provider that
/// `simulate` wires by default, or MPTCP over a prebuilt shared table.
enum Routing {
    Lazy,
    SharedMptcp {
        table: Arc<SharedRouteTable>,
        coupled: bool,
    },
}

fn first_cable(g: &Graph) -> LinkId {
    g.link_ids()
        .find(|&l| {
            let info = g.link(l);
            g.node(info.src).kind.is_switch() && g.node(info.dst).kind.is_switch()
        })
        .expect("switch-switch link")
}

fn workload(net: &DcNetwork, rounds: u64) -> Vec<flowsim::FlowSpec> {
    let pairs = traffic::patterns::permutation(net.num_servers(), 11);
    let mut flows = Vec::new();
    for round in 0..rounds {
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let id = round * pairs.len() as u64 + i as u64;
            flows.push(flowsim::FlowSpec {
                id,
                src: net.servers[s],
                dst: net.servers[d],
                bytes: 2.5e7,
                start: id as f64 * 1e-3,
            });
        }
    }
    flows
}

/// `VmHWM` (peak resident set) in kB from `/proc/self/status`; 0 when
/// the file or the field is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct Snapshot {
    name: &'static str,
    wall_ms: f64,
    events: u64,
    peak_rss_kb: u64,
    alloc: Option<AllocTelemetry>,
    /// Dispatch-plane requeues (lost leases retried), for the
    /// `dispatch_*` workloads only.
    retries: Option<u64>,
}

impl Snapshot {
    fn events_per_s(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.events as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }
}

fn measure_sim(
    name: &'static str,
    net: &DcNetwork,
    flows: &[flowsim::FlowSpec],
    cfg: &SimConfig,
    routing: &Routing,
    reps: u32,
) -> Snapshot {
    let mut counter = CountingSink(0);
    match routing {
        Routing::Lazy => {
            try_simulate_traced(&net.graph, flows, cfg, &mut counter).expect("valid workload");
        }
        Routing::SharedMptcp { table, coupled } => {
            let mut prov = MptcpProvider::with_shared(table.clone(), *coupled);
            try_simulate_with_provider_traced(&net.graph, flows, cfg, &mut prov, &mut counter)
                .expect("valid workload");
        }
    }
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = match routing {
            Routing::Lazy => flowsim::simulate(&net.graph, flows, cfg),
            Routing::SharedMptcp { table, coupled } => {
                let mut prov = MptcpProvider::with_shared(table.clone(), *coupled);
                flowsim::simulate_with_provider(&net.graph, flows, cfg, &mut prov)
            }
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(out.end_time);
        best_ms = best_ms.min(wall_ms);
    }
    // Untimed telemetry pass for shared-table workloads: same engine
    // path plus the fault auditor, so it is never the timed run.
    let alloc = match routing {
        Routing::Lazy => None,
        Routing::SharedMptcp { table, coupled } => {
            let mut tel = AllocTelemetry::default();
            let mut prov = MptcpProvider::with_shared(table.clone(), *coupled);
            flowsim::simulate_with_telemetry(
                &net.graph,
                flows,
                cfg,
                &FaultSchedule::default(),
                &mut prov,
                &mut tel,
            )
            .expect("valid workload");
            Some(tel)
        }
    };
    Snapshot {
        name,
        wall_ms: best_ms,
        events: counter.0,
        peak_rss_kb: peak_rss_kb(),
        alloc,
        retries: None,
    }
}

/// The route-plane workload: parallel precompute of the full
/// switch-pair route table (k = 8) for the mini topo-1 global
/// flat-tree — the table every experiment cell now shares. `events`
/// is the number of precomputed switch pairs. Returns the table so the
/// MPTCP sim workloads run over it.
fn measure_route_precompute(net: &DcNetwork) -> (Arc<SharedRouteTable>, Snapshot) {
    let t0 = Instant::now();
    let table = Arc::new(SharedRouteTable::build(&net.graph, 8));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let pairs = table.pair_count() as u64;
    let snap = Snapshot {
        name: "route_precompute",
        wall_ms,
        events: pairs,
        peak_rss_kb: peak_rss_kb(),
        alloc: None,
        retries: None,
    };
    (table, snap)
}

/// The sweep-grid workload: the faultsweep smoke grid, with cells counted
/// through the process-wide sweep observer (one event per cell).
fn measure_faultsweep() -> Snapshot {
    let cells = Arc::new(AtomicU64::new(0));
    let seen = cells.clone();
    sweep::set_observer(Some(Arc::new(move |_, _| {
        seen.fetch_add(1, Ordering::Relaxed);
    })));
    let scale = Scale {
        smoke: true,
        ..Scale::default()
    };
    let t0 = Instant::now();
    let out = faultsweep::run(scale);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    sweep::set_observer(None);
    std::hint::black_box(faultsweep::total_violations(&out));
    Snapshot {
        name: "faultsweep_smoke_grid",
        wall_ms,
        events: cells.load(Ordering::Relaxed),
        peak_rss_kb: peak_rss_kb(),
        alloc: None,
        retries: None,
    }
}

/// The distributed-sweep workload: the same smoke grid as
/// `faultsweep_smoke_grid` but dispatched over `workers` local `ftd`
/// worker processes. `events` counts merged cells through the sweep
/// observer; `retries` is the plane's requeue count. If the worker
/// binary is missing the plane degrades to in-process execution, which
/// the stderr line surfaces as `fallback yes`.
fn measure_dispatch(name: &'static str, workers: usize) -> Snapshot {
    let cells = Arc::new(AtomicU64::new(0));
    let seen = cells.clone();
    sweep::set_observer(Some(Arc::new(move |_, _| {
        seen.fetch_add(1, Ordering::Relaxed);
    })));
    let scale = Scale {
        smoke: true,
        ..Scale::default()
    };
    let cfg = DispatchConfig::local(workers);
    let t0 = Instant::now();
    let (out, summary) = dispatch::run_faultsweep(scale, &cfg, &mut obs::NoopSink);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    sweep::set_observer(None);
    std::hint::black_box(faultsweep::total_violations(&out));
    eprintln!("perfsnap: {name}: {summary}");
    Snapshot {
        name,
        wall_ms,
        events: cells.load(Ordering::Relaxed),
        peak_rss_kb: peak_rss_kb(),
        alloc: None,
        retries: Some(summary.requeues),
    }
}

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        smoke: false,
        out: "BENCH_sim.json".to_string(),
        check: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => parsed.smoke = true,
            "--out" => parsed.out = it.next().ok_or("--out requires a path")?.clone(),
            "--check" => {
                parsed.check = Some(it.next().ok_or("--check requires a path")?.clone());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn render_json(smoke: bool, snaps: &[Snapshot]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench_sim/v2\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str("  \"workloads\": {\n");
    for (i, snap) in snaps.iter().enumerate() {
        let comma = if i + 1 < snaps.len() { "," } else { "" };
        let alloc = match &snap.alloc {
            Some(t) => format!(
                ", \"alloc\": {{\"epochs\": {}, \"rounds\": {}, \"dirty_links\": {}, \"dirty_entities\": {}, \"reused_rates\": {}, \"scan_savings\": {:.4}}}",
                t.epochs, t.rounds, t.dirty_links, t.dirty_entities, t.reused_rates, t.scan_savings(),
            ),
            None => String::new(),
        };
        let retries = match snap.retries {
            Some(r) => format!(", \"retries\": {r}"),
            None => String::new(),
        };
        s.push_str(&format!(
            "    \"{}\": {{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_s\": {:.1}, \"peak_rss_kb\": {}{retries}{alloc}}}{comma}\n",
            snap.name,
            snap.wall_ms,
            snap.events,
            snap.events_per_s(),
            snap.peak_rss_kb,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Pulls `(workload, events_per_s)` pairs out of a `BENCH_sim.json`
/// body. One workload per line; tolerant of both v1 and v2 layouts.
fn extract_events_per_s(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(tail) = line.split("\"events_per_s\":").nth(1) else {
            continue;
        };
        let value: f64 = tail
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect::<String>()
            .parse()
            .unwrap_or(0.0);
        let name = line
            .trim_start()
            .trim_start_matches('"')
            .split('"')
            .next()
            .unwrap_or("")
            .to_string();
        if !name.is_empty() {
            out.push((name, value));
        }
    }
    out
}

/// Enforces the regression floor: every workload present in both
/// snapshots must reach [`FLOOR_FRACTION`] of its committed
/// `events_per_s`. Returns the violations.
fn check_floors(fresh: &str, committed: &str) -> Vec<String> {
    let fresh = extract_events_per_s(fresh);
    let mut violations = Vec::new();
    for (name, floor) in extract_events_per_s(committed) {
        let Some((_, got)) = fresh.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        if floor > 0.0 && *got < floor * FLOOR_FRACTION {
            let need = floor * FLOOR_FRACTION;
            violations.push(format!(
                "{name}: {got:.1} events/s < floor {need:.1} ({FLOOR_FRACTION}x of committed {floor:.1})",
            ));
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let args = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("perfsnap: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let rounds = if args.smoke { 2 } else { 6 };
    let reps = if args.smoke { 2 } else { 5 };

    let ft = common::flat_tree_over(common::mini_topo(1));
    let net = common::instance(&ft, PodMode::Global).net;
    let flows = workload(&net, rounds);
    let fail = vec![LinkFailure {
        time: 0.05,
        link: first_cable(&net.graph),
    }];
    let ecmp = SimConfig {
        transport: Transport::TcpEcmp,
        ..SimConfig::default()
    };
    let mptcp = SimConfig {
        transport: Transport::Mptcp {
            k: 8,
            coupled: true,
        },
        ..SimConfig::default()
    };
    let (table, route_snap) = measure_route_precompute(&net);
    let lazy = Routing::Lazy;
    let shared = Routing::SharedMptcp {
        table,
        coupled: true,
    };

    let mut snaps = Vec::new();
    let cases: [(&'static str, &SimConfig, &Routing, bool); 4] = [
        ("sim_ecmp", &ecmp, &lazy, false),
        ("sim_ecmp_failure", &ecmp, &lazy, true),
        ("sim_mptcp8", &mptcp, &shared, false),
        ("sim_mptcp8_failure", &mptcp, &shared, true),
    ];
    for (name, cfg, routing, with_failure) in cases {
        let cfg = if with_failure {
            SimConfig {
                link_failures: fail.clone(),
                ..cfg.clone()
            }
        } else {
            cfg.clone()
        };
        let snap = measure_sim(name, &net, &flows, &cfg, routing, reps);
        eprintln!(
            "perfsnap: {:<22} {:>9.1} ms  {:>9} events  {:>8} kB peak",
            snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
        );
        snaps.push(snap);
    }
    eprintln!(
        "perfsnap: {:<22} {:>9.1} ms  {:>9} pairs   {:>8} kB peak",
        route_snap.name, route_snap.wall_ms, route_snap.events, route_snap.peak_rss_kb
    );
    snaps.push(route_snap);
    let snap = measure_faultsweep();
    eprintln!(
        "perfsnap: {:<22} {:>9.1} ms  {:>9} cells   {:>8} kB peak",
        snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
    );
    snaps.push(snap);
    for (name, workers) in [("dispatch_w2", 2), ("dispatch_w4", 4)] {
        let snap = measure_dispatch(name, workers);
        eprintln!(
            "perfsnap: {:<22} {:>9.1} ms  {:>9} cells   {:>8} kB peak",
            snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
        );
        snaps.push(snap);
    }

    // Surface the allocator counters through the obs metrics registry,
    // summed over the telemetry-carrying workloads.
    let mut metrics = obs::Metrics::new();
    for snap in &snaps {
        if let Some(tel) = &snap.alloc {
            tel.export(&mut metrics);
        }
    }
    if metrics.iter().next().is_some() {
        eprintln!("perfsnap: alloc metrics {}", metrics.summary_json());
    }

    let json = render_json(args.smoke, &snaps);
    if let Some(check_path) = &args.check {
        match std::fs::read_to_string(check_path) {
            Ok(committed) => {
                let violations = check_floors(&json, &committed);
                if !violations.is_empty() {
                    for v in &violations {
                        eprintln!("perfsnap: FLOOR VIOLATION {v}");
                    }
                    std::process::exit(1);
                }
                eprintln!("perfsnap: floor check against {check_path} passed");
            }
            Err(e) => {
                eprintln!("perfsnap: cannot read {check_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("perfsnap: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("perfsnap: wrote {} ({} workloads)", args.out, snaps.len());
}
