//! Performance snapshot: times the simulation engine on the bench_simcore
//! workloads plus one sweep grid and writes `BENCH_sim.json`.
//!
//! Usage:
//!   cargo run -p ft-bench --release --bin perfsnap -- [--smoke] [--out \<path\>]
//!
//! Each workload is run twice: once with a counting sink (untimed) to
//! establish how many trace events the run generates, then once with the
//! no-op sink for the wall-clock measurement — so the reported time is
//! the un-traced hot path, exactly what `cargo bench -p ft-bench --bench
//! bench_simcore` measures. `events_per_s` is the counted event total
//! divided by that un-traced wall-clock, and `peak_rss_kb` is the
//! process high-water mark (`VmHWM`) sampled after the workload (0 on
//! non-Linux hosts). `--smoke` shrinks the flow rounds for CI.

use flat_tree::PodMode;
use flowsim::{try_simulate_traced, LinkFailure, SimConfig, TraceEvent, TraceSink, Transport};
use ft_bench::experiments::{common, faultsweep};
use ft_bench::{sweep, Scale};
use netgraph::{Graph, LinkId};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use topology::DcNetwork;

const USAGE: &str = "usage: perfsnap [--smoke] [--out <path>] [--help]";

/// Counts every emitted event; used for the untimed instrumentation pass.
struct CountingSink(u64);

impl TraceSink for CountingSink {
    fn emit(&mut self, _ev: TraceEvent) {
        self.0 += 1;
    }
}

fn first_cable(g: &Graph) -> LinkId {
    g.link_ids()
        .find(|&l| {
            let info = g.link(l);
            g.node(info.src).kind.is_switch() && g.node(info.dst).kind.is_switch()
        })
        .expect("switch-switch link")
}

fn workload(net: &DcNetwork, rounds: u64) -> Vec<flowsim::FlowSpec> {
    let pairs = traffic::patterns::permutation(net.num_servers(), 11);
    let mut flows = Vec::new();
    for round in 0..rounds {
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let id = round * pairs.len() as u64 + i as u64;
            flows.push(flowsim::FlowSpec {
                id,
                src: net.servers[s],
                dst: net.servers[d],
                bytes: 2.5e7,
                start: id as f64 * 1e-3,
            });
        }
    }
    flows
}

/// `VmHWM` (peak resident set) in kB from `/proc/self/status`; 0 when
/// the file or the field is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct Snapshot {
    name: &'static str,
    wall_ms: f64,
    events: u64,
    peak_rss_kb: u64,
}

impl Snapshot {
    fn events_per_s(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.events as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }
}

fn measure_sim(
    name: &'static str,
    net: &DcNetwork,
    flows: &[flowsim::FlowSpec],
    cfg: &SimConfig,
) -> Snapshot {
    let mut counter = CountingSink(0);
    try_simulate_traced(&net.graph, flows, cfg, &mut counter).expect("valid workload");
    let t0 = Instant::now();
    let out = flowsim::simulate(&net.graph, flows, cfg);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    std::hint::black_box(out.end_time);
    Snapshot {
        name,
        wall_ms,
        events: counter.0,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// The route-plane workload: parallel precompute of the full
/// switch-pair route table (k = 8) for the mini topo-1 global
/// flat-tree — the table every experiment cell now shares. `events`
/// is the number of precomputed switch pairs.
fn measure_route_precompute(net: &DcNetwork) -> Snapshot {
    let t0 = Instant::now();
    let table = routing::SharedRouteTable::build(&net.graph, 8);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let pairs = table.pair_count() as u64;
    std::hint::black_box(table);
    Snapshot {
        name: "route_precompute",
        wall_ms,
        events: pairs,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// The sweep-grid workload: the faultsweep smoke grid, with cells counted
/// through the process-wide sweep observer (one event per cell).
fn measure_faultsweep() -> Snapshot {
    let cells = Arc::new(AtomicU64::new(0));
    let seen = cells.clone();
    sweep::set_observer(Some(Arc::new(move |_, _| {
        seen.fetch_add(1, Ordering::Relaxed);
    })));
    let scale = Scale {
        smoke: true,
        ..Scale::default()
    };
    let t0 = Instant::now();
    let out = faultsweep::run(scale);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    sweep::set_observer(None);
    std::hint::black_box(faultsweep::total_violations(&out));
    Snapshot {
        name: "faultsweep_smoke_grid",
        wall_ms,
        events: cells.load(Ordering::Relaxed),
        peak_rss_kb: peak_rss_kb(),
    }
}

fn parse_args(args: &[String]) -> Result<(bool, String), String> {
    let mut smoke = false;
    let mut out = "BENCH_sim.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().ok_or("--out requires a path")?.clone(),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((smoke, out))
}

fn render_json(smoke: bool, snaps: &[Snapshot]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench_sim/v1\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str("  \"workloads\": {\n");
    for (i, snap) in snaps.iter().enumerate() {
        let comma = if i + 1 < snaps.len() { "," } else { "" };
        s.push_str(&format!(
            "    \"{}\": {{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_s\": {:.1}, \"peak_rss_kb\": {}}}{comma}\n",
            snap.name,
            snap.wall_ms,
            snap.events,
            snap.events_per_s(),
            snap.peak_rss_kb,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let (smoke, out_path) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("perfsnap: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let rounds = if smoke { 2 } else { 6 };

    let ft = common::flat_tree_over(common::mini_topo(1));
    let net = common::instance(&ft, PodMode::Global).net;
    let flows = workload(&net, rounds);
    let fail = vec![LinkFailure {
        time: 0.05,
        link: first_cable(&net.graph),
    }];
    let ecmp = SimConfig {
        transport: Transport::TcpEcmp,
        ..SimConfig::default()
    };
    let mptcp = SimConfig {
        transport: Transport::Mptcp {
            k: 8,
            coupled: true,
        },
        ..SimConfig::default()
    };

    let mut snaps = Vec::new();
    let cases: [(&'static str, &SimConfig, bool); 4] = [
        ("sim_ecmp", &ecmp, false),
        ("sim_ecmp_failure", &ecmp, true),
        ("sim_mptcp8", &mptcp, false),
        ("sim_mptcp8_failure", &mptcp, true),
    ];
    for (name, cfg, with_failure) in cases {
        let cfg = if with_failure {
            SimConfig {
                link_failures: fail.clone(),
                ..cfg.clone()
            }
        } else {
            cfg.clone()
        };
        let snap = measure_sim(name, &net, &flows, &cfg);
        eprintln!(
            "perfsnap: {:<22} {:>9.1} ms  {:>9} events  {:>8} kB peak",
            snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
        );
        snaps.push(snap);
    }
    let snap = measure_route_precompute(&net);
    eprintln!(
        "perfsnap: {:<22} {:>9.1} ms  {:>9} pairs   {:>8} kB peak",
        snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
    );
    snaps.push(snap);
    let snap = measure_faultsweep();
    eprintln!(
        "perfsnap: {:<22} {:>9.1} ms  {:>9} cells   {:>8} kB peak",
        snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
    );
    snaps.push(snap);

    let json = render_json(smoke, &snaps);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("perfsnap: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("perfsnap: wrote {out_path} ({} workloads)", snaps.len());
}
