//! Performance snapshot: times the simulation engine on the bench_simcore
//! workloads plus one sweep grid and writes `BENCH_sim.json`.
//!
//! Usage:
//!   cargo run -p ft-bench --release --bin perfsnap -- [--smoke] [--out \<path\>] [--check \<path\>]
//!
//! Each workload is run once with a counting sink (untimed) to establish
//! how many trace events the run generates, then several times with the
//! no-op sink for the wall-clock measurement, keeping the fastest run —
//! so the reported time is the un-traced hot path with scheduler noise
//! trimmed. MPTCP workloads are timed over a prebuilt shared route
//! table (the table build itself is the `route_precompute` entry), so
//! `sim_*` measures the engine + allocator, not routing. Those
//! workloads also carry an `alloc` block with the incremental
//! allocator's effort counters from an untimed telemetry pass, and the
//! same counters are printed as an `obs` metrics summary on stderr.
//!
//! `events_per_s` is the counted event total divided by the best
//! wall-clock, and `peak_rss_kb` is the process high-water mark
//! (`VmHWM`) sampled after the workload (0 on non-Linux hosts).
//! `--smoke` shrinks the flow rounds for CI. `--check <path>` compares
//! the fresh numbers against a committed snapshot and fails (exit 1) if
//! any shared workload's `events_per_s` drops below half the committed
//! value — the regression floor CI enforces.

use flat_tree::PodMode;
use flowsim::{
    try_simulate_traced, try_simulate_with_provider_traced, AllocTelemetry, FaultSchedule,
    LinkFailure, MptcpProvider, SimConfig, TraceEvent, TraceSink, Transport,
};
use ft_bench::dispatch::{self, DispatchConfig};
use ft_bench::experiments::{common, faultsweep};
use ft_bench::{sweep, Scale};
use netgraph::{Graph, LinkId};
use routing::SharedRouteTable;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use topology::DcNetwork;

const USAGE: &str = "usage: perfsnap [--smoke] [--out <path>] [--check <path>] [--help]";

/// Fraction of a committed workload's `events_per_s` a fresh run must
/// reach under `--check`. Generous because CI machines are slower and
/// noisier than the machine that wrote the committed snapshot.
const FLOOR_FRACTION: f64 = 0.5;

/// Counts every emitted event; used for the untimed instrumentation pass.
struct CountingSink(u64);

impl TraceSink for CountingSink {
    fn emit(&mut self, _ev: TraceEvent) {
        self.0 += 1;
    }
}

/// How a workload obtains routes: the lazy per-arrival provider that
/// `simulate` wires by default, or MPTCP over a prebuilt shared table.
enum Routing {
    Lazy,
    SharedMptcp {
        table: Arc<SharedRouteTable>,
        coupled: bool,
    },
}

fn first_cable(g: &Graph) -> LinkId {
    g.link_ids()
        .find(|&l| {
            let info = g.link(l);
            g.node(info.src).kind.is_switch() && g.node(info.dst).kind.is_switch()
        })
        .expect("switch-switch link")
}

fn workload(net: &DcNetwork, rounds: u64) -> Vec<flowsim::FlowSpec> {
    let pairs = traffic::patterns::permutation(net.num_servers(), 11);
    let mut flows = Vec::new();
    for round in 0..rounds {
        for (i, &(s, d)) in pairs.iter().enumerate() {
            let id = round * pairs.len() as u64 + i as u64;
            flows.push(flowsim::FlowSpec {
                id,
                src: net.servers[s],
                dst: net.servers[d],
                bytes: 2.5e7,
                start: id as f64 * 1e-3,
            });
        }
    }
    flows
}

/// `VmHWM` (peak resident set) in kB from `/proc/self/status`; 0 when
/// the file or the field is unavailable.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct Snapshot {
    name: &'static str,
    wall_ms: f64,
    events: u64,
    peak_rss_kb: u64,
    alloc: Option<AllocTelemetry>,
    /// Dispatch-plane requeues (lost leases retried), for the
    /// `dispatch_*` workloads only.
    retries: Option<u64>,
}

impl Snapshot {
    /// Events per second, or NaN for a degenerate measurement (zero or
    /// non-finite wall-clock). NaN rather than 0 so that degenerate
    /// runs *fail* [`validate_snapshots`] and the `--check` floor with
    /// a diagnostic instead of sliding through every `<` comparison.
    fn events_per_s(&self) -> f64 {
        if self.wall_ms.is_finite() && self.wall_ms > 0.0 {
            self.events as f64 / (self.wall_ms / 1e3)
        } else {
            f64::NAN
        }
    }
}

/// Rejects degenerate measurements before they can be written into a
/// snapshot (and become unusable floors): a workload that produced no
/// events, no wall-clock, or a non-finite rate is a broken run, not a
/// slow one. Returns one diagnostic per violation.
fn validate_snapshots(snaps: &[Snapshot]) -> Vec<String> {
    let mut violations = Vec::new();
    for snap in snaps {
        if snap.events == 0 {
            violations.push(format!(
                "{}: produced 0 events (wall {:.3} ms) — nothing was measured",
                snap.name, snap.wall_ms
            ));
            continue;
        }
        let eps = snap.events_per_s();
        if !(eps.is_finite() && eps > 0.0) {
            violations.push(format!(
                "{}: degenerate events_per_s {eps} from wall_ms {:.3} over {} events",
                snap.name, snap.wall_ms, snap.events
            ));
        }
    }
    violations
}

fn measure_sim(
    name: &'static str,
    net: &DcNetwork,
    flows: &[flowsim::FlowSpec],
    cfg: &SimConfig,
    routing: &Routing,
    reps: u32,
) -> Snapshot {
    let mut counter = CountingSink(0);
    match routing {
        Routing::Lazy => {
            try_simulate_traced(&net.graph, flows, cfg, &mut counter).expect("valid workload");
        }
        Routing::SharedMptcp { table, coupled } => {
            let mut prov = MptcpProvider::with_shared(table.clone(), *coupled);
            try_simulate_with_provider_traced(&net.graph, flows, cfg, &mut prov, &mut counter)
                .expect("valid workload");
        }
    }
    let mut best_ms = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = match routing {
            Routing::Lazy => flowsim::simulate(&net.graph, flows, cfg),
            Routing::SharedMptcp { table, coupled } => {
                let mut prov = MptcpProvider::with_shared(table.clone(), *coupled);
                flowsim::simulate_with_provider(&net.graph, flows, cfg, &mut prov)
            }
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(out.end_time);
        best_ms = best_ms.min(wall_ms);
    }
    // Untimed telemetry pass for shared-table workloads: same engine
    // path plus the fault auditor, so it is never the timed run.
    let alloc = match routing {
        Routing::Lazy => None,
        Routing::SharedMptcp { table, coupled } => {
            let mut tel = AllocTelemetry::default();
            let mut prov = MptcpProvider::with_shared(table.clone(), *coupled);
            flowsim::simulate_with_telemetry(
                &net.graph,
                flows,
                cfg,
                &FaultSchedule::default(),
                &mut prov,
                &mut tel,
            )
            .expect("valid workload");
            Some(tel)
        }
    };
    Snapshot {
        name,
        wall_ms: best_ms,
        events: counter.0,
        peak_rss_kb: peak_rss_kb(),
        alloc,
        retries: None,
    }
}

/// The route-plane workload: parallel precompute of the full
/// switch-pair route table (k = 8) for the mini topo-1 global
/// flat-tree — the table every experiment cell now shares. `events`
/// is the number of precomputed switch pairs. Returns the table so the
/// MPTCP sim workloads run over it.
fn measure_route_precompute(net: &DcNetwork) -> (Arc<SharedRouteTable>, Snapshot) {
    let t0 = Instant::now();
    let table = Arc::new(SharedRouteTable::build(&net.graph, 8));
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let pairs = table.pair_count() as u64;
    let snap = Snapshot {
        name: "route_precompute",
        wall_ms,
        events: pairs,
        peak_rss_kb: peak_rss_kb(),
        alloc: None,
        retries: None,
    };
    (table, snap)
}

/// The sweep-grid workload: the faultsweep smoke grid, with cells counted
/// through the process-wide sweep observer (one event per cell).
fn measure_faultsweep() -> Snapshot {
    let cells = Arc::new(AtomicU64::new(0));
    let seen = cells.clone();
    sweep::set_observer(Some(Arc::new(move |_, _| {
        seen.fetch_add(1, Ordering::Relaxed);
    })));
    let scale = Scale {
        smoke: true,
        ..Scale::default()
    };
    let t0 = Instant::now();
    let out = faultsweep::run(scale);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    sweep::set_observer(None);
    std::hint::black_box(faultsweep::total_violations(&out));
    Snapshot {
        name: "faultsweep_smoke_grid",
        wall_ms,
        events: cells.load(Ordering::Relaxed),
        peak_rss_kb: peak_rss_kb(),
        alloc: None,
        retries: None,
    }
}

/// The distributed-sweep workload: the same smoke grid as
/// `faultsweep_smoke_grid` but dispatched over `workers` local `ftd`
/// worker processes. `events` counts merged cells through the sweep
/// observer; `retries` is the plane's requeue count. If the worker
/// binary is missing the plane degrades to in-process execution, which
/// the stderr line surfaces as `fallback yes`.
fn measure_dispatch(name: &'static str, workers: usize) -> Snapshot {
    let cells = Arc::new(AtomicU64::new(0));
    let seen = cells.clone();
    sweep::set_observer(Some(Arc::new(move |_, _| {
        seen.fetch_add(1, Ordering::Relaxed);
    })));
    let scale = Scale {
        smoke: true,
        ..Scale::default()
    };
    let cfg = DispatchConfig::local(workers);
    let t0 = Instant::now();
    let (out, summary) = dispatch::run_faultsweep(scale, &cfg, &mut obs::NoopSink);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    sweep::set_observer(None);
    std::hint::black_box(faultsweep::total_violations(&out));
    eprintln!("perfsnap: {name}: {summary}");
    Snapshot {
        name,
        wall_ms,
        events: cells.load(Ordering::Relaxed),
        peak_rss_kb: peak_rss_kb(),
        alloc: None,
        retries: Some(summary.requeues),
    }
}

/// The decomposed-simulation workload: `bigsim`'s all-modes run
/// (fat-tree + three flat-tree conversions) at k=8 under `--smoke`
/// and the full k=32 / 8192-server scale otherwise. One rep — the
/// decomposition is the thing under test and a k=32 all-modes pass is
/// tens of seconds. `events` counts per-flow FCT estimates produced
/// across all networks; `peak_rss_kb` is the high-water mark after the
/// largest topology, the number ROADMAP's scale target cares about.
fn measure_bigsim(smoke: bool) -> Snapshot {
    let scale = Scale {
        smoke,
        full: !smoke,
        ..Scale::default()
    };
    let t0 = Instant::now();
    let out = ft_bench::experiments::bigsim::run(scale);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let events: u64 = out.points.iter().map(|p| p.completed as u64).sum();
    std::hint::black_box(&out);
    Snapshot {
        name: "bigsim_allmodes",
        wall_ms,
        events,
        peak_rss_kb: peak_rss_kb(),
        alloc: None,
        retries: None,
    }
}

struct Args {
    smoke: bool,
    out: String,
    check: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        smoke: false,
        out: "BENCH_sim.json".to_string(),
        check: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => parsed.smoke = true,
            "--out" => parsed.out = it.next().ok_or("--out requires a path")?.clone(),
            "--check" => {
                parsed.check = Some(it.next().ok_or("--check requires a path")?.clone());
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(parsed)
}

fn render_json(smoke: bool, snaps: &[Snapshot]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bench_sim/v2\",\n");
    s.push_str(&format!("  \"smoke\": {smoke},\n"));
    s.push_str("  \"workloads\": {\n");
    for (i, snap) in snaps.iter().enumerate() {
        let comma = if i + 1 < snaps.len() { "," } else { "" };
        let alloc = match &snap.alloc {
            Some(t) => format!(
                ", \"alloc\": {{\"epochs\": {}, \"rounds\": {}, \"dirty_links\": {}, \"dirty_entities\": {}, \"reused_rates\": {}, \"scan_savings\": {:.4}}}",
                t.epochs, t.rounds, t.dirty_links, t.dirty_entities, t.reused_rates, t.scan_savings(),
            ),
            None => String::new(),
        };
        let retries = match snap.retries {
            Some(r) => format!(", \"retries\": {r}"),
            None => String::new(),
        };
        s.push_str(&format!(
            "    \"{}\": {{\"wall_ms\": {:.3}, \"events\": {}, \"events_per_s\": {:.1}, \"peak_rss_kb\": {}{retries}{alloc}}}{comma}\n",
            snap.name,
            snap.wall_ms,
            snap.events,
            snap.events_per_s(),
            snap.peak_rss_kb,
        ));
    }
    s.push_str("  }\n}\n");
    s
}

/// Pulls `(workload, events_per_s)` pairs out of a `BENCH_sim.json`
/// body. One workload per line; tolerant of both v1 and v2 layouts.
fn extract_events_per_s(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(tail) = line.split("\"events_per_s\":").nth(1) else {
            continue;
        };
        // Take the raw token (up to the next delimiter) and let parse
        // failures surface as NaN, not 0.0: a snapshot that somehow
        // contains "NaN"/"inf"/garbage must be *flagged* by the floor
        // check, never silently treated as a floorless workload.
        let value: f64 = tail
            .trim_start()
            .chars()
            .take_while(|c| !matches!(c, ',' | '}' | ' ' | '\n'))
            .collect::<String>()
            .parse()
            .unwrap_or(f64::NAN);
        let name = line
            .trim_start()
            .trim_start_matches('"')
            .split('"')
            .next()
            .unwrap_or("")
            .to_string();
        if !name.is_empty() {
            out.push((name, value));
        }
    }
    out
}

/// Enforces the regression floor: every workload present in both
/// snapshots must reach [`FLOOR_FRACTION`] of its committed
/// `events_per_s`. Returns the violations.
///
/// Degenerate values on *either* side are violations, not skips: a
/// fresh NaN/zero rate means the run measured nothing (the old code
/// let `NaN < floor` evaluate false and pass), and a committed
/// NaN/zero floor means the snapshot itself is unusable as a gate.
fn check_floors(fresh: &str, committed: &str) -> Vec<String> {
    let fresh = extract_events_per_s(fresh);
    let mut violations = Vec::new();
    for (name, floor) in extract_events_per_s(committed) {
        let Some((_, got)) = fresh.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        if !(floor.is_finite() && floor > 0.0) {
            violations.push(format!(
                "{name}: committed floor {floor} is not a positive finite rate — \
                 regenerate the snapshot; this workload cannot be gated",
            ));
            continue;
        }
        if !(got.is_finite() && *got > 0.0) {
            violations.push(format!(
                "{name}: fresh events_per_s {got} is degenerate (zero-duration or \
                 zero-event run) — the measurement is broken, not slow",
            ));
            continue;
        }
        if *got < floor * FLOOR_FRACTION {
            let need = floor * FLOOR_FRACTION;
            violations.push(format!(
                "{name}: {got:.1} events/s < floor {need:.1} ({FLOOR_FRACTION}x of committed {floor:.1})",
            ));
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let args = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("perfsnap: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let rounds = if args.smoke { 2 } else { 6 };
    let reps = if args.smoke { 2 } else { 5 };

    let ft = common::flat_tree_over(common::mini_topo(1));
    let net = common::instance(&ft, PodMode::Global).net;
    let flows = workload(&net, rounds);
    let fail = vec![LinkFailure {
        time: 0.05,
        link: first_cable(&net.graph),
    }];
    let ecmp = SimConfig {
        transport: Transport::TcpEcmp,
        ..SimConfig::default()
    };
    let mptcp = SimConfig {
        transport: Transport::Mptcp {
            k: 8,
            coupled: true,
        },
        ..SimConfig::default()
    };
    let (table, route_snap) = measure_route_precompute(&net);
    let lazy = Routing::Lazy;
    let shared = Routing::SharedMptcp {
        table,
        coupled: true,
    };

    let mut snaps = Vec::new();
    let cases: [(&'static str, &SimConfig, &Routing, bool); 4] = [
        ("sim_ecmp", &ecmp, &lazy, false),
        ("sim_ecmp_failure", &ecmp, &lazy, true),
        ("sim_mptcp8", &mptcp, &shared, false),
        ("sim_mptcp8_failure", &mptcp, &shared, true),
    ];
    for (name, cfg, routing, with_failure) in cases {
        let cfg = if with_failure {
            SimConfig {
                link_failures: fail.clone(),
                ..cfg.clone()
            }
        } else {
            cfg.clone()
        };
        let snap = measure_sim(name, &net, &flows, &cfg, routing, reps);
        eprintln!(
            "perfsnap: {:<22} {:>9.1} ms  {:>9} events  {:>8} kB peak",
            snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
        );
        snaps.push(snap);
    }
    eprintln!(
        "perfsnap: {:<22} {:>9.1} ms  {:>9} pairs   {:>8} kB peak",
        route_snap.name, route_snap.wall_ms, route_snap.events, route_snap.peak_rss_kb
    );
    snaps.push(route_snap);
    let snap = measure_faultsweep();
    eprintln!(
        "perfsnap: {:<22} {:>9.1} ms  {:>9} cells   {:>8} kB peak",
        snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
    );
    snaps.push(snap);
    for (name, workers) in [("dispatch_w2", 2), ("dispatch_w4", 4)] {
        let snap = measure_dispatch(name, workers);
        eprintln!(
            "perfsnap: {:<22} {:>9.1} ms  {:>9} cells   {:>8} kB peak",
            snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
        );
        snaps.push(snap);
    }
    let snap = measure_bigsim(args.smoke);
    eprintln!(
        "perfsnap: {:<22} {:>9.1} ms  {:>9} flows   {:>8} kB peak",
        snap.name, snap.wall_ms, snap.events, snap.peak_rss_kb
    );
    snaps.push(snap);

    // Surface the allocator counters through the obs metrics registry,
    // summed over the telemetry-carrying workloads.
    let mut metrics = obs::Metrics::new();
    for snap in &snaps {
        if let Some(tel) = &snap.alloc {
            tel.export(&mut metrics);
        }
    }
    if metrics.iter().next().is_some() {
        eprintln!("perfsnap: alloc metrics {}", metrics.summary_json());
    }

    // Refuse to write (or gate against) a snapshot containing broken
    // measurements — a zero-duration or zero-event workload would
    // otherwise become a floor no regression can ever trip.
    let degenerate = validate_snapshots(&snaps);
    if !degenerate.is_empty() {
        for v in &degenerate {
            eprintln!("perfsnap: DEGENERATE MEASUREMENT {v}");
        }
        std::process::exit(1);
    }

    let json = render_json(args.smoke, &snaps);
    if let Some(check_path) = &args.check {
        match std::fs::read_to_string(check_path) {
            Ok(committed) => {
                let violations = check_floors(&json, &committed);
                if !violations.is_empty() {
                    for v in &violations {
                        eprintln!("perfsnap: FLOOR VIOLATION {v}");
                    }
                    std::process::exit(1);
                }
                eprintln!("perfsnap: floor check against {check_path} passed");
            }
            Err(e) => {
                eprintln!("perfsnap: cannot read {check_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("perfsnap: cannot write {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("perfsnap: wrote {} ({} workloads)", args.out, snaps.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(name: &'static str, wall_ms: f64, events: u64) -> Snapshot {
        Snapshot {
            name,
            wall_ms,
            events,
            peak_rss_kb: 0,
            alloc: None,
            retries: None,
        }
    }

    /// The original defect: a zero-duration or zero-event run used to
    /// report `events_per_s() == 0.0`, which every floor comparison
    /// silently passed. It must now be NaN (degenerate sentinel).
    #[test]
    fn degenerate_wall_clock_is_nan_not_zero() {
        assert!(snap("w", 0.0, 100).events_per_s().is_nan());
        assert!(snap("w", -1.0, 100).events_per_s().is_nan());
        assert!(snap("w", f64::INFINITY, 100).events_per_s().is_nan());
        let healthy = snap("w", 2000.0, 100).events_per_s();
        assert!((healthy - 50.0).abs() < 1e-9);
    }

    #[test]
    fn validate_snapshots_flags_degenerate_runs() {
        let ok = [snap("a", 10.0, 5), snap("b", 1.5, 1)];
        assert!(validate_snapshots(&ok).is_empty());
        let bad = [snap("a", 10.0, 5), snap("zero_events", 10.0, 0)];
        let v = validate_snapshots(&bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("zero_events"), "{v:?}");
        let bad = [snap("zero_wall", 0.0, 5)];
        let v = validate_snapshots(&bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("zero_wall"), "{v:?}");
    }

    fn body(entries: &[(&str, &str)]) -> String {
        let mut s = String::from("{\n  \"workloads\": {\n");
        for (name, eps) in entries {
            s.push_str(&format!(
                "    \"{name}\": {{\"wall_ms\": 1.0, \"events\": 1, \"events_per_s\": {eps}, \"peak_rss_kb\": 0}},\n"
            ));
        }
        s.push_str("  }\n}\n");
        s
    }

    #[test]
    fn healthy_floors_pass_and_regressions_fail() {
        let committed = body(&[("sim", "1000.0")]);
        assert!(check_floors(&body(&[("sim", "900.0")]), &committed).is_empty());
        let v = check_floors(&body(&[("sim", "100.0")]), &committed);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("< floor"), "{v:?}");
        // Workloads only on one side are not gated.
        assert!(check_floors(&body(&[("other", "1.0")]), &committed).is_empty());
    }

    /// Regression: NaN/zero fresh values must FAIL the check, not slide
    /// through the `<` comparison.
    #[test]
    fn degenerate_fresh_values_are_violations() {
        let committed = body(&[("sim", "1000.0")]);
        for bad in ["NaN", "0.0", "-3.0", "inf"] {
            let v = check_floors(&body(&[("sim", bad)]), &committed);
            assert_eq!(v.len(), 1, "fresh {bad} must be flagged");
            assert!(v[0].contains("degenerate"), "{v:?}");
        }
    }

    /// Regression: an unusable committed floor (NaN/zero/garbage) must
    /// be reported, not silently skipped as "no floor".
    #[test]
    fn unusable_committed_floors_are_violations() {
        let fresh = body(&[("sim", "500.0")]);
        for bad in ["NaN", "0.0", "inf", "bogus"] {
            let v = check_floors(&fresh, &body(&[("sim", bad)]));
            assert_eq!(v.len(), 1, "committed {bad} must be flagged");
            assert!(v[0].contains("cannot be gated"), "{v:?}");
        }
    }

    #[test]
    fn extract_surfaces_parse_failures_as_nan() {
        let got = extract_events_per_s(&body(&[("a", "12.5"), ("b", "wat")]));
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], ("a".to_string(), 12.5));
        assert_eq!(got[1].0, "b");
        assert!(got[1].1.is_nan());
    }
}
