//! `ftd` — the flat-tree sweep worker daemon.
//!
//! Speaks the length-prefixed [`ft_bench::dispatch::wire`] protocol:
//! announces itself with a `Hello` frame, then computes one
//! `CellResult` per leased `WorkerParams` until the driver sends
//! `Shutdown` or closes the stream. By default the transport is the
//! stdin/stdout pipe pair the dispatch driver wires up; with
//! `--listen <addr>` it binds a TCP listener instead and serves
//! connections sequentially (simulation-as-a-service: point any driver
//! or script at the port).
//!
//! Exit codes: 0 clean shutdown/EOF, 2 usage error, 3 chaos-directed
//! garbage emission, 4 unrecoverable protocol error.
//!
//! Cell computation is pure, so a worker's answer is bit-identical to
//! an in-process run — worker-side panics are caught and surfaced as
//! typed `Response::Failed` frames so the driver can requeue instead
//! of losing the worker.

use ft_bench::dispatch::chaos::garbage_bytes;
use ft_bench::dispatch::wire::{
    self, CellResult, ChaosDirective, Hello, Request, Response, PROTO_VERSION,
};
use ft_bench::experiments::faultsweep;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

fn usage() -> String {
    "usage: ftd [--listen <addr:port>] [--read-timeout-ms <ms>]\n\
     \n\
     options:\n\
     \x20 --listen <addr:port>     serve the wire protocol on a TCP listener\n\
     \x20                          (default: stdin/stdout pipes)\n\
     \x20 --read-timeout-ms <ms>   drop a TCP peer that stays silent this\n\
     \x20                          long and accept the next connection\n\
     \x20                          (default 30000; 0 waits forever)\n\
     \x20 --help                   print this message"
        .to_string()
}

/// Default TCP read deadline: a peer that sends nothing for this long
/// is treated as half-open and dropped so the accept loop can serve the
/// next connection.
const DEFAULT_READ_TIMEOUT_MS: u64 = 30_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    let mut listen: Option<String> = None;
    let mut read_timeout_ms = DEFAULT_READ_TIMEOUT_MS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                match args.get(i) {
                    Some(addr) => listen = Some(addr.clone()),
                    None => {
                        eprintln!("ftd: --listen needs an address\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            "--read-timeout-ms" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(ms) => read_timeout_ms = ms,
                    None => {
                        eprintln!("ftd: --read-timeout-ms needs a number\n{}", usage());
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("ftd: unknown argument {other:?}\n{}", usage());
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let code = match listen {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve(
                &mut BufReader::new(stdin.lock()),
                &mut BufWriter::new(stdout.lock()),
            )
        }
        Some(addr) => serve_tcp(&addr, read_timeout_ms),
    };
    std::process::exit(code);
}

/// Binds `addr` and serves connections one at a time, forever. The
/// bound address is announced on stdout (one line, then EOF-silence)
/// so callers binding port 0 can discover the port.
///
/// Every accepted stream gets `read_timeout_ms` as its read deadline
/// (0 = wait forever): a peer that connects and then goes silent —
/// before its first request or mid-frame — surfaces as a typed
/// `WireError::Timeout`, the session ends with code 4, and the loop
/// accepts the next connection instead of hanging the worker slot on a
/// half-open socket. A peer that *closes* early (before Hello, or
/// after a partial frame) likewise ends its session with a typed error
/// and frees the slot.
fn serve_tcp(addr: &str, read_timeout_ms: u64) -> i32 {
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("ftd: cannot bind {addr}: {e}");
            return 4;
        }
    };
    match listener.local_addr() {
        Ok(local) => {
            println!("ftd listening on {local}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("ftd: local_addr: {e}");
            return 4;
        }
    }
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                eprintln!("ftd: serving {peer}");
                if read_timeout_ms > 0 {
                    let deadline = std::time::Duration::from_millis(read_timeout_ms);
                    if let Err(e) = stream.set_read_timeout(Some(deadline)) {
                        eprintln!("ftd: set_read_timeout for {peer}: {e}");
                        continue;
                    }
                }
                let Ok(read_half) = stream.try_clone() else {
                    eprintln!("ftd: cannot clone stream for {peer}");
                    continue;
                };
                let code = serve(&mut BufReader::new(read_half), &mut BufWriter::new(stream));
                // Garbage emission is terminal even in TCP mode: the
                // chaos contract is "corrupt the stream, then die".
                if code == 3 {
                    return 3;
                }
            }
            Err(e) => {
                eprintln!("ftd: accept: {e}");
                return 4;
            }
        }
    }
}

/// One protocol session: handshake, then serve leases until shutdown.
fn serve<R: Read, W: Write>(r: &mut R, w: &mut W) -> i32 {
    let hello = Hello {
        proto: PROTO_VERSION,
        pid: std::process::id(),
    };
    if let Err(e) = wire::write_frame(w, &hello) {
        eprintln!("ftd: handshake write: {e}");
        return 4;
    }
    loop {
        let req = match wire::read_frame::<_, Request>(r) {
            Ok(Some(req)) => req,
            Ok(None) => return 0, // driver closed the stream
            Err(e) => {
                eprintln!("ftd: request read: {e}");
                return 4;
            }
        };
        match req {
            Request::Shutdown => return 0,
            Request::Cell(params) => {
                if let Some(ChaosDirective::Garbage { seed, len }) = params.chaos {
                    // Chaos harness: corrupt the stream where a frame
                    // should be, then die mid-conversation.
                    let _ = w.write_all(&garbage_bytes(seed, len));
                    let _ = w.flush();
                    return 3;
                }
                let t0 = Instant::now();
                let computed = catch_unwind(AssertUnwindSafe(|| {
                    faultsweep::execute_cell(params.scale, &params.spec)
                }));
                let response = match computed {
                    Ok(output) => Response::Cell(CellResult {
                        req: params.req,
                        cell: params.cell,
                        output,
                        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                    }),
                    Err(panic) => {
                        let message = panic
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                            .unwrap_or_else(|| "cell panicked".to_string());
                        Response::Failed {
                            req: params.req,
                            cell: params.cell,
                            message,
                        }
                    }
                };
                if let Err(e) = wire::write_frame(w, &response) {
                    eprintln!("ftd: response write: {e}");
                    return 4;
                }
            }
        }
    }
}
