//! Regenerates the paper's fig7 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig7;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("fig7");
    let rec = recorder::start("fig7", &cli);
    let scale = cli.scale;
    let out = fig7::run(scale);
    fig7::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
