//! Regenerates the paper's fig7 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig7;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = fig7::run(scale);
    fig7::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
