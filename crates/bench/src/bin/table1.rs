//! Regenerates the paper's table1 data. See EXPERIMENTS.md.

use ft_bench::experiments::table1;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("table1");
    let rec = recorder::start("table1", &cli);
    let scale = cli.scale;
    let out = table1::run(scale);
    table1::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
