//! Regenerates the paper's table1 data. See EXPERIMENTS.md.

use ft_bench::experiments::table1;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = table1::run(scale);
    table1::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
