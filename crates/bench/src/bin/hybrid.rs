//! Extension experiment: hybrid. See EXPERIMENTS.md.

use ft_bench::experiments::hybrid;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("hybrid");
    let rec = recorder::start("hybrid", &cli);
    let scale = cli.scale;
    let out = hybrid::run(scale);
    hybrid::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
