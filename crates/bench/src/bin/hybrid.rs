//! Extension experiment: hybrid. See EXPERIMENTS.md.

use ft_bench::experiments::hybrid;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = hybrid::run(scale);
    hybrid::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
