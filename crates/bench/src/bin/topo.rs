//! Topology inspector: prints the device inventory, structural metrics,
//! and (optionally) Graphviz DOT for any network this repo can build.
//!
//! Usage:
//!   cargo run -p ft-bench --release --bin topo -- [--full] [--dot \<mode\>]
//!
//! Prints one row per flat-tree mode of the topo-1 device set plus the
//! device-equivalent random graphs; `--dot global` additionally dumps the
//! global-mode instance as DOT on stdout (pipe into `dot -Tsvg`).

use flat_tree::PodMode;
use ft_bench::experiments::common;
use ft_bench::report::{f3, print_table};
use netgraph::{dot, metrics, NodeKind};
use topology::{RandomGraphParams, TwoStageParams};

const USAGE: &str = "usage: topo [--full] [--dot <clos|local|global>] [--help]";

fn parse_args(args: &[String]) -> Result<(bool, Option<String>), String> {
    let mut full = false;
    let mut dot_mode = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--dot" => {
                let mode = it.next().ok_or("--dot requires a mode argument")?;
                match mode.as_str() {
                    "clos" | "local" | "global" => dot_mode = Some(mode.clone()),
                    other => return Err(format!("unknown --dot mode `{other}`")),
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok((full, dot_mode))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let (full, dot_mode) = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("topo: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let clos = common::topo(1, full);
    let ft = common::flat_tree_over(clos);
    let mut rows = Vec::new();
    let mut dot_out = None;

    let mut add = |name: String, net: &topology::DcNetwork| {
        let g = &net.graph;
        let apl = metrics::avg_server_path_length_sampled(g, 64).unwrap_or(f64::NAN);
        let diam = metrics::switch_diameter(g).unwrap_or(0);
        let servers_on = |kind| {
            metrics::attached_server_counts(g, kind)
                .iter()
                .map(|&(_, c)| c)
                .sum::<usize>()
        };
        rows.push(vec![
            name,
            net.num_servers().to_string(),
            g.switches().len().to_string(),
            (g.link_count() / 2).to_string(),
            f3(apl),
            diam.to_string(),
            format!(
                "{}/{}/{}",
                servers_on(NodeKind::EdgeSwitch),
                servers_on(NodeKind::AggSwitch),
                servers_on(NodeKind::CoreSwitch)
            ),
        ]);
    };

    for mode in [PodMode::Clos, PodMode::Local, PodMode::Global] {
        let inst = common::instance(&ft, mode);
        let name = format!("flat-tree {}", format!("{mode:?}").to_lowercase());
        if dot_mode.as_deref() == Some(&format!("{mode:?}").to_lowercase()) {
            dot_out = Some(dot::to_dot(&inst.net.graph, &name));
        }
        add(name, &inst.net);
    }
    add(
        "random graph".into(),
        &RandomGraphParams::from_clos(&clos, 1).build(),
    );
    add(
        "two-stage RG".into(),
        &TwoStageParams { clos, seed: 1 }.build(),
    );

    print_table(
        "Topology inventory",
        &[
            "network",
            "servers",
            "switches",
            "cables",
            "APL",
            "diam",
            "srv@E/A/C",
        ],
        &rows,
    );
    if let Some(d) = dot_out {
        println!("\n{d}");
    }
}
