//! Regenerates the paper's fig11 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig11;
use ft_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let out = fig11::run(scale);
    fig11::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
}
