//! Regenerates the paper's fig11 data. See EXPERIMENTS.md.

use ft_bench::experiments::fig11;
use ft_bench::{recorder, Cli};

fn main() {
    let cli = Cli::parse("fig11");
    let rec = recorder::start("fig11", &cli);
    let scale = cli.scale;
    let out = fig11::run(scale);
    fig11::print(&out);
    if scale.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&out).expect("serializable")
        );
    }
    recorder::finish(rec);
}
