//! Experiment scale and CLI options.

use serde::{Deserialize, Serialize};

/// Common experiment options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Use the paper's full Table 2 sizes instead of the mini scale.
    pub full: bool,
    /// Shrink further to a seconds-long CI smoke run (testbed-sized
    /// networks, reduced grids). Overrides `full`.
    pub smoke: bool,
    /// RNG seed for workloads and random topologies.
    pub seed: u64,
    /// Also emit results as JSON on stdout.
    pub json: bool,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            full: false,
            smoke: false,
            seed: 1,
            json: false,
        }
    }
}

impl Scale {
    /// A tiny scale for Criterion benches and integration tests.
    pub fn bench() -> Self {
        Self::default()
    }
}
