//! Experiment scale and CLI options.

use serde::{Deserialize, Serialize};

/// Common experiment options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Use the paper's full Table 2 sizes instead of the mini scale.
    pub full: bool,
    /// Shrink further to a seconds-long CI smoke run (testbed-sized
    /// networks, reduced grids). Overrides `full`.
    pub smoke: bool,
    /// RNG seed for workloads and random topologies.
    pub seed: u64,
    /// Also emit results as JSON on stdout.
    pub json: bool,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            full: false,
            smoke: false,
            seed: 1,
            json: false,
        }
    }
}

impl Scale {
    /// Parses `--full`, `--smoke`, `--seed <u64>`, `--json` from process
    /// args.
    pub fn from_args() -> Self {
        let mut s = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => s.full = true,
                "--smoke" => s.smoke = true,
                "--json" => s.json = true,
                "--seed" => {
                    i += 1;
                    s.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs a u64");
                }
                other => {
                    panic!("unknown argument {other}; known: --full --smoke --seed <u64> --json")
                }
            }
            i += 1;
        }
        s
    }

    /// A tiny scale for Criterion benches and integration tests.
    pub fn bench() -> Self {
        Self::default()
    }
}
