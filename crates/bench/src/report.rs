//! Plain-text table / series rendering and small statistics helpers.

/// Prints a header + aligned rows. All columns are strings; numeric
/// formatting is the caller's choice.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// `p`-th percentile (0..=100) of sorted data. Returns `f64::NAN` for
/// empty input — the documented sentinel for "no samples", chosen over
/// a panic so report code never aborts a sweep on an empty cell.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sorts a copy ascending by IEEE total order, so NaN samples sort to
/// the end instead of panicking mid-comparison.
pub fn sorted(xs: &[f64]) -> Vec<f64> {
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    v
}

/// Five-number summary + mean: (min, p25, median, p75, max, mean).
/// Empty input yields all-NaN quantiles with a 0 mean — the same
/// sentinel convention as [`percentile`].
pub fn summary(xs: &[f64]) -> (f64, f64, f64, f64, f64, f64) {
    let s = sorted(xs);
    (
        s.first().copied().unwrap_or(f64::NAN),
        percentile(&s, 25.0),
        percentile(&s, 50.0),
        percentile(&s, 75.0),
        s.last().copied().unwrap_or(f64::NAN),
        mean(&s),
    )
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_summary() {
        let xs = vec![4.0, 1.0, 3.0, 2.0, 5.0];
        let s = sorted(&xs);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 50.0), 3.0);
        assert_eq!(percentile(&s, 100.0), 5.0);
        let (min, _, med, _, max, m) = summary(&xs);
        assert_eq!((min, med, max), (1.0, 3.0, 5.0));
        assert!((m - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn sorted_is_total_on_nan() {
        let s = sorted(&[2.0, f64::NAN, 1.0]);
        assert_eq!(&s[..2], &[1.0, 2.0]);
        assert!(s[2].is_nan(), "NaN sorts last under total order");
    }

    #[test]
    fn empty_summary_yields_nan_sentinels() {
        assert!(percentile(&[], 50.0).is_nan());
        let (min, p25, med, p75, max, m) = summary(&[]);
        assert!(min.is_nan() && p25.is_nan() && med.is_nan());
        assert!(p75.is_nan() && max.is_nan());
        assert_eq!(m, 0.0);
    }

    #[test]
    fn print_table_survives_empty_header() {
        // Regression: the separator width used to underflow on an
        // empty header (`widths.len() - 1` with len 0).
        print_table("empty", &[], &[]);
        print_table("one", &["col"], &[vec!["x".into()]]);
    }
}
