//! Criterion bench for the Figure 8 pipeline: trace synthesis + fluid FCT
//! simulation on a small flat-tree.

use criterion::{criterion_group, criterion_main, Criterion};
use flat_tree::PodMode;
use flowsim::{simulate, SimConfig, Transport};
use ft_bench::experiments::common;
use topology::ClosParams;
use traffic::traces::TraceParams;

fn bench(c: &mut Criterion) {
    let ft = common::flat_tree_over(ClosParams::mini());
    let inst = common::instance(&ft, PodMode::Global);
    let mut params = TraceParams::web(64, 4, 16, 1);
    params.duration_s = 0.1;
    let trace = params.generate();
    let flows: Vec<flowsim::FlowSpec> = trace
        .flows
        .iter()
        .map(|f| flowsim::FlowSpec {
            id: f.id,
            src: inst.net.servers[f.src],
            dst: inst.net.servers[f.dst],
            bytes: f.bytes,
            start: f.start,
        })
        .collect();
    c.bench_function("fig8/fct_simulation_web_mini", |b| {
        b.iter(|| {
            simulate(
                &inst.net.graph,
                &flows,
                &SimConfig {
                    transport: Transport::Mptcp {
                        k: 8,
                        coupled: true,
                    },
                    ..SimConfig::default()
                },
            )
            .mean_fct()
        });
    });
    c.bench_function("fig8/trace_synthesis", |b| {
        b.iter(|| params.generate().flows.len());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
