//! Micro-benchmarks of the substrate algorithms every experiment rests
//! on: Yen k-shortest paths, max-min water filling, flat-tree
//! instantiation, and the wiring-property checkers. These are the
//! performance-tracking benches for regressions, not paper figures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flat_tree::{FlatTree, FlatTreeParams, ModeAssignment, PodMode};
use mcf::maxmin::{weighted_max_min, Entity};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use topology::ClosParams;

fn bench(c: &mut Criterion) {
    // Yen on the mini Clos.
    let clos = ClosParams::mini().build();
    let g = &clos.net.graph;
    let s0 = clos.net.servers[0];
    let s63 = clos.net.servers[63];
    c.bench_function("substrates/yen_k8_mini_clos", |b| {
        b.iter(|| netgraph::yen::k_shortest_paths(g, s0, s63, 8).len());
    });

    // Water filling with 2048 random entities over 256 links.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let caps: Vec<f64> = (0..256).map(|_| rng.gen_range(1.0..40.0)).collect();
    let entities: Vec<Entity> = (0..2048)
        .map(|_| {
            let len = rng.gen_range(2..6);
            Entity {
                weight: 1.0,
                links: (0..len)
                    .map(|_| rng.gen_range(0..256))
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect(),
            }
        })
        .collect();
    c.bench_function("substrates/water_filling_2048x256", |b| {
        b.iter(|| weighted_max_min(&caps, &entities));
    });

    // Flat-tree instantiation (all three modes).
    let ft = FlatTree::new(FlatTreeParams::new(ClosParams::mini(), 1, 1)).unwrap();
    c.bench_function("substrates/flat_tree_instantiate_3_modes", |b| {
        b.iter_batched(
            || ft.clone(),
            |ft| {
                for m in [PodMode::Clos, PodMode::Local, PodMode::Global] {
                    ft.instantiate(&ModeAssignment::uniform(4, m));
                }
            },
            BatchSize::SmallInput,
        );
    });

    // Ablation: wiring pattern 1 vs 2 — average path length of global
    // mode under each pattern (the §3.2 design choice).
    for pattern in [
        flat_tree::WiringPattern::Pattern1,
        flat_tree::WiringPattern::Pattern2,
    ] {
        let mut params = FlatTreeParams::new(ClosParams::mini(), 1, 1);
        params.wiring = pattern;
        if params.validate().is_err() {
            continue;
        }
        let ft = FlatTree::new(params).unwrap();
        c.bench_function(&format!("substrates/global_apl_{pattern:?}"), |b| {
            b.iter(|| {
                let inst = ft.instantiate(&ModeAssignment::uniform(4, PodMode::Global));
                netgraph::metrics::avg_server_path_length(&inst.net.graph)
            });
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
