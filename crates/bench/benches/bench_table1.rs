//! Criterion bench for the Table 1 pipeline: device-equivalent network
//! construction + max-concurrent-flow LP at a tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use ft_bench::experiments::common;
use mcf::concurrent::max_concurrent_flow;
use topology::{ClosParams, RandomGraphParams};
use traffic::patterns::{clustered_all_to_all, sample_peers};

fn bench(c: &mut Criterion) {
    let clos = ClosParams::mini();
    let net = clos.build().net;
    let pairs = sample_peers(clustered_all_to_all(64, 8), 4, 1);
    let coms = common::commodities(&net, &pairs, 10.0);
    c.bench_function("table1/max_concurrent_flow_mini", |b| {
        b.iter(|| max_concurrent_flow(&net.graph, &coms, 0.2).lambda);
    });
    c.bench_function("table1/device_equivalent_rg_build", |b| {
        b.iter(|| RandomGraphParams::from_clos(&clos, 1).build().num_servers());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
