//! Criterion bench for the Figure 6 pipeline: k-shortest-path MPTCP
//! steady-state allocation vs the LP baselines at a tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};
use flat_tree::PodMode;
use ft_bench::experiments::common;
use mcf::greedy::max_total_flow;
use topology::ClosParams;
use traffic::patterns::permutation;

fn bench(c: &mut Criterion) {
    let ft = common::flat_tree_over(ClosParams::mini());
    let inst = common::instance(&ft, PodMode::Global);
    let pairs = permutation(inst.net.num_servers(), 1);
    c.bench_function("fig6/mptcp_rates_k8", |b| {
        b.iter(|| common::mptcp_rates(&inst.net, &pairs, 8));
    });
    let coms = common::commodities(&inst.net, &pairs, 10.0);
    c.bench_function("fig6/lp_avg_greedy", |b| {
        b.iter(|| max_total_flow(&inst.net.graph, &coms));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
