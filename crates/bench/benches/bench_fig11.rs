//! Criterion bench for the Figure 11 pipeline: application models on the
//! testbed.

use criterion::{criterion_group, criterion_main, Criterion};
use flat_tree::PodMode;
use testbed::apps::{hadoop_shuffle, spark_broadcast, AppParams};
use testbed::TestbedRig;

fn bench(c: &mut Criterion) {
    let rig = TestbedRig::new();
    let p = AppParams::default_testbed();
    c.bench_function("fig11/spark_broadcast_global", |b| {
        b.iter(|| spark_broadcast(&rig, PodMode::Global, &p).phase_s);
    });
    c.bench_function("fig11/hadoop_shuffle_clos", |b| {
        b.iter(|| hadoop_shuffle(&rig, PodMode::Clos, &p).phase_s);
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
